"""Figure 7: VCO output spectrum with a -5 dBm, 10 MHz tone in the substrate.

Paper: the spectrum analyzer shows the 3 GHz carrier with spurs at
f_c +/- f_noise; the spur pair is the quantity tracked in Figures 8-10.
"""

import pytest

from _report import print_table


def test_fig7_vco_output_spectrum(benchmark, vco_analysis):
    def synthesise():
        return vco_analysis.output_spectrum(vtune=0.0, noise_frequency=10e6,
                                            periods_of_noise=12,
                                            samples_per_carrier_period=6)

    spectrum, spur = benchmark.pedantic(synthesise, rounds=1, iterations=1)

    carrier_frequency, carrier_power = spectrum.carrier()
    lower, upper = spectrum.spur_powers(carrier_frequency, 10e6)
    rows = [
        {"line": "carrier", "frequency_GHz": carrier_frequency / 1e9,
         "power_dbm": carrier_power},
        {"line": "lower spur (fc - fnoise)",
         "frequency_GHz": (carrier_frequency - 10e6) / 1e9, "power_dbm": lower},
        {"line": "upper spur (fc + fnoise)",
         "frequency_GHz": (carrier_frequency + 10e6) / 1e9, "power_dbm": upper},
    ]
    print_table("Figure 7: VCO output spectrum with a -5 dBm 10 MHz substrate tone",
                rows)
    print(f"equation-(2) prediction for the spur: "
          f"{spur.sideband_power_dbm('upper'):.1f} dBm")

    # The carrier sits near 3 GHz and the spurs appear symmetrically below it.
    assert 2.5e9 < carrier_frequency < 5.5e9
    assert lower < carrier_power - 10.0
    assert upper < carrier_power - 10.0
    # FFT view and equation (2) agree.
    assert upper == pytest.approx(spur.sideband_power_dbm("upper"), abs=3.0)
    # The left/right asymmetry caused by residual AM is small (paper: "small
    # difference between left and right spur").
    assert abs(upper - lower) < 3.0
