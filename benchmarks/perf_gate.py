#!/usr/bin/env python
"""Gate performance regressions against a committed baseline snapshot.

Runs the same sections as ``run_bench.py``, compares every wall-clock metric
(keys ending in ``_seconds``) against ``BENCH_baseline.json`` and fails when
any section regresses by more than the threshold:

    python benchmarks/perf_gate.py [--baseline BENCH_baseline.json]
                                   [--threshold 2.5] [--min-delta 0.05]
                                   [--section flow --section sweep ...]
                                   [--current current.json]

A metric counts as regressed only when *both* the ratio exceeds the
threshold *and* the absolute slowdown exceeds ``--min-delta`` seconds — CI
runners jitter hard on sub-50 ms timings, and a 3x regression of a 5 ms
stage is noise, not a finding.  The default 2.5x threshold is deliberately
loose for the same reason; genuine algorithmic regressions (the kind PR 1
fixed, 33x) clear it with room to spare.

Per-stage gating: the flow section's ``extraction_breakdown`` /
``simulation_breakdown`` stages are fed by the span tracer
(``repro.obs``), so individual stages (Kron reduction, mesh assembly,
simulation setup, solver factorize/solve) are gated alongside the section
totals.  Breakdown stages use ``--stage-min-delta`` as their jitter floor
(they are smaller and noisier than section totals).

The comparison is printed as a markdown table and, when running under
GitHub Actions (``GITHUB_STEP_SUMMARY`` set), appended to the job summary.
Exit status: 0 when no metric regresses, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import run_bench  # noqa: E402


def flatten_seconds(snapshot: dict, prefix: str = "") -> dict[str, float]:
    """All ``*_seconds`` metrics of a snapshot as ``section.metric`` keys."""
    metrics: dict[str, float] = {}
    for key, value in snapshot.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(flatten_seconds(value, prefix=f"{path}."))
        elif key.endswith("_seconds") and isinstance(value, (int, float)):
            metrics[path] = float(value)
    return metrics


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float, min_delta: float,
            stage_min_delta: float | None = None) -> tuple[list[dict], bool]:
    """Row-per-metric delta table; second return is "any regression"."""
    if stage_min_delta is None:
        stage_min_delta = min_delta
    rows = []
    regressed = False
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        now = current.get(name)
        if base is None or now is None:
            rows.append({"metric": name, "baseline": base, "current": now,
                         "ratio": None,
                         "status": "new" if base is None else "removed"})
            continue
        floor = stage_min_delta if "_breakdown." in name else min_delta
        ratio = now / base if base > 0 else float("inf")
        bad = ratio > threshold and (now - base) > floor
        regressed = regressed or bad
        rows.append({"metric": name, "baseline": base, "current": now,
                     "ratio": ratio, "status": "REGRESSED" if bad else "ok"})
    return rows, regressed


def markdown_table(rows: list[dict], threshold: float) -> str:
    def fmt(value, pattern="{:.3f}"):
        return pattern.format(value) if value is not None else "-"

    lines = [
        f"### Perf gate (fail ratio > {threshold:g}x)",
        "",
        "| metric | baseline [s] | current [s] | ratio | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        status = {"ok": "✅ ok", "REGRESSED": "❌ regressed",
                  "new": "🆕 new", "removed": "⚠️ removed"}[row["status"]]
        lines.append(
            f"| `{row['metric']}` | {fmt(row['baseline'])} "
            f"| {fmt(row['current'])} | {fmt(row['ratio'], '{:.2f}x')} "
            f"| {status} |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_baseline.json",
                        help="committed baseline snapshot to compare against")
    parser.add_argument("--current", type=Path, default=None,
                        help="reuse an existing snapshot instead of running "
                             "the benchmarks")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the freshly-measured snapshot here")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="fail when current/baseline exceeds this ratio "
                             "(default: 2.5)")
    parser.add_argument("--min-delta", type=float, default=0.05,
                        help="ignore regressions smaller than this many "
                             "seconds in absolute terms (CI jitter floor)")
    parser.add_argument("--stage-min-delta", type=float, default=0.1,
                        help="jitter floor for span-fed per-stage breakdown "
                             "metrics (*_breakdown.*; default: 0.1)")
    parser.add_argument("--section", choices=sorted(run_bench.SECTIONS),
                        action="append", default=None,
                        help="gate only the named section(s); repeatable")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"perf-gate: baseline {args.baseline} does not exist; "
              "generate it with benchmarks/run_bench.py --output "
              "BENCH_baseline.json", file=sys.stderr)
        return 1
    baseline_snapshot = json.loads(args.baseline.read_text())

    sections = args.section or sorted(run_bench.SECTIONS)
    if args.current is not None:
        current_snapshot = json.loads(args.current.read_text())
    else:
        current_snapshot = {name: run_bench.SECTIONS[name]()
                            for name in sections}
    if args.output is not None:
        args.output.write_text(json.dumps(current_snapshot, indent=2) + "\n")

    # A benchmark that silently stops being measured must not pass the gate:
    # every gated section present in the baseline has to exist in the
    # current snapshot too.
    missing = [name for name in sections
               if name in baseline_snapshot and name not in current_snapshot]
    if missing:
        print("perf-gate: FAILED — section(s) present in the baseline but "
              f"missing from the current measurement: {', '.join(missing)}",
              file=sys.stderr)
        return 1

    baseline_metrics = flatten_seconds(
        {name: baseline_snapshot[name] for name in sections
         if name in baseline_snapshot})
    current_metrics = flatten_seconds(
        {name: current_snapshot[name] for name in sections
         if name in current_snapshot})

    rows, regressed = compare(baseline_metrics, current_metrics,
                              args.threshold, args.min_delta,
                              stage_min_delta=args.stage_min_delta)
    table = markdown_table(rows, args.threshold)
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")

    if regressed:
        worst = max((row for row in rows if row["status"] == "REGRESSED"),
                    key=lambda row: row["ratio"])
        print(f"perf-gate: FAILED — {worst['metric']} regressed "
              f"{worst['ratio']:.2f}x "
              f"({worst['baseline']:.3f}s -> {worst['current']:.3f}s)",
              file=sys.stderr)
        return 1
    print("perf-gate: ok — no metric regressed beyond "
          f"{args.threshold:g}x (+{args.min_delta:g}s jitter floor)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
