"""Figure 3: substrate-to-NMOS-output transfer versus bias.

Paper: measured and simulated transfer between -45 dB (0.5 V bias) and
-52 dB (1.6 V bias), agreement within 1 dB; the hand calculation
``(v_bg / v_sub) * gmb / gds`` lands in the same band.

This benchmark regenerates the curve with the full flow (substrate +
interconnect + circuit extraction, AC transfer simulation), prints the rows
and times one transfer-point evaluation.
"""

import numpy as np

from repro.core.nmos import NmosExperimentOptions, run_nmos_experiment
from repro.data import measurements

from _report import print_table


def test_fig3_nmos_transfer(benchmark, technology, nmos_experiment):
    result = nmos_experiment

    print_table("Figure 3: substrate -> NMOS output transfer vs bias",
                result.rows())
    print(f"max |sim - ref| = {result.comparison.max_abs_error_db:.2f} dB "
          f"(paper claims <= {measurements.NMOS_MAX_ERROR_DB:.0f} dB)")
    print(f"mean |sim - ref| = {result.comparison.mean_abs_error_db:.2f} dB")
    print(f"ground wire resistance = {result.ground_wire_resistance:.1f} ohm")

    # Shape assertions: the transfer falls with bias and stays in the band.
    assert np.all(np.diff(result.transfer_db) < 0)
    assert result.transfer_db[0] > result.transfer_db[-1]
    assert -60.0 < result.transfer_db.min() and result.transfer_db.max() < -35.0
    assert result.comparison.max_abs_error_db < 6.0

    # Time a reduced two-bias-point evaluation of the full experiment.
    options = NmosExperimentOptions(bias_points=(0.5, 1.6))

    def run_reduced_sweep():
        return run_nmos_experiment(technology, options=options)

    timed = benchmark.pedantic(run_reduced_sweep, rounds=1, iterations=1)
    assert len(timed.transfer_db) == 2
    assert timed.transfer_db[0] > timed.transfer_db[1]
