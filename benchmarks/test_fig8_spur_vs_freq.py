"""Figure 8: total spur power at f_c +/- f_noise versus noise frequency.

Paper: for a -5 dBm injected tone and several tuning voltages, the total spur
power falls linearly with the logarithm of the noise frequency
(-20 dB/decade) — the signature of resistive coupling followed by frequency
modulation — and simulation tracks measurement within 2 dB.

The absolute spur levels are not tabulated in the paper, so the reference
curve here is the ideal -20 dB/decade line anchored at the lowest analysed
frequency; the benchmark asserts the slope, the monotonic decrease and the
deviation from that line.
"""

import numpy as np
import pytest

from repro.data import measurements

from _report import print_table


def test_fig8_spur_power_vs_noise_frequency(benchmark, vco_analysis):
    def run_sweep():
        return vco_analysis.spur_sweep()

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_table("Figure 8: total spur power at fc +/- fnoise vs noise frequency",
                sweep.rows())
    for vtune in sweep.vtune_values:
        slope = sweep.slope_db_per_decade(vtune)
        deviation = sweep.comparisons[vtune].max_abs_error_db
        print(f"V_tune = {vtune:4.2f} V: carrier {sweep.carrier_frequencies[vtune] / 1e9:5.2f} GHz, "
              f"slope {slope:6.1f} dB/dec (paper: -20), "
              f"max deviation from FM line {deviation:4.1f} dB "
              f"(paper: <= {measurements.VCO_MAX_ERROR_DB:.0f} dB vs measurement)")

    for vtune in sweep.vtune_values:
        levels = sweep.spur_power_dbm[vtune]
        # Monotonic decrease with noise frequency.
        assert np.all(np.diff(levels) < 0)
        # Resistive coupling + FM slope.
        assert sweep.slope_db_per_decade(vtune) == pytest.approx(-20.0, abs=4.0)
        # Close to the ideal FM line.
        assert sweep.comparisons[vtune].max_abs_error_db < 4.0
    # The spur level depends on the tuning voltage (the paper plots several
    # V_tune curves that differ by a few dB).
    levels_at_low_f = [sweep.spur_power_dbm[v][0] for v in sweep.vtune_values]
    assert max(levels_at_low_f) - min(levels_at_low_f) > 1.0
