"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark module regenerates one table or figure of the paper at the
calibrated default mesh resolution and prints the corresponding rows, so the
benchmark output doubles as the reproduction report.  The expensive flow /
analysis objects are session-scoped; the ``benchmark`` fixture then times a
representative piece of the computation.
"""

from __future__ import annotations

import pytest

from repro.core.nmos import NmosExperimentOptions, run_nmos_experiment
from repro.core.vco_experiment import VcoExperimentOptions, VcoImpactAnalysis
from repro.technology import make_technology

from _report import NOISE_FREQUENCIES


@pytest.fixture(scope="session")
def technology():
    return make_technology()


@pytest.fixture(scope="session")
def nmos_experiment(technology):
    """Figure-3 experiment at the calibrated default resolution."""
    return run_nmos_experiment(technology, options=NmosExperimentOptions())


@pytest.fixture(scope="session")
def vco_options():
    return VcoExperimentOptions(vtune_values=(0.0, 0.75, 1.5),
                                noise_frequencies=NOISE_FREQUENCIES)


@pytest.fixture(scope="session")
def vco_analysis(technology, vco_options):
    """VCO impact analysis at the calibrated default resolution."""
    return VcoImpactAnalysis(technology, options=vco_options)
