"""Small reporting helpers shared by the benchmark modules."""

from __future__ import annotations

import numpy as np

#: Noise frequencies used by the Figure 8/9/10 benchmarks (100 kHz - 15 MHz).
NOISE_FREQUENCIES = tuple(float(f) for f in np.logspace(5, np.log10(15e6), 10))


def print_table(title: str, rows: list[dict]) -> None:
    """Print a figure's rows in a compact aligned table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0])
    header = " | ".join(f"{key:>22s}" for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in keys:
            value = row[key]
            if isinstance(value, float):
                cells.append(f"{value:22.4g}")
            else:
                cells.append(f"{str(value):>22s}")
        print(" | ".join(cells))
