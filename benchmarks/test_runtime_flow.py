"""Section 6 runtime: extraction + simulation wall-clock of the VCO analysis.

Paper: roughly 35 minutes on a 2005 HP-UX server (20 minutes of extraction,
15 minutes of simulation) for the Figure-10 results.  This benchmark records
the same split (extraction versus impact simulation) for the reproduction on
current hardware.
"""

import numpy as np

from repro.core.flow import run_extraction_flow
from repro.core.vco_experiment import VcoImpactAnalysis
from repro.layout.testchips import make_vco_testchip

from _report import NOISE_FREQUENCIES, print_table


def test_runtime_extraction_and_simulation(benchmark, technology, vco_options):
    cell = make_vco_testchip()

    def extract():
        return run_extraction_flow(cell, technology,
                                    options=vco_options.flow)

    flow = benchmark.pedantic(extract, rounds=1, iterations=1)

    import time

    start = time.perf_counter()
    analysis = VcoImpactAnalysis(technology, options=vco_options,
                                 flow_result=flow)
    analysis.spur_sweep(vtune_values=(0.0,),
                        noise_frequencies=np.asarray(NOISE_FREQUENCIES))
    simulation_seconds = time.perf_counter() - start

    rows = [
        {"stage": "substrate extraction",
         "seconds": flow.timings.substrate_extraction},
        {"stage": "interconnect extraction",
         "seconds": flow.timings.interconnect_extraction},
        {"stage": "circuit extraction", "seconds": flow.timings.circuit_extraction},
        {"stage": "model merge", "seconds": flow.timings.merge},
        {"stage": "impact simulation (one V_tune sweep)",
         "seconds": simulation_seconds},
    ]
    print_table("Section 6: flow runtime (paper: 20 min extraction + 15 min "
                "simulation on 2005 hardware)", rows)

    assert flow.timings.total_extraction > 0.0
    assert simulation_seconds > 0.0
    # The whole reproduction flow runs within minutes on current hardware.
    assert flow.timings.total_extraction + simulation_seconds < 600.0
