"""Solver-core micro-benchmarks: stamping, transient stepping, AC sweeping.

These isolate the three hot paths the sparse-solver overhaul targets so their
cost can be tracked independently of the full extraction flow:

* MNA stamping of a large resistor mesh (COO triplet accumulation),
* the linear transient step loop (one cached LU factorization + per-step
  triangular solves),
* a dense AC frequency sweep (shared G/C sparsity pattern, per-point
  ``.data`` assembly).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_solver_micro.py -s``.
"""

import time

import numpy as np

from repro.netlist import Circuit, SourceValue
from repro.simulator import (
    ac_analysis,
    dc_operating_point,
    transient_analysis,
)
from repro.simulator.mna import MnaStructure, stamp_linear_elements
from repro.simulator.solver import stats

from _report import print_table

#: Lateral size of the resistor-grid benchmark circuit (nodes = SIZE**2).
GRID_SIZE = 24


def _grid_circuit(size: int = GRID_SIZE) -> Circuit:
    """A size x size resistor grid with a source in one corner — a stand-in
    for the merged impact netlist's substrate resistor network."""
    circuit = Circuit("grid")
    circuit.add_voltage_source(
        "V1", "n_0_0", "0",
        SourceValue(dc=1.0, ac_magnitude=1.0, waveform=lambda t: 1.0))
    for i in range(size):
        for j in range(size):
            node = f"n_{i}_{j}"
            if i + 1 < size:
                circuit.add_resistor(f"Rx_{i}_{j}", node, f"n_{i + 1}_{j}", 100.0)
            if j + 1 < size:
                circuit.add_resistor(f"Ry_{i}_{j}", node, f"n_{i}_{j + 1}", 100.0)
            circuit.add_capacitor(f"C_{i}_{j}", node, "0", 1e-13)
    circuit.add_resistor("Rgnd", f"n_{size - 1}_{size - 1}", "0", 100.0)
    return circuit


def run_solver_micro_stages() -> dict[str, float]:
    """Time the three solver hot paths once on the grid circuit.

    Shared by the pytest report below and ``run_bench.py``'s snapshot so the
    two records cannot drift apart.  Returns stage -> wall-clock seconds plus
    the system size under ``unknowns``.
    """
    circuit = _grid_circuit()
    structure = MnaStructure.from_circuit(circuit)

    start = time.perf_counter()
    stamp_linear_elements(circuit, structure).conductance_matrix()
    stamp_seconds = time.perf_counter() - start

    operating_point = dc_operating_point(circuit)
    start = time.perf_counter()
    transient_analysis(circuit, t_stop=4e-7, timestep=1e-9,
                       operating_point=operating_point)
    transient_seconds = time.perf_counter() - start

    start = time.perf_counter()
    ac_analysis(circuit, np.logspace(4, 9, 64))
    ac_seconds = time.perf_counter() - start

    return {
        "unknowns": structure.size,
        "stamping_seconds": stamp_seconds,
        "transient_400_steps_seconds": transient_seconds,
        "ac_sweep_64_points_seconds": ac_seconds,
    }


def test_stamping_micro_benchmark(benchmark):
    circuit = _grid_circuit()
    structure = MnaStructure.from_circuit(circuit)

    def stamp():
        stamper = stamp_linear_elements(circuit, structure)
        return stamper.conductance_matrix()

    matrix = benchmark(stamp)
    assert matrix.nnz > 0


def test_transient_micro_benchmark(benchmark):
    circuit = _grid_circuit()
    operating_point = dc_operating_point(circuit)
    n_steps = 400

    def run():
        stats.reset()
        return transient_analysis(circuit, t_stop=n_steps * 1e-9,
                                  timestep=1e-9,
                                  operating_point=operating_point)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.factorizations == 1          # cached LU across all steps
    assert len(result.times) == n_steps + 1


def test_ac_sweep_micro_benchmark(benchmark):
    circuit = _grid_circuit()
    frequencies = np.logspace(4, 9, 64)

    def run():
        return ac_analysis(circuit, frequencies)

    ac = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ac.vectors.shape == (frequencies.size, ac.vectors.shape[1])


def test_solver_micro_report():
    """One-shot wall-clock table of the three micro-benchmarks."""
    stages = run_solver_micro_stages()
    print_table(
        f"Solver micro-benchmarks ({GRID_SIZE}x{GRID_SIZE} grid, "
        f"{stages['unknowns']} unknowns)",
        [
            {"stage": "stamping + CSR build",
             "seconds": stages["stamping_seconds"]},
            {"stage": "transient (400 steps)",
             "seconds": stages["transient_400_steps_seconds"]},
            {"stage": "AC sweep (64 points)",
             "seconds": stages["ac_sweep_64_points_seconds"]},
        ])
    assert stages["stamping_seconds"] < 5.0
    assert stages["transient_400_steps_seconds"] < 30.0
    assert stages["ac_sweep_64_points_seconds"] < 30.0
