"""Ablations called out in DESIGN.md.

* Substrate-mesh resolution versus the extracted ground transfer: the
  macromodel must converge (the ground-entry transfer should change by much
  less than it changes when the physical ground resistance changes).
* Ground-interconnect width sweep: generalisation of Figure 10 — the spur
  level falls monotonically as the ground wires get wider.
"""

import numpy as np

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions, VcoImpactAnalysis
from repro.layout.testchips import NET_GROUND_PAD, NET_GROUND_RING, VcoLayoutSpec
from repro.substrate import SubstrateExtractionOptions

from _report import print_table


def _ground_transfer(technology, spec, nx):
    options = VcoExperimentOptions(
        vtune_values=(0.0,), noise_frequencies=(1e6,),
        flow=FlowOptions(substrate=SubstrateExtractionOptions(
            nx=nx, ny=nx, lateral_margin=60e-6)))
    analysis = VcoImpactAnalysis(technology, spec=spec, options=options)
    results, _vco, _catalog, _tf = analysis.analyze(0.0, np.array([1e6]))
    entry = next(e for e in results[0].entries
                 if e.name == "ground interconnect")
    return abs(entry.h_sub), analysis


def test_ablation_mesh_resolution(benchmark, technology):
    spec = VcoLayoutSpec()
    transfers = {}
    for nx in (40, 56):
        transfers[nx], _ = _ground_transfer(technology, spec, nx)

    def finest():
        return _ground_transfer(technology, spec, 64)[0]

    transfers[64] = benchmark.pedantic(finest, rounds=1, iterations=1)

    rows = [{"mesh_nx": nx, "H_ground": h,
             "H_ground_db": 20 * np.log10(h)} for nx, h in transfers.items()]
    print_table("Ablation: substrate mesh resolution vs ground-entry transfer",
                rows)
    values = np.array(list(transfers.values()))
    # The ground-entry transfer is mesh-converged to within ~6 dB while the
    # physical ground-resistance knob (Figure 10) moves it by design.
    assert values.max() / values.min() < 2.0


def test_ablation_ground_width_sweep(benchmark, technology):
    """Generalised Figure 10: spur level falls monotonically with wire width."""
    levels = []
    resistances = []
    scales = (1.0, 2.0, 4.0)

    def analyse_scale(scale):
        spec = VcoLayoutSpec(ground_width_scale=scale)
        options = VcoExperimentOptions(
            vtune_values=(0.0,), noise_frequencies=(1e6,),
            flow=FlowOptions(substrate=SubstrateExtractionOptions(
                nx=40, ny=40, lateral_margin=60e-6)))
        analysis = VcoImpactAnalysis(technology, spec=spec, options=options)
        results, _vco, _catalog, _tf = analysis.analyze(0.0, np.array([1e6]))
        resistance = analysis.flow.interconnect.resistance_between(
            NET_GROUND_RING, NET_GROUND_PAD)
        return results[0].total_spur_power_dbm(), resistance

    first_level, first_resistance = benchmark.pedantic(
        lambda: analyse_scale(scales[0]), rounds=1, iterations=1)
    levels.append(first_level)
    resistances.append(first_resistance)
    for scale in scales[1:]:
        level, resistance = analyse_scale(scale)
        levels.append(level)
        resistances.append(resistance)

    rows = [{"width_scale": s, "ground_resistance_ohm": r, "spur_dbm": l}
            for s, r, l in zip(scales, resistances, levels)]
    print_table("Ablation: ground-wire width sweep (1 MHz tone, V_tune = 0 V)",
                rows)
    assert resistances[0] > resistances[1] > resistances[2]
    assert levels[0] > levels[1] > levels[2]
