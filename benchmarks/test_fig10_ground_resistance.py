"""Figure 10: impact with the ground-interconnect resistance halved.

Paper: enlarging the ground interconnect lines by a factor of two (halving
their resistance) lowers the predicted impact by about 4.5 dB — close to, but
less than, the ideal 6 dB because the other entries do not scale with the
ground wire.
"""

import numpy as np
import pytest

from repro.core.vco_experiment import VcoExperimentOptions, ground_resistance_study
from repro.data import measurements

from _report import NOISE_FREQUENCIES, print_table


def test_fig10_ground_interconnect_widening(benchmark, technology):
    options = VcoExperimentOptions(vtune_values=(0.0,),
                                   noise_frequencies=NOISE_FREQUENCIES)

    def run_study():
        return ground_resistance_study(technology, options=options,
                                       width_scale=2.0, vtune=0.0)

    study = benchmark.pedantic(run_study, rounds=1, iterations=1)

    print_table("Figure 10: impact of halving the ground-interconnect resistance",
                study.rows())
    print(f"ground wire resistance: {study.nominal_ground_resistance:.1f} ohm -> "
          f"{study.improved_ground_resistance:.1f} ohm")
    print(f"mean impact reduction: {study.predicted_reduction_db:.2f} dB "
          f"(paper: ~{measurements.FIG10_PREDICTED_REDUCTION_DB} dB, "
          f"ideal {measurements.FIG10_IDEAL_REDUCTION_DB} dB)")

    # The wire resistance really halves.
    assert study.improved_ground_resistance == pytest.approx(
        study.nominal_ground_resistance / 2.0, rel=1e-6)
    # The impact improves at every analysed frequency.
    assert np.all(study.nominal_dbm > study.improved_dbm)
    # The reduction is a few dB: more than 2 dB, no more than the 6 dB ideal.
    assert 2.0 < study.predicted_reduction_db <= study.ideal_reduction_db + 0.5
    assert study.ideal_reduction_db == pytest.approx(6.02, abs=0.1)
