"""Figure 9: contribution of the separate devices to the overall impact.

Paper (V_tune = 0 V, -5 dBm tone): the parasitic resistance of the on-chip
ground interconnect dominates; the NMOS back-gate path is roughly 20 dB
lower with the same -20 dB/decade slope; the inductor path is capacitive and
therefore flat with frequency and far below both; the PMOS / varactor n-well
paths are lower still.
"""

import numpy as np
import pytest

from repro.core.vco_experiment import mechanism_report
from repro.vco.sensitivity import ENTRY_GROUND, ENTRY_INDUCTOR, ENTRY_NMOS

from _report import print_table


def test_fig9_per_device_contributions(benchmark, vco_analysis):
    def run_contributions():
        return vco_analysis.contributions(vtune=0.0)

    contributions = benchmark.pedantic(run_contributions, rounds=1, iterations=1)

    rows = []
    for name, levels in contributions.contributions_dbm.items():
        rows.append({
            "entry": name,
            "mean_dbm": float(np.mean(levels)),
            "slope_db_per_decade": contributions.slopes[name],
            "mechanism": contributions.mechanisms[name],
        })
    print_table("Figure 9: per-entry contribution to the spur power (V_tune = 0 V)",
                rows)
    gap_nmos = contributions.gap_db(ENTRY_GROUND, ENTRY_NMOS)
    gap_inductor = contributions.gap_db(ENTRY_GROUND, ENTRY_INDUCTOR)
    print(f"ground vs NMOS back-gate gap: {gap_nmos:.1f} dB (paper: ~20 dB)")
    print(f"ground vs inductor gap:       {gap_inductor:.1f} dB")

    report = mechanism_report(contributions)

    # The ground interconnect dominates (the paper's headline finding).
    assert contributions.dominant_entry() == ENTRY_GROUND
    assert report.dominant_mechanism == "resistive coupling + FM"
    # The back-gate path is clearly below the ground path.
    assert gap_nmos > 5.0
    # The inductor path is far below and flat with frequency (capacitive + FM).
    assert gap_inductor > 20.0
    assert abs(contributions.slopes[ENTRY_INDUCTOR]) < 6.0
    # Ground and back-gate paths share the resistive -20 dB/decade signature.
    assert contributions.slopes[ENTRY_GROUND] == pytest.approx(-20.0, abs=4.0)
    assert contributions.slopes[ENTRY_NMOS] == pytest.approx(-20.0, abs=6.0)
