"""Section 3 text values: gmb / gds ranges, junction capacitances, crossover.

Paper: gmb = 10-38 mS and gds = 2.8-22 mS over the 0.5-1.6 V bias sweep,
Cdbj = 120 fF, Csbj = 200 fF, substrate division 1/652 roughly doubled by the
ground-wire resistance, junction-cap crossover between 5 and 19 GHz.
"""

import numpy as np
import pytest

from repro.data import measurements
from repro.devices import MosfetGeometry, MosfetModel

from _report import print_table


def test_sec3_device_parameters(benchmark, technology, nmos_experiment):
    result = nmos_experiment

    rows = [
        {"bias_v": float(b), "gmb_mS": float(g * 1e3), "gds_mS": float(d * 1e3),
         "crossover_GHz": float(f / 1e9)}
        for b, g, d, f in zip(result.bias, result.gmb, result.gds,
                              result.crossover_frequencies)
    ]
    print_table("Section 3: RF NMOS small-signal parameters vs bias", rows)
    print(f"substrate division to back-gate: 1/{1 / result.substrate_division:.0f} "
          f"(paper: 1/652)")
    print(f"division with ideal ground wire: "
          f"1/{1 / max(result.substrate_division_ideal_ground, 1e-12):.0f}")

    # gmb / gds ranges within ~2x of the measured bands.
    assert measurements.NMOS_GMB_RANGE_S[0] / 2 < result.gmb[0] < measurements.NMOS_GMB_RANGE_S[0] * 3
    assert measurements.NMOS_GMB_RANGE_S[1] / 2 < result.gmb[-1] < measurements.NMOS_GMB_RANGE_S[1] * 2
    assert measurements.NMOS_GDS_RANGE_S[0] / 2 < result.gds[0] < measurements.NMOS_GDS_RANGE_S[0] * 3
    assert measurements.NMOS_GDS_RANGE_S[1] / 2 < result.gds[-1] < measurements.NMOS_GDS_RANGE_S[1] * 2
    # Crossover far above the substrate-noise band.
    assert np.all(result.crossover_frequencies > 2e9)
    # Substrate division within an order of magnitude of 1/652.
    assert 1e-4 < result.substrate_division < 1e-2

    # Junction capacitances of the 4 x 50 um device at zero bias.
    model = MosfetModel(technology.mos_parameters("nmos_rf"),
                        MosfetGeometry(width=200e-6, length=0.18e-6))

    def evaluate_caps():
        op = model.evaluate(0.5, 0.0, 0.0)
        return op.cdb, op.csb

    cdb, csb = benchmark(evaluate_caps)
    print(f"Cdbj = {cdb * 1e15:.0f} fF (paper 120 fF), "
          f"Csbj = {csb * 1e15:.0f} fF (paper 200 fF)")
    assert cdb == pytest.approx(measurements.NMOS_CDBJ_F, rel=0.4)
    assert csb == pytest.approx(measurements.NMOS_CSBJ_F, rel=0.4)
