#!/usr/bin/env python
"""Write a perf snapshot of the reproduction flow to ``BENCH_<n>.json``.

Runs the Figure-10 runtime flow (extraction + one V_tune impact sweep) plus
the solver micro-benchmarks and records wall-clock seconds, so every PR
leaves a trajectory point future changes can be regressed against:

    PYTHONPATH=src python benchmarks/run_bench.py [--output BENCH_1.json]

The snapshot includes the solver counters (factorizations / solves) of the
simulation stage as a cheap structural regression check alongside the raw
timings.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from repro.core.flow import run_extraction_flow  # noqa: E402
from repro.core.vco_experiment import VcoExperimentOptions, VcoImpactAnalysis  # noqa: E402
from repro.layout.testchips import make_vco_testchip  # noqa: E402
from repro.simulator.solver import stats  # noqa: E402
from repro.technology import make_technology  # noqa: E402

from _report import NOISE_FREQUENCIES  # noqa: E402
from test_solver_micro import GRID_SIZE, _grid_circuit  # noqa: E402


def _bench_flow() -> dict:
    technology = make_technology()
    options = VcoExperimentOptions(vtune_values=(0.0, 0.75, 1.5),
                                   noise_frequencies=NOISE_FREQUENCIES)
    cell = make_vco_testchip()

    start = time.perf_counter()
    flow = run_extraction_flow(cell, technology, options=options.flow)
    extraction_seconds = time.perf_counter() - start

    stats.reset()
    start = time.perf_counter()
    analysis = VcoImpactAnalysis(technology, options=options, flow_result=flow)
    analysis.spur_sweep(vtune_values=(0.0,),
                        noise_frequencies=np.asarray(NOISE_FREQUENCIES))
    simulation_seconds = time.perf_counter() - start

    return {
        "extraction_seconds": extraction_seconds,
        "extraction_breakdown": {
            "substrate": flow.timings.substrate_extraction,
            "interconnect": flow.timings.interconnect_extraction,
            "circuit": flow.timings.circuit_extraction,
            "merge": flow.timings.merge,
        },
        "simulation_seconds": simulation_seconds,
        "simulation_solver_counters": {
            "factorizations": stats.factorizations,
            "solves": stats.solves,
        },
        "mesh_nodes": flow.substrate.mesh_nodes,
        "impact_netlist_nodes": len(flow.impact.circuit.nodes()),
    }


def _bench_solver_micro() -> dict:
    from repro.simulator import ac_analysis, dc_operating_point, transient_analysis
    from repro.simulator.mna import MnaStructure, stamp_linear_elements

    circuit = _grid_circuit()
    structure = MnaStructure.from_circuit(circuit)

    start = time.perf_counter()
    stamp_linear_elements(circuit, structure).conductance_matrix()
    stamping_seconds = time.perf_counter() - start

    operating_point = dc_operating_point(circuit)
    start = time.perf_counter()
    transient_analysis(circuit, t_stop=4e-7, timestep=1e-9,
                       operating_point=operating_point)
    transient_seconds = time.perf_counter() - start

    start = time.perf_counter()
    ac_analysis(circuit, np.logspace(4, 9, 64))
    ac_seconds = time.perf_counter() - start

    return {
        "grid_size": GRID_SIZE,
        "unknowns": structure.size,
        "stamping_seconds": stamping_seconds,
        "transient_400_steps_seconds": transient_seconds,
        "ac_sweep_64_points_seconds": ac_seconds,
    }


def _next_snapshot_path() -> Path:
    """First unused ``BENCH_<n>.json`` so PRs never clobber the trajectory."""
    index = 1
    while (REPO_ROOT / f"BENCH_{index}.json").exists():
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the snapshot JSON "
                             "(default: the next unused BENCH_<n>.json)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = _next_snapshot_path()

    snapshot = {
        "benchmark": "figure10_runtime_flow",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "flow": _bench_flow(),
        "solver_micro": _bench_solver_micro(),
    }
    snapshot["flow"]["total_seconds"] = (snapshot["flow"]["extraction_seconds"]
                                         + snapshot["flow"]["simulation_seconds"])

    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(json.dumps(snapshot, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
