#!/usr/bin/env python
"""Write a perf snapshot of the reproduction flow to ``BENCH_<n>.json``.

Runs the Figure-10 runtime flow (extraction + one V_tune impact sweep), the
solver micro-benchmarks and the design-study sweep benchmark (serial vs
sharded, cold vs warm extraction cache) and records wall-clock seconds, so
every PR leaves a trajectory point future changes can be regressed against:

    PYTHONPATH=src python benchmarks/run_bench.py [--output BENCH_1.json]
    PYTHONPATH=src python benchmarks/run_bench.py --section sweep  # just one

The snapshot includes the solver counters (factorizations / solves) and the
extraction-cache counters (hits / misses) as cheap structural regression
checks alongside the raw timings.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from repro.core.flow import run_extraction_flow  # noqa: E402
from repro.core.vco_experiment import VcoExperimentOptions, VcoImpactAnalysis  # noqa: E402
from repro.layout.testchips import make_vco_testchip  # noqa: E402
from repro.obs import span_aggregates, tracer  # noqa: E402
from repro.simulator.solver import stats  # noqa: E402
from repro.technology import make_technology  # noqa: E402

from _report import NOISE_FREQUENCIES  # noqa: E402
from test_solver_micro import GRID_SIZE, run_solver_micro_stages  # noqa: E402


def _span_seconds(aggregates: dict, name: str) -> float:
    return aggregates.get(name, {}).get("total_seconds", 0.0)


def _bench_flow() -> dict:
    """Figure-10 runtime flow, with stage breakdowns from the span tracer.

    The breakdown keys are ``_seconds``-suffixed so ``perf_gate.py`` gates
    every stage individually — including ``mesh_assembly`` / ``kron_reduction``
    and the simulation setup that the pre-tracer breakdown under-accounted.
    """
    technology = make_technology()
    options = VcoExperimentOptions(vtune_values=(0.0, 0.75, 1.5),
                                   noise_frequencies=NOISE_FREQUENCIES)
    cell = make_vco_testchip()

    was_enabled = tracer.enabled
    tracer.enable()
    try:
        start = time.perf_counter()
        flow = run_extraction_flow(cell, technology, options=options.flow)
        extraction_seconds = time.perf_counter() - start

        stats.reset()
        sim_mark = tracer.mark()
        start = time.perf_counter()
        analysis = VcoImpactAnalysis(technology, options=options,
                                     flow_result=flow)
        analysis.spur_sweep(vtune_values=(0.0,),
                            noise_frequencies=np.asarray(NOISE_FREQUENCIES))
        simulation_seconds = time.perf_counter() - start
        aggregates = span_aggregates(tracer.spans_since(sim_mark))
    finally:
        if not was_enabled:
            tracer.disable()

    return {
        "extraction_seconds": extraction_seconds,
        "total_seconds": extraction_seconds + simulation_seconds,
        # FlowTimings.as_dict() is span-fed and already ``_seconds``-suffixed;
        # mesh_assembly / kron_reduction are sub-stages *inside* substrate.
        "extraction_breakdown": flow.timings.as_dict(),
        "simulation_seconds": simulation_seconds,
        "simulation_breakdown": {
            "setup_seconds": _span_seconds(aggregates, "sim.setup"),
            "transfer_function_seconds": _span_seconds(
                aggregates, "sim.transfer_function"),
            "solver_factorize_seconds": _span_seconds(
                aggregates, "solver.factorize"),
            "solver_solve_seconds": _span_seconds(aggregates, "solver.solve"),
        },
        "simulation_solver_counters": {
            "factorizations": stats.factorizations,
            "solves": stats.solves,
        },
        "mesh_nodes": flow.substrate.mesh_nodes,
        "impact_netlist_nodes": len(flow.impact.circuit.nodes()),
    }


def _bench_solver_micro() -> dict:
    return {"grid_size": GRID_SIZE, **run_solver_micro_stages()}


def _bench_sweep() -> dict:
    """Design-study sweep: serial vs sharded, cold vs warm extraction cache."""
    import tempfile

    from repro.core.flow import FlowOptions
    from repro.studies import (
        Campaign,
        DiskExtractionCache,
        ExtractionCache,
        ParamSpace,
        ProcessPoolBackend,
        SerialBackend,
        SweepRunner,
    )
    from repro.substrate.extraction import SubstrateExtractionOptions

    technology = make_technology()
    options = VcoExperimentOptions(
        flow=FlowOptions(substrate=SubstrateExtractionOptions(
            nx=40, ny=40, lateral_margin=60e-6)))
    campaign = Campaign(
        name="bench_grid_width_study",
        space=ParamSpace({
            "ground_width_scale": (1.0, 2.0),
            "vtune": (0.0, 0.75, 1.5),
            "noise_frequency": NOISE_FREQUENCIES,
        }),
        options=options)

    cache = ExtractionCache()
    serial = SweepRunner(technology, backend=SerialBackend(), cache=cache)

    start = time.perf_counter()
    cold = serial.run(campaign)
    serial_cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = serial.run(campaign)
    serial_warm_seconds = time.perf_counter() - start

    # Sharded cold run against its own cache: the per-variant extractions
    # (the expensive half) are fanned out across the workers too.
    sharded_cold_runner = SweepRunner(
        technology, backend=ProcessPoolBackend(max_workers=2),
        cache=ExtractionCache())
    start = time.perf_counter()
    sharded_cold = sharded_cold_runner.run(campaign)
    sharded_cold_seconds = time.perf_counter() - start

    sharded = SweepRunner(technology, backend=ProcessPoolBackend(max_workers=2),
                          cache=cache)
    start = time.perf_counter()
    sharded_result = sharded.run(campaign)
    sharded_warm_seconds = time.perf_counter() - start

    # Disk-backed cache: populate a persistent store, then warm-start a
    # *fresh* cache instance from it (models a new process / CI run).
    with tempfile.TemporaryDirectory() as cache_dir:
        disk_writer = SweepRunner(technology, backend=SerialBackend(),
                                  cache=DiskExtractionCache(cache_dir))
        start = time.perf_counter()
        disk_writer.run(campaign)
        disk_cold_seconds = time.perf_counter() - start

        disk_reader = SweepRunner(technology, backend=SerialBackend(),
                                  cache=DiskExtractionCache(cache_dir))
        start = time.perf_counter()
        disk_warm = disk_reader.run(campaign)
        disk_warm_seconds = time.perf_counter() - start

    max_difference = float(np.max(np.abs(
        cold.column("spur_power_dbm") - sharded_result.column("spur_power_dbm"))))
    return {
        "points": len(cold),
        "layout_variants": len(cold.variants),
        "serial_cold_seconds": serial_cold_seconds,
        "serial_warm_seconds": serial_warm_seconds,
        "sharded_2workers_cold_seconds": sharded_cold_seconds,
        "sharded_2workers_warm_seconds": sharded_warm_seconds,
        "disk_cold_seconds": disk_cold_seconds,
        "disk_warm_fresh_process_seconds": disk_warm_seconds,
        "cold_extractions": cold.cache_misses,
        "warm_extractions": warm.cache_misses,
        "disk_warm_extractions": disk_warm.cache_misses,
        "sharded_cold_extractions": sharded_cold.cache_misses,
        "sharded_warm_extractions": sharded_result.cache_misses,
        "cache_totals": {"hits": cache.hits, "misses": cache.misses},
        "serial_vs_sharded_max_abs_dbm": max_difference,
    }


def _bench_parallel() -> dict:
    """Corner x frequency saturation ladder on the unified work scheduler.

    Two axes of the one shared process pool:

    * **corners** — the Figure-8-style campaign of ``--section sweep``
      (60 points over 2 layout variants), run against a warm extraction
      cache serially and through the graph scheduler at 1/2/4 workers,
    * **frequency points** — one 64-point AC sweep of an RC-grid circuit,
      sharded at 1/2/4 ``ac_workers`` through both fan-out executors
      (``ac_mode = "thread"`` vs ``"process"``), with bit-identity against
      the serial sweep asserted and recorded.

    The section records the measuring container's ``cpu_count`` because the
    ladder's meaning depends on it: on a 1-CPU container (the committed
    baseline, CI) every rung measures scheduling *overhead* over serial,
    while on a multi-core host the same rungs measure saturation speedup.
    """
    import os

    from repro.core.flow import FlowOptions
    from repro.netlist.circuit import Circuit
    from repro.simulator.ac import ac_analysis
    from repro.simulator.linalg import SolverOptions
    from repro.studies import (
        Campaign,
        ExtractionCache,
        ParamSpace,
        ProcessPoolBackend,
        SerialBackend,
        SweepRunner,
    )
    from repro.substrate.extraction import SubstrateExtractionOptions

    technology = make_technology()
    campaign = Campaign(
        name="bench_parallel_ladder",
        space=ParamSpace({
            "ground_width_scale": (1.0, 2.0),
            "vtune": (0.0, 0.75, 1.5),
            "noise_frequency": NOISE_FREQUENCIES,
        }),
        options=VcoExperimentOptions(
            flow=FlowOptions(substrate=SubstrateExtractionOptions(
                nx=40, ny=40, lateral_margin=60e-6))))

    cache = ExtractionCache()
    serial_runner = SweepRunner(technology, backend=SerialBackend(),
                                cache=cache)
    serial_runner.run(campaign)                  # warm the cache
    start = time.perf_counter()
    serial = serial_runner.run(campaign)
    serial_seconds = time.perf_counter() - start

    corners: dict = {"points": len(serial),
                     "layout_variants": len(serial.variants),
                     "serial_warm_seconds": serial_seconds}
    max_abs_dbm = 0.0
    for n_workers in (1, 2, 4):
        runner = SweepRunner(
            technology, backend=ProcessPoolBackend(max_workers=n_workers),
            cache=cache)
        start = time.perf_counter()
        result = runner.run(campaign)
        corners[f"graph_{n_workers}workers_warm_seconds"] = (
            time.perf_counter() - start)
        max_abs_dbm = max(max_abs_dbm, float(np.max(np.abs(
            result.column("spur_power_dbm")
            - serial.column("spur_power_dbm")))))
    corners["graph_vs_serial_max_abs_dbm"] = max_abs_dbm

    # RC-grid circuit: big enough that a frequency point does real solver
    # work, small enough that the 6-rung ladder stays in benchmark budget.
    n = 14
    circuit = Circuit("rc_grid")
    circuit.add_voltage_source("V1", "n0_0", "0", 1.0)
    for i in range(n):
        for j in range(n):
            node = f"n{i}_{j}"
            if j + 1 < n:
                circuit.add_resistor(f"Rh{i}_{j}", node, f"n{i}_{j + 1}", 1e3)
            if i + 1 < n:
                circuit.add_resistor(f"Rv{i}_{j}", node, f"n{i + 1}_{j}", 1e3)
            circuit.add_capacitor(f"C{i}_{j}", node, "0", 1e-12)
    frequencies = np.logspace(3, 9, 64)
    reference = ac_analysis(circuit, frequencies)

    fanout: dict = {"points": len(frequencies),
                    "circuit_nodes": len(circuit.nodes())}
    max_abs = 0.0
    for mode in ("thread", "process"):
        for n_workers in (1, 2, 4):
            options = SolverOptions(ac_workers=n_workers, ac_mode=mode)
            start = time.perf_counter()
            swept = ac_analysis(circuit, frequencies, solver=options)
            fanout[f"{mode}_{n_workers}workers_seconds"] = (
                time.perf_counter() - start)
            max_abs = max(max_abs, float(np.max(np.abs(
                swept.vectors - reference.vectors))))
    fanout["fanout_vs_serial_max_abs"] = max_abs

    return {
        "cpu_count": os.cpu_count(),
        "note": ("ladder semantics depend on cpu_count: on the 1-CPU "
                 "baseline/CI container every rung measures scheduler "
                 "overhead vs serial; multi-core hosts measure saturation"),
        "corners": corners,
        "frequency_fanout": fanout,
    }


def _bench_solver() -> dict:
    """Backend comparison on the substrate-mesh Laplacian versus mesh size.

    For each lateral mesh resolution the benchmark builds the regularised
    mesh system of a Kron reduction (Laplacian + distributed port contacts)
    and times

    * ``direct_cold``   — one COLAMD LU factorization + an 8-column solve,
    * ``direct_repeat`` — a second factorization of the same pattern with
      perturbed values (what direct LU pays per Newton iteration / V_tune
      point / frequency point),
    * ``reuse_repeat``  — the same repeat through
      :class:`~repro.simulator.linalg.ReusePatternLUSolver` (symbolic
      ordering reused, numeric work only; results are bit-identical),
    * ``iterative``     — preconditioned-CG setup + solve through
      :class:`~repro.simulator.linalg.IterativeSolver`, with the achieved
      error against the direct solution,
    * ``multigrid``     — geometric-multigrid V-cycles through
      :class:`~repro.simulator.linalg.MultigridSolver` (semicoarsened
      hierarchy from the mesh's :class:`GridGeometry`), setup and solve
      timed separately.

    The ladder documents the iterative-vs-direct crossover: CG already wins
    ~1.8x at 56 x 56 and the factor grows with mesh size (~4x at 160 x 160);
    multigrid stays O(n) and takes the 160 x 160 extraction rung from ~5 s
    (CG/ILU) to ~1 s.
    """
    import scipy.sparse as sp_mod

    from repro.layout.geometry import Rect
    from repro.simulator.linalg import (
        DirectLUSolver,
        IterativeSolver,
        MultigridSolver,
        ReusePatternLUSolver,
    )
    from repro.substrate import MeshSpec, SubstrateMesh

    technology = make_technology()
    n_rhs = 8
    record: dict = {"rhs_columns": n_rhs, "mesh": {}}
    for nx in (56, 96, 160):
        side = nx * 7.2e-6                   # keep the box size constant
        spec = MeshSpec(region=Rect(0, 0, side, side), nx=nx, ny=nx,
                        max_depth=200e-6, n_z_per_layer=3)
        mesh = SubstrateMesh(spec=spec, profile=technology.substrate)
        conductance = mesh.conductance_matrix()
        n = conductance.shape[0]
        diagonal = np.zeros(n)
        diagonal[:nx * nx] += 1e3 / (nx * nx)
        matrix = sp_mod.csc_matrix(conductance
                                   + sp_mod.diags(diagonal + 1e-12))
        rhs = np.zeros((n, n_rhs))
        for k in range(n_rhs):
            rhs[k * nx:(k + 1) * nx, k] = -1.0
        perturbed = matrix.copy()
        perturbed.data = matrix.data * 1.0001

        def best_of(fn, repeats: int) -> float:
            """Best-of-N wall clock: the 5% symbolic-reuse margin would
            drown in single-shot scheduler noise."""
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        repeats = 3 if nx < 128 else 2
        direct = DirectLUSolver()
        start = time.perf_counter()
        reference = direct.factorize(matrix).solve(rhs)
        direct_cold = time.perf_counter() - start

        reuse = ReusePatternLUSolver()
        reuse.factorize(matrix)              # prime the symbolic cache
        direct_repeat = best_of(
            lambda: direct.factorize(perturbed).solve(rhs), repeats)
        reuse_repeat = best_of(
            lambda: reuse.factorize(perturbed).solve(rhs), repeats)

        iterative = IterativeSolver()
        start = time.perf_counter()
        solution = iterative.factorize(matrix).solve(rhs)
        iterative_seconds = time.perf_counter() - start

        multigrid = MultigridSolver()
        start = time.perf_counter()
        mg_factorization = multigrid.factorize(matrix,
                                               grid=mesh.grid_geometry())
        mg_setup_seconds = time.perf_counter() - start
        start = time.perf_counter()
        mg_solution = mg_factorization.solve(rhs)
        mg_solve_seconds = time.perf_counter() - start
        multigrid_seconds = mg_setup_seconds + mg_solve_seconds

        record["mesh"][f"nx{nx}"] = {
            "nodes": n,
            "direct_cold_seconds": direct_cold,
            "direct_repeat_seconds": direct_repeat,
            "reuse_repeat_seconds": reuse_repeat,
            "reuse_vs_direct_repeat_speedup": direct_repeat / reuse_repeat,
            "iterative_seconds": iterative_seconds,
            "iterative_vs_direct_cold_speedup": direct_cold / iterative_seconds,
            "cg_iterations": iterative.stats.cg_iterations,
            "iterative_fallbacks": iterative.stats.fallbacks,
            "iterative_max_abs_error": float(
                np.max(np.abs(solution - reference))),
            "multigrid_setup_seconds": mg_setup_seconds,
            "multigrid_solve_seconds": mg_solve_seconds,
            "multigrid_seconds": multigrid_seconds,
            "multigrid_vs_direct_cold_speedup": direct_cold / multigrid_seconds,
            "multigrid_vs_iterative_speedup":
                iterative_seconds / multigrid_seconds,
            "mg_cycles": multigrid.stats.mg_cycles,
            "mg_fallbacks": multigrid.stats.fallbacks,
            "multigrid_max_abs_error": float(
                np.max(np.abs(mg_solution - reference))),
        }
    return record


#: Snapshot sections and the functions that produce them.
SECTIONS = {
    "flow": _bench_flow,
    "parallel": _bench_parallel,
    "solver": _bench_solver,
    "solver_micro": _bench_solver_micro,
    "sweep": _bench_sweep,
}


def _next_snapshot_path() -> Path:
    """First unused ``BENCH_<n>.json`` so PRs never clobber the trajectory."""
    index = 1
    while (REPO_ROOT / f"BENCH_{index}.json").exists():
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the snapshot JSON "
                             "(default: the next unused BENCH_<n>.json)")
    parser.add_argument("--section", choices=sorted(SECTIONS), action="append",
                        default=None,
                        help="record only the named section(s); "
                             "repeatable (default: all sections)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = _next_snapshot_path()
    sections = args.section or sorted(SECTIONS)

    import os

    snapshot = {
        "benchmark": "repro_perf_snapshot",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    for name in sections:
        snapshot[name] = SECTIONS[name]()

    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(json.dumps(snapshot, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
