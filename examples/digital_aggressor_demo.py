"""End-to-end demo with a digital aggressor instead of a single tone.

The paper injects a calibrated sinusoid; a real mixed-signal chip is disturbed
by the switching noise of its digital blocks.  This example drives the NMOS
measurement structure with the synthetic digital switching-noise waveform,
propagates it through the extracted impact netlist with the transient engine
and shows the resulting waveform on the victim's output together with its
spectrum — i.e. the full "waveforms resulting from impact on all circuit
nodes" promise of the methodology.

Run with::

    python examples/digital_aggressor_demo.py
"""

from __future__ import annotations

import copy

import numpy as np

from repro.analysis.spectrum import compute_spectrum
from repro.analysis.waveforms import DigitalSwitchingNoise
from repro.core.flow import FlowOptions, run_extraction_flow
from repro.layout.testchips import (
    NET_GATE,
    NET_GROUND_PAD,
    NET_GROUND_RING,
    NET_OUT,
    NET_SUB,
    backgate_node,
    make_nmos_measurement_structure,
)
from repro.package.model import PackageModel
from repro.simulator import transient_analysis
from repro.substrate import SubstrateExtractionOptions
from repro.technology import make_technology


def main() -> None:
    technology = make_technology()
    cell = make_nmos_measurement_structure()
    flow = run_extraction_flow(
        cell, technology,
        options=FlowOptions(substrate=SubstrateExtractionOptions(nx=24, ny=24)))
    print("extraction summary:", flow.summary())

    # --- testbench: biased NMOS + digital aggressor in the substrate -----------
    circuit = copy.deepcopy(flow.impact.circuit)
    package = PackageModel.rf_probed({
        NET_GROUND_PAD: "0",
        NET_SUB: "SUB_EXT",
        NET_GATE: "VGATE_EXT",
        NET_OUT: "OUT_EXT",
    })
    package.add_to_circuit(circuit)
    circuit.add_voltage_source("VGATE_SRC", "VGATE_EXT", "0", 0.9)
    circuit.add_inductor("L_biastee", "OUT_EXT", "VDRAIN_EXT", 1e-3)
    circuit.add_voltage_source("VDRAIN_SRC", "VDRAIN_EXT", "0", 0.9)

    aggressor = DigitalSwitchingNoise(clock_frequency=50e6,
                                      pulse_amplitude=50e-3,
                                      ring_frequency=400e6)
    circuit.add_voltage_source("VSUB_SRC", "SUB_DRIVE", "0",
                               aggressor.source_value())
    circuit.add_resistor("RSUB_SRC", "SUB_DRIVE", "SUB_EXT", 50.0)

    # --- transient impact simulation --------------------------------------------
    t_stop = 100e-9
    timestep = 0.1e-9
    result = transient_analysis(circuit, t_stop=t_stop, timestep=timestep)

    v_out = result.voltage(NET_OUT)
    v_ring = result.voltage(NET_GROUND_RING)
    v_backgate = result.voltage(backgate_node("MN0"))
    print(f"\nsimulated {len(result.times)} time points over {t_stop * 1e9:.0f} ns")
    print(f"analog ground bounce (pk-pk) : {(v_ring.max() - v_ring.min()) * 1e3:.2f} mV")
    print(f"back-gate bounce (pk-pk)     : "
          f"{(v_backgate.max() - v_backgate.min()) * 1e3:.2f} mV")
    print(f"output disturbance (pk-pk)   : {(v_out.max() - v_out.min()) * 1e3:.2f} mV")

    spectrum = compute_spectrum(result.times, v_out - np.mean(v_out))
    clock_power = spectrum.power_at(aggressor.clock_frequency)
    harmonic_power = spectrum.power_at(2 * aggressor.clock_frequency)
    print(f"output spur at the 50 MHz clock       : {clock_power:.1f} dBm")
    print(f"output spur at the 100 MHz harmonic   : {harmonic_power:.1f} dBm")


if __name__ == "__main__":
    main()
