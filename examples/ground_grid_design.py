"""Design exploration: how much does the on-chip ground grid buy you?

Reproduces Figure 10 (ground interconnect widened by 2x -> ~4.5 dB less
impact) and extends it into a design sweep over the ground-wire width,
the design advice the paper closes with: "a designer could improve the noise
immunity of his circuit by lowering the resistance in the on-chip ground
interconnect".

Both studies run on the :mod:`repro.studies` sweep engine: the Figure-10
study is a two-variant layout campaign, and the width sweep a four-variant
campaign whose extractions are shared through one content-addressed cache.
The cache persists under ``.repro-cache/``, so a second run of this script
(and any ``repro-campaign`` run over the same layouts) extracts nothing.

Run with::

    python examples/ground_grid_design.py
"""

from __future__ import annotations

import numpy as np

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions, ground_resistance_study
from repro.layout.testchips import NET_GROUND_PAD, NET_GROUND_RING
from repro.studies import Campaign, DiskExtractionCache, ParamSpace, SweepRunner
from repro.substrate import SubstrateExtractionOptions
from repro.technology import make_technology


def main() -> None:
    technology = make_technology()
    frequencies = tuple(float(f) for f in np.logspace(5, np.log10(15e6), 6))
    options = VcoExperimentOptions(vtune_values=(0.0,),
                                   noise_frequencies=frequencies)
    cache = DiskExtractionCache(".repro-cache")

    # --- Figure 10: nominal layout versus doubled ground-wire width ------------
    study = ground_resistance_study(technology, options=options,
                                    width_scale=2.0, vtune=0.0, cache=cache)
    print("Figure 10 — ground interconnect resistance halved")
    print(f"  nominal ground resistance : {study.nominal_ground_resistance:.1f} ohm")
    print(f"  improved ground resistance: {study.improved_ground_resistance:.1f} ohm")
    print("  f_noise [MHz]   nominal [dBm]   widened [dBm]   reduction [dB]")
    for row in study.rows():
        print(f"  {row['noise_frequency_hz'] / 1e6:12.3f}   "
              f"{row['nominal_dbm']:12.1f}   {row['improved_dbm']:12.1f}   "
              f"{row['reduction_db']:12.2f}")
    print(f"  mean reduction: {study.predicted_reduction_db:.2f} dB "
          f"(paper predicts ~4.5 dB, ideal 6 dB)")

    # --- extension: sweep the ground-wire width as a campaign -------------------
    print("\nDesign sweep — ground-wire width versus impact at 1 MHz")
    sweep_options = VcoExperimentOptions(
        vtune_values=(0.0,), noise_frequencies=(1e6,),
        flow=FlowOptions(substrate=SubstrateExtractionOptions(
            nx=40, ny=40, lateral_margin=60e-6)))
    campaign = Campaign(
        name="ground_width_sweep",
        space=ParamSpace({"ground_width_scale": (0.5, 1.0, 2.0, 4.0),
                          "vtune": (0.0,), "noise_frequency": (1e6,)}),
        options=sweep_options)
    sweep = SweepRunner(technology, cache=cache).run(campaign)
    worst_per_scale = sweep.worst_per("ground_width_scale")
    print("  width scale   R_gnd [ohm]   spur at 1 MHz [dBm]")
    for variant in sweep.variants:
        scale = variant.knobs["ground_width_scale"]
        resistance = variant.flow.interconnect.resistance_between(
            NET_GROUND_RING, NET_GROUND_PAD)
        record = worst_per_scale[scale]
        print(f"  {scale:11.1f}   {resistance:11.1f}   "
              f"{record.spur_power_dbm:19.1f}")
    print(f"  ({sweep.cache_misses} extractions for "
          f"{len(sweep.variants)} variants; cache totals: {cache.stats})")


if __name__ == "__main__":
    main()
