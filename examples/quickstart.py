"""Quickstart: run the full impact-simulation flow on the NMOS test structure.

The script mirrors Section 3 of the paper at a glance:

1. build the synthetic 0.18 um technology and the NMOS measurement-structure
   layout,
2. run the extraction flow (substrate + interconnect + circuit + merge),
3. bias the device, inject a -5 dBm tone into the substrate and report the
   transfer to the NMOS output,
4. compare against the reconstructed Figure-3 reference.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.flow import run_extraction_flow
from repro.core.nmos import NmosExperimentOptions, run_nmos_experiment
from repro.layout.testchips import make_nmos_measurement_structure
from repro.technology import make_technology


def main() -> None:
    technology = make_technology()
    cell = make_nmos_measurement_structure()

    print(f"technology : {technology.name}")
    print(f"layout cell: {cell.name} "
          f"({len(cell.devices)} devices, {len(cell.pins)} pins)")

    # --- the extraction flow of the paper's Figure 2 -------------------------
    # (use the experiment's calibrated mesh configuration for the extraction)
    options = NmosExperimentOptions(bias_points=(0.5, 0.8, 1.1, 1.4, 1.6))
    flow = run_extraction_flow(cell, technology, options=options.flow)
    for key, value in flow.summary().items():
        print(f"  {key:28s}: {value}")
    print(f"  ground wire resistance      : "
          f"{flow.interconnect.resistance_between('VGND_RING', 'VGND_PAD'):.1f} ohm")

    # --- Section-3 experiment: transfer from the substrate to the output -----
    result = run_nmos_experiment(technology, options=options, flow_result=flow)

    print("\nbias [V]   simulated [dB]   paper reference [dB]")
    for row in result.rows():
        print(f"  {row['bias_v']:5.2f}     {row['simulated_db']:8.1f}"
              f"          {row['reference_db']:8.1f}")
    print(f"\nmax |simulation - reference| = "
          f"{result.comparison.max_abs_error_db:.1f} dB (paper claims 1 dB)")
    print(f"substrate division to the back-gate = "
          f"1/{1 / result.substrate_division:.0f} (paper: 1/652)")
    print(f"junction-cap crossover frequencies: "
          f"{result.crossover_frequencies.min() / 1e9:.1f}"
          f"-{result.crossover_frequencies.max() / 1e9:.1f} GHz "
          "(paper: 5-19 GHz)")


if __name__ == "__main__":
    main()
