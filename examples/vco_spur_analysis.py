"""VCO substrate-noise spur analysis (Figures 7, 8 and 9 of the paper).

Extracts the LC-tank VCO test chip, injects a -5 dBm substrate tone and
reports:

* the output spectrum with the spur pair at f_c +/- f_noise (Figure 7),
* the total spur power versus noise frequency for several tuning voltages
  together with the fitted slope (Figure 8),
* the per-entry decomposition showing that the resistive on-chip ground
  interconnect dominates (Figure 9).

The Figure-8 sweep runs on the :mod:`repro.studies` engine, sharded across
two worker processes; the extraction is reused from the analysis object
through a seeded content-addressed cache persisted under ``.repro-cache/``,
so the sweep itself performs zero extractions and later processes sweeping
the same layout warm-start from disk.

Run with::

    python examples/vco_spur_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core.vco_experiment import (
    VcoExperimentOptions,
    VcoImpactAnalysis,
    mechanism_report,
)
from repro.layout.testchips import make_vco_testchip
from repro.studies import DiskExtractionCache, ProcessPoolBackend
from repro.technology import make_technology


def main() -> None:
    technology = make_technology()
    options = VcoExperimentOptions(
        vtune_values=(0.0, 0.75, 1.5),
        noise_frequencies=tuple(float(f) for f in np.logspace(5, np.log10(15e6), 8)))
    # Resolve the (expensive, 56x56-mesh) extraction through the persistent
    # cache: the first run extracts, every later run loads it from disk.
    cache = DiskExtractionCache(".repro-cache")
    flow = cache.get_or_extract(make_vco_testchip(), technology, options.flow)
    analysis = VcoImpactAnalysis(technology, options=options, flow_result=flow)
    print("extraction summary:", analysis.flow.summary())
    print(f"(cache {'hit — warm start' if cache.stats.hits else 'miss — cold'}; "
          f"entries persisted in .repro-cache/)")

    # --- Figure 7: output spectrum with a 10 MHz tone -------------------------
    spectrum, spur = analysis.output_spectrum(vtune=0.0, noise_frequency=10e6)
    carrier_frequency, carrier_power = spectrum.carrier()
    lower, upper = spectrum.spur_powers(carrier_frequency, 10e6)
    print(f"\nFigure 7 — carrier {carrier_frequency / 1e9:.2f} GHz at "
          f"{carrier_power:.1f} dBm; spurs at fc-/+10 MHz: "
          f"{lower:.1f} / {upper:.1f} dBm")

    # --- Figure 8: spur power versus noise frequency (sharded sweep) -----------
    misses_before = cache.misses
    sweep = analysis.spur_sweep(backend=ProcessPoolBackend(max_workers=2),
                                cache=cache)
    print(f"\nFigure 8 — total spur power at fc +/- fnoise [dBm] "
          f"(2-worker sweep, {cache.misses - misses_before} extractions)")
    header = "f_noise [MHz]" + "".join(
        f"   Vtune={v:.2f}V" for v in sweep.vtune_values)
    print(header)
    for index, frequency in enumerate(sweep.noise_frequencies):
        row = f"{frequency / 1e6:12.3f}"
        for vtune in sweep.vtune_values:
            row += f"   {sweep.spur_power_dbm[vtune][index]:10.1f}"
        print(row)
    for vtune in sweep.vtune_values:
        print(f"  Vtune={vtune:.2f} V: slope "
              f"{sweep.slope_db_per_decade(vtune):6.1f} dB/decade "
              "(paper: -20 dB/decade => resistive coupling + FM)")

    # --- Figure 9: per-entry contributions -------------------------------------
    contributions = analysis.contributions(vtune=0.0)
    report = mechanism_report(contributions)
    print("\nFigure 9 — per-entry contributions (V_tune = 0 V)")
    for name, levels in contributions.contributions_dbm.items():
        print(f"  {name:26s} mean {np.mean(levels):8.1f} dBm   "
              f"slope {contributions.slopes[name]:6.1f} dB/dec   "
              f"{contributions.mechanisms[name]}")
    print(f"dominant entry    : {report.dominant_entry}")
    print(f"dominant mechanism: {report.dominant_mechanism}")
    print(f"ground vs NMOS back-gate gap: "
          f"{contributions.gap_db('ground interconnect', 'NMOS back-gate'):.1f} dB "
          "(paper: ~20 dB)")


if __name__ == "__main__":
    main()
