"""Quickstart for the design-study sweep engine (``repro.studies``).

Declares a spur campaign over noise frequency, tuning voltage and ground-grid
width, then runs it three ways to show the engine's two scaling levers:

1. serial with a cold extraction cache (every layout variant extracts once),
2. serial again with the warm cache (zero extractions — the cache is
   content-addressed, so re-declared campaigns hit the same entries),
3. sharded across worker processes, which must produce numerically identical
   results to the serial run.

The cache is a :class:`~repro.studies.store.DiskExtractionCache` persisted
under ``.repro-cache/`` and the final result is saved to
``spur_campaign_result.npz`` — re-running this script (or any other process
sweeping the same layouts, e.g. ``repro-campaign run``) therefore starts with
zero extractions, and the saved result can be reloaded with
``SweepResult.load`` or inspected with ``repro-campaign show``.

Run with::

    python examples/spur_campaign.py
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions
from repro.studies import (
    Campaign,
    DiskExtractionCache,
    ParamSpace,
    ProcessPoolBackend,
    SerialBackend,
    SweepRunner,
)
from repro.substrate import SubstrateExtractionOptions
from repro.technology import make_technology

CACHE_DIR = Path(".repro-cache")
RESULT_PATH = Path("spur_campaign_result.npz")


def main() -> None:
    technology = make_technology()
    options = VcoExperimentOptions(
        flow=FlowOptions(substrate=SubstrateExtractionOptions(
            nx=40, ny=40, lateral_margin=60e-6)))

    # --- declare the study ----------------------------------------------------
    campaign = Campaign(
        name="grid_width_study",
        space=ParamSpace({
            "ground_width_scale": (1.0, 2.0),
            "vtune": (0.0, 0.75, 1.5),
            "noise_frequency": tuple(
                float(f) for f in np.logspace(5, np.log10(15e6), 6)),
        }),
        options=options)
    print(f"campaign {campaign.name!r}: {campaign.n_points} grid points, "
          f"{len(campaign.variants())} layout variants")

    # --- 1. serial, disk-backed cache (cold only on the very first run) --------
    cache = DiskExtractionCache(CACHE_DIR)
    runner = SweepRunner(technology, backend=SerialBackend(), cache=cache)
    start = time.perf_counter()
    cold = runner.run(campaign)
    print(f"\nserial      : {time.perf_counter() - start:6.2f} s  "
          f"(extractions={cold.cache_misses}, hits={cold.cache_hits}; "
          f"persistent cache in {CACHE_DIR}/)")

    # --- 2. serial, warm cache ------------------------------------------------
    start = time.perf_counter()
    warm = runner.run(campaign)
    print(f"serial warm : {time.perf_counter() - start:6.2f} s  "
          f"(extractions={warm.cache_misses}, hits={warm.cache_hits})")

    # --- 3. sharded across processes -------------------------------------------
    sharded_runner = SweepRunner(technology,
                                 backend=ProcessPoolBackend(max_workers=2),
                                 cache=cache)
    start = time.perf_counter()
    sharded = sharded_runner.run(campaign)
    print(f"sharded x2  : {time.perf_counter() - start:6.2f} s  "
          f"(extractions={sharded.cache_misses}, hits={sharded.cache_hits})")
    difference = np.max(np.abs(cold.column("spur_power_dbm")
                               - sharded.column("spur_power_dbm")))
    print(f"max |serial - sharded| spur difference: {difference:.2e} dB")

    # --- summary queries --------------------------------------------------------
    print("\nworst spur per ground-grid width:")
    for scale, record in sorted(cold.worst_per("ground_width_scale").items()):
        print(f"  width x{scale:<4.1f}: {record.spur_power_dbm:6.1f} dBm "
              f"(V_tune={record.vtune:.2f} V, "
              f"f_noise={record.noise_frequency / 1e6:.2f} MHz)")
    frequencies, spur = cold.spur_vs_frequency(ground_width_scale=1.0,
                                               vtune=0.0)
    print("\nspur vs noise frequency (nominal grid, V_tune=0 V):")
    for f, p in zip(frequencies, spur):
        print(f"  {f / 1e6:8.3f} MHz   {p:7.1f} dBm")
    print("\ncache totals:", cache.stats)

    # --- persist the result ------------------------------------------------------
    npz_path, meta_path = cold.save(RESULT_PATH)
    print(f"result saved to {npz_path} (+ {meta_path.name}); inspect it with "
          f"'repro-campaign show {npz_path}'")


if __name__ == "__main__":
    main()
