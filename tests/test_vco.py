"""LC-tank VCO model, sensitivities and spur equations."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import AccumulationModeVaractor, SpiralInductor
from repro.errors import AnalysisError
from repro.vco import (
    LcTankVco,
    NoiseEntry,
    VcoDesign,
    compute_spurs,
    junction_capacitance_sensitivity,
    synthesize_output_waveform,
)
from repro.analysis.spectrum import compute_spectrum


@pytest.fixture(scope="module")
def vco():
    design = VcoDesign(
        tank_inductance=2e-9,
        inductor=SpiralInductor(inductance=2e-9, series_resistance=4.0),
        varactor=AccumulationModeVaractor(cmin=0.6e-12, cmax=1.8e-12,
                                          v_half=0.6, slope=2.0),
        fixed_capacitance_per_side=1.2e-12,
        tail_current=5e-3,
        supply_voltage=1.8,
        tank_common_mode=1.1,
        tail_transconductance=20e-3,
        ground_referenced_capacitance=0.3e-12,
        ground_referenced_cap_sensitivity=0.06e-12)
    return LcTankVco(design)


# -- tank and tuning ----------------------------------------------------------------------


def test_design_validation():
    with pytest.raises(AnalysisError):
        VcoDesign(tank_inductance=-1e-9,
                  inductor=SpiralInductor(inductance=1e-9, series_resistance=1.0),
                  varactor=AccumulationModeVaractor(cmin=1e-12, cmax=2e-12),
                  fixed_capacitance_per_side=1e-12)


def test_oscillation_frequency_near_3ghz(vco):
    """The paper's VCO oscillates around 3 GHz."""
    f_low, f_high = vco.tuning_range(0.0, 1.5)
    assert 2.2e9 < f_low < 3.6e9
    assert 3.0e9 < f_high < 4.8e9
    assert f_high > f_low


def test_frequency_increases_with_vtune(vco):
    """Raising V_tune lowers the varactor capacitance and raises f_osc."""
    frequencies = [vco.oscillation_frequency(v) for v in (0.0, 0.5, 1.0, 1.5)]
    assert all(b >= a for a, b in zip(frequencies, frequencies[1:]))


def test_tuning_gain_positive_and_peaks_mid_range(vco):
    k_mid = vco.tuning_gain(0.5)
    k_edge = vco.tuning_gain(1.5)
    assert k_mid > 0
    assert k_mid > k_edge


def test_amplitude_reasonable(vco):
    amplitude = vco.amplitude(0.0)
    assert 0.2 < amplitude < 1.8
    # Current-limited: doubling the tail current doubles the amplitude until
    # the supply limit kicks in.
    assert vco.amplitude_sensitivity_to_tail(0.0) >= 0.0


def test_frequency_sensitivity_to_capacitance_sign(vco):
    assert vco.frequency_sensitivity_to_capacitance(0.0) < 0
    # More capacitance -> lower frequency, so K_gnd of a positive dC/dV is negative.
    assert vco.ground_frequency_sensitivity(0.75) < 0


def test_ground_sensitivity_exceeds_backgate_sensitivity(vco):
    """The ground entry modulates the varactor and the device caps; a single
    back-gate only modulates its junction capacitance — the physical origin of
    the paper's ~20 dB Figure-9 gap."""
    k_ground = abs(vco.ground_frequency_sensitivity(0.0))
    k_backgate = abs(vco.backgate_frequency_sensitivity(0.0, 25e-15))
    assert k_ground > 3.0 * k_backgate


def test_ground_am_gain_weaker_than_fm(vco):
    """AM is a weak effect compared to FM over the analysed frequency range,
    as the paper observes: K/f_noise >> G_AM even at 15 MHz."""
    g_am = abs(vco.ground_am_gain(0.0))
    k_over_f = abs(vco.ground_frequency_sensitivity(0.0)) / 15e6
    assert g_am < k_over_f


@given(vtune=st.floats(min_value=0.0, max_value=1.5))
@settings(max_examples=30, deadline=None)
def test_frequency_finite_over_tuning_range(vco, vtune):
    f = vco.oscillation_frequency(vtune)
    assert 1e9 < f < 10e9
    assert vco.tank_capacitance_per_side(vtune) > 0


def test_junction_capacitance_sensitivity_positive(technology):
    from repro.devices import MosfetGeometry, MosfetModel

    model = MosfetModel(technology.mos_parameters("nmos_rf"),
                        MosfetGeometry(width=60e-6, length=0.18e-6))
    sensitivity = junction_capacitance_sensitivity(model, 0.9, 0.9, 0.0)
    assert 1e-15 < sensitivity < 1e-12


# -- spur equations -------------------------------------------------------------------------


def _entries(h_ground=1e-3, k_ground=-200e6, g_am=0.01):
    return [
        NoiseEntry(name="ground", h_sub=complex(h_ground, 0.0),
                   k_hz_per_volt=k_ground, g_am_per_volt=g_am,
                   mechanism="resistive"),
        NoiseEntry(name="backgate", h_sub=complex(h_ground, 0.0),
                   k_hz_per_volt=k_ground / 20.0, g_am_per_volt=0.0,
                   mechanism="resistive"),
    ]


def test_compute_spurs_validation():
    with pytest.raises(AnalysisError):
        compute_spurs([], 3e9, 1.0, 0.1, 1e6)
    with pytest.raises(AnalysisError):
        compute_spurs(_entries(), 3e9, 1.0, 0.1, -1e6)
    with pytest.raises(AnalysisError):
        compute_spurs(_entries(), 3e9, -1.0, 0.1, 1e6)


def test_fm_spur_follows_equation_2():
    """|V_FM| = (Ac/2) * |sum h*K| * A_noise / f_noise, exactly."""
    entries = _entries(g_am=0.0)
    carrier_amplitude = 0.8
    noise_amplitude = 0.178
    f_noise = 1e6
    result = compute_spurs(entries, 3e9, carrier_amplitude, noise_amplitude, f_noise)
    expected = (carrier_amplitude / 2.0) * noise_amplitude * abs(
        sum(e.h_sub * e.k_hz_per_volt for e in entries)) / f_noise
    assert result.fm_voltage == pytest.approx(expected, rel=1e-12)
    assert result.am_voltage == 0.0
    assert result.upper_sideband_voltage == pytest.approx(result.lower_sideband_voltage)


def test_fm_spur_inversely_proportional_to_frequency():
    """Resistive coupling + FM: spur voltage ~ 1/f_noise (-20 dB/dec power)."""
    entries = _entries(g_am=0.0)
    low = compute_spurs(entries, 3e9, 1.0, 0.1, 1e6)
    high = compute_spurs(entries, 3e9, 1.0, 0.1, 10e6)
    assert low.fm_voltage / high.fm_voltage == pytest.approx(10.0, rel=1e-9)
    assert low.total_spur_power_dbm() - high.total_spur_power_dbm() == pytest.approx(
        20.0, abs=1e-6)


def test_am_spur_independent_of_frequency():
    entries = [NoiseEntry("g", complex(1e-3, 0), 0.0, g_am_per_volt=0.05)]
    low = compute_spurs(entries, 3e9, 1.0, 0.1, 1e6)
    high = compute_spurs(entries, 3e9, 1.0, 0.1, 10e6)
    assert low.am_voltage == pytest.approx(high.am_voltage)


def test_am_causes_sideband_asymmetry():
    """FM and AM sidebands add on one side and subtract on the other (the
    paper's 'small difference between left and right spur')."""
    result = compute_spurs(_entries(g_am=0.02), 3e9, 1.0, 0.178, 1e6)
    assert result.upper_sideband_voltage != pytest.approx(
        result.lower_sideband_voltage)
    asymmetry = abs(result.upper_sideband_voltage - result.lower_sideband_voltage)
    assert asymmetry < 0.2 * result.fm_voltage


def test_per_entry_bookkeeping():
    result = compute_spurs(_entries(), 3e9, 1.0, 0.1, 1e6)
    assert set(result.per_entry_fm_voltage) == {"ground", "backgate"}
    # The ground entry dominates by the K ratio (20x = 26 dB).
    gap = result.entry_power_dbm("ground") - result.entry_power_dbm("backgate")
    assert gap == pytest.approx(26.0, abs=0.2)
    assert result.total_spur_voltage > 0


@given(f_noise=st.floats(min_value=1e5, max_value=15e6),
       h=st.floats(min_value=1e-6, max_value=1e-2),
       k=st.floats(min_value=1e6, max_value=1e9))
@settings(max_examples=40, deadline=None)
def test_spur_power_scales_with_h_and_k(f_noise, h, k):
    entries = [NoiseEntry("g", complex(h, 0), k)]
    result = compute_spurs(entries, 3e9, 1.0, 0.1, f_noise)
    doubled = compute_spurs([NoiseEntry("g", complex(2 * h, 0), k)],
                            3e9, 1.0, 0.1, f_noise)
    assert doubled.total_spur_power_dbm() - result.total_spur_power_dbm() == \
        pytest.approx(6.02, abs=0.1)


# -- waveform synthesis (Figure 7) ------------------------------------------------------------


def test_synthesized_waveform_shows_spurs_at_fc_plus_minus_fnoise():
    entries = _entries(g_am=0.0)
    noise_frequency = 10e6
    result = compute_spurs(entries, 3e9, 0.8, 0.178, noise_frequency)
    sample_rate = 16 * 3e9
    times, waveform = synthesize_output_waveform(result, duration=1e-6,
                                                 sample_rate=sample_rate)
    spectrum = compute_spectrum(times, waveform)
    carrier_freq, carrier_power = spectrum.carrier()
    assert carrier_freq == pytest.approx(3e9, rel=1e-3)
    lower, upper = spectrum.spur_powers(carrier_freq, noise_frequency)
    predicted = result.sideband_power_dbm("upper")
    # The FFT view of the synthesised waveform matches equation (2).
    assert upper == pytest.approx(predicted, abs=1.5)
    assert lower == pytest.approx(predicted, abs=1.5)
    # Spurs sit well below the carrier.
    assert carrier_power - upper > 10.0


def test_synthesize_waveform_validation():
    result = compute_spurs(_entries(), 3e9, 1.0, 0.1, 1e6)
    with pytest.raises(AnalysisError):
        synthesize_output_waveform(result, duration=-1.0, sample_rate=1e9)
