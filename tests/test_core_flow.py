"""The extraction flow (paper Figure 2) on both test chips."""

import pytest

from repro.layout.testchips import NET_GROUND_PAD, NET_GROUND_RING


def test_flow_produces_all_artifacts(nmos_flow):
    assert nmos_flow.substrate.ports
    assert nmos_flow.interconnect.wires
    assert len(nmos_flow.devices.circuit) > 0
    assert len(nmos_flow.impact.circuit) > len(nmos_flow.devices.circuit)
    assert nmos_flow.timings.total_extraction > 0.0


def test_flow_summary_keys(nmos_flow):
    summary = nmos_flow.summary()
    for key in ("cell", "substrate_ports", "substrate_mesh_nodes",
                "extracted_wires", "devices", "impact_netlist_elements",
                "extraction_seconds"):
        assert key in summary
    assert summary["cell"] == "nmos_measurement_structure"
    assert summary["substrate_ports"] >= 6


def test_flow_timings_accumulate(nmos_flow):
    timings = nmos_flow.timings
    assert timings.total_extraction == pytest.approx(
        timings.substrate_extraction + timings.interconnect_extraction
        + timings.circuit_extraction + timings.merge)


def test_vco_flow_ground_wire_present(vco_flow):
    resistance = vco_flow.interconnect.resistance_between(NET_GROUND_RING,
                                                          NET_GROUND_PAD)
    # 800 um of 4 um wide metal-1 at 78 mohm/sq: ~15.6 ohm.
    assert resistance == pytest.approx(15.6, rel=0.05)


def test_vco_flow_impact_netlist_contains_all_models(vco_flow):
    names = set(vco_flow.impact.circuit.elements)
    assert any(n.startswith("sub:") for n in names)       # substrate macromodel
    assert any(n.startswith("ic:") for n in names)        # interconnect
    assert "MN_left" in names and "MP_right" in names     # devices
    assert any(n.startswith("Cind_") for n in names)      # inductor coupling
    assert any(n.startswith("Cwell_") for n in names)     # well coupling
