"""Netlist elements, circuit container and subcircuits."""


import pytest

from repro.devices.varactor import AccumulationModeVaractor
from repro.errors import NetlistError
from repro.netlist import (
    GROUND,
    Capacitor,
    Circuit,
    Inductor,
    MosfetElement,
    Resistor,
    SourceValue,
    Subcircuit,
    vectorized_waveform,
)
from repro.technology import make_technology


# -- elements -----------------------------------------------------------------------


def test_resistor_validation_and_conductance():
    r = Resistor(name="R1", node_p="a", node_n="0", resistance=50.0)
    assert r.conductance == pytest.approx(0.02)
    with pytest.raises(NetlistError):
        Resistor(name="R2", node_p="a", node_n="0", resistance=0.0)
    with pytest.raises(NetlistError):
        Resistor(name="R3", node_p="a", node_n="0", resistance=float("inf"))


def test_capacitor_and_inductor_validation():
    Capacitor(name="C1", node_p="a", node_n="0", capacitance=0.0)
    with pytest.raises(NetlistError):
        Capacitor(name="C2", node_p="a", node_n="0", capacitance=-1e-12)
    with pytest.raises(NetlistError):
        Inductor(name="L1", node_p="a", node_n="0", inductance=0.0)
    inductor = Inductor(name="L2", node_p="a", node_n="0", inductance=1e-9)
    assert inductor.branches() == ("L2",)


def test_source_value_sine_and_phasor():
    value = SourceValue.sine(amplitude=2.0, frequency=1e6, dc_offset=0.5)
    assert value.dc == pytest.approx(0.5)
    assert value.ac_magnitude == pytest.approx(2.0)
    assert value.value_at(0.0) == pytest.approx(0.5)
    assert value.value_at(0.25e-6) == pytest.approx(2.5)
    phasor = SourceValue(ac_magnitude=1.0, ac_phase_deg=90.0).ac_phasor
    assert phasor.real == pytest.approx(0.0, abs=1e-12)
    assert phasor.imag == pytest.approx(1.0)


def test_source_value_sample_grid():
    import numpy as np

    times = np.linspace(0.0, 1e-6, 11)
    # No waveform: the DC level everywhere.
    assert np.allclose(SourceValue(dc=2.5).sample(times), 2.5)
    # Marked vectorized waveform (sine): one array call, exact values.
    sine = SourceValue.sine(1.0, 1e6)
    assert np.allclose(sine.sample(times),
                       [sine.value_at(t) for t in times])
    # Unmarked stateful waveform: evaluated strictly once per time point.
    draws = iter(range(100))
    stateful = SourceValue(waveform=lambda t: float(next(draws)))
    assert np.array_equal(stateful.sample(times), np.arange(11.0))
    # A vectorized waveform returning the wrong shape is rejected.
    bad = SourceValue(waveform=vectorized_waveform(lambda t: 1.0))
    with pytest.raises(NetlistError):
        bad.sample(times)


def test_vectorized_waveform_does_not_mutate_grid():
    import numpy as np

    @vectorized_waveform
    def mutating(t):
        t *= 2.0
        return np.sin(t)

    times = np.linspace(0.0, 1.0, 5)
    SourceValue(waveform=mutating).sample(times)
    assert np.array_equal(times, np.linspace(0.0, 1.0, 5))


def test_source_value_without_waveform_holds_dc():
    value = SourceValue(dc=1.8)
    assert value.value_at(123.0) == pytest.approx(1.8)


def test_nonlinear_flags():
    tech = make_technology()
    circuit = Circuit("t")
    mosfet = circuit.add_mosfet("M1", "d", "g", "0", "0",
                                tech.mos_parameters("nmos_rf"),
                                width=10e-6, length=0.18e-6)
    assert mosfet.is_nonlinear
    assert not Resistor(name="R", node_p="a", node_n="0", resistance=1.0).is_nonlinear
    assert mosfet.nodes() == ("d", "g", "0", "0")


def test_mosfet_element_requires_model():
    with pytest.raises(NetlistError):
        MosfetElement(name="M1", drain="d", gate="g", source="s", bulk="b",
                      model=None)


# -- circuit container ------------------------------------------------------------------


def test_circuit_add_and_duplicate():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "0", 100.0)
    with pytest.raises(NetlistError):
        circuit.add_resistor("R1", "a", "0", 100.0)
    assert "R1" in circuit
    assert len(circuit) == 1
    assert circuit["R1"].resistance == pytest.approx(100.0)
    with pytest.raises(NetlistError):
        circuit["nope"]


def test_circuit_remove():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "0", 100.0)
    circuit.remove("R1")
    assert len(circuit) == 0
    with pytest.raises(NetlistError):
        circuit.remove("R1")


def test_circuit_nodes_and_branches():
    circuit = Circuit("t")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_inductor("L1", "out", "0", 1e-9)
    assert circuit.nodes() == ["in", "out"]
    assert set(circuit.branches()) == {"V1", "L1"}
    assert len(circuit.sources()) == 1


def test_circuit_validation():
    circuit = Circuit("t")
    with pytest.raises(NetlistError):
        circuit.validate()
    circuit.add_resistor("R1", "a", "b", 1.0)
    with pytest.raises(NetlistError):
        circuit.validate()       # no ground connection
    circuit.add_resistor("R2", "b", GROUND, 1.0)
    circuit.validate()


def test_floating_nodes_detection():
    circuit = Circuit("t")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_capacitor("C1", "mid", "float", 1e-12)
    floating = circuit.floating_nodes()
    assert "float" in floating
    assert "mid" not in floating


def test_circuit_merge_with_prefix():
    a = Circuit("a")
    a.add_resistor("R1", "x", "0", 1.0)
    b = Circuit("b")
    b.add_resistor("R1", "x", "y", 2.0)
    a.merge(b, prefix="sub")
    assert "sub:R1" in a
    assert len(a) == 2
    # Node names are shared (that is how models connect).
    assert set(a.nodes()) == {"x", "y"}


def test_circuit_summary_counts():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "0", 1.0)
    circuit.add_resistor("R2", "a", "0", 1.0)
    circuit.add_capacitor("C1", "a", "0", 1e-12)
    summary = circuit.summary()
    assert summary["Resistor"] == 2
    assert summary["Capacitor"] == 1


def test_elements_at_node():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "0", 1.0)
    circuit.add_resistor("R2", "b", "0", 1.0)
    assert {e.name for e in circuit.elements_at_node("a")} == {"R1"}


def test_connectivity_graph_connected():
    circuit = Circuit("t")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1.0)
    graph = circuit.connectivity_graph()
    assert graph.has_node("out")
    assert graph.has_edge("in", "out")


# -- subcircuits ------------------------------------------------------------------------------


def _divider_subckt() -> Subcircuit:
    template = Circuit("divider")
    template.add_resistor("Rtop", "in", "out", 1e3)
    template.add_resistor("Rbot", "out", GROUND, 1e3)
    return Subcircuit(name="divider", ports=("in", "out"), circuit=template)


def test_subcircuit_port_validation():
    template = Circuit("t")
    template.add_resistor("R1", "a", "0", 1.0)
    with pytest.raises(NetlistError):
        Subcircuit(name="bad", ports=("missing",), circuit=template)
    with pytest.raises(NetlistError):
        Subcircuit(name="bad", ports=("a", "a"), circuit=template)


def test_subcircuit_instantiation_flattens():
    parent = Circuit("top")
    parent.add_voltage_source("V1", "vin", "0", 1.0)
    sub = _divider_subckt()
    sub.instantiate(parent, "X1", {"in": "vin", "out": "vmid"})
    sub.instantiate(parent, "X2", {"in": "vmid", "out": "vout"})
    assert "X1.Rtop" in parent and "X2.Rbot" in parent
    assert "vmid" in parent.nodes() and "vout" in parent.nodes()

    from repro.simulator import dc_operating_point
    solution = dc_operating_point(parent)
    assert solution.voltage("vmid") == pytest.approx(0.4, rel=1e-6)
    assert solution.voltage("vout") == pytest.approx(0.2, rel=1e-6)


def test_subcircuit_connection_errors():
    parent = Circuit("top")
    sub = _divider_subckt()
    with pytest.raises(NetlistError):
        sub.instantiate(parent, "X1", {"in": "a"})                 # missing port
    with pytest.raises(NetlistError):
        sub.instantiate(parent, "X2", {"in": "a", "out": "b", "zz": "c"})


def test_subcircuit_varactor_remap():
    template = Circuit("var")
    model = AccumulationModeVaractor(cmin=1e-12, cmax=2e-12)
    template.add_varactor("CV", "p", "w", model)
    template.add_resistor("R", "p", GROUND, 1.0)
    sub = Subcircuit(name="var", ports=("p",), circuit=template)
    parent = Circuit("top")
    sub.instantiate(parent, "X1", {"p": "tank"})
    varactor = parent["X1.CV"]
    assert varactor.gate == "tank"
    assert varactor.well == "X1.w"
