"""Chaos suite: the shared campaign store under crashes and concurrency.

Exercises the concurrent-safety layer of :class:`DiskExtractionCache` the
way hostile reality would:

* crash points (``REPRO_CRASH_POINTS``) kill a campaign child with
  ``os._exit`` between two filesystem syscalls — at every ``write`` /
  ``fsync`` / ``rename`` of the ``claimer`` / ``publisher`` / ``journal``
  regions — and the cache must come back readable-or-quarantined with a
  byte-identical resume;
* four independent ``SweepRunner`` processes share one cache directory and
  must extract each variant exactly once (the fencing generation file is
  the global claim counter that proves it);
* the lease protocol fences zombies: a stolen lease's late publish is
  rejected, a dead holder's lease is taken over, two threads racing
  ``extract_with_claim`` run the extractor once;
* corrupt entries are quarantined (never served, never fatal) and
  ``verify`` / ``repro-campaign cache verify`` audit and repair offline;
* the tombstone steal/release discipline of sentinel files never deletes a
  live holder's lock, including from two genuinely concurrent processes.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions
from repro.errors import AnalysisError
from repro.studies import (
    CacheCorruptionWarning,
    Campaign,
    CheckpointPolicy,
    DiskExtractionCache,
    ParamSpace,
    SweepRunner,
    arm_crash_points,
    crashpoint,
    disarm_crash_points,
    fault_region,
)
from repro.studies.cli import main
from repro.studies.faults import (
    CRASH_EXIT_CODE,
    CRASH_OPS,
    CRASH_POINTS_ENV,
    CRASH_REGIONS,
    current_fault_region,
    parse_crash_points,
)
from repro.studies.store import (
    _release_sentinel,
    _steal_sentinel,
    atomic_write,
    build_envelope,
)
from repro.substrate.extraction import SubstrateExtractionOptions
from repro.technology import make_technology

TINY_MESH = FlowOptions(substrate=SubstrateExtractionOptions(
    nx=12, ny=12, n_z_per_layer=2, lateral_margin=60e-6))

KEY = "ab" + "0" * 62  # a well-formed (64-hex-ish) content key


def make_chaos_campaign() -> Campaign:
    """One corner, two frequencies — the smallest real campaign (also built
    by the subprocess children, which import this module by name)."""
    return Campaign(
        name="chaos_store",
        space=ParamSpace({"vtune": (0.0,),
                          "noise_frequency": (1e6, 4e6)}),
        options=VcoExperimentOptions(vtune_values=(0.0,),
                                     noise_frequencies=(1e6, 4e6),
                                     flow=TINY_MESH))


@pytest.fixture(scope="module")
def chaos_campaign():
    return make_chaos_campaign()


@pytest.fixture(scope="module")
def chaos_reference(technology, chaos_campaign, tmp_path_factory):
    """One healthy run and its saved NPZ to compare every recovery to."""
    cache_dir = tmp_path_factory.mktemp("chaos-ref-cache")
    runner = SweepRunner(technology, cache=DiskExtractionCache(cache_dir))
    result = runner.run(chaos_campaign)
    npz, _ = result.save(tmp_path_factory.mktemp("chaos-ref") / "ref.npz")
    return result, npz


def _child_env(crash_points: str | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env.pop(CRASH_POINTS_ENV, None)
    env.pop("REPRO_FSYNC", None)  # fsync crash points only exist when on
    if crash_points:
        env[CRASH_POINTS_ENV] = crash_points
    return env


_REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")
_TESTS_DIR = str(Path(__file__).resolve().parent)


# -- crash-point harness ------------------------------------------------------


def test_parse_crash_points_grammar():
    assert parse_crash_points("claimer:write:1, journal:rename:2") == {
        ("claimer", "write"): 1, ("journal", "rename"): 2}
    assert parse_crash_points("") == {}
    with pytest.raises(AnalysisError, match="expected tag:op:k"):
        parse_crash_points("claimer:write")
    with pytest.raises(AnalysisError, match="unknown crash-point op"):
        parse_crash_points("claimer:chmod:1")
    with pytest.raises(AnalysisError, match="not an integer"):
        parse_crash_points("claimer:write:soon")
    with pytest.raises(AnalysisError, match="hit >= 1"):
        parse_crash_points("claimer:write:0")


def test_crashpoint_is_inert_unless_region_and_op_match():
    # If any of these fired the whole pytest process would exit 137, so
    # merely surviving the calls is the assertion.
    disarm_crash_points()
    crashpoint("write")
    with fault_region("claimer"):
        crashpoint("write")
    try:
        arm_crash_points("claimer:rename:1,other:write:1")
        crashpoint("rename")                  # no region on the stack
        with fault_region("publisher"):
            crashpoint("rename")              # wrong region
        with fault_region("claimer"):
            crashpoint("write")               # right region, wrong op
            crashpoint("fsync")
        with fault_region("claimer"):
            with fault_region("inner"):
                assert current_fault_region() == "inner"
                crashpoint("rename")          # innermost tag wins: no match
    finally:
        disarm_crash_points()
    assert current_fault_region() is None


_CRASH_DEMO = """
import sys
from pathlib import Path
sys.path[:0] = [sys.argv[2]]
from repro.studies import fault_region
from repro.studies.store import atomic_write

target = Path(sys.argv[1]) / "entry.bin"
with fault_region("demo"):
    atomic_write(target, lambda handle: handle.write(b"payload"))
print("survived")
"""


@pytest.mark.parametrize("op", CRASH_OPS)
def test_crashpoint_kills_the_process_at_the_kth_op(tmp_path, op):
    script = tmp_path / "demo.py"
    script.write_text(_CRASH_DEMO)
    target = tmp_path / "entry.bin"

    proc = subprocess.run(
        [sys.executable, str(script), str(tmp_path), _REPO_SRC],
        capture_output=True, text=True, timeout=120,
        env=_child_env(f"demo:{op}:1"))
    assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
    # Killed before os.replace every time: the destination never appears.
    assert not target.exists()

    # Unarmed control: same code, clean exit, file lands.
    proc = subprocess.run(
        [sys.executable, str(script), str(tmp_path), _REPO_SRC],
        capture_output=True, text=True, timeout=120, env=_child_env())
    assert proc.returncode == 0, proc.stderr
    assert target.read_bytes() == b"payload"


# -- corruption quarantine and offline audit ----------------------------------


def test_corrupt_entry_is_quarantined_and_reextracted(tmp_path):
    writer = DiskExtractionCache(tmp_path / "cache")
    writer.store(KEY, "good-payload")
    entry = writer.entry_path(KEY)
    blob = bytearray(entry.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    entry.write_bytes(bytes(blob))

    reader = DiskExtractionCache(tmp_path / "cache")
    with pytest.warns(CacheCorruptionWarning):
        assert reader.lookup(KEY) is None
    assert reader.stats.corrupted == 1
    assert reader.stats.quarantined == 1
    assert not entry.exists()
    quarantined = list(reader.quarantine_dir.iterdir())
    assert len(quarantined) == 1
    assert quarantined[0].name.startswith(entry.name)

    # The slot is clean again: a re-store round-trips.
    reader.store(KEY, "fresh-payload")
    assert reader.lookup(KEY) == "fresh-payload"


def _seed_dirty_cache(cache_dir: Path) -> DiskExtractionCache:
    """One good entry, one torn entry, one valid entry from older code."""
    cache = DiskExtractionCache(cache_dir)
    cache.store(KEY, "good-payload")
    torn_key = "cd" + "1" * 62
    cache.store(torn_key, "torn-payload")
    torn = cache.entry_path(torn_key)
    torn.write_bytes(torn.read_bytes()[:-7])
    stale_key = "ef" + "2" * 62
    stale = cache.entry_path(stale_key)
    stale.parent.mkdir(parents=True, exist_ok=True)
    with stale.open("wb") as handle:
        pickle.dump(build_envelope(stale_key, "old-payload",
                                   code="sha-of-older-extraction-code"),
                    handle)
    return cache


def test_verify_classifies_without_touching_then_repairs(tmp_path):
    cache = _seed_dirty_cache(tmp_path / "cache")

    report = cache.verify()
    assert (report["checked"], report["ok"]) == (3, 1)
    assert [c["entry"] for c in report["corrupt"]] == [
        "cd" + "1" * 62 + ".flow.pkl"]
    assert report["stale"] == ["ef" + "2" * 62 + ".flow.pkl"]
    assert len(cache) == 3                      # audit-only: nothing moved
    assert report["quarantine_entries"] == 0

    repaired = cache.verify(repair=True)
    assert repaired["quarantine_entries"] == 1  # torn entry moved aside
    assert len(cache) == 1                      # stale entry evicted
    final = cache.verify()
    assert (final["ok"], final["corrupt"], final["stale"]) == (1, [], [])


def test_cli_cache_verify_reports_and_repairs(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    _seed_dirty_cache(cache_dir)

    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 3
    audit = capsys.readouterr().out
    assert "corrupt" in audit and "stale" in audit

    assert main(["cache", "verify", "--cache-dir", str(cache_dir),
                 "--repair"]) == 3
    capsys.readouterr()

    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
    clean = capsys.readouterr().out
    assert "ok" in clean


# -- lease protocol -----------------------------------------------------------


def test_claim_is_exclusive_until_released(tmp_path):
    cache = DiskExtractionCache(tmp_path / "cache")
    lease = cache.claim(KEY)
    assert lease is not None and lease.generation == 1
    assert lease.is_current()
    assert DiskExtractionCache(tmp_path / "cache").claim(KEY) is None
    assert lease.release() is True
    assert lease.release() is False             # idempotent
    second = cache.claim(KEY)
    assert second is not None and second.generation == 2
    assert cache.stats.leases_claimed == 2
    second.release()


def test_stale_lease_is_stolen_and_zombie_publish_fenced(tmp_path):
    zombie = DiskExtractionCache(tmp_path / "cache", lease_stale_seconds=0.5)
    taker = DiskExtractionCache(tmp_path / "cache", lease_stale_seconds=0.5)

    dead = zombie.claim(KEY)
    assert dead is not None
    long_ago = time.time() - 60.0
    os.utime(dead.path, (long_ago, long_ago))   # the holder "died"

    stolen = taker.claim(KEY)
    assert stolen is not None
    assert taker.stats.leases_stolen == 1
    assert stolen.generation == dead.generation + 1
    assert not dead.is_current() and not dead.refresh()

    # The revived zombie's publish is rejected without touching the disk...
    assert zombie.publish(dead, "zombie-flow") is False
    assert zombie.stats.publishes_rejected == 1
    assert not zombie.entry_path(KEY).exists()
    # ... and its release cannot unlink the new holder's lease either.
    assert dead.release() is False
    assert stolen.is_current()

    assert taker.publish(stolen, "fenced-flow") is True
    assert stolen.release() is True
    assert DiskExtractionCache(tmp_path / "cache").lookup(KEY) == "fenced-flow"


def test_extract_with_claim_runs_the_extractor_exactly_once(tmp_path):
    holder = DiskExtractionCache(tmp_path / "cache", lease_stale_seconds=10.0)
    waiter = DiskExtractionCache(tmp_path / "cache", lease_stale_seconds=10.0)
    calls: list[str] = []
    results: dict[str, object] = {}

    def slow_extract():
        calls.append("holder")
        time.sleep(0.6)
        return "the-flow"

    def forbidden_extract():
        raise AssertionError("waiter must reuse the holder's publish")

    def hold():
        results["holder"] = holder.extract_with_claim(KEY, slow_extract)

    thread = threading.Thread(target=hold)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not holder.lease_path(KEY).exists():   # wait until the claim is on disk
        assert time.monotonic() < deadline
        time.sleep(0.01)
    results["waiter"] = waiter.extract_with_claim(
        KEY, forbidden_extract, poll_seconds=0.05)
    thread.join(timeout=10.0)

    assert results == {"holder": "the-flow", "waiter": "the-flow"}
    assert calls == ["holder"]
    assert waiter.stats.lease_waits >= 1
    assert holder.stats.publishes == 1
    assert not holder.lease_path(KEY).exists()   # released


def test_extract_with_claim_takes_over_a_dead_holders_key(tmp_path):
    crashed = DiskExtractionCache(tmp_path / "cache")
    abandoned = crashed.claim(KEY)
    assert abandoned is not None
    long_ago = time.time() - 60.0
    os.utime(abandoned.path, (long_ago, long_ago))

    survivor = DiskExtractionCache(tmp_path / "cache",
                                   lease_stale_seconds=0.5)
    flow = survivor.extract_with_claim(KEY, lambda: "recomputed",
                                       poll_seconds=0.05)
    assert flow == "recomputed"
    assert survivor.stats.leases_stolen == 1
    assert survivor.stats.leases_claimed == 1
    assert crashed.publish(abandoned, "zombie") is False


def test_extract_with_claim_times_out_on_a_live_holder(tmp_path):
    holder = DiskExtractionCache(tmp_path / "cache")
    lease = holder.claim(KEY)
    assert lease is not None
    waiter = DiskExtractionCache(tmp_path / "cache")
    with pytest.raises(AnalysisError, match="waiting for another process"):
        waiter.extract_with_claim(KEY, lambda: "never", wait_timeout=0.3,
                                  poll_seconds=0.05)
    lease.release()


# -- sentinel steal/release discipline (maintenance lock included) ------------


def test_steal_sentinel_refuses_a_fresh_sentinel(tmp_path):
    sentinel = tmp_path / "x.lease"
    sentinel.write_text("{}")
    assert _steal_sentinel(sentinel, stale_seconds=60.0) is False
    assert sentinel.exists()                     # put back, not destroyed
    long_ago = time.time() - 120.0
    os.utime(sentinel, (long_ago, long_ago))
    assert _steal_sentinel(sentinel, stale_seconds=60.0) is True
    assert not sentinel.exists()
    assert _steal_sentinel(sentinel, stale_seconds=60.0) is False  # gone


def test_release_sentinel_only_removes_its_own(tmp_path):
    sentinel = tmp_path / "x.lock"
    sentinel.write_text(json.dumps({"nonce": "theirs"}))
    assert _release_sentinel(sentinel, "mine") is False
    assert sentinel.exists()                     # a stranger's lock survives
    assert _release_sentinel(sentinel, "theirs") is True
    assert not sentinel.exists()
    assert _release_sentinel(sentinel, "theirs") is False


def _hammer_maintenance_lock(cache_dir: str) -> int:
    """Child-process body: count mutual-exclusion violations under the lock."""
    cache = DiskExtractionCache(cache_dir)
    collisions = 0
    flag = Path(cache_dir) / "in-critical-section"
    for _ in range(5):
        with cache.maintenance_lock(timeout=60.0):
            try:
                descriptor = os.open(flag,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                collisions += 1
                continue
            os.close(descriptor)
            time.sleep(0.02)
            os.unlink(flag)
    return collisions


def test_maintenance_lock_excludes_across_processes(tmp_path):
    cache_dir = str(tmp_path / "cache")
    DiskExtractionCache(cache_dir)               # create the directory once
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(_hammer_maintenance_lock, cache_dir)
                   for _ in range(2)]
        assert sum(f.result(timeout=120) for f in futures) == 0


# -- concurrent SweepRunner processes: exactly-once extraction ----------------


_RUNNER_CHILD = """
import os, sys, time, uuid
sys.path[:0] = [sys.argv[5], sys.argv[6]]
from test_chaos_store import make_chaos_campaign
import repro.studies.runner as runner_module
from repro.studies import DiskExtractionCache, SweepRunner
from repro.technology import make_technology

cache_dir, marker_dir, out_npz, gate = sys.argv[1:5]
real_extract = runner_module.run_extraction_flow

def counted_extract(cell, technology, options=None):
    # One O_EXCL marker per physical extraction: the parent counts them to
    # prove the four racing runners extracted the shared variant once.
    os.makedirs(marker_dir, exist_ok=True)
    marker = os.path.join(
        marker_dir, "extract-%d-%s" % (os.getpid(), uuid.uuid4().hex))
    descriptor = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    os.close(descriptor)
    return real_extract(cell, technology, options=options)

runner_module.run_extraction_flow = counted_extract
technology = make_technology()
while not os.path.exists(gate):   # start all four on the same instant
    time.sleep(0.01)
runner = SweepRunner(technology, cache=DiskExtractionCache(cache_dir))
result = runner.run(make_chaos_campaign())
npz, _ = result.save(out_npz)
print(npz)
"""


def test_four_runner_processes_share_one_cache_exactly_once(
        chaos_reference, tmp_path):
    _, reference_npz = chaos_reference
    cache_dir = tmp_path / "shared-cache"
    marker_dir = tmp_path / "markers"
    gate = tmp_path / "gate"
    script = tmp_path / "runner_child.py"
    script.write_text(_RUNNER_CHILD)

    children = [
        subprocess.Popen(
            [sys.executable, str(script), str(cache_dir), str(marker_dir),
             str(tmp_path / f"out-{index}.npz"), str(gate),
             _REPO_SRC, _TESTS_DIR],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_child_env())
        for index in range(4)
    ]
    gate.write_text("go")
    for child in children:
        _, stderr = child.communicate(timeout=600)
        assert child.returncode == 0, stderr

    # Exactly one physical extraction across the four processes...
    assert len(list(marker_dir.iterdir())) == 1
    # ... proven independently by the fencing generation: one claim lineage.
    generations = list((cache_dir / "leases").glob("*/*.gen"))
    assert len(generations) == 1
    assert generations[0].read_text() == "1"
    # Every runner's merged result is bit-identical to the serial reference.
    for index in range(4):
        child_npz = tmp_path / f"out-{index}.npz"
        assert child_npz.read_bytes() == reference_npz.read_bytes()


# -- the chaos matrix: kill -9 at every injected point, resume bit-identical --


_CHAOS_CHILD = """
import sys
sys.path[:0] = [sys.argv[3], sys.argv[4]]
from test_chaos_store import make_chaos_campaign
from repro.studies import CheckpointPolicy, DiskExtractionCache, SweepRunner
from repro.technology import make_technology

cache_dir, journal_dir = sys.argv[1:3]
runner = SweepRunner(make_technology(), cache=DiskExtractionCache(cache_dir))
runner.run(make_chaos_campaign(),
           checkpoint=CheckpointPolicy(path=journal_dir, every_corners=1))
raise SystemExit("unreachable: the armed crash point must kill the process")
"""


@pytest.mark.parametrize("tag", CRASH_REGIONS)
@pytest.mark.parametrize("op", CRASH_OPS)
def test_crash_matrix_cache_never_torn_and_resume_bit_identical(
        technology, chaos_campaign, chaos_reference, tmp_path, tag, op):
    _, reference_npz = chaos_reference
    cache_dir = tmp_path / "cache"
    journal_dir = tmp_path / "run.journal"
    script = tmp_path / "chaos_child.py"
    script.write_text(_CHAOS_CHILD)

    proc = subprocess.run(
        [sys.executable, str(script), str(cache_dir), str(journal_dir),
         _REPO_SRC, _TESTS_DIR],
        capture_output=True, text=True, timeout=600,
        env=_child_env(f"{tag}:{op}:1"))
    assert proc.returncode == CRASH_EXIT_CODE, (proc.stdout, proc.stderr)

    # Invariant 1: whatever instant the kill landed on, the cache is never
    # torn — every entry on disk is fully valid (or would be quarantined).
    audit = DiskExtractionCache(cache_dir).verify()
    assert audit["corrupt"] == []

    # Invariant 2: resume completes despite leftover leases of the dead
    # holder (stolen after the stale bound) and reproduces the healthy
    # result byte for byte.
    resumer = SweepRunner(
        technology,
        cache=DiskExtractionCache(cache_dir, lease_stale_seconds=0.5))
    resumed = resumer.run(
        chaos_campaign,
        checkpoint=CheckpointPolicy(path=journal_dir, every_corners=1))
    assert resumed.complete
    resumed_npz, _ = resumed.save(tmp_path / "resumed.npz")
    assert resumed_npz.read_bytes() == reference_npz.read_bytes()

    # Invariant 3: no duplicate publish ever landed — at most one claim
    # lineage existed before the resume, so the generation stays small and
    # the entry is unique.
    entries = list((cache_dir / "objects").glob(f"*/*.flow.pkl"))
    assert len(entries) == 1
    generations = list((cache_dir / "leases").glob("*/*.gen"))
    if generations:
        assert int(generations[0].read_text()) <= 2
