"""Circuit extraction and model merging."""

import pytest

from repro.errors import ExtractionError
from repro.extraction import extract_circuit, merge_models
from repro.layout.cell import Cell, DeviceAnnotation
from repro.layout.geometry import Rect
from repro.layout.testchips import NET_GROUND_RING, NET_SUB, backgate_node
from repro.netlist.devices import MosfetElement
from repro.package import PackageModel
from repro.substrate.extraction import PortKind


def test_extract_circuit_nmos_structure(nmos_cell, technology):
    extracted = extract_circuit(nmos_cell, technology)
    assert len(extracted.mosfets) == 4
    assert not extracted.varactors
    assert not extracted.inductors
    for element in extracted.mosfets.values():
        assert isinstance(element, MosfetElement)
        assert element.model.geometry.width == pytest.approx(50e-6)


def test_extract_circuit_vco(vco_cell, technology):
    extracted = extract_circuit(vco_cell, technology)
    assert set(extracted.mosfets) == {"MN_left", "MN_right", "MN_tail",
                                      "MP_left", "MP_right"}
    assert set(extracted.varactors) == {"C_var_left", "C_var_right"}
    assert set(extracted.inductors) == {"L_tank"}
    # The inductor becomes a series L + R pair in the netlist.
    assert "L_L_tank" in extracted.circuit
    assert "R_L_tank" in extracted.circuit
    assert sorted(extracted.device_names())[0] == "C_var_left"


def test_extract_circuit_requires_devices(technology):
    cell = Cell("empty-ish")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    with pytest.raises(ExtractionError):
        extract_circuit(cell, technology)


def test_extract_circuit_rejects_unknown_device(technology):
    cell = Cell("bad")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    cell.add_device(DeviceAnnotation(
        name="X1", device_type="memristor", terminals={},
        parameters={}, footprint=Rect(0, 0, 1e-6, 1e-6)))
    with pytest.raises(ExtractionError):
        extract_circuit(cell, technology)


def test_merge_models_nmos(nmos_flow):
    impact = nmos_flow.impact
    assert impact.injection_node == NET_SUB
    circuit = impact.circuit
    # The merged netlist contains substrate resistors, interconnect resistors
    # and the extracted devices.
    names = set(circuit.elements)
    assert any(name.startswith("sub:Rsub_") for name in names)
    assert any(name.startswith("ic:Rw_") for name in names)
    assert "MN0" in names
    # Resistive ports map straight onto their nets.
    backgate_port = next(p for p in nmos_flow.substrate.ports
                         if p.kind is PortKind.BACKGATE)
    assert impact.port_nodes[backgate_port.name] == backgate_port.nets[0]


def test_merge_models_vco_capacitive_ports(vco_flow):
    impact = vco_flow.impact
    circuit = impact.circuit
    inductor_port = next(p for p in vco_flow.substrate.ports
                         if p.kind is PortKind.INDUCTOR)
    coupling = impact.coupling_element_names(inductor_port.name)
    assert len(coupling) == 2          # Cind/2 to each tank node
    for name in coupling:
        assert name in circuit
    well_ports = vco_flow.substrate.ports_of_kind(PortKind.WELL)
    assert well_ports
    for port in well_ports:
        assert impact.port_nodes[port.name].startswith("sub:")


def test_merge_with_package(nmos_flow, technology):
    from repro.extraction import merge_models

    package = PackageModel.rf_probed({NET_SUB: "SUB_EXT"})
    impact = merge_models(nmos_flow.devices, nmos_flow.interconnect,
                          nmos_flow.substrate, package=package)
    assert any(name.startswith("probe:") for name in impact.circuit.elements)


def test_impact_netlist_is_simulatable(nmos_flow):
    """The merged netlist plus a ground tie and a source solves in DC."""
    import copy

    from repro.simulator import dc_operating_point

    circuit = copy.deepcopy(nmos_flow.impact.circuit)
    circuit.add_voltage_source("VSUB", NET_SUB, "0", 0.1)
    circuit.add_resistor("Rtie", NET_GROUND_RING, "0", 1.0)
    circuit.add_voltage_source("VG", "VGATE", "0", 0.0)
    circuit.add_resistor("Rout", "OUT", "0", 1e3)
    circuit.add_resistor("Rpad", "VGND_PAD", "0", 0.05)
    solution = dc_operating_point(circuit)
    # With the devices off, no current flows and the back-gate floats between
    # the injection contact and the grounded rings.
    v_bg = solution.voltage(backgate_node("MN0"))
    assert 0.0 <= v_bg <= 0.1
