"""Tests of the unified observability layer (:mod:`repro.obs`).

Covers the acceptance properties of the subsystem:

* hierarchical span nesting, the disabled-tracer no-op fast path, and span
  re-parenting across :class:`ProcessPoolBackend` worker processes
  (including the timeout/retry path's ``on_start`` notifications),
* the metrics registry's snapshot agrees with the legacy stat records it
  absorbs (``SolverStats``, ``CacheStats``, retry and degradation counts),
* the structured JSONL run log round-trips and schema-validates, with one
  ``corner_finish`` per corner and a fingerprint-stamped header,
* the Chrome trace-event (Perfetto) export passes its own schema check,
* per-run telemetry survives the save/load sidecar round trip.

All sweeps run on a deliberately tiny substrate mesh — observability does
not depend on mesh resolution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import pytest

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions
from repro.obs import (
    MetricsRegistry,
    RunLogRecorder,
    SpanRecord,
    TraceContext,
    collect_spans,
    read_run_log,
    runlog_path_for,
    runlog_to_chrome_trace,
    span_aggregates,
    spans_to_trace_events,
    trace_span,
    tracer,
    validate_run_log,
    validate_trace_events,
)
from repro.obs.logs import get_logger, verbosity_to_level
from repro.simulator.solver import SolverStats
from repro.studies import (
    Campaign,
    ExtractionCache,
    FaultPlan,
    FaultSpec,
    ParamSpace,
    ProcessPoolBackend,
    SerialBackend,
    SweepRunner,
)
from repro.studies.runner import SweepTask
from repro.substrate.extraction import SubstrateExtractionOptions

TINY_MESH = FlowOptions(substrate=SubstrateExtractionOptions(
    nx=12, ny=12, n_z_per_layer=2, lateral_margin=60e-6))


@pytest.fixture
def traced():
    """Enabled, empty tracer; always disabled and drained afterwards."""
    tracer.enable()
    tracer.reset()
    yield tracer
    tracer.disable()
    tracer.reset()


@pytest.fixture(scope="module")
def obs_campaign():
    return Campaign(
        name="obs_smoke",
        space=ParamSpace({"vtune": (0.0, 0.75),
                          "noise_frequency": (1e6, 4e6)}),
        options=VcoExperimentOptions(vtune_values=(0.0,),
                                     noise_frequencies=(1e6, 4e6),
                                     flow=TINY_MESH))


# -- span tracer ----------------------------------------------------------------------


def test_trace_span_nesting_and_attrs(traced):
    with trace_span("outer", cell="vco") as outer:
        with trace_span("inner") as inner:
            inner.set(rows=3)
    outer_rec, = [s for s in tracer.spans() if s.name == "outer"]
    inner_rec, = [s for s in tracer.spans() if s.name == "inner"]
    assert outer_rec.parent_id is None
    assert inner_rec.parent_id == outer_rec.span_id
    assert dict(outer_rec.attrs) == {"cell": "vco"}
    assert dict(inner_rec.attrs) == {"rows": 3}
    assert outer_rec.duration >= inner_rec.duration >= 0.0


def test_exception_marks_span_and_propagates(traced):
    with pytest.raises(ValueError):
        with trace_span("doomed"):
            raise ValueError("boom")
    doomed, = tracer.spans()
    assert dict(doomed.attrs)["error"] == "ValueError"


def test_disabled_tracer_is_shared_noop():
    assert not tracer.enabled
    first = trace_span("hot.path", n=1)
    second = trace_span("hot.path", n=2)
    # One shared no-op object: nothing is allocated per call.
    assert first is second
    with first:
        pass
    assert tracer.spans() == ()


def test_collect_spans_carves_out_of_live_tracer(traced):
    context = TraceContext(trace_id=tracer.trace_id, parent_id="root-0")
    with trace_span("before"):
        pass
    with collect_spans(context) as sink:
        with trace_span("carved"):
            pass
    # The block's spans moved to the sink (no double counting) and were
    # re-parented under the context.
    assert [s.name for s in tracer.spans()] == ["before"]
    assert [s.name for s in sink] == ["carved"]
    assert sink[0].parent_id == "root-0"
    tracer.adopt(sink)
    assert [s.name for s in tracer.spans()] == ["before", "carved"]


def test_collect_spans_enables_in_fresh_worker():
    # A worker process starts with the tracer disabled; the context both
    # enables collection and parents the spans.
    assert not tracer.enabled
    context = TraceContext(trace_id="trace-test", parent_id="root-7")
    with collect_spans(context) as sink:
        assert tracer.enabled
        with trace_span("worker.span"):
            pass
    assert not tracer.enabled
    assert [s.name for s in sink] == ["worker.span"]
    assert sink[0].parent_id == "root-7"
    tracer.reset()


def test_span_record_dict_roundtrip():
    span = SpanRecord(span_id="1-2", parent_id="1-1", name="x.y",
                      start=123.5, duration=0.25, pid=42, thread="main",
                      attrs=(("k", 1),))
    assert SpanRecord.from_dict(span.as_dict()) == span


def test_span_aggregates_groups_by_name():
    spans = [SpanRecord(f"1-{i}", None, "solver.solve", 0.0, d, 1, "main")
             for i, d in enumerate((0.1, 0.3))]
    spans.append(SpanRecord("1-9", None, "flow.run", 0.0, 1.0, 1, "main"))
    table = span_aggregates(spans)
    assert table["solver.solve"]["count"] == 2
    assert table["solver.solve"]["total_seconds"] == pytest.approx(0.4)
    assert table["solver.solve"]["max_seconds"] == pytest.approx(0.3)
    assert table["flow.run"]["count"] == 1


# -- metrics registry -----------------------------------------------------------------


def test_registry_snapshot_schema_and_labels():
    reg = MetricsRegistry()
    reg.counter("solver.factorizations", backend="reuse-lu").add(3)
    reg.gauge("mesh.nodes").set(18816)
    reg.histogram("campaign.corner_seconds").observe(0.5)
    reg.histogram("campaign.corner_seconds").observe(1.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"solver.factorizations{backend=reuse-lu}": 3}
    assert snap["gauges"] == {"mesh.nodes": 18816}
    hist = snap["histograms"]["campaign.corner_seconds"]
    assert hist["count"] == 2 and hist["sum"] == pytest.approx(2.0)
    assert hist["min"] == 0.5 and hist["max"] == 1.5
    assert hist["mean"] == pytest.approx(1.0)


def test_counters_reject_negative_increments():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("x").add(-1)


def test_absorb_adapters_match_legacy_records():
    stats = SolverStats()
    stats.factorizations = 7
    stats.solves = 22
    stats.cg_iterations = 5

    class _Cache:
        hits, misses, evictions, corrupted = 3, 1, 0, 0

    class _Backend:
        task_attempts = [1, 3, 1]        # list form (serial/pool backends)
        pool_rebuilds = 2

    reg = MetricsRegistry()
    reg.absorb_solver_stats(stats)
    reg.absorb_cache_stats(_Cache())
    reg.absorb_degradations({"gmin_step": 4})
    reg.absorb_backend(_Backend())
    counters = reg.snapshot()["counters"]
    assert counters["solver.factorizations"] == stats.factorizations
    assert counters["solver.solves"] == stats.solves
    assert counters["solver.cg_iterations"] == stats.cg_iterations
    assert counters["cache.hits"] == 3 and counters["cache.misses"] == 1
    assert counters["solver.degradations{kind=gmin_step}"] == 4
    assert counters["campaign.task_attempts"] == 5
    assert counters["campaign.retries"] == 2
    assert counters["campaign.pool_rebuilds"] == 2


def test_absorb_backend_accepts_attempt_maps():
    class _Backend:
        task_attempts = {0: 1, 1: 2}

    reg = MetricsRegistry()
    reg.absorb_backend(_Backend())
    counters = reg.snapshot()["counters"]
    assert counters["campaign.task_attempts"] == 3
    assert counters["campaign.retries"] == 1


# -- run log --------------------------------------------------------------------------


@dataclass(frozen=True)
class _FakeTask:
    index: int = 0
    variant_index: int = 0
    injected_power_dbm: float = -10.0
    vtune: float = 0.0

    def corner_label(self) -> str:
        return f"corner {self.index}"


@dataclass
class _FakeOutcome:
    records: tuple = ()
    seconds: float = 0.5
    degradations: tuple = ()


@dataclass
class _FakeResult:
    records: list = field(default_factory=list)
    failures: list = field(default_factory=list)
    wall_seconds: float = 1.0
    cache_hits: int = 0
    cache_misses: int = 0


def test_runlog_records_retry_and_validates(tmp_path):
    recorder = RunLogRecorder(tmp_path / "run.runlog.jsonl")
    recorder.campaign_started(campaign_name="obs", fingerprint="abc123",
                              total_corners=1, pending_corners=1)
    task = _FakeTask()
    recorder.corner_started(task, attempt=1)
    recorder.corner_started(task, attempt=2)      # retry path
    recorder.corner_finished(task, _FakeOutcome(degradations=(("gmin", 1),)))
    recorder.campaign_finished(_FakeResult())

    events = read_run_log(tmp_path / "run.runlog.jsonl")
    kinds = [e["event"] for e in events]
    assert kinds == ["campaign_start", "corner_start", "corner_retry",
                     "corner_finish", "corner_degradation", "campaign_finish"]
    assert events[0]["fingerprint"] == "abc123"
    assert events[2]["attempt"] == 2
    assert validate_run_log(events, expected_corners=1) == []


def test_validate_run_log_flags_schema_violations():
    assert validate_run_log([]) == ["run log is empty"]
    events = [
        {"event": "campaign_start", "seq": 0, "t": 1.0,
         "kind": "repro-campaign-runlog", "format": 1, "fingerprint": "f"},
        {"event": "corner_finish", "seq": 0, "t": 2.0},   # seq + no corner
    ]
    problems = validate_run_log(events, expected_corners=2)
    assert any("seq not increasing" in p for p in problems)
    assert any("without corner payload" in p for p in problems)
    assert any("expected 2 corner_finish" in p for p in problems)
    assert any("not campaign_finish" in p for p in problems)


def test_runlog_path_sits_next_to_result():
    assert str(runlog_path_for("out/fig8.npz")).endswith("out/fig8.runlog.jsonl")
    assert str(runlog_path_for("out/fig8")).endswith("out/fig8.runlog.jsonl")


# -- Chrome trace export --------------------------------------------------------------


def test_spans_to_trace_events_schema():
    spans = [
        SpanRecord("a-1", None, "campaign.run", 100.0, 2.0, 10, "MainThread"),
        SpanRecord("b-1", "a-1", "campaign.corner", 100.5, 1.0, 11, "MainThread"),
    ]
    events = spans_to_trace_events(spans)
    assert validate_trace_events({"traceEvents": events}) == []
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == 2 and len(metas) == 2       # one thread_name per track
    root = next(e for e in xs if e["name"] == "campaign.run")
    corner = next(e for e in xs if e["name"] == "campaign.corner")
    assert root["ts"] == 0.0                       # relative to earliest span
    assert corner["ts"] == pytest.approx(0.5e6)    # microseconds
    assert corner["dur"] == pytest.approx(1.0e6)
    assert corner["args"]["parent_id"] == "a-1"
    assert root["pid"] == 10 and corner["pid"] == 11


def test_validate_trace_events_rejects_malformed():
    assert validate_trace_events([]) == ["trace payload is not a JSON object"]
    assert validate_trace_events({}) == ["payload has no traceEvents list"]
    problems = validate_trace_events(
        {"traceEvents": [{"ph": "X", "name": "x"}, {"ph": "?"}]})
    assert any("missing" in p for p in problems)
    assert any("unsupported phase" in p for p in problems)


# -- logging --------------------------------------------------------------------------


def test_loggers_live_under_the_repro_namespace():
    assert get_logger("repro.studies.store").name == "repro.studies.store"
    assert get_logger("studies.store").name == "repro.studies.store"
    assert get_logger(None).name == "repro"
    assert [verbosity_to_level(v) for v in (-1, 0, 1, 2)] == [40, 30, 20, 10]


# -- end-to-end: traced campaigns -----------------------------------------------------


def _expected_corner_count(campaign) -> int:
    powers, vtunes, _ = campaign.sim_grid()
    return len(campaign.variants()) * len(powers) * len(vtunes)


def test_serial_campaign_telemetry_runlog_and_trace(
        technology, obs_campaign, traced, tmp_path):
    corners = _expected_corner_count(obs_campaign)
    cache = ExtractionCache()
    runner = SweepRunner(technology, backend=SerialBackend(), cache=cache)
    recorder = RunLogRecorder(tmp_path / "obs.runlog.jsonl")
    result = runner.run(obs_campaign, observer=recorder)

    # The metrics snapshot agrees with the legacy stat records.
    counters = result.telemetry["metrics"]["counters"]
    assert counters["cache.misses"] == result.cache_misses == 1
    assert counters.get("cache.hits", 0) == result.cache_hits
    assert counters["campaign.task_attempts"] == corners
    assert counters["solver.factorizations"] > 0
    hist = result.telemetry["metrics"]["histograms"]["campaign.corner_seconds"]
    assert hist["count"] == corners

    # Span aggregates: one campaign root, one span per corner, solver spans.
    spans = result.telemetry["spans"]
    assert spans["campaign.run"]["count"] == 1
    assert spans["campaign.corner"]["count"] == corners
    assert spans["flow.run"]["count"] == 1
    assert spans["extract.kron"]["count"] == 1
    assert spans["solver.solve"]["count"] >= corners
    assert spans["sim.setup"]["count"] == corners

    # Telemetry survives the sidecar round trip.
    saved_npz, _meta = result.save(tmp_path / "obs.npz")
    assert type(result).load(saved_npz).telemetry == result.telemetry

    # The run log validates, is fingerprint-stamped, and exports to a
    # schema-clean Perfetto trace.
    events = read_run_log(tmp_path / "obs.runlog.jsonl")
    assert validate_run_log(events, expected_corners=corners) == []
    assert events[0]["fingerprint"] == obs_campaign.fingerprint()
    assert sum(e["event"] == "span" for e in events) >= corners
    trace_path = runlog_to_chrome_trace(tmp_path / "obs.runlog.jsonl")
    payload = json.loads(trace_path.read_text())
    assert validate_trace_events(payload) == []
    assert payload["otherData"]["fingerprint"] == obs_campaign.fingerprint()


def test_pool_worker_spans_reparent_under_campaign_root(
        technology, obs_campaign, traced):
    import os

    corners = _expected_corner_count(obs_campaign)
    runner = SweepRunner(technology,
                         backend=ProcessPoolBackend(max_workers=2),
                         cache=ExtractionCache())
    result = runner.run(obs_campaign)
    assert result.telemetry["spans"]["campaign.corner"]["count"] == corners

    spans = tracer.spans()
    root, = [s for s in spans if s.name == "campaign.run"]
    corner_spans = [s for s in spans if s.name == "campaign.corner"]
    assert len(corner_spans) == corners
    # Worker spans came home and re-parented under the campaign root...
    assert all(s.parent_id == root.span_id for s in corner_spans)
    # ...and really were recorded in other processes.
    assert root.pid == os.getpid()
    assert {s.pid for s in corner_spans}.isdisjoint({root.pid})
    # Nested worker spans hang off their corner, not the root.
    corner_ids = {s.span_id for s in corner_spans}
    setup_spans = [s for s in spans if s.name == "sim.setup"]
    assert len(setup_spans) == corners
    assert all(s.parent_id in corner_ids for s in setup_spans)


def test_sweep_task_fingerprint_ignores_trace_context(technology, obs_campaign):
    from dataclasses import replace as dc_replace

    from repro.studies.cache import fingerprint as content_fingerprint

    variant = obs_campaign.variants()[0]
    task = SweepTask(index=0, variant_index=0, knobs={},
                     technology=technology, spec=variant.spec,
                     options=obs_campaign.options, injected_power_dbm=-10.0,
                     vtune=0.0, noise_frequencies=(1e6,), flow=None,
                     first_point_index=0)
    traced_task = dc_replace(task, trace=TraceContext("trace-x", "parent-y"))
    assert content_fingerprint(task) == content_fingerprint(traced_task)


# -- retry path: on_start notifications ----------------------------------------------


@dataclass(frozen=True)
class _EchoTask:
    index: int

    def corner_label(self) -> str:
        return f"echo task {self.index}"


def _echo(task: _EchoTask) -> int:
    return task.index * 10


def test_pool_on_start_reports_every_attempt(tmp_path):
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("hang", task_index=0, attempts=1,
                                      hang_seconds=60.0),))
    backend = ProcessPoolBackend(max_workers=2, retries=1, task_timeout=1.0,
                                 backoff_base=0.01, backoff_seed=7)
    starts: list[tuple[int, int]] = []
    results = backend.run(plan.wrap(_echo), [_EchoTask(0), _EchoTask(1)],
                          on_start=lambda index, attempt:
                          starts.append((index, attempt)))
    assert results == [0, 10]
    # The hung corner was started twice (attempt 1 timed out, attempt 2
    # succeeded); the healthy corner exactly once.
    assert (0, 1) in starts and (0, 2) in starts
    assert starts.count((1, 1)) == 1


def test_serial_on_start_counts_attempts(tmp_path):
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("raise", task_index=1, attempts=2),))
    backend = SerialBackend(retries=2)
    starts: list[tuple[int, int]] = []
    results = backend.run(plan.wrap(_echo), [_EchoTask(0), _EchoTask(1)],
                          on_start=lambda index, attempt:
                          starts.append((index, attempt)))
    assert results == [0, 10]
    assert starts == [(0, 1), (1, 1), (1, 2), (1, 3)]
