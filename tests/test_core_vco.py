"""Sections 5-6 integration tests: VCO spur analysis on a coarse mesh.

Trend-level checks (slopes, ordering, mechanism classification); the
benchmarks regenerate the actual figures at the calibrated resolution.
"""

import numpy as np
import pytest

from repro.core.vco_experiment import mechanism_report
from repro.vco.sensitivity import ENTRY_GROUND, ENTRY_INDUCTOR, ENTRY_NMOS


@pytest.fixture(scope="module")
def sweep(vco_analysis):
    return vco_analysis.spur_sweep(vtune_values=(0.0, 0.75))


@pytest.fixture(scope="module")
def contributions(vco_analysis):
    return vco_analysis.contributions(vtune=0.0)


def test_carrier_frequency_near_3ghz(sweep):
    for vtune, frequency in sweep.carrier_frequencies.items():
        assert 2.5e9 < frequency < 5.5e9
    # Tuning raises the frequency.
    assert sweep.carrier_frequencies[0.75] > sweep.carrier_frequencies[0.0]


def test_spur_power_slope_is_minus_20db_per_decade(sweep):
    """Resistive coupling followed by FM: the paper's headline mechanism."""
    for vtune in sweep.vtune_values:
        slope = sweep.slope_db_per_decade(vtune)
        assert slope == pytest.approx(-20.0, abs=4.0)


def test_spur_power_decreases_with_noise_frequency(sweep):
    for vtune in sweep.vtune_values:
        levels = sweep.spur_power_dbm[vtune]
        assert np.all(np.diff(levels) < 0)


def test_shape_comparison_against_reference(sweep):
    """The simulated sweep follows the ideal -20 dB/dec reference line."""
    for vtune in sweep.vtune_values:
        assert sweep.comparisons[vtune].max_abs_error_db < 6.0


def test_sweep_rows_table(sweep):
    rows = sweep.rows()
    assert len(rows) == len(sweep.vtune_values) * len(sweep.noise_frequencies)
    assert {"vtune_v", "noise_frequency_hz", "simulated_dbm",
            "reference_dbm"} <= set(rows[0])


def test_ground_interconnect_dominates(contributions):
    """Figure 9: the non-ideal on-chip ground is the dominant entry."""
    assert contributions.dominant_entry() == ENTRY_GROUND
    gap_nmos = contributions.gap_db(ENTRY_GROUND, ENTRY_NMOS)
    gap_inductor = contributions.gap_db(ENTRY_GROUND, ENTRY_INDUCTOR)
    assert gap_nmos > 5.0
    assert gap_inductor > 20.0


def test_ground_and_nmos_paths_are_resistive_fm(contributions):
    assert contributions.mechanisms[ENTRY_GROUND] == "resistive coupling + FM"
    assert contributions.slopes[ENTRY_GROUND] == pytest.approx(-20.0, abs=4.0)
    assert contributions.slopes[ENTRY_NMOS] == pytest.approx(-20.0, abs=6.0)


def test_inductor_path_is_flat_with_frequency(contributions):
    """Capacitive coupling followed by FM: flat spur power versus frequency."""
    assert abs(contributions.slopes[ENTRY_INDUCTOR]) < 6.0


def test_mechanism_report(contributions):
    report = mechanism_report(contributions)
    assert report.dominant_entry == ENTRY_GROUND
    assert report.dominant_mechanism == "resistive coupling + FM"
    assert set(report.slopes_db_per_decade) == set(contributions.contributions_dbm)


def test_contribution_rows(contributions):
    rows = contributions.rows()
    assert rows
    assert {"entry", "noise_frequency_hz", "contribution_dbm"} <= set(rows[0])


def test_output_spectrum_figure7(vco_analysis):
    """Figure 7: spurs appear at f_c +/- f_noise in the synthesised spectrum."""
    spectrum, spur = vco_analysis.output_spectrum(
        vtune=0.0, noise_frequency=10e6, periods_of_noise=12,
        samples_per_carrier_period=6)
    carrier_frequency, carrier_power = spectrum.carrier()
    assert carrier_frequency == pytest.approx(spur.carrier_frequency, rel=0.01)
    lower, upper = spectrum.spur_powers(carrier_frequency, 10e6)
    # Both sidebands exist and sit below the carrier.
    assert lower < carrier_power and upper < carrier_power
    # And they match the equation-(2) prediction within a couple of dB.
    assert upper == pytest.approx(spur.sideband_power_dbm("upper"), abs=3.0)


def test_analyze_exposes_vco_model_and_catalog(vco_analysis):
    results, vco, catalog, transfer = vco_analysis.analyze(
        0.0, np.array([1e6, 10e6]))
    assert len(results) == 2
    assert ENTRY_GROUND in catalog.names()
    assert vco.amplitude(0.0) > 0.1
    # Every catalogue observation node was actually solved.
    for node in catalog.observation_nodes():
        assert node in transfer.transfers
