"""Technology description: layers, vias, substrate profile, device cards."""

import pytest

from repro.errors import TechnologyError
from repro.technology import (
    Layer,
    LayerPurpose,
    LayerStack,
    MosParameters,
    SubstrateLayer,
    SubstrateProfile,
    ViaDefinition,
    make_technology,
)


# -- layers ---------------------------------------------------------------------


def test_layer_requires_positive_sheet_resistance():
    with pytest.raises(TechnologyError):
        Layer("M1", LayerPurpose.METAL, sheet_resistance=-1.0)


def test_layer_conductor_flags():
    metal = Layer("M1", LayerPurpose.METAL, sheet_resistance=0.078,
                  thickness=0.3e-6, height_above_substrate=0.6e-6)
    assert metal.is_conductor and metal.is_metal
    marker = Layer("NWELL", LayerPurpose.NWELL)
    assert not marker.is_conductor


def test_via_definition_cut_math():
    via = ViaDefinition("VIA1", "M1", "M2", resistance_per_cut=4.0,
                        cut_size=0.26e-6, cut_pitch=0.56e-6)
    assert via.cuts_in_area(5.6e-6, 0.56e-6) == 10
    assert via.resistance_for_area(5.6e-6, 0.56e-6) == pytest.approx(0.4)
    assert via.cuts_in_area(-1.0, 1.0) == 0


def test_via_rejects_bad_geometry():
    with pytest.raises(TechnologyError):
        ViaDefinition("V", "M1", "M2", resistance_per_cut=4.0,
                      cut_size=0.5e-6, cut_pitch=0.2e-6)


def test_layer_stack_duplicate_rejected():
    stack = LayerStack()
    stack.add_layer(Layer("M1", LayerPurpose.METAL, sheet_resistance=0.1,
                          thickness=0.3e-6, height_above_substrate=0.6e-6))
    with pytest.raises(TechnologyError):
        stack.add_layer(Layer("M1", LayerPurpose.METAL, sheet_resistance=0.1,
                              thickness=0.3e-6, height_above_substrate=0.6e-6))


def test_layer_stack_via_needs_known_layers():
    stack = LayerStack()
    stack.add_layer(Layer("M1", LayerPurpose.METAL, sheet_resistance=0.1,
                          thickness=0.3e-6, height_above_substrate=0.6e-6))
    with pytest.raises(TechnologyError):
        stack.add_via(ViaDefinition("VIA1", "M1", "M2", 4.0, 0.26e-6, 0.56e-6))


# -- substrate profile -------------------------------------------------------------


def test_substrate_layer_properties():
    layer = SubstrateLayer("bulk", thickness=300e-6, resistivity=0.2)
    assert layer.conductivity == pytest.approx(5.0)
    assert layer.sheet_resistance == pytest.approx(0.2 / 300e-6)


def test_substrate_profile_layer_lookup():
    profile = SubstrateProfile(layers=(
        SubstrateLayer("surface", 2e-6, 0.05),
        SubstrateLayer("bulk", 298e-6, 0.2),
    ))
    assert profile.total_thickness == pytest.approx(300e-6)
    assert profile.layer_at_depth(1e-6).name == "surface"
    assert profile.layer_at_depth(50e-6).name == "bulk"
    assert profile.layer_at_depth(1.0).name == "bulk"      # beyond the stack
    assert profile.resistivity_at_depth(10e-6) == pytest.approx(0.2)
    with pytest.raises(TechnologyError):
        profile.layer_at_depth(-1e-6)


def test_substrate_profile_boundaries():
    profile = SubstrateProfile(layers=(SubstrateLayer("a", 1e-6, 1.0),
                                       SubstrateLayer("b", 2e-6, 1.0)))
    boundaries = profile.boundaries()
    assert boundaries[0] == 0.0
    assert boundaries[-1] == pytest.approx(3e-6)


# -- MOS / well parameters -----------------------------------------------------------


def test_mos_parameters_validation():
    with pytest.raises(TechnologyError):
        MosParameters(name="bad", polarity="npn", vth0=0.4, kp=1e-4,
                      lambda_=0.1, gamma=0.5, phi=0.8, tox=4e-9,
                      cj=1e-3, cjsw=1e-10, cgdo=1e-10, cgso=1e-10)


def test_mos_cox_from_tox(technology):
    nmos = technology.mos_parameters("nmos_rf")
    # cox = eps0 * 3.9 / tox ~ 8.4 mF/m^2 for a 4.1 nm oxide.
    assert nmos.cox == pytest.approx(8.42e-3, rel=0.02)


def test_well_capacitance_scales_with_area(technology):
    well = technology.well_parameters("nwell")
    small = well.capacitance(100e-12, 40e-6)
    large = well.capacitance(200e-12, 40e-6)
    assert large > small
    with pytest.raises(TechnologyError):
        well.capacitance(-1.0, 0.0)


# -- the synthetic 0.18 um technology --------------------------------------------------


def test_make_technology_has_six_metals(technology):
    metals = technology.layer_stack.metal_layers()
    assert [m.name for m in metals] == ["M1", "M2", "M3", "M4", "M5", "M6"]
    heights = [m.height_above_substrate for m in metals]
    assert heights == sorted(heights)


def test_technology_is_high_ohmic(technology):
    """The paper's process is a 20 ohm-cm (0.2 ohm-m) high-ohmic substrate."""
    bulk = technology.substrate.layers[-1]
    assert bulk.resistivity == pytest.approx(0.2)


def test_technology_unknown_names_raise(technology):
    with pytest.raises(TechnologyError):
        technology.mos_parameters("does_not_exist")
    with pytest.raises(TechnologyError):
        technology.well_parameters("does_not_exist")
    with pytest.raises(TechnologyError):
        technology.metal_layer("NWELL")


def test_capacitance_densities_reasonable(technology):
    """Metal-1 to substrate plate capacitance should be tens of aF/um^2."""
    density = technology.area_capacitance_to_substrate("M1")
    assert 2e-5 < density < 2e-4          # F/m^2  (20-200 aF/um^2)
    fringe = technology.fringe_capacitance_to_substrate("M1")
    assert fringe > 0
    m1_m2 = technology.coupling_capacitance_between("M1", "M2")
    assert m1_m2 > density                # closer spacing -> larger density


def test_coupling_capacitance_requires_separation(technology):
    with pytest.raises(TechnologyError):
        technology.coupling_capacitance_between("M2", "M1")


def test_via_between_lookup(technology):
    via = technology.layer_stack.via_between("M1", "M2")
    assert via.layer == "VIA1"
    with pytest.raises(TechnologyError):
        technology.layer_stack.via_between("M1", "M6")
