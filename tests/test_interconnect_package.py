"""Interconnect extraction, RC wire models and package models."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtractionError, NetlistError
from repro.interconnect import WireRC, extract_interconnect
from repro.layout.cell import Cell
from repro.layout.primitives import draw_wire
from repro.layout.testchips import NET_GROUND_PAD, NET_GROUND_RING
from repro.netlist import Circuit, SourceValue
from repro.package import BondwireModel, PackageModel, RfProbeModel
from repro.simulator import ac_analysis, dc_operating_point


# -- WireRC ----------------------------------------------------------------------------


def test_wire_rc_validation():
    with pytest.raises(ExtractionError):
        WireRC("w", "a", "b", resistance=-1.0, capacitance=0.0)
    wire = WireRC("w", "a", "b", resistance=10.0, capacitance=20e-15)
    assert wire.rc_time_constant == pytest.approx(200e-15)


def test_wire_pi_model_elements():
    wire = WireRC("gnd", "ring", "pad", resistance=15.0, capacitance=40e-15)
    circuit = Circuit("t")
    wire.add_pi_model(circuit, substrate_node="sub")
    assert circuit["Rw_gnd"].resistance == pytest.approx(15.0)
    assert circuit["Cw_gnd_a"].capacitance == pytest.approx(20e-15)
    assert circuit["Cw_gnd_b"].capacitance == pytest.approx(20e-15)


def test_wire_pi_model_same_node_skips_resistor():
    wire = WireRC("x", "a", "a", resistance=5.0, capacitance=10e-15)
    circuit = Circuit("t")
    wire.add_pi_model(circuit, substrate_node="sub")
    assert "Rw_x" not in circuit
    assert circuit["Cw_x_a"].capacitance == pytest.approx(10e-15)


def test_wire_ladder_model_matches_lumped_at_low_frequency():
    """A 5-segment RC ladder and the lumped pi model agree well below 1/RC."""
    wire = WireRC("w", "in", "out", resistance=20.0, capacitance=100e-15)

    def transfer(builder) -> complex:
        circuit = Circuit("t")
        circuit.add_voltage_source("V1", "in", "0", SourceValue(ac_magnitude=1.0))
        builder(circuit)
        circuit.add_resistor("RL", "out", "0", 1e6)
        ac = ac_analysis(circuit, [10e6])
        return ac.voltage("out")[0]

    lumped = transfer(lambda c: wire.add_pi_model(c, substrate_node="0"))
    ladder = transfer(lambda c: wire.add_ladder_model(c, "0", segments=5))
    assert abs(lumped) == pytest.approx(abs(ladder), rel=1e-3)


def test_wire_ladder_validation():
    wire = WireRC("w", "a", "a", resistance=1.0, capacitance=1e-15)
    with pytest.raises(ExtractionError):
        wire.add_ladder_model(Circuit("t"), "0", segments=3)
    wire2 = WireRC("w", "a", "b", resistance=1.0, capacitance=1e-15)
    with pytest.raises(ExtractionError):
        wire2.add_ladder_model(Circuit("t"), "0", segments=0)


# -- extraction ----------------------------------------------------------------------------


def test_extract_simple_wire_resistance(technology):
    cell = Cell("wire_test")
    # 100 um long, 1 um wide metal-1 wire: 100 squares at 78 mohm/sq.
    draw_wire(cell, "M1", [(0.0, 0.0), (100e-6, 0.0)], 1e-6, net="N",
              nodes=("A", "B"))
    extraction = extract_interconnect(cell, technology)
    assert len(extraction.wires) == 1
    resistance = extraction.resistance_between("A", "B")
    assert resistance == pytest.approx(100 * 0.078, rel=1e-6)
    assert extraction.total_capacitance_of("A") > 0
    assert set(extraction.nodes()) == {"A", "B"}


def test_extract_requires_pins(technology):
    cell = Cell("bad")
    cell.add_path("M1", [(0.0, 0.0), (10e-6, 0.0)], 1e-6)
    with pytest.raises(ExtractionError):
        extract_interconnect(cell, technology)


def test_extract_empty_cell_raises(technology):
    with pytest.raises(ExtractionError):
        extract_interconnect(Cell("empty"), technology)


def test_resistance_between_unknown_nodes(technology):
    cell = Cell("wire_test")
    draw_wire(cell, "M1", [(0.0, 0.0), (10e-6, 0.0)], 1e-6, net="N",
              nodes=("A", "B"))
    extraction = extract_interconnect(cell, technology)
    with pytest.raises(ExtractionError):
        extraction.resistance_between("A", "Z")


def test_scaled_extraction(technology):
    cell = Cell("wire_test")
    draw_wire(cell, "M1", [(0.0, 0.0), (100e-6, 0.0)], 1e-6, net="N",
              nodes=("A", "B"))
    extraction = extract_interconnect(cell, technology)
    halved = extraction.scaled("A", "B", 0.5)
    assert halved.resistance_between("A", "B") == pytest.approx(
        extraction.resistance_between("A", "B") / 2)
    with pytest.raises(ExtractionError):
        extraction.scaled("A", "B", 0.0)


def test_nmos_structure_ground_wire_extraction(nmos_flow):
    """The measurement structure's ground wire is a few ohms to tens of ohms."""
    resistance = nmos_flow.interconnect.resistance_between(
        NET_GROUND_RING, NET_GROUND_PAD)
    assert 2.0 < resistance < 50.0


def test_vco_inductor_not_double_counted(vco_flow):
    """The spiral's own metal must not appear as plain interconnect."""
    for wire in vco_flow.interconnect.wires:
        assert not ({wire.node_a, wire.node_b} == {"TANKP", "TANKN"})


def test_wider_ground_wire_has_lower_resistance(technology):
    from repro.interconnect import extract_interconnect
    from repro.layout.testchips import VcoLayoutSpec, make_vco_testchip

    nominal = extract_interconnect(make_vco_testchip(), technology)
    wide = extract_interconnect(
        make_vco_testchip(VcoLayoutSpec(ground_width_scale=2.0)), technology)
    r_nominal = nominal.resistance_between(NET_GROUND_RING, NET_GROUND_PAD)
    r_wide = wide.resistance_between(NET_GROUND_RING, NET_GROUND_PAD)
    assert r_wide == pytest.approx(r_nominal / 2, rel=1e-6)


@given(length=st.floats(min_value=10e-6, max_value=1e-3),
       width=st.floats(min_value=0.5e-6, max_value=10e-6))
@settings(max_examples=25, deadline=None)
def test_extracted_resistance_scales_with_geometry(technology, length, width):
    cell = Cell("w")
    draw_wire(cell, "M1", [(0.0, 0.0), (length, 0.0)], width, net="N",
              nodes=("A", "B"))
    extraction = extract_interconnect(cell, technology)
    expected = 0.078 * length / width
    assert extraction.resistance_between("A", "B") == pytest.approx(expected, rel=1e-6)


# -- package ---------------------------------------------------------------------------------


def test_package_models_validate():
    with pytest.raises(NetlistError):
        BondwireModel(inductance=-1e-9)
    with pytest.raises(NetlistError):
        RfProbeModel(resistance=0.0)


def test_package_requires_connections():
    package = PackageModel()
    with pytest.raises(NetlistError):
        package.add_to_circuit(Circuit("t"))


def test_rf_probe_connection_dc_path():
    circuit = Circuit("t")
    circuit.add_resistor("Rload", "PAD", "0", 1e3)
    package = PackageModel.rf_probed({"PAD": "EXT"})
    package.add_to_circuit(circuit)
    circuit.add_voltage_source("V1", "EXT", "0", 1.0)
    solution = dc_operating_point(circuit)
    # The probe only adds milliohms of series resistance at DC.
    assert solution.voltage("PAD") == pytest.approx(1.0, rel=1e-3)


def test_bondwire_inductance_isolates_at_high_frequency():
    circuit = Circuit("t")
    circuit.add_resistor("Rload", "PAD", "0", 1.0)
    package = PackageModel.bondwired({"PAD": "EXT"})
    package.add_to_circuit(circuit)
    circuit.add_voltage_source("V1", "EXT", "0", SourceValue(ac_magnitude=1.0))
    ac = ac_analysis(circuit, [1e6, 10e9])
    low = abs(ac.voltage("PAD")[0])
    high = abs(ac.voltage("PAD")[1])
    # At low frequency only the 0.12 ohm bondwire resistance divides against
    # the 1 ohm load; at 10 GHz the 2 nH bondwire (126 ohm) isolates the pad.
    assert low > 0.85
    assert high < 0.05
