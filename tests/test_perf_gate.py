"""The perf gate gates every PR — so it gets gated itself.

Covers the comparison core (threshold x jitter-floor interaction, the
per-stage breakdown floor) and the CLI contract against synthetic baseline /
current snapshots: regression detected, jitter suppressed, missing sections
hard-fail, new metrics tolerated.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import perf_gate  # noqa: E402

BASELINE = {
    "benchmark": "repro_perf_snapshot",
    "flow": {
        "extraction_seconds": 2.0,
        "total_seconds": 5.0,
        "extraction_breakdown": {
            "mesh_assembly_seconds": 0.5,
            "kron_reduction_seconds": 1.2,
        },
        "mesh_nodes": 4800,
    },
    "solver": {
        "rhs_columns": 8,
        "mesh": {
            "nx56": {"direct_cold_seconds": 0.6,
                     "multigrid_seconds": 0.2},
        },
    },
}


def _write(tmp_path, name, snapshot):
    path = tmp_path / name
    path.write_text(json.dumps(snapshot))
    return path


def _current(flow_total=5.0, extraction=2.0, kron=1.2, **extra):
    snapshot = json.loads(json.dumps(BASELINE))    # deep copy
    snapshot["flow"]["total_seconds"] = flow_total
    snapshot["flow"]["extraction_seconds"] = extraction
    snapshot["flow"]["extraction_breakdown"]["kron_reduction_seconds"] = kron
    snapshot.update(extra)
    return snapshot


# -- flatten / compare core ---------------------------------------------------------


def test_flatten_collects_only_seconds_keys():
    metrics = perf_gate.flatten_seconds(BASELINE)
    assert metrics["flow.total_seconds"] == 5.0
    assert metrics["solver.mesh.nx56.multigrid_seconds"] == 0.2
    assert "flow.mesh_nodes" not in metrics
    assert all(key.endswith("_seconds") for key in metrics)


def test_compare_flags_regression_over_threshold_and_floor():
    rows, regressed = perf_gate.compare(
        {"a_seconds": 1.0}, {"a_seconds": 3.0},
        threshold=2.5, min_delta=0.05)
    assert regressed
    assert rows[0]["status"] == "REGRESSED"
    assert rows[0]["ratio"] == pytest.approx(3.0)


def test_compare_suppresses_jitter_below_absolute_floor():
    # 4x ratio but only +30 ms absolute: below the floor, not a finding
    rows, regressed = perf_gate.compare(
        {"a_seconds": 0.01}, {"a_seconds": 0.04},
        threshold=2.5, min_delta=0.05)
    assert not regressed
    assert rows[0]["status"] == "ok"


def test_compare_within_threshold_passes():
    rows, regressed = perf_gate.compare(
        {"a_seconds": 1.0}, {"a_seconds": 2.0},
        threshold=2.5, min_delta=0.05)
    assert not regressed


def test_compare_breakdown_stages_use_stage_floor():
    baseline = {"flow.extraction_breakdown.kron_seconds": 0.02,
                "flow.total_seconds": 0.02}
    current = {"flow.extraction_breakdown.kron_seconds": 0.10,
               "flow.total_seconds": 0.10}
    # +80 ms at 5x: clears the section floor (0.05) but not the stage floor
    rows, regressed = perf_gate.compare(baseline, current, threshold=2.5,
                                        min_delta=0.05, stage_min_delta=0.1)
    by_name = {row["metric"]: row for row in rows}
    assert by_name["flow.total_seconds"]["status"] == "REGRESSED"
    assert by_name[
        "flow.extraction_breakdown.kron_seconds"]["status"] == "ok"
    assert regressed


def test_compare_new_and_removed_metrics_are_annotated():
    rows, regressed = perf_gate.compare(
        {"old_seconds": 1.0}, {"new_seconds": 1.0},
        threshold=2.5, min_delta=0.05)
    statuses = {row["metric"]: row["status"] for row in rows}
    assert statuses == {"old_seconds": "removed", "new_seconds": "new"}
    assert not regressed          # metric-level churn is annotated, not fatal


# -- CLI contract -------------------------------------------------------------------


def test_gate_passes_on_identical_snapshots(tmp_path, capsys):
    baseline = _write(tmp_path, "baseline.json", BASELINE)
    current = _write(tmp_path, "current.json", BASELINE)
    code = perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current)])
    assert code == 0
    assert "perf-gate: ok" in capsys.readouterr().out


def test_gate_detects_regression(tmp_path, capsys):
    baseline = _write(tmp_path, "baseline.json", BASELINE)
    current = _write(tmp_path, "current.json", _current(flow_total=30.0))
    code = perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current)])
    assert code == 1
    captured = capsys.readouterr()
    assert "flow.total_seconds" in captured.err
    assert "REGRESSED" not in captured.err or "regressed" in captured.err


def test_gate_suppresses_small_absolute_jitter(tmp_path):
    baseline = _write(tmp_path, "baseline.json", BASELINE)
    # 3x the 0.5 s mesh assembly stage = +1.0 s — but bump only the
    # *stage*, keeping totals flat, then raise the stage floor above it
    snapshot = _current()
    snapshot["flow"]["extraction_breakdown"]["mesh_assembly_seconds"] = 1.5
    current = _write(tmp_path, "current.json", snapshot)
    assert perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current),
                           "--stage-min-delta", "2.0"]) == 0
    assert perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current),
                           "--stage-min-delta", "0.5"]) == 1


def test_gate_fails_on_missing_section(tmp_path, capsys):
    """A benchmark section silently dropped from the measurement must fail."""
    baseline = _write(tmp_path, "baseline.json", BASELINE)
    snapshot = _current()
    del snapshot["solver"]
    current = _write(tmp_path, "current.json", snapshot)
    code = perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current)])
    assert code == 1
    assert "solver" in capsys.readouterr().err


def test_gate_section_filter_restricts_comparison(tmp_path):
    """--section limits both the comparison and the missing-section check."""
    baseline = _write(tmp_path, "baseline.json", BASELINE)
    snapshot = _current(flow_total=30.0)        # flow regressed
    del snapshot["flow"]                         # ...and then dropped
    current = _write(tmp_path, "current.json", snapshot)
    # gating only the solver section: the dropped flow section is out of scope
    assert perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current),
                           "--section", "solver"]) == 0
    assert perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current),
                           "--section", "flow"]) == 1


def test_gate_missing_baseline_file_fails(tmp_path, capsys):
    code = perf_gate.main(["--baseline", str(tmp_path / "nope.json"),
                           "--current", str(_write(tmp_path, "c.json",
                                                   BASELINE))])
    assert code == 1
    assert "does not exist" in capsys.readouterr().err


def test_gate_tolerates_new_sections_and_metrics(tmp_path):
    baseline = _write(tmp_path, "baseline.json", BASELINE)
    snapshot = _current()
    snapshot["solver"]["mesh"]["nx160"] = {"multigrid_seconds": 1.0}
    current = _write(tmp_path, "current.json", snapshot)
    assert perf_gate.main(["--baseline", str(baseline),
                           "--current", str(current)]) == 0


def test_markdown_table_lists_every_metric():
    rows, _ = perf_gate.compare(
        {"a_seconds": 1.0, "b_seconds": 0.5},
        {"a_seconds": 9.0, "c_seconds": 0.1},
        threshold=2.5, min_delta=0.05)
    table = perf_gate.markdown_table(rows, threshold=2.5)
    for name in ("a_seconds", "b_seconds", "c_seconds"):
        assert f"`{name}`" in table
    assert "regressed" in table and "removed" in table and "new" in table
