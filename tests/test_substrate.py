"""Substrate mesh, Kron reduction and layout-driven extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExtractionError
from repro.layout.geometry import Rect
from repro.substrate import (
    MeshSpec,
    PortKind,
    SubstrateMacromodel,
    SubstrateMesh,
    extract_substrate,
    identify_ports,
    kron_reduce,
)


@pytest.fixture(scope="module")
def small_mesh(technology):
    spec = MeshSpec(region=Rect(0, 0, 200e-6, 200e-6), nx=8, ny=8,
                    max_depth=100e-6, n_z_per_layer=2)
    return SubstrateMesh(spec=spec, profile=technology.substrate)


# -- mesh ---------------------------------------------------------------------------------


def test_mesh_spec_validation(technology):
    with pytest.raises(ExtractionError):
        MeshSpec(region=Rect(0, 0, 1e-6, 1e-6), nx=1, ny=4)
    with pytest.raises(ExtractionError):
        MeshSpec(region=Rect(0, 0, 1e-6, 1e-6), nx=4, ny=4, max_depth=-1.0)


def test_mesh_dimensions(small_mesh):
    assert small_mesh.nx == 8 and small_mesh.ny == 8
    assert small_mesh.nz >= 2
    assert small_mesh.n_nodes == 8 * 8 * small_mesh.nz
    assert small_mesh.z_edges[0] == 0.0
    assert small_mesh.z_edges[-1] <= 100e-6 + 1e-9


def test_mesh_node_index_bounds(small_mesh):
    assert small_mesh.node_index(0, 0, 0) == 0
    with pytest.raises(ExtractionError):
        small_mesh.node_index(8, 0, 0)
    with pytest.raises(ExtractionError):
        small_mesh.node_index(0, 0, small_mesh.nz)


def test_mesh_surface_cells_under(small_mesh):
    # A rectangle covering exactly the first cell (25 x 25 um cells).
    cells = small_mesh.surface_cells_under(Rect(0, 0, 25e-6, 25e-6))
    assert len(cells) >= 1
    total = sum(area for _ix, _iy, area in cells)
    assert total == pytest.approx(25e-6 * 25e-6, rel=1e-6)
    # A rectangle outside the mesh overlaps nothing.
    assert small_mesh.surface_cells_under(Rect(1.0, 1.0, 1.1, 1.1)) == []


def test_conductance_matrix_is_symmetric_laplacian(small_mesh):
    g = small_mesh.conductance_matrix()
    dense = g.toarray()
    assert np.allclose(dense, dense.T)
    # Zero row sums: the substrate floats.
    assert np.max(np.abs(dense.sum(axis=1))) < 1e-9 * np.max(dense)
    # Off-diagonal entries are non-positive conductance couplings.
    off = dense - np.diag(np.diag(dense))
    assert np.all(off <= 1e-15)
    assert np.all(np.diag(dense) > 0)


def test_conductance_scales_with_resistivity(technology):

    from repro.technology.process import SubstrateLayer, SubstrateProfile

    spec = MeshSpec(region=Rect(0, 0, 100e-6, 100e-6), nx=4, ny=4,
                    max_depth=50e-6, n_z_per_layer=1)
    low = SubstrateMesh(spec=spec, profile=SubstrateProfile(
        layers=(SubstrateLayer("b", 300e-6, 0.1),)))
    high = SubstrateMesh(spec=spec, profile=SubstrateProfile(
        layers=(SubstrateLayer("b", 300e-6, 0.2),)))
    g_low = low.conductance_matrix().toarray()
    g_high = high.conductance_matrix().toarray()
    assert np.allclose(g_low, 2.0 * g_high, rtol=1e-9)


# -- Kron reduction --------------------------------------------------------------------------


def _two_port_macromodel(small_mesh):
    g = small_mesh.conductance_matrix()
    left = [small_mesh.node_index(0, iy, 0) for iy in range(small_mesh.ny)]
    right = [small_mesh.node_index(small_mesh.nx - 1, iy, 0)
             for iy in range(small_mesh.ny)]
    return kron_reduce(g, [left, right], ["left", "right"], [1e6, 1e6])


def test_kron_reduce_two_port_properties(small_mesh):
    macromodel = _two_port_macromodel(small_mesh)
    y = macromodel.admittance
    assert y.shape == (2, 2)
    assert np.allclose(y, y.T, atol=1e-9)
    # Floating substrate: the reduced matrix still has ~zero row sums.
    assert np.max(np.abs(y.sum(axis=1))) < 1e-6 * np.max(np.abs(y))
    # The port-to-port coupling resistance is positive and finite.
    resistance = macromodel.coupling_resistance("left", "right")
    assert 0 < resistance < 1e7


def test_kron_reduce_validation(small_mesh):
    g = small_mesh.conductance_matrix()
    with pytest.raises(ExtractionError):
        kron_reduce(g, [[0]], ["a", "b"])
    with pytest.raises(ExtractionError):
        kron_reduce(g, [], [])
    with pytest.raises(ExtractionError):
        kron_reduce(g, [[]], ["a"])
    with pytest.raises(ExtractionError):
        kron_reduce(g, [[0]], ["a"], [0.0])


def test_macromodel_voltage_division(small_mesh):
    macromodel = _two_port_macromodel(small_mesh)
    # Driving "left" with "right" grounded: the sensed voltage at "right" is 0.
    division = macromodel.voltage_division("left", "right", {"right": 1e-6})
    assert division == pytest.approx(0.0, abs=1e-4)
    # Grounding "right" through a resistance comparable to the substrate path
    # gives a division strictly between 0 and 1.
    resistance = macromodel.coupling_resistance("left", "right")
    division = macromodel.voltage_division("left", "right",
                                           {"right": resistance})
    assert 0.05 < division < 0.95


def test_macromodel_to_circuit_roundtrip(small_mesh):
    macromodel = _two_port_macromodel(small_mesh)
    circuit = macromodel.to_circuit(node_names={"left": "A", "right": "B"})
    assert any(e.name.startswith("Rsub_") for e in circuit)
    nodes = circuit.nodes()
    assert "A" in nodes and "B" in nodes


def test_macromodel_shape_validation():
    with pytest.raises(ExtractionError):
        SubstrateMacromodel(ports=("a", "b"), admittance=np.zeros((3, 3)))
    model = SubstrateMacromodel(ports=("a", "b"),
                                admittance=np.array([[1.0, -1.0], [-1.0, 1.0]]))
    with pytest.raises(ExtractionError):
        model.port_index("zzz")
    assert model.coupling_resistance("a", "b") == pytest.approx(1.0)


@given(g_tie=st.floats(min_value=1e-3, max_value=1e3))
@settings(max_examples=20, deadline=None)
def test_voltage_division_bounded(small_mesh, g_tie):
    """For any grounding resistance the division stays within [0, 1]."""
    macromodel = _two_port_macromodel(small_mesh)
    division = macromodel.voltage_division("left", "right", {"right": 1.0 / g_tie})
    assert -1e-9 <= division <= 1.0 + 1e-9


# -- layout-driven extraction -------------------------------------------------------------------


def test_identify_ports_kinds(nmos_cell, technology):
    ports = identify_ports(nmos_cell, technology)
    kinds = {p.kind for p in ports}
    assert PortKind.TAP in kinds
    assert PortKind.INJECTION in kinds
    assert PortKind.BACKGATE in kinds
    backgates = [p for p in ports if p.kind is PortKind.BACKGATE]
    assert len(backgates) == 4


def test_identify_ports_vco(vco_cell, technology):
    ports = identify_ports(vco_cell, technology)
    kinds = [p.kind for p in ports]
    assert kinds.count(PortKind.WELL) >= 3        # 2 PMOS wells + varactor wells
    assert kinds.count(PortKind.INDUCTOR) == 1
    inductor_port = next(p for p in ports if p.kind is PortKind.INDUCTOR)
    assert inductor_port.coupling_capacitance == pytest.approx(120e-15)


def test_extract_substrate_macromodel(nmos_flow):
    extraction = nmos_flow.substrate
    macromodel = extraction.macromodel
    n = len(extraction.ports)
    assert macromodel.admittance.shape == (n, n)
    assert np.allclose(macromodel.admittance, macromodel.admittance.T, atol=1e-9)
    # All port pairs couple with finite positive resistance through the bulk.
    injection = next(p.name for p in extraction.ports
                     if p.kind is PortKind.INJECTION)
    ring = next(p.name for p in extraction.ports
                if p.kind is PortKind.TAP)
    assert 0 < macromodel.coupling_resistance(injection, ring) < 1e9


def test_extraction_ports_of_helpers(nmos_flow):
    extraction = nmos_flow.substrate
    assert extraction.ports_of_kind(PortKind.BACKGATE)
    assert extraction.port(extraction.ports[0].name) is extraction.ports[0]
    with pytest.raises(ExtractionError):
        extraction.port("no such port")


def test_ground_wire_resistance_matters(nmos_flow):
    """Tying the local ring through its wire resistance raises the back-gate
    voltage compared to an ideally grounded ring — the paper's key Section-3
    observation."""
    extraction = nmos_flow.substrate
    macromodel = extraction.macromodel
    injection = next(p.name for p in extraction.ports
                     if p.kind is PortKind.INJECTION)
    ring = next(p.name for p in extraction.ports
                if p.kind is PortKind.TAP and "mos_ground_ring" in p.name)
    outer = next(p.name for p in extraction.ports
                 if p.kind is PortKind.TAP and "outer" in p.name)
    backgate = extraction.ports_of_kind(PortKind.BACKGATE)[0].name
    ideal = macromodel.voltage_division(injection, backgate,
                                        {ring: 1e-3, outer: 0.05})
    with_wire = macromodel.voltage_division(injection, backgate,
                                            {ring: 15.0, outer: 0.05})
    assert with_wire > ideal * 1.5
