"""The geometric-multigrid backend: transfers, smoothing, ladder, accuracy.

The accuracy suite runs DC/Kron mesh solves through the multigrid backend
and asserts it matches the direct-LU reference to <= 1e-8 (the observed
error is orders of magnitude better — the float64 outer iteration drives
the residual to ``mg_rtol`` regardless of the float32 cycles inside).  The
structural tests pin down the transfer operators, the Galerkin hierarchy,
the solver stats, and every rung of the degradation ladder:
multigrid -> CG/ILU -> (reuse-)LU.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SimulationError
from repro.layout.geometry import Rect
from repro.simulator.linalg import (
    BACKEND_MULTIGRID,
    BACKENDS,
    GridGeometry,
    MultigridSolver,
    SolverOptions,
    make_solver,
)
from repro.simulator.linalg.multigrid import build_hierarchy, prolongation_1d
from repro.studies.cache import fingerprint
from repro.substrate import MeshSpec, SubstrateMesh, kron_reduce
from repro.technology import make_technology

MG_ATOL = 1e-8


@pytest.fixture(scope="module")
def technology():
    return make_technology()


def _mesh_system(technology, nx=24, ny=24):
    """A substrate-mesh Laplacian plus port contacts (SPD) and its grid."""
    spec = MeshSpec(region=Rect(0, 0, nx * 6e-6, ny * 6e-6), nx=nx, ny=ny,
                    max_depth=150e-6, n_z_per_layer=2)
    mesh = SubstrateMesh(spec=spec, profile=technology.substrate)
    conductance = mesh.conductance_matrix()
    n = conductance.shape[0]
    diagonal = np.zeros(n)
    diagonal[: nx * ny] += 1e3 / (nx * ny)
    matrix = sp.csc_matrix(conductance + sp.diags(diagonal + 1e-12))
    rhs = np.zeros((n, 4))
    for k in range(4):
        rhs[k * nx:(k + 1) * nx, k] = -1.0
    return mesh, matrix, rhs


def _mg_options(**overrides):
    return SolverOptions(backend=BACKEND_MULTIGRID, **overrides)


# -- transfer operators -------------------------------------------------------------


@pytest.mark.parametrize("n", [4, 5, 8, 9, 13, 56])
def test_prolongation_rows_sum_to_one(n):
    p = prolongation_1d(n)
    assert p.shape == (n, (n + 1) // 2)
    np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)


def test_prolongation_interior_weights():
    p = prolongation_1d(8).toarray()
    # fine cell 2 sits a quarter cell left of parent 1: 0.75 / 0.25 split
    assert p[2, 1] == pytest.approx(0.75)
    assert p[2, 0] == pytest.approx(0.25)
    # boundary cells clamp to their parent with full weight
    assert p[0, 0] == pytest.approx(1.0)
    assert p[7, 3] == pytest.approx(1.0)


def test_grid_geometry_validation():
    assert GridGeometry(8, 9, 3).n_nodes == 216
    with pytest.raises(SimulationError):
        GridGeometry(0, 9, 3)
    with pytest.raises(SimulationError):
        GridGeometry(8, 9, -1)


# -- hierarchy ----------------------------------------------------------------------


def test_galerkin_hierarchy_is_symmetric(technology):
    mesh, matrix, _ = _mesh_system(technology)
    levels = build_hierarchy(matrix, mesh.grid_geometry(),
                             coarsest_size=100, smoother="rbgs")
    assert len(levels) >= 3
    sizes = [level.matrix.shape[0] for level in levels]
    assert sizes == sorted(sizes, reverse=True)
    assert levels[-1].lu is not None
    for level in levels:
        operator = sp.csr_matrix(level.matrix.astype(np.float64))
        asymmetry = abs(operator - operator.T)
        scale = np.abs(operator.data).max()
        assert asymmetry.data.max() if asymmetry.nnz else 0.0 <= 1e-10 * scale


def test_hierarchy_respects_coarsest_size(technology):
    mesh, matrix, _ = _mesh_system(technology)
    shallow = build_hierarchy(matrix, mesh.grid_geometry(),
                              coarsest_size=matrix.shape[0], smoother="rbgs")
    assert len(shallow) == 1 and shallow[0].lu is not None


# -- accuracy against direct LU -----------------------------------------------------


def test_multigrid_matches_direct_on_mesh_block(technology):
    """Standalone block cycles match the direct reference to <= 1e-8."""
    mesh, matrix, rhs = _mesh_system(technology)
    reference = spla.splu(matrix).solve(rhs)
    solver = MultigridSolver(_mg_options())
    factorization = solver.factorize(matrix, grid=mesh.grid_geometry())
    solution = factorization.solve(rhs)
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale
    assert solver.stats.mg_solves == rhs.shape[1]
    assert solver.stats.mg_cycles > 0
    assert solver.stats.fallbacks == 0
    history = factorization.residual_history
    assert history and history[-1] <= solver.options.mg_rtol
    assert history == sorted(history, reverse=True)


def test_multigrid_matches_direct_single_vector(technology):
    """Single vectors go through MG-preconditioned CG by default."""
    mesh, matrix, rhs = _mesh_system(technology)
    reference = spla.splu(matrix).solve(rhs[:, 0])
    solver = MultigridSolver(_mg_options())
    solution = solver.solve(matrix, rhs[:, 0], grid=mesh.grid_geometry())
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale
    assert solver.stats.cg_solves == 1
    assert solver.stats.mg_solves == 1
    assert solver.stats.fallbacks == 0


@pytest.mark.parametrize("mode", ["standalone", "pcg"])
def test_multigrid_modes_match_direct(technology, mode):
    mesh, matrix, rhs = _mesh_system(technology)
    reference = spla.splu(matrix).solve(rhs)
    solver = MultigridSolver(_mg_options(mg_mode=mode))
    solution = solver.factorize(matrix, grid=mesh.grid_geometry()).solve(rhs)
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale


@pytest.mark.parametrize("smoother,cycle", [("rbgs", "w"), ("jacobi", "v")])
def test_multigrid_variants_match_direct(technology, smoother, cycle):
    mesh, matrix, rhs = _mesh_system(technology)
    reference = spla.splu(matrix).solve(rhs)
    solver = MultigridSolver(_mg_options(mg_smoother=smoother,
                                         mg_cycle=cycle,
                                         mg_max_cycles=200))
    solution = solver.factorize(matrix, grid=mesh.grid_geometry()).solve(rhs)
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale


def test_multigrid_complex_rhs(technology):
    mesh, matrix, rhs = _mesh_system(technology)
    complex_rhs = rhs[:, 0] + 1j * rhs[:, 1]
    lu = spla.splu(matrix)
    reference = lu.solve(rhs[:, 0]) + 1j * lu.solve(rhs[:, 1])
    solver = MultigridSolver(_mg_options())
    solution = solver.solve(matrix, complex_rhs, grid=mesh.grid_geometry())
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale


def test_multigrid_kron_reduction_matches_direct(technology):
    mesh, matrix, _ = _mesh_system(technology)
    conductance = mesh.conductance_matrix()
    nx = mesh.nx
    port_nodes = [[mesh.node_index(ix, 0, 0) for ix in range(4)],
                  [mesh.node_index(ix, mesh.ny - 1, 0)
                   for ix in range(nx - 4, nx)]]
    names = ["agg", "vic"]
    # realistic contact conductances (~5 ohm taps), as the extraction layer
    # stamps them — ideal 1e6 S contacts make the Schur complement cancel
    # ~11 digits and amplify *any* solver's residual into the result
    contacts = [0.2, 0.2]
    direct = kron_reduce(conductance, port_nodes, names,
                         port_contact_conductance=contacts)
    multigrid = kron_reduce(conductance, port_nodes, names,
                            port_contact_conductance=contacts,
                            solver=_mg_options(),
                            grid=mesh.grid_geometry())
    scale = np.max(np.abs(direct.admittance))
    assert np.max(np.abs(multigrid.admittance
                         - direct.admittance)) <= MG_ATOL * scale


# -- the degradation ladder ---------------------------------------------------------


def test_spd_without_grid_degrades_to_cg(technology):
    """SPD system, no geometry: one rung down to CG/ILU, counted."""
    _, matrix, rhs = _mesh_system(technology)
    reference = spla.splu(matrix).solve(rhs[:, 0])
    solver = MultigridSolver(_mg_options())
    solution = solver.solve(matrix, rhs[:, 0])
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale
    assert solver.stats.fallbacks == 1
    assert solver.stats.cg_solves == 1
    assert solver.stats.mg_solves == 0


def test_grid_size_mismatch_is_treated_as_no_grid(technology):
    _, matrix, rhs = _mesh_system(technology)
    solver = MultigridSolver(_mg_options())
    wrong = GridGeometry(3, 3, 3)        # 27 != mesh size
    solver.solve(matrix, rhs[:, 0], grid=wrong)
    assert solver.stats.fallbacks == 1
    assert solver.stats.mg_solves == 0


def test_non_spd_with_grid_continues_down_iterative_ladder():
    """A non-symmetric system steps to the iterative backend's LU rung."""
    n = 27
    rng = np.random.default_rng(7)
    matrix = sp.csc_matrix(rng.standard_normal((n, n)) + 10.0 * np.eye(n))
    rhs = rng.standard_normal(n)
    reference = spla.splu(matrix).solve(rhs)
    solver = MultigridSolver(_mg_options())
    solution = solver.solve(matrix, rhs, grid=GridGeometry(3, 3, 3))
    np.testing.assert_allclose(solution, reference, atol=1e-9)
    assert solver.stats.fallbacks == 1           # iterative backend's rung
    assert solver.stats.mg_solves == 0


def test_ladder_disabled_raises(technology):
    _, matrix, rhs = _mesh_system(technology)
    solver = MultigridSolver(_mg_options(iterative_fallback=False))
    with pytest.raises(SimulationError):
        solver.solve(matrix, rhs[:, 0])          # SPD but gridless


def test_stagnation_falls_back_without_wrong_answers(technology):
    """A cycle budget too small to converge still returns the right answer
    (stagnation/exhaustion steps down to MG-preconditioned CG, then LU)."""
    mesh, matrix, rhs = _mesh_system(technology)
    reference = spla.splu(matrix).solve(rhs)
    solver = MultigridSolver(_mg_options(mg_max_cycles=1))
    solution = solver.factorize(matrix, grid=mesh.grid_geometry()).solve(rhs)
    scale = np.max(np.abs(reference))
    assert np.max(np.abs(solution - reference)) <= MG_ATOL * scale
    assert solver.stats.fallbacks >= 1


def test_empty_and_shape_errors(technology):
    solver = MultigridSolver(_mg_options())
    empty = sp.csc_matrix((0, 0))
    assert solver.factorize(empty).solve(np.zeros((0,))).shape == (0,)
    _, matrix, _ = _mesh_system(technology)
    factorization = solver.factorize(matrix, grid=None)
    with pytest.raises(SimulationError):
        factorization.solve(np.zeros(3))


# -- stats, spawn/absorb, registry --------------------------------------------------


def test_multigrid_registered_in_backends():
    assert BACKEND_MULTIGRID in BACKENDS
    solver = make_solver(SolverOptions(backend=BACKEND_MULTIGRID))
    assert isinstance(solver, MultigridSolver)
    assert solver.stats.backend == BACKEND_MULTIGRID


def test_spawned_worker_counts_are_absorbed(technology):
    mesh, matrix, rhs = _mesh_system(technology)
    solver = MultigridSolver(_mg_options(), mirror_global=False)
    worker = solver.spawn()
    worker.factorize(matrix, grid=mesh.grid_geometry()).solve(rhs)
    assert solver.stats.mg_solves == 0
    solver.absorb(worker)
    assert solver.stats.mg_solves == rhs.shape[1]
    assert solver.stats.mg_cycles == worker.stats.mg_cycles > 0


# -- options and cache-key participation --------------------------------------------


@pytest.mark.parametrize("bad", [
    dict(mg_cycle="x"),
    dict(mg_smoother="sor"),
    dict(mg_mode="block"),
    dict(mg_pre_smooth=-1),
    dict(mg_pre_smooth=0, mg_post_smooth=0),
    dict(mg_coarsest_size=0),
    dict(mg_max_cycles=0),
    dict(mg_rtol=0.0),
])
def test_mg_option_validation(bad):
    with pytest.raises(SimulationError):
        SolverOptions(backend=BACKEND_MULTIGRID, **bad)


def test_mg_options_participate_in_cache_key():
    base = SolverOptions(backend=BACKEND_MULTIGRID)
    assert fingerprint(base) == fingerprint(
        SolverOptions(backend=BACKEND_MULTIGRID))
    for changed in (_mg_options(mg_cycle="w"),
                    _mg_options(mg_smoother="jacobi"),
                    _mg_options(mg_rtol=1e-9),
                    _mg_options(mg_pre_smooth=3)):
        assert fingerprint(changed) != fingerprint(base)
