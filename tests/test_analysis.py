"""Spectrum emulation, noise waveforms and curve comparison."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    DigitalSwitchingNoise,
    SinusoidalNoise,
    classify_mechanism,
    compare_curves,
    compute_spectrum,
    slope_per_decade,
)
from repro.errors import AnalysisError


# -- spectrum ------------------------------------------------------------------------------


def test_spectrum_single_tone_power():
    """A 0.1 V peak tone into 50 ohm is -10 dBm; the FFT view must agree.

    The tone is placed exactly on an FFT bin (4000 samples at 100 MS/s give a
    25 kHz bin spacing) so no scalloping loss enters the comparison.
    """
    fs = 100e6
    times = np.arange(4000) / fs
    waveform = 0.1 * np.sin(2 * np.pi * 10e6 * times)
    spectrum = compute_spectrum(times, waveform)
    frequency, power = spectrum.carrier()
    assert frequency == pytest.approx(10e6, rel=1e-2)
    assert power == pytest.approx(-10.0, abs=0.3)


def test_spectrum_two_tone_spur_measurement():
    fs = 200e6
    times = np.arange(8000) / fs
    waveform = (1.0 * np.sin(2 * np.pi * 50e6 * times)
                + 0.01 * np.sin(2 * np.pi * 40e6 * times)
                + 0.01 * np.sin(2 * np.pi * 60e6 * times))
    spectrum = compute_spectrum(times, waveform)
    carrier_freq, carrier_power = spectrum.carrier()
    assert carrier_freq == pytest.approx(50e6, rel=1e-2)
    lower, upper = spectrum.spur_powers(carrier_freq, 10e6)
    assert lower == pytest.approx(carrier_power - 40.0, abs=0.5)
    assert upper == pytest.approx(carrier_power - 40.0, abs=0.5)
    total = spectrum.total_spur_power_dbm(carrier_freq, 10e6)
    assert total == pytest.approx(lower + 3.01, abs=0.2)


def test_spectrum_window_independence():
    fs = 100e6
    times = np.arange(4000) / fs
    waveform = 0.5 * np.sin(2 * np.pi * 12.5e6 * times)
    hann = compute_spectrum(times, waveform, window="hann")
    rect = compute_spectrum(times, waveform, window="rect")
    assert hann.carrier()[1] == pytest.approx(rect.carrier()[1], abs=0.1)
    with pytest.raises(AnalysisError):
        compute_spectrum(times, waveform, window="kaiser")


def test_spectrum_input_validation():
    with pytest.raises(AnalysisError):
        compute_spectrum(np.arange(4), np.zeros(4))
    with pytest.raises(AnalysisError):
        compute_spectrum(np.zeros(100), np.zeros(101))


def test_spectrum_power_at_and_peak_near():
    fs = 1e6
    times = np.arange(1024) / fs
    waveform = np.sin(2 * np.pi * 100e3 * times)
    spectrum = compute_spectrum(times, waveform)
    assert spectrum.power_at(100e3) > spectrum.power_at(300e3)
    frequency, _power = spectrum.peak_power_near(100e3, 20e3)
    assert frequency == pytest.approx(100e3, rel=0.05)
    with pytest.raises(AnalysisError):
        spectrum.peak_power_near(100e3, 1e-3)


# -- noise waveforms -----------------------------------------------------------------------


def test_sinusoidal_noise_amplitude_matches_dbm():
    noise = SinusoidalNoise(power_dbm=-5.0, frequency=10e6)
    assert noise.amplitude == pytest.approx(0.1778, rel=1e-3)
    value = noise.source_value()
    assert value.ac_magnitude == pytest.approx(noise.amplitude)
    times = np.linspace(0, 1e-6, 2001)
    samples = noise.samples(times)
    assert np.max(samples) == pytest.approx(noise.amplitude, rel=1e-2)
    with pytest.raises(AnalysisError):
        SinusoidalNoise(power_dbm=-5.0, frequency=-1.0)


def test_digital_switching_noise_properties():
    noise = DigitalSwitchingNoise(clock_frequency=100e6)
    times = np.linspace(0, 50e-9, 2000)
    samples = noise.samples(times)
    assert np.max(np.abs(samples)) <= noise.pulse_amplitude + 1e-12
    assert np.max(np.abs(samples)) > 0
    assert noise.fundamental_amplitude() > 0
    value = noise.source_value()
    assert value.waveform is not None
    assert value.value_at(0.0) == pytest.approx(float(samples[0]), abs=1e-6)
    with pytest.raises(AnalysisError):
        DigitalSwitchingNoise(clock_frequency=-1.0)


# -- comparison ------------------------------------------------------------------------------


def test_compare_curves_interpolation_and_metrics():
    axis = np.array([1.0, 2.0, 3.0])
    reference = np.array([0.0, -10.0, -20.0])
    simulated_axis = np.array([1.0, 1.5, 2.5, 3.0])
    simulated = np.array([1.0, -4.0, -14.0, -19.0])
    comparison = compare_curves(axis, reference, simulated_axis, simulated)
    assert comparison.max_abs_error_db == pytest.approx(1.0)
    assert comparison.mean_abs_error_db == pytest.approx(1.0)
    assert comparison.bias_db == pytest.approx(1.0)
    assert comparison.within(1.5)
    assert not comparison.within(0.5)


def test_compare_curves_validation():
    with pytest.raises(AnalysisError):
        compare_curves(np.array([1.0, 2.0]), np.array([0.0]),
                       np.array([1.0, 2.0]), np.array([0.0, 1.0]))
    with pytest.raises(AnalysisError):
        compare_curves(np.array([1.0]), np.array([0.0]),
                       np.array([1.0]), np.array([0.0]))


def test_slope_per_decade_pure_line():
    frequencies = np.logspace(5, 7, 10)
    level = -20.0 * np.log10(frequencies / 1e5) - 40.0
    assert slope_per_decade(frequencies, level) == pytest.approx(-20.0)
    flat = np.full_like(frequencies, -60.0)
    assert slope_per_decade(frequencies, flat) == pytest.approx(0.0, abs=1e-9)
    with pytest.raises(AnalysisError):
        slope_per_decade(np.array([1.0]), np.array([0.0]))
    with pytest.raises(AnalysisError):
        slope_per_decade(np.array([-1.0, 1.0]), np.array([0.0, 1.0]))


def test_classify_mechanism_bands():
    assert classify_mechanism(-20.0) == "resistive coupling + FM"
    assert classify_mechanism(-17.0) == "resistive coupling + FM"
    assert classify_mechanism(0.0) == "resistive+AM or capacitive+FM"
    assert classify_mechanism(20.0) == "capacitive coupling + AM"
    assert classify_mechanism(40.0) == "mixed / unclassified"


@given(slope=st.floats(min_value=-25.0, max_value=-15.0),
       offset=st.floats(min_value=-120.0, max_value=0.0))
@settings(max_examples=30, deadline=None)
def test_slope_recovery_property(slope, offset):
    frequencies = np.logspace(5, 7.2, 15)
    level = slope * np.log10(frequencies / frequencies[0]) + offset
    assert slope_per_decade(frequencies, level) == pytest.approx(slope, abs=1e-6)
    assert classify_mechanism(slope_per_decade(frequencies, level)) == \
        "resistive coupling + FM"
