"""Shared fixtures.

Extraction flows are expensive (seconds each), so the integration fixtures are
session-scoped and use a deliberately coarse substrate mesh: the unit and
integration tests check behaviour and invariants, while the benchmarks use the
calibrated default resolution to regenerate the paper's figures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flow import FlowOptions, run_extraction_flow
from repro.core.nmos import NmosExperimentOptions, run_nmos_experiment
from repro.core.vco_experiment import VcoExperimentOptions, VcoImpactAnalysis
from repro.layout.testchips import (
    make_nmos_measurement_structure,
    make_vco_testchip,
)
from repro.substrate.extraction import SubstrateExtractionOptions
from repro.technology import make_technology


@pytest.fixture(scope="session")
def technology():
    return make_technology()


@pytest.fixture(scope="session")
def coarse_flow_options():
    """Coarse-mesh flow options used to keep integration tests fast."""
    return FlowOptions(substrate=SubstrateExtractionOptions(
        nx=20, ny=20, n_z_per_layer=2, lateral_margin=80e-6))


@pytest.fixture(scope="session")
def nmos_cell():
    return make_nmos_measurement_structure()


@pytest.fixture(scope="session")
def vco_cell():
    return make_vco_testchip()


@pytest.fixture(scope="session")
def nmos_flow(technology, nmos_cell, coarse_flow_options):
    return run_extraction_flow(nmos_cell, technology, options=coarse_flow_options)


@pytest.fixture(scope="session")
def vco_flow(technology, vco_cell, coarse_flow_options):
    return run_extraction_flow(vco_cell, technology, options=coarse_flow_options)


@pytest.fixture(scope="session")
def nmos_result(technology, coarse_flow_options):
    options = NmosExperimentOptions(bias_points=(0.5, 1.05, 1.6),
                                    flow=coarse_flow_options)
    return run_nmos_experiment(technology, options=options)


@pytest.fixture(scope="session")
def vco_analysis(technology, coarse_flow_options):
    options = VcoExperimentOptions(
        vtune_values=(0.0, 0.75),
        noise_frequencies=tuple(float(f) for f in
                                np.logspace(np.log10(3e5), np.log10(15e6), 5)),
        flow=coarse_flow_options)
    return VcoImpactAnalysis(technology, options=options)
