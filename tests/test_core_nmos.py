"""Section 3 / Figure 3 integration test (coarse mesh, trend-level checks).

The benchmarks regenerate Figure 3 at the calibrated mesh resolution; these
tests check that the experiment machinery produces self-consistent results on
a coarse mesh quickly.
"""

import numpy as np
import pytest



def test_transfer_curve_is_monotonically_decreasing(nmos_result):
    """The substrate-to-output transfer falls with bias, as in Figure 3."""
    assert np.all(np.diff(nmos_result.transfer_db) < 0)


def test_transfer_in_the_paper_band(nmos_result):
    """On the coarse test mesh the transfer stays within +/-12 dB of the
    paper's -45..-52 dB band (the calibrated benchmark configuration lands
    within a few dB)."""
    assert np.all(nmos_result.transfer_db < -30.0)
    assert np.all(nmos_result.transfer_db > -70.0)
    assert nmos_result.comparison.max_abs_error_db < 12.0


def test_reference_curve_comes_from_paper(nmos_result):
    assert nmos_result.reference_db[0] == pytest.approx(-45.0)
    assert nmos_result.reference_db[-1] == pytest.approx(-52.0)


def test_small_signal_ranges_track_paper(nmos_result):
    """gmb and gds rise with bias and stay in the measured order of magnitude."""
    assert np.all(np.diff(nmos_result.gmb) > 0)
    assert np.all(np.diff(nmos_result.gds) > 0)
    assert 5e-3 < nmos_result.gmb[0] < 25e-3
    assert 20e-3 < nmos_result.gmb[-1] < 60e-3
    assert 1e-3 < nmos_result.gds[0] < 6e-3
    assert 10e-3 < nmos_result.gds[-1] < 45e-3


def test_crossover_frequencies_far_above_noise_band(nmos_result):
    """Junction-cap coupling only matters above a few GHz (paper: 5-19 GHz),
    far above the analysed 15 MHz substrate-noise band."""
    assert np.all(nmos_result.crossover_frequencies > 1e9)


def test_substrate_division_order_of_magnitude(nmos_result):
    """The back-gate voltage division is in the 1e-4..1e-2 range (paper 1/652)
    and collapses when the ground wire is made ideal."""
    assert 1e-4 < nmos_result.substrate_division < 2e-2
    assert nmos_result.substrate_division_ideal_ground < nmos_result.substrate_division
    assert nmos_result.division_increase_factor > 1.5


def test_ground_wire_resistance_extracted(nmos_result):
    assert 5.0 < nmos_result.ground_wire_resistance < 30.0


def test_rows_table(nmos_result):
    rows = nmos_result.rows()
    assert len(rows) == len(nmos_result.bias)
    assert set(rows[0]) == {"bias_v", "reference_db", "simulated_db"}
