"""Fault-injection suite: the campaign engine under deliberate sabotage.

Drives every recovery path of the sweep engine with the deterministic
:class:`~repro.studies.faults.FaultPlan` harness instead of flaky real-world
failures:

* a hung task trips ``task_timeout``, its worker is killed, the task retried
  and the campaign completes with results identical to a healthy run;
* ``on_error="skip"`` / ``"retry_then_skip"`` yield partial results whose
  failed corners are structured records that ``show`` lists and ``resume``
  re-runs;
* a campaign killed outright (``os._exit`` mid-run, the moral equivalent of
  ``kill -9``) resumes from its crash journal with zero lost corners and a
  byte-identical NPZ;
* a DC corner that plain Newton cannot crack converges through the
  gmin/source-stepping continuation ladder with the degradation recorded;
* concurrent writers and pruners cannot corrupt the disk extraction cache.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions
from repro.errors import (
    AnalysisError,
    CampaignError,
    ConvergenceError,
    CornerFailure,
)
from repro.netlist.circuit import Circuit
from repro.simulator import solver as solver_module
from repro.simulator.dc import DcOptions, dc_operating_point
from repro.simulator.linalg import SolverOptions
from repro.studies import (
    Campaign,
    CampaignJournal,
    CheckpointPolicy,
    DiskExtractionCache,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ParamSpace,
    ProcessPoolBackend,
    SerialBackend,
    SweepResult,
    SweepRunner,
    TaskFailure,
)
from repro.studies.cli import main
from repro.substrate.extraction import SubstrateExtractionOptions
from repro.technology import make_technology

TINY_MESH = FlowOptions(substrate=SubstrateExtractionOptions(
    nx=12, ny=12, n_z_per_layer=2, lateral_margin=60e-6))


def make_ft_campaign() -> Campaign:
    """The 2-corner campaign of this suite (also built by the kill child)."""
    return Campaign(
        name="fault_tolerance",
        space=ParamSpace({"vtune": (0.0, 0.75),
                          "noise_frequency": (1e6, 4e6)}),
        options=VcoExperimentOptions(vtune_values=(0.0,),
                                     noise_frequencies=(1e6, 4e6),
                                     flow=TINY_MESH))


@pytest.fixture(scope="module")
def ft_campaign():
    return make_ft_campaign()


@pytest.fixture(scope="module")
def reference(technology, ft_campaign, tmp_path_factory):
    """One healthy run (plus its warm disk cache) to compare everything to."""
    cache_dir = tmp_path_factory.mktemp("ftcache")
    runner = SweepRunner(technology, cache=DiskExtractionCache(cache_dir))
    return runner.run(ft_campaign), cache_dir


# -- fault harness plumbing (cheap echo tasks, no simulation) -----------------


@dataclass(frozen=True)
class _EchoTask:
    index: int

    def corner_label(self) -> str:
        return f"echo task {self.index}"


def _echo(task: _EchoTask) -> int:
    return task.index * 10


def _interrupt(task: _EchoTask) -> int:
    raise KeyboardInterrupt


def test_fault_plan_counts_attempts_across_processes(tmp_path):
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("raise", task_index=0, attempts=2),))
    wrapped = plan.wrap(_echo)
    # Re-pickling between attempts models fresh worker processes: the
    # attempt counter must live on disk, not in the plan object.
    for _ in range(2):
        wrapped = pickle.loads(pickle.dumps(wrapped))
        with pytest.raises(InjectedFault):
            wrapped(_EchoTask(0))
    assert wrapped(_EchoTask(0)) == 0          # third attempt passes
    assert wrapped(_EchoTask(1)) == 10         # other tasks never faulted
    assert plan.attempts_seen(0) == 3


def test_serial_backend_retries_through_injected_faults(tmp_path):
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("raise", task_index=1, attempts=2),))
    backend = SerialBackend(retries=2)
    results = backend.run(plan.wrap(_echo), [_EchoTask(0), _EchoTask(1)])
    assert results == [0, 10]
    assert backend.task_attempts == [1, 3]


@pytest.mark.parametrize("workers", [1, 2])
def test_keyboard_interrupt_is_never_swallowed(tmp_path, workers):
    # Whatever the policy and retry budget, a Ctrl-C must stop the campaign
    # — on the serial path, the single-worker in-process path and the pool.
    backend = ProcessPoolBackend(max_workers=workers, retries=3) \
        if workers > 1 else SerialBackend(retries=3)
    with pytest.raises(KeyboardInterrupt):
        backend.run(_interrupt, [_EchoTask(0)], on_error="skip")


# -- timeouts and backoff ------------------------------------------------------


def _hang_plan(tmp_path, attempts: int) -> FaultPlan:
    return FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("hang", task_index=0, attempts=attempts,
                                      hang_seconds=60.0),))


def test_hung_task_trips_timeout_and_retry_completes(tmp_path):
    plan = _hang_plan(tmp_path, attempts=1)
    backend = ProcessPoolBackend(max_workers=2, retries=1, task_timeout=1.0,
                                 backoff_base=0.01, backoff_seed=7)
    start = time.monotonic()
    results = backend.run(plan.wrap(_echo), [_EchoTask(0), _EchoTask(1)])
    assert results == [0, 10]
    assert backend.task_attempts[0] == 2       # first attempt hung
    assert backend.pool_rebuilds >= 1          # the hung pool was recycled
    assert time.monotonic() - start < 30.0     # detected, not waited out


def test_permanently_hung_task_aborts_with_timeout_failure(tmp_path):
    plan = _hang_plan(tmp_path, attempts=5)
    backend = ProcessPoolBackend(max_workers=2, retries=0, task_timeout=1.0,
                                 backoff_base=0.01)
    with pytest.raises(CampaignError) as excinfo:
        backend.run(plan.wrap(_echo), [_EchoTask(0), _EchoTask(1)])
    [failure] = [f for f in excinfo.value.failures if f.timed_out]
    assert "echo task 0" in failure.label
    assert isinstance(excinfo.value, AnalysisError)   # hierarchy holds
    assert isinstance(excinfo.value.__cause__, TimeoutError)


def test_skip_policy_records_timeout_and_keeps_going(tmp_path):
    plan = _hang_plan(tmp_path, attempts=5)
    backend = ProcessPoolBackend(max_workers=2, retries=2, task_timeout=1.0,
                                 backoff_base=0.01)
    results = backend.run(plan.wrap(_echo),
                          [_EchoTask(0), _EchoTask(1), _EchoTask(2)],
                          on_error="skip")
    assert results[1:] == [10, 20]
    failure = results[0]
    assert isinstance(failure, TaskFailure) and failure.timed_out
    assert failure.attempts == 1               # skip = single attempt


def test_worker_killing_fault_breaks_pool_and_is_retried(tmp_path):
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("exit", task_index=0, attempts=1),))
    backend = ProcessPoolBackend(max_workers=2, retries=1, backoff_base=0.01)
    results = backend.run(plan.wrap(_echo), [_EchoTask(0), _EchoTask(1)])
    assert results == [0, 10]
    assert backend.task_attempts[0] == 2
    assert backend.pool_rebuilds >= 1


# -- acceptance (a): a hung campaign corner completes identically -------------


def test_campaign_survives_hung_corner(technology, ft_campaign, reference):
    healthy, cache_dir = reference
    plan = FaultPlan(state_dir=str(cache_dir / "hang-state"),
                     specs=(FaultSpec("hang", task_index=0, attempts=1,
                                      hang_seconds=120.0),))
    backend = ProcessPoolBackend(max_workers=2, retries=1, task_timeout=8.0,
                                 backoff_base=0.01)
    runner = SweepRunner(technology, backend=backend,
                         cache=DiskExtractionCache(cache_dir),
                         fault_plan=plan)
    result = runner.run(ft_campaign)
    assert not result.failures
    assert backend.task_attempts[0] == 2
    np.testing.assert_array_equal(result.column("spur_power_dbm"),
                                  healthy.column("spur_power_dbm"))


# -- acceptance (b): skip policy -> partial result -> show -> resume ----------


def test_skip_policy_partial_result_show_and_resume(
        technology, ft_campaign, reference, tmp_path, capsys):
    healthy, cache_dir = reference
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("raise", task_index=0, attempts=99,
                                      message="injected corner failure"),))
    runner = SweepRunner(technology, backend=SerialBackend(retries=1),
                         cache=DiskExtractionCache(cache_dir),
                         fault_plan=plan, on_error="retry_then_skip")
    partial = runner.run(ft_campaign)

    assert len(partial.records) == 2           # the healthy corner's points
    [failure] = partial.failures
    assert failure.error_type == "InjectedFault"
    assert failure.attempts == 2               # retry budget was spent first
    assert failure.vtune == 0.0 and failure.variant_index == 0
    assert not partial.complete
    [(variant, _power, vtune)] = partial.failed_corners()
    assert (variant, vtune) == (0, 0.0)

    npz_path, _meta = partial.save(tmp_path / "partial.npz")
    loaded = SweepResult.load(npz_path)
    assert [f.corner_label for f in loaded.failures] \
        == [failure.corner_label]

    # ``show`` surfaces the failed corner.
    assert main(["show", str(npz_path)]) == 0
    shown = capsys.readouterr().out
    assert "failures   : 1 corner(s) incomplete" in shown
    assert "InjectedFault" in shown

    # ``resume`` re-runs exactly the failed corner and completes the result.
    resumed = SweepRunner(technology,
                          cache=DiskExtractionCache(cache_dir)).run(
        ft_campaign, resume_from=loaded)
    assert resumed.complete and len(resumed.records) == 4
    np.testing.assert_array_equal(resumed.column("spur_power_dbm"),
                                  healthy.column("spur_power_dbm"))


def test_skip_policy_records_failed_extraction(technology, ft_campaign,
                                               tmp_path):
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("raise", task_index=0, attempts=99),))

    class _FaultyExtractionBackend(SerialBackend):
        """Injects the plan into extraction tasks too (they carry no
        ``index`` attribute, so the campaign-level plan skips them)."""

        def run(self, fn, tasks, **kwargs):
            def sabotaged(task):
                plan.inject(_EchoTask(0))
                return fn(task)
            return super().run(sabotaged, tasks, **kwargs)

    runner = SweepRunner(technology, backend=_FaultyExtractionBackend(),
                         on_error="skip")
    result = runner.run(ft_campaign)
    assert not result.records
    assert len(result.failures) == 2           # one per pending corner
    assert all(f.error_type == "InjectedFault" for f in result.failures)
    assert {f.vtune for f in result.failures} == {0.0, 0.75}
    # The partial result round-trips even with zero records.
    saved, _ = result.save(tmp_path / "empty.npz")
    assert len(SweepResult.load(saved).failures) == 2


def test_cli_exits_3_on_partial_result(tmp_path, monkeypatch, capsys):
    config = tmp_path / "c.json"
    config.write_text('{"name": "partial", "axes": {"vtune": [0.0]}}')

    failure = CornerFailure(corner_label="variant 0", error_type="BoomError",
                            message="injected", attempts=2,
                            variant_index=0, injected_power_dbm=-5.0,
                            vtune=0.0)

    class _StubRunner:
        def __init__(self, *args, **kwargs):
            pass

        def run(self, campaign, resume_from=None, checkpoint=None,
                observer=None):
            return SweepResult(campaign_name="partial", backend_name="stub",
                               axes={}, records=[], variants=[],
                               wall_seconds=0.0, cache_hits=0,
                               cache_misses=0, failures=[failure])

    monkeypatch.setattr("repro.studies.cli.SweepRunner", _StubRunner)
    assert main(["run", str(config)]) == 3
    out = capsys.readouterr().out
    assert "FAILED corners" in out and "BoomError" in out


# -- acceptance (c): kill -9 mid-campaign, resume from the journal ------------

_KILL_CHILD = """
import sys
sys.path[:0] = [sys.argv[4], sys.argv[5]]
from test_fault_tolerance import make_ft_campaign
from repro.studies import (CheckpointPolicy, DiskExtractionCache, FaultPlan,
                           FaultSpec, SweepRunner)
from repro.technology import make_technology

cache_dir, journal_dir, state_dir = sys.argv[1:4]
# Corner 0 completes and is journaled; the fault then kills this process
# without any cleanup - the moral equivalent of kill -9 mid-campaign.
plan = FaultPlan(state_dir=state_dir,
                 specs=(FaultSpec("exit", task_index=1, attempts=1,
                                  exit_code=137),))
runner = SweepRunner(make_technology(), cache=DiskExtractionCache(cache_dir),
                     fault_plan=plan)
runner.run(make_ft_campaign(),
           checkpoint=CheckpointPolicy(path=journal_dir, every_corners=1))
raise SystemExit("unreachable: the injected fault must kill the process")
"""


class _CountingSerialBackend(SerialBackend):
    def __init__(self):
        super().__init__()
        self.executed = 0

    def run(self, fn, tasks, **kwargs):
        self.executed += len(tasks)
        return super().run(fn, tasks, **kwargs)


def test_killed_campaign_resumes_from_journal_bit_identically(
        technology, ft_campaign, reference, tmp_path):
    healthy, cache_dir = reference
    journal_dir = tmp_path / "run.journal"
    script = tmp_path / "kill_child.py"
    script.write_text(_KILL_CHILD)

    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    tests_dir = str(Path(__file__).resolve().parent)
    proc = subprocess.run(
        [sys.executable, str(script), str(cache_dir), str(journal_dir),
         str(tmp_path / "fault-state"), repo_src, tests_dir],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 137, proc.stderr   # died mid-campaign, no trace

    # The journal holds exactly the corner that completed before the kill.
    recovered = CampaignJournal.recover(journal_dir,
                                        fingerprint=ft_campaign.fingerprint())
    assert len(recovered) == 2                   # 1 corner x 2 frequencies
    assert {r.vtune for r in recovered} == {0.0}

    # Resume recomputes only the lost corner...
    backend = _CountingSerialBackend()
    runner = SweepRunner(technology, backend=backend,
                         cache=DiskExtractionCache(cache_dir))
    resumed = runner.run(ft_campaign,
                         checkpoint=CheckpointPolicy(path=journal_dir,
                                                     every_corners=1))
    assert backend.executed == 1
    assert resumed.complete and len(resumed.records) == 4

    # ... and the saved arrays are byte-identical to an uninterrupted run.
    resumed_npz, _ = resumed.save(tmp_path / "resumed.npz")
    healthy_npz, _ = healthy.save(tmp_path / "healthy.npz")
    assert resumed_npz.read_bytes() == healthy_npz.read_bytes()


@dataclass(frozen=True)
class _JournalRec:
    """Stand-in PointRecord: the journal only needs pickling + point_index."""

    point_index: int
    vtune: float = 0.0
    variant_index: int = 0
    injected_power_dbm: float = -5.0


def test_journal_of_other_campaign_is_rejected(ft_campaign, tmp_path):
    journal = CampaignJournal(tmp_path / "j", campaign_name="someone_else",
                              fingerprint="deadbeef")
    journal.open()
    with pytest.raises(AnalysisError, match="fingerprint mismatch"):
        CampaignJournal.recover(tmp_path / "j",
                                fingerprint=ft_campaign.fingerprint())


def test_journal_append_recover_roundtrip_and_discard(tmp_path):
    journal = CampaignJournal(tmp_path / "j", campaign_name="c",
                              fingerprint="f" * 64)
    journal.open()
    assert CampaignJournal.recover(tmp_path / "missing",
                                   fingerprint=None) == []

    journal.append([_JournalRec(1), _JournalRec(0)])
    journal.append([_JournalRec(2), _JournalRec(1)])  # re-runs dedupe by point
    recovered = CampaignJournal.recover(tmp_path / "j",
                                        fingerprint="f" * 64)
    assert [r.point_index for r in recovered] == [0, 1, 2]
    journal.discard()
    assert not (tmp_path / "j").exists()
    assert CampaignJournal.recover(tmp_path / "j", fingerprint="f" * 64) == []


# -- acceptance (d): the numerical degradation ladder -------------------------


def _latch_circuit() -> Circuit:
    """Cross-coupled NMOS pair: plain Newton from zero needs ~7 iterations."""
    technology = make_technology()
    circuit = Circuit("latch")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_resistor("R1", "vdd", "a", 5e3)
    circuit.add_resistor("R2", "vdd", "b", 5e3)
    parameters = technology.mos_parameters("nmos_rf")
    circuit.add_mosfet("M1", "a", "b", "0", "0", parameters,
                       width=20e-6, length=0.18e-6)
    circuit.add_mosfet("M2", "b", "a", "0", "0", parameters,
                       width=20e-6, length=0.18e-6)
    return circuit


def test_gmin_stepping_rescues_newton_and_counts_rungs():
    unconstrained = dc_operating_point(_latch_circuit())
    assert unconstrained.strategy == "newton"

    solver_module.stats.reset()
    # Too few iterations for a cold plain-Newton solve, but enough for each
    # warm-started continuation rung.
    solution = dc_operating_point(_latch_circuit(),
                                  DcOptions(max_iterations=5, gmin_steps=10))
    assert solution.strategy == "gmin-stepping"
    assert solver_module.stats.dc_gmin_steps == 10
    assert solver_module.stats.dc_source_steps == 0
    # The final rung solves the exact same system as plain Newton would.
    assert solution.voltage("a") == pytest.approx(
        unconstrained.voltage("a"), abs=1e-9)


def test_ladder_failure_reports_every_strategy():
    with pytest.raises(ConvergenceError,
                       match="gmin stepping .* source stepping"):
        dc_operating_point(_latch_circuit(),
                           DcOptions(max_iterations=2, gmin_steps=3,
                                     source_steps=4))


def test_campaign_records_solver_degradations(technology, ft_campaign,
                                              tmp_path):
    # The iterative solver backend degrades on every non-SPD MNA system
    # (fallbacks -> reuse-LU), which the runner must surface per campaign.
    from dataclasses import replace

    options = replace(ft_campaign.options,
                      flow=replace(TINY_MESH,
                                   solver=SolverOptions(backend="iterative")))
    campaign = Campaign(name="degraded", space=ft_campaign.space,
                        options=options)
    result = SweepRunner(technology).run(campaign)
    assert result.complete
    assert result.solver_degradations.get("fallbacks", 0) > 0

    saved, _ = result.save(tmp_path / "degraded.npz")
    loaded = SweepResult.load(saved)
    assert loaded.solver_degradations == result.solver_degradations
    assert loaded.summary()["solver_degradations"] \
        == sum(result.solver_degradations.values())


# -- satellite: concurrent writers + maintenance lock on the disk cache -------


def _store_entries(cache_dir: str, worker: int) -> int:
    cache = DiskExtractionCache(cache_dir)
    for i in range(6):
        # Shared keys across workers on purpose: concurrent writers racing
        # on the same content-addressed entry must both land safely.
        key = f"{i:02d}" + "ab" * 31
        cache.store(key, {"worker": worker, "i": i})
    cache.prune(max_entries=4)
    return len(cache)


def test_concurrent_writers_and_prunes_never_corrupt(tmp_path):
    cache_dir = tmp_path / "shared-cache"
    DiskExtractionCache(cache_dir)             # create the directory once
    with ProcessPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(_store_entries, [str(cache_dir)] * 4,
                                 range(4)))
    assert all(size <= 6 for size in outcomes)
    # Every surviving entry must deserialize cleanly - a torn or mixed
    # write would trip the corruption warning here.
    survivor = DiskExtractionCache(cache_dir)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        values = [survivor.lookup(key) for key in survivor.iter_keys()]
    assert values and all(v is not None for v in values)
    assert survivor.stats.corrupted == 0


def test_maintenance_lock_blocks_concurrent_prune(tmp_path):
    cache = DiskExtractionCache(tmp_path / "cache")
    cache.store("aa" * 32, {"payload": 1})
    with cache.maintenance_lock():
        other = DiskExtractionCache(tmp_path / "cache")
        with pytest.raises(AnalysisError, match="locked"):
            with other.maintenance_lock(timeout=0.2):
                pass
    # Lock released: maintenance works again.
    removed, _freed = cache.prune(max_entries=0)
    assert removed == 1


def test_stale_maintenance_lock_is_stolen(tmp_path):
    cache = DiskExtractionCache(tmp_path / "cache")
    cache.store("bb" * 32, {"payload": 1})
    lock = cache.cache_dir / ".lock"
    lock.write_text("99999")                   # orphan from a killed process
    old = time.time() - 2 * cache._LOCK_STALE_SECONDS
    os.utime(lock, (old, old))
    removed, _freed = cache.prune(max_entries=0)
    assert removed == 1
    assert not lock.exists()


def test_corrupt_fault_is_detected_by_cache(tmp_path):
    from repro.studies.store import CacheCorruptionWarning

    cache = DiskExtractionCache(tmp_path / "cache")
    key = "cc" * 32
    cache.store(key, {"payload": 42})
    plan = FaultPlan(state_dir=str(tmp_path / "state"),
                     specs=(FaultSpec("corrupt", task_index=0, attempts=1,
                                      target=str(tmp_path / "cache")),))
    plan.inject(_EchoTask(0))
    fresh = DiskExtractionCache(tmp_path / "cache")
    with pytest.warns(CacheCorruptionWarning):
        assert fresh.lookup(key) is None       # detected, evicted, re-extract
    assert fresh.stats.corrupted == 1
