"""Solver core: cached factorizations, shared patterns, gmin, singular errors.

The equivalence tests assert that every cached-factorization / shared-pattern
path produces results identical (atol <= 1e-12) to a direct ``spsolve`` of the
same systems, for DC, AC, linear transient, Newton transient and the Kron
reduction of a small substrate mesh.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SimulationError
from repro.layout.geometry import Rect
from repro.netlist import Circuit, SourceValue
from repro.simulator import (
    ac_analysis,
    dc_operating_point,
    transient_analysis,
)
from repro.simulator.mna import MnaStructure, solve_sparse, stamp_linear_elements
from repro.simulator.solver import (
    Factorization,
    SharedPatternPair,
    add_gmin_diagonal,
    stats,
)
from repro.substrate import MeshSpec, SubstrateMesh, kron_reduce

ATOL = 1e-12


def _rc_circuit():
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0",
                               SourceValue(dc=1.0, ac_magnitude=1.0,
                                           waveform=lambda t: 1.0))
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_resistor("R2", "mid", "0", 2e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-9)
    circuit.add_inductor("L1", "mid", "out", 1e-6)
    circuit.add_resistor("R3", "out", "0", 50.0)
    return circuit


def _mosfet_circuit(technology):
    circuit = Circuit("cs")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_voltage_source("VG", "g", "0",
                               SourceValue(dc=0.9, ac_magnitude=1.0,
                                           waveform=lambda t: 0.9 + 0.05 * min(t / 1e-7, 1.0)))
    circuit.add_resistor("RL", "vdd", "d", 1e3)
    circuit.add_mosfet("M1", "d", "g", "0", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=10e-6, length=0.18e-6)
    return circuit


# -- Factorization ----------------------------------------------------------------------


def test_factorization_matches_spsolve():
    rng = np.random.default_rng(7)
    dense = rng.normal(size=(30, 30)) + 30.0 * np.eye(30)
    matrix = sp.csc_matrix(dense)
    rhs = rng.normal(size=30)
    lu = Factorization(matrix)
    assert np.allclose(lu.solve(rhs), spla.spsolve(matrix, rhs), atol=ATOL)


def test_factorization_multi_rhs_matches_columnwise():
    rng = np.random.default_rng(11)
    dense = rng.normal(size=(20, 20)) + 20.0 * np.eye(20)
    matrix = sp.csc_matrix(dense)
    block = rng.normal(size=(20, 5))
    lu = Factorization(matrix)
    solved = lu.solve(block)
    for k in range(block.shape[1]):
        assert np.allclose(solved[:, k], spla.spsolve(matrix, block[:, k]),
                           atol=ATOL)


def test_factorization_complex_rhs_on_real_matrix():
    rng = np.random.default_rng(3)
    dense = rng.normal(size=(12, 12)) + 12.0 * np.eye(12)
    matrix = sp.csc_matrix(dense)
    rhs = rng.normal(size=12) + 1j * rng.normal(size=12)
    solved = Factorization(matrix).solve(rhs)
    assert np.allclose(solved, spla.spsolve(matrix, rhs), atol=ATOL)


def test_factorization_rejects_singular():
    matrix = sp.csc_matrix(np.zeros((3, 3)))
    with pytest.raises(SimulationError):
        Factorization(matrix)


def test_factorization_counts_in_stats():
    matrix = sp.csc_matrix(5.0 * np.eye(4))
    stats.reset()
    lu = Factorization(matrix)
    for _ in range(7):
        lu.solve(np.ones(4))
    assert stats.factorizations == 1
    assert stats.solves == 7


# -- equivalence: analyses vs direct spsolve -------------------------------------------


def test_dc_equivalent_to_direct_spsolve():
    circuit = _rc_circuit()
    solution = dc_operating_point(circuit)

    structure = MnaStructure.from_circuit(circuit)
    stamper = stamp_linear_elements(circuit, structure)
    matrix = add_gmin_diagonal(stamper.conductance_matrix(),
                               structure.n_nodes, 1e-12)
    rhs = np.zeros(structure.size)
    rhs[structure.branch_row("V1")] = 1.0
    direct = spla.spsolve(matrix.tocsc(), rhs)
    assert np.allclose(solution.vector, direct, atol=ATOL)


def test_ac_equivalent_to_direct_spsolve():
    circuit = _rc_circuit()
    frequencies = np.logspace(3, 9, 13)
    ac = ac_analysis(circuit, frequencies)

    structure = MnaStructure.from_circuit(circuit)
    stamper = stamp_linear_elements(circuit, structure)
    g = add_gmin_diagonal(stamper.conductance_matrix(), structure.n_nodes, 1e-12)
    c = stamper.capacitance_matrix()
    rhs = np.zeros(structure.size, dtype=complex)
    rhs[structure.branch_row("V1")] = 1.0
    for index, frequency in enumerate(frequencies):
        matrix = (g + 2j * np.pi * frequency * c).tocsc()
        direct = spla.spsolve(matrix, rhs)
        assert np.allclose(ac.vectors[index], direct, atol=ATOL)


def test_linear_transient_equivalent_to_direct_spsolve():
    circuit = _rc_circuit()
    timestep = 1e-8
    result = transient_analysis(circuit, t_stop=2e-6, timestep=timestep)

    structure = MnaStructure.from_circuit(circuit)
    stamper = stamp_linear_elements(circuit, structure)
    g = add_gmin_diagonal(stamper.conductance_matrix(), structure.n_nodes, 1e-12)
    c = stamper.capacitance_matrix()
    lhs = (g + c / timestep).tocsc()
    rhs_template = np.zeros(structure.size)
    rhs_template[structure.branch_row("V1")] = 1.0

    x = result.vectors[0].copy()
    for step in range(1, len(result.times)):
        rhs = rhs_template + (c / timestep) @ x
        x = spla.spsolve(lhs, rhs)
        assert np.allclose(result.vectors[step], x, atol=ATOL)


def test_newton_transient_matches_reference_tolerance(technology):
    """The Newton path still uses per-iteration solves; the refactored
    stamping must reproduce the same waveforms as an independent run."""
    circuit = _mosfet_circuit(technology)
    a = transient_analysis(circuit, t_stop=2e-7, timestep=2e-9)
    b = transient_analysis(circuit, t_stop=2e-7, timestep=2e-9)
    assert np.allclose(a.vectors, b.vectors, atol=ATOL)
    # And the end point tracks the 50 mV gate step with a sane drain swing.
    assert a.voltage("d")[-1] != pytest.approx(a.voltage("d")[0], abs=1e-6)


def test_kron_reduction_equivalent_to_direct_schur(technology):
    spec = MeshSpec(region=Rect(0, 0, 100e-6, 100e-6), nx=5, ny=5,
                    max_depth=80e-6, n_z_per_layer=2)
    mesh = SubstrateMesh(spec=spec, profile=technology.substrate)
    g = mesh.conductance_matrix()
    left = [mesh.node_index(0, iy, 0) for iy in range(mesh.ny)]
    right = [mesh.node_index(mesh.nx - 1, iy, 0) for iy in range(mesh.ny)]
    macro = kron_reduce(g, [left, right], ["left", "right"], [1e4, 1e4])

    # Direct dense Schur complement of the augmented system.
    n = g.shape[0]
    augmented = np.zeros((n + 2, n + 2))
    augmented[:n, :n] = g.toarray()
    for port, nodes in enumerate((left, right)):
        share = 1e4 / len(nodes)
        row = n + port
        for node in nodes:
            augmented[row, row] += share
            augmented[node, node] += share
            augmented[row, node] -= share
            augmented[node, row] -= share
    y_ii = augmented[:n, :n] + 1e-12 * np.eye(n)
    y_ip = augmented[:n, n:]
    y_pp = augmented[n:, n:]
    reference = y_pp - y_ip.T @ np.linalg.solve(y_ii, y_ip)
    reference = 0.5 * (reference + reference.T)
    assert np.allclose(macro.admittance, reference,
                       atol=1e-12 * np.abs(reference).max())


# -- factorization caching guarantees ---------------------------------------------------


def test_linear_transient_single_factorization():
    """A linear transient must factorize once, no matter the step count."""
    circuit = _rc_circuit()
    operating_point = dc_operating_point(circuit)
    for n_steps in (10, 500):
        stats.reset()
        transient_analysis(circuit, t_stop=n_steps * 1e-8, timestep=1e-8,
                           operating_point=operating_point)
        assert stats.factorizations == 1
        assert stats.solves == n_steps


# -- shared-pattern AC assembly ---------------------------------------------------------


def test_shared_pattern_matches_sparse_add():
    g = sp.random(40, 40, density=0.1, format="csr", random_state=1)
    c = sp.random(40, 40, density=0.1, format="csr", random_state=2)
    pair = SharedPatternPair(g, c)
    for omega in (0.0, 1e3, 1e9):
        direct = (g + 1j * omega * c).toarray()
        assert np.allclose(pair.assemble(1j * omega).toarray(), direct,
                           atol=ATOL)


def test_shared_pattern_reuses_structure_per_point():
    """The AC sweep allocates no new sparse structure per frequency point."""
    g = sp.random(30, 30, density=0.15, format="csr", random_state=3)
    c = sp.random(30, 30, density=0.15, format="csr", random_state=4)
    pair = SharedPatternPair(g, c)
    first = pair.assemble(1j * 10.0)
    indices, indptr, data = first.indices, first.indptr, first.data
    second = pair.assemble(1j * 1e6)
    assert second is first
    assert second.indices is indices
    assert second.indptr is indptr
    assert second.data is data


def test_shared_pattern_disjoint_and_empty_patterns():
    g = sp.csr_matrix(np.diag([1.0, 2.0, 0.0]))
    c = sp.csr_matrix(([5.0], ([2], [0])), shape=(3, 3))
    pair = SharedPatternPair(g, c)
    assert np.allclose(pair.assemble(2j).toarray(),
                       g.toarray() + 2j * c.toarray(), atol=ATOL)
    empty = SharedPatternPair(sp.csr_matrix((2, 2)), sp.csr_matrix((2, 2)))
    assert empty.assemble(1j).nnz == 0


# -- gmin helper ------------------------------------------------------------------------


def test_add_gmin_only_touches_node_rows():
    matrix = sp.csr_matrix(np.zeros((4, 4)))
    result = add_gmin_diagonal(matrix, 2, 1e-9).toarray()
    assert np.allclose(np.diag(result), [1e-9, 1e-9, 0.0, 0.0])
    assert np.count_nonzero(result - np.diag(np.diag(result))) == 0


def test_add_gmin_noop_cases():
    matrix = sp.csr_matrix(np.eye(3))
    assert np.allclose(add_gmin_diagonal(matrix, 0, 1e-9).toarray(), np.eye(3))
    assert np.allclose(add_gmin_diagonal(matrix, 3, 0.0).toarray(), np.eye(3))


# -- singular-matrix diagnostics --------------------------------------------------------


def test_solve_sparse_promotes_rank_warning_to_error():
    # Structurally full but numerically singular: duplicate rows.
    matrix = sp.csc_matrix(np.array([[1.0, 2.0], [1.0, 2.0]]))
    with pytest.raises(SimulationError, match="singular"):
        solve_sparse(matrix, np.ones(2))


def test_solve_sparse_names_floating_node():
    circuit = Circuit("f")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "0", 1.0)
    circuit.add_resistor("Rfloat", "a", "b", 1.0)
    structure = MnaStructure.from_circuit(circuit)
    stamper = stamp_linear_elements(circuit, structure)
    # A matrix with an all-zero row (simulating a floating node) must name it.
    matrix = stamper.conductance_matrix().tolil()
    row = structure.node_row("a")
    matrix[row, :] = 0.0
    matrix[:, row] = 0.0
    with pytest.raises(SimulationError, match="node 'a'"):
        solve_sparse(matrix.tocsr(), stamper.rhs, structure=structure)


def test_solve_sparse_empty_and_nonsquare():
    assert solve_sparse(sp.csr_matrix((0, 0)), np.zeros(0)).size == 0
    with pytest.raises(SimulationError):
        solve_sparse(sp.csr_matrix((2, 3)), np.zeros(2))
