"""MNA assembly: index maps, stamps, matrix properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netlist import Circuit
from repro.simulator.mna import (
    MnaStructure,
    SolutionView,
    solve_sparse,
    stamp_linear_elements,
)


def test_structure_indexing():
    circuit = Circuit("t")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1.0)
    circuit.add_inductor("L1", "out", "0", 1e-9)
    structure = MnaStructure.from_circuit(circuit)
    assert structure.n_nodes == 2
    assert structure.n_branches == 2
    assert structure.size == 4
    assert structure.node_row("0") is None
    assert structure.node_row("in") == 0
    with pytest.raises(SimulationError):
        structure.node_row("nope")
    with pytest.raises(SimulationError):
        structure.branch_row("nope")


def test_resistor_stamp_symmetry():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "b", 2.0)
    circuit.add_resistor("R2", "b", "0", 2.0)
    stamper = stamp_linear_elements(circuit)
    g = stamper.conductance_matrix().toarray()
    assert np.allclose(g, g.T)
    assert g[0, 0] == pytest.approx(0.5)
    assert g[1, 1] == pytest.approx(1.0)
    assert g[0, 1] == pytest.approx(-0.5)


def test_capacitor_stamps_into_c_matrix():
    circuit = Circuit("t")
    circuit.add_capacitor("C1", "a", "0", 1e-12)
    circuit.add_resistor("R1", "a", "0", 1.0)
    stamper = stamp_linear_elements(circuit)
    c = stamper.capacitance_matrix().toarray()
    assert c[0, 0] == pytest.approx(1e-12)


def test_vccs_stamp_pattern():
    circuit = Circuit("t")
    circuit.add_resistor("Rin", "cp", "0", 1.0)
    circuit.add_resistor("Rout", "p", "0", 1.0)
    circuit.add_vccs("G1", "p", "0", "cp", "0", gm=5e-3)
    stamper = stamp_linear_elements(circuit)
    g = stamper.conductance_matrix().toarray()
    structure = stamper.structure
    row_p = structure.node_row("p")
    col_cp = structure.node_row("cp")
    assert g[row_p, col_cp] == pytest.approx(5e-3)


def test_voltage_source_branch_and_rhs():
    circuit = Circuit("t")
    circuit.add_voltage_source("V1", "in", "0", 3.3)
    circuit.add_resistor("R1", "in", "0", 1.0)
    stamper = stamp_linear_elements(circuit)
    structure = stamper.structure
    k = structure.branch_row("V1")
    g = stamper.conductance_matrix().toarray()
    assert g[structure.node_row("in"), k] == pytest.approx(1.0)
    assert g[k, structure.node_row("in")] == pytest.approx(1.0)
    assert stamper.rhs[k] == pytest.approx(3.3)


def test_inductor_branch_stamp():
    circuit = Circuit("t")
    circuit.add_inductor("L1", "a", "0", 2e-9)
    circuit.add_resistor("R1", "a", "0", 1.0)
    stamper = stamp_linear_elements(circuit)
    structure = stamper.structure
    k = structure.branch_row("L1")
    c = stamper.capacitance_matrix().toarray()
    assert c[k, k] == pytest.approx(-2e-9)


def test_current_source_rhs_sign():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "0", 1.0)
    circuit.add_current_source("I1", "0", "a", 1e-3)   # pushes current into a
    stamper = stamp_linear_elements(circuit)
    row = stamper.structure.node_row("a")
    assert stamper.rhs[row] == pytest.approx(1e-3)


def test_stamper_copy_is_independent():
    circuit = Circuit("t")
    circuit.add_resistor("R1", "a", "0", 1.0)
    stamper = stamp_linear_elements(circuit)
    clone = stamper.copy()
    clone.conductance("a", "0", 1.0)
    assert stamper.conductance_matrix()[0, 0] == pytest.approx(1.0)
    assert clone.conductance_matrix()[0, 0] == pytest.approx(2.0)


def test_solve_sparse_rejects_singular():
    import scipy.sparse as sp

    matrix = sp.csr_matrix(np.zeros((2, 2)))
    with pytest.raises(SimulationError):
        solve_sparse(matrix, np.ones(2))


def test_solution_view_lookup():
    circuit = Circuit("t")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "0", 1.0)
    structure = MnaStructure.from_circuit(circuit)
    view = SolutionView(structure, np.array([1.0, -1.0]))
    assert view.voltage("in") == pytest.approx(1.0)
    assert view.voltage("0") == 0.0
    assert view.branch_current("V1") == pytest.approx(-1.0)
    assert view.voltage_between("in", "0") == pytest.approx(1.0)
    assert view.voltages() == {"in": 1.0}


@given(values=st.lists(st.floats(min_value=1.0, max_value=1e6),
                       min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_resistive_ladder_matrix_properties(values):
    """The conductance matrix of any resistive ladder is symmetric and
    diagonally dominant with non-positive off-diagonal entries."""
    circuit = Circuit("ladder")
    previous = "0"
    for index, resistance in enumerate(values):
        node = f"n{index}"
        circuit.add_resistor(f"R{index}", previous, node, resistance)
        previous = node
    stamper = stamp_linear_elements(circuit)
    g = stamper.conductance_matrix().toarray()
    assert np.allclose(g, g.T)
    off_diagonal = g - np.diag(np.diag(g))
    assert np.all(off_diagonal <= 1e-15)
    assert np.all(np.diag(g) >= np.sum(np.abs(off_diagonal), axis=1) - 1e-12)
