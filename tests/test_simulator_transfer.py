"""Tests of the batched transfer-function analysis.

The multi-source path must solve every source through *one* factorization per
frequency point (the ROADMAP's multi-RHS batching), and the in-place source
substitution must restore the caller's circuit even when the solve fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.elements import SourceValue
from repro.simulator import (
    substituted_sources,
    transfer_function,
    transfer_functions,
)
from repro.simulator.solver import stats


def _summing_network() -> Circuit:
    circuit = Circuit("two_sources")
    circuit.add_voltage_source("V1", "a", "0", SourceValue(dc=1.0, ac_magnitude=5.0))
    circuit.add_voltage_source("V2", "b", "0", SourceValue(ac_magnitude=7.0))
    circuit.add_current_source("I1", "0", "out", SourceValue(ac_magnitude=2.0))
    circuit.add_resistor("R1", "a", "out", 1e3)
    circuit.add_resistor("R2", "b", "out", 1e3)
    circuit.add_resistor("R3", "out", "0", 1e3)
    return circuit


def test_batched_matches_single_source():
    circuit = _summing_network()
    frequencies = [1e3, 1e5, 1e7]
    batched = transfer_functions(circuit, ["V1", "V2", "I1"], ["out"],
                                 frequencies)
    for name in ("V1", "V2", "I1"):
        single = transfer_function(circuit, name, ["out"], frequencies)
        np.testing.assert_allclose(batched[name].transfers["out"],
                                   single.transfers["out"],
                                   rtol=0, atol=1e-13)
    # Voltage-source transfers: 1 V on one input of the summing network.
    assert abs(batched["V1"].at("out", 1e3)) == pytest.approx(1.0 / 3.0,
                                                              rel=1e-9)
    # Current-source transfer in V/A: 1 A into R3 || (R1 + R2/2...) etc.
    assert abs(batched["I1"].at("out", 1e3)) > 0


def test_one_factorization_per_frequency_regardless_of_sources():
    circuit = _summing_network()
    frequencies = [1e3, 1e4, 1e5, 1e6]
    stats.reset()
    transfer_functions(circuit, ["V1", "V2", "I1"], ["out"], frequencies)
    assert stats.factorizations == len(frequencies)
    assert stats.solves == len(frequencies)        # one multi-RHS block each


def test_sources_are_restored_after_analysis():
    circuit = _summing_network()
    originals = {element.name: element.value for element in circuit.sources()}
    transfer_functions(circuit, ["V1", "V2"], ["out"], [1e3])
    for element in circuit.sources():
        assert element.value is originals[element.name]


def test_sources_are_restored_on_solver_error(monkeypatch):
    circuit = _summing_network()
    originals = {element.name: element.value for element in circuit.sources()}

    from repro.simulator.linalg import DirectLUSolver

    def failing_factorize(self, matrix, structure=None):
        raise SimulationError("injected factorization failure")

    monkeypatch.setattr(DirectLUSolver, "factorize", failing_factorize)
    with pytest.raises(SimulationError, match="injected"):
        transfer_functions(circuit, ["V1"], ["out"], [1e3])
    for element in circuit.sources():
        assert element.value is originals[element.name]
    # DC levels survived the round trip (the operating point is untouched).
    assert circuit.sources()[0].value.dc == 1.0


def test_substituted_sources_drives_one_source_at_a_time():
    circuit = _summing_network()
    with substituted_sources(circuit) as drive:
        drive("V2")
        values = {element.name: element.value
                  for element in circuit.sources()}
        assert values["V2"].ac_magnitude == 1.0
        assert values["V1"].ac_magnitude == 0.0
        assert values["I1"].ac_magnitude == 0.0
        assert values["V1"].dc == 1.0              # DC level preserved
        drive(None)
        assert all(element.value.ac_magnitude == 0.0
                   for element in circuit.sources())


def test_transfer_input_validation():
    circuit = _summing_network()
    with pytest.raises(SimulationError):
        transfer_functions(circuit, ["nope"], ["out"], [1e3])
    with pytest.raises(SimulationError):
        transfer_functions(circuit, [], ["out"], [1e3])
    with pytest.raises(SimulationError):
        transfer_functions(circuit, ["V1"], [], [1e3])
    with pytest.raises(SimulationError):
        transfer_functions(circuit, ["V1"], ["out"], [])
    with pytest.raises(SimulationError):
        transfer_functions(circuit, ["V1"], ["out"], [-1.0])
    with pytest.raises(SimulationError):
        transfer_functions(circuit, ["V1", "V1"], ["out"], [1e3])


def test_ground_observation_reads_zero_and_unknown_node_raises():
    circuit = _summing_network()
    tf = transfer_function(circuit, "V1", ["0"], [1e3, 1e6])
    np.testing.assert_array_equal(tf.transfers["0"],
                                  np.zeros(2, dtype=complex))
    with pytest.raises(SimulationError):
        transfer_function(circuit, "V1", ["ghost"], [1e3])


def test_rc_lowpass_corner():
    circuit = Circuit("rc")
    circuit.add_voltage_source("VIN", "in", "0", 1.0)
    circuit.add_resistor("R", "in", "out", 1e3)
    circuit.add_capacitor("C", "out", "0", 1e-9)
    corner = 1.0 / (2.0 * np.pi * 1e3 * 1e-9)
    tf = transfer_function(circuit, "VIN", ["out"], [corner])
    assert abs(tf.at("out", corner)) == pytest.approx(1.0 / np.sqrt(2.0),
                                                      rel=1e-9)
    assert tf.phase_deg("out")[0] == pytest.approx(-45.0, abs=1e-6)
