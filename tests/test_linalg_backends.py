"""The pluggable linear-solver layer: backend equivalence, fallback, fan-out.

The equivalence suite runs the same analyses (DC, AC, transient, Kron
reduction, full extraction flow, VCO spur analysis) through all three
backends and asserts the reuse-pattern and iterative backends match the
direct-LU reference to <= 1e-10.  The fallback tests hand CG a non-SPD MNA
system and assert it silently falls back to LU; the cache-key tests prove
that campaigns differing only in solver settings never share extraction
cache entries.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.flow import FlowOptions, run_extraction_flow
from repro.errors import SimulationError
from repro.layout.geometry import Rect
from repro.netlist import Circuit, SourceValue
from repro.simulator import ac_analysis, dc_operating_point, transient_analysis
from repro.simulator.linalg import (
    BACKENDS,
    DirectLUSolver,
    IterativeSolver,
    ReusePatternLUSolver,
    SolverOptions,
    make_solver,
    resolve_solver,
)
from repro.simulator.transfer import transfer_functions
from repro.substrate import MeshSpec, SubstrateMesh, kron_reduce
from repro.substrate.extraction import SubstrateExtractionOptions

EQUIV_ATOL = 1e-10


def _rc_circuit():
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0",
                               SourceValue(dc=1.0, ac_magnitude=1.0,
                                           waveform=lambda t: 1.0))
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_resistor("R2", "mid", "0", 2e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-9)
    circuit.add_inductor("L1", "mid", "out", 1e-6)
    circuit.add_resistor("R3", "out", "0", 50.0)
    return circuit


def _mosfet_circuit(technology):
    circuit = Circuit("cs")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_voltage_source("VG", "g", "0",
                               SourceValue(dc=0.9, ac_magnitude=1.0,
                                           waveform=lambda t: 0.9))
    circuit.add_resistor("RL", "vdd", "d", 1e3)
    circuit.add_mosfet("M1", "d", "g", "0", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=10e-6, length=0.18e-6)
    return circuit


def _mesh_system(technology):
    """A small substrate-mesh Laplacian plus port contacts (SPD)."""
    spec = MeshSpec(region=Rect(0, 0, 120e-6, 120e-6), nx=8, ny=8,
                    max_depth=100e-6, n_z_per_layer=2)
    mesh = SubstrateMesh(spec=spec, profile=technology.substrate)
    conductance = mesh.conductance_matrix()
    n = conductance.shape[0]
    diagonal = np.zeros(n)
    diagonal[: mesh.nx] = 1e4 / mesh.nx
    matrix = sp.csc_matrix(conductance + sp.diags(diagonal + 1e-12))
    rhs = np.zeros(n)
    rhs[: mesh.nx] = -1e4 / mesh.nx
    return matrix, rhs


# -- backend equivalence on the analyses -------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_dc_backends_match_direct(technology, backend):
    reference = dc_operating_point(_mosfet_circuit(technology)).vector
    solution = dc_operating_point(_mosfet_circuit(technology),
                                  solver=SolverOptions(backend=backend))
    assert np.allclose(solution.vector, reference, atol=EQUIV_ATOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_ac_backends_match_direct(backend):
    frequencies = np.logspace(3, 9, 9)
    reference = ac_analysis(_rc_circuit(), frequencies).vectors
    vectors = ac_analysis(_rc_circuit(), frequencies,
                          solver=SolverOptions(backend=backend)).vectors
    assert np.allclose(vectors, reference, atol=EQUIV_ATOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_transient_backends_match_direct(technology, backend):
    circuit = _mosfet_circuit(technology)
    reference = transient_analysis(circuit, t_stop=2e-8, timestep=1e-9).vectors
    vectors = transient_analysis(circuit, t_stop=2e-8, timestep=1e-9,
                                 solver=SolverOptions(backend=backend)).vectors
    assert np.allclose(vectors, reference, atol=EQUIV_ATOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_kron_reduction_backends_match_direct(technology, backend):
    spec = MeshSpec(region=Rect(0, 0, 100e-6, 100e-6), nx=6, ny=6,
                    max_depth=80e-6, n_z_per_layer=2)
    mesh = SubstrateMesh(spec=spec, profile=technology.substrate)
    conductance = mesh.conductance_matrix()
    left = [mesh.node_index(0, iy, 0) for iy in range(mesh.ny)]
    right = [mesh.node_index(mesh.nx - 1, iy, 0) for iy in range(mesh.ny)]
    reference = kron_reduce(conductance, [left, right], ["left", "right"],
                            [1e4, 1e4]).admittance
    solver = make_solver(SolverOptions(backend=backend))
    reduced = kron_reduce(conductance, [left, right], ["left", "right"],
                          [1e4, 1e4], solver=solver).admittance
    assert np.allclose(reduced, reference,
                       atol=EQUIV_ATOL * np.abs(reference).max())
    if backend == "iterative":
        # The regularised internal block is SPD: CG must actually run.
        assert solver.stats.cg_solves > 0
        assert solver.stats.fallbacks == 0


@pytest.mark.parametrize("backend", ("reuse-lu", "iterative"))
def test_extraction_flow_backends_match_direct(technology, nmos_cell, backend):
    small_mesh = SubstrateExtractionOptions(nx=10, ny=10, n_z_per_layer=2)
    reference = run_extraction_flow(
        nmos_cell, technology,
        options=FlowOptions(substrate=small_mesh))
    flow = run_extraction_flow(
        nmos_cell, technology,
        options=FlowOptions(substrate=small_mesh,
                            solver=SolverOptions(backend=backend)))
    scale = np.abs(reference.substrate.macromodel.admittance).max()
    assert np.allclose(flow.substrate.macromodel.admittance,
                       reference.substrate.macromodel.admittance,
                       atol=EQUIV_ATOL * scale)
    assert flow.solver_stats is not None
    assert flow.solver_stats.backend == backend
    assert flow.summary()["solver_backend"] == backend


def test_vco_spur_analysis_backends_match_direct(technology, vco_analysis):
    """The Fig-8/Fig-10 style spur analysis matches across backends.

    The linear solves (the substrate-to-node transfer functions at a fixed
    operating point) must match the direct backend to <= 1e-10; the
    end-to-end spur powers additionally absorb the DC Newton termination
    (abs_tolerance 1e-9 V — each backend's roundoff stops Newton at a
    slightly different iterate), so they are compared at 1e-6 dB.
    """
    from dataclasses import replace

    from repro.core.vco_experiment import VcoImpactAnalysis

    reference, _, _, tf_reference = vco_analysis.analyze(0.0)
    circuit = vco_analysis.build_testbench(0.0)
    operating_point = dc_operating_point(circuit)
    nodes = tf_reference.nodes()
    frequencies = tf_reference.frequencies
    direct_tf = transfer_functions(circuit, ["VSUB_SRC"], nodes, frequencies,
                                   operating_point=operating_point)["VSUB_SRC"]

    for backend in ("reuse-lu", "iterative"):
        tf = transfer_functions(
            circuit, ["VSUB_SRC"], nodes, frequencies,
            operating_point=operating_point,
            solver=SolverOptions(backend=backend))["VSUB_SRC"]
        for node in nodes:
            # 1e-9 instead of 1e-10: the full impact testbench spans twelve
            # orders of magnitude in conductance (gmin 1e-12 S to contact
            # ties 1e6 S), and ~3e-10 is the direct backend's own roundoff
            # reproducibility floor on that conditioning; the better-
            # conditioned DC/AC/transient/Kron flows above assert 1e-10.
            assert np.allclose(tf.transfers[node], direct_tf.transfers[node],
                               atol=1e-9, rtol=EQUIV_ATOL)

        options = replace(
            vco_analysis.options,
            flow=replace(vco_analysis.options.flow,
                         solver=SolverOptions(backend=backend)))
        analysis = VcoImpactAnalysis(technology, options=options,
                                     flow_result=vco_analysis.flow)
        results, _, _, _ = analysis.analyze(0.0)
        for got, want in zip(results, reference):
            assert got.total_spur_power_dbm() == pytest.approx(
                want.total_spur_power_dbm(), abs=1e-6)


# -- reuse-pattern bookkeeping ------------------------------------------------------------


def test_reuse_solver_refactorizes_same_pattern(technology):
    matrix, rhs = _mesh_system(technology)
    scaled = matrix.copy()
    scaled.data = scaled.data * 1.8

    solver = ReusePatternLUSolver()
    first = solver.factorize(matrix).solve(rhs)
    second = solver.factorize(scaled).solve(rhs)
    assert solver.stats.factorizations == 2
    assert solver.stats.pattern_reuses == 1
    assert np.allclose(first, spla.spsolve(matrix, rhs), atol=EQUIV_ATOL)
    assert np.allclose(second, spla.spsolve(scaled, rhs), atol=EQUIV_ATOL)


def test_reuse_solver_shares_patterns_across_newton_iterations(technology):
    solver = ReusePatternLUSolver()
    solution = dc_operating_point(_mosfet_circuit(technology), solver=solver)
    assert solution.iterations > 1
    assert solver.stats.factorizations == solution.iterations
    # Iterations that repeat an already-seen companion-stamp pattern reuse
    # the symbolic analysis (the first iterate, at x = 0, may stamp a
    # different pattern than the converged region — that one is analysed).
    assert solver.stats.pattern_reuses >= 1
    assert (solver.stats.pattern_reuses
            + len(solver._patterns) == solver.stats.factorizations)


def test_reuse_solver_pattern_cache_is_bounded():
    solver = ReusePatternLUSolver(SolverOptions(backend="reuse-lu",
                                                max_cached_patterns=2))
    for size in (5, 6, 7, 8):
        dense = np.eye(size) * 3.0
        solver.solve(sp.csc_matrix(dense), np.ones(size))
    assert len(solver._patterns) == 2


# -- iterative fallback -------------------------------------------------------------------


def test_iterative_falls_back_on_non_spd_mna_system():
    """A matrix with voltage-source branch rows is not SPD: silent LU."""
    circuit = _rc_circuit()
    solver = IterativeSolver()
    reference = dc_operating_point(circuit).vector
    solution = dc_operating_point(circuit, solver=solver)
    assert np.allclose(solution.vector, reference, atol=EQUIV_ATOL)
    assert solver.stats.fallbacks > 0
    assert solver.stats.cg_solves == 0


def test_iterative_falls_back_on_cg_stagnation(technology):
    matrix, rhs = _mesh_system(technology)
    solver = IterativeSolver(SolverOptions(
        backend="iterative", cg_max_iterations=1, preconditioner="none"))
    solution = solver.solve(matrix, rhs)
    assert np.allclose(solution, spla.spsolve(matrix, rhs), atol=EQUIV_ATOL)
    assert solver.stats.fallbacks == 1


def test_iterative_fallback_can_be_disabled():
    matrix = sp.csc_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
    solver = IterativeSolver(SolverOptions(backend="iterative",
                                           iterative_fallback=False))
    with pytest.raises(SimulationError, match="SPD"):
        solver.solve(matrix, np.ones(2))


def test_iterative_solves_complex_rhs_by_two_real_solves(technology):
    matrix, rhs = _mesh_system(technology)
    complex_rhs = rhs + 0.5j * np.roll(rhs, 3)
    solver = IterativeSolver()
    solution = solver.factorize(matrix).solve(complex_rhs)
    assert np.allclose(solution, spla.spsolve(matrix, complex_rhs),
                       atol=EQUIV_ATOL)
    assert solver.stats.fallbacks == 0


# -- per-frequency AC fan-out ---------------------------------------------------------------


def test_ac_workers_match_serial(technology):
    circuit = _mosfet_circuit(technology)
    frequencies = np.logspace(4, 9, 11)
    serial = ac_analysis(circuit, frequencies)
    for backend in BACKENDS:
        sharded = ac_analysis(
            circuit, frequencies,
            solver=SolverOptions(backend=backend, ac_workers=3))
        assert np.allclose(sharded.vectors, serial.vectors, atol=1e-12)


def test_transfer_ac_workers_match_serial():
    circuit = _rc_circuit()
    frequencies = np.logspace(3, 8, 10)
    serial = transfer_functions(circuit, ["V1"], ["out", "mid"], frequencies)
    sharded = transfer_functions(
        circuit, ["V1"], ["out", "mid"], frequencies,
        solver=SolverOptions(backend="reuse-lu", ac_workers=4))
    for node in ("out", "mid"):
        assert np.allclose(sharded["V1"].transfers[node],
                           serial["V1"].transfers[node], atol=1e-12)


def test_ac_fanout_aggregates_worker_stats():
    circuit = _rc_circuit()
    frequencies = np.logspace(3, 8, 8)
    solver = DirectLUSolver(SolverOptions(ac_workers=4))
    ac_analysis(circuit, frequencies, solver=solver)
    # All 8 per-frequency solves are visible on the parent solver's stats,
    # aggregated from the spawned workers rather than raced on a global.
    assert solver.stats.solves == len(frequencies)


def test_spawned_workers_do_not_touch_global_stats():
    from repro.simulator.solver import stats as global_stats

    matrix = sp.csc_matrix(3.0 * np.eye(4))
    parent = DirectLUSolver()
    worker = parent.spawn()
    before = global_stats.factorizations
    worker.factorize(matrix)
    assert global_stats.factorizations == before
    parent.absorb(worker)
    assert parent.stats.factorizations == 1
    assert global_stats.factorizations == before + 1


# -- solver options validation / resolution -------------------------------------------------


def test_solver_options_validation():
    with pytest.raises(SimulationError, match="backend"):
        SolverOptions(backend="cholesky")
    with pytest.raises(SimulationError, match="preconditioner"):
        SolverOptions(preconditioner="ssor")
    with pytest.raises(SimulationError, match="ac_workers"):
        SolverOptions(ac_workers=0)


def test_mna_solve_sparse_routes_through_solver_seam():
    from repro.simulator.mna import solve_sparse as mna_solve

    matrix = sp.csc_matrix(np.array([[4.0, 1.0], [1.0, 3.0]]))
    rhs = np.array([1.0, 2.0])
    reference = mna_solve(matrix, rhs)
    solver = ReusePatternLUSolver()
    routed = mna_solve(matrix, rhs, solver=solver)
    assert np.allclose(routed, reference, atol=EQUIV_ATOL)
    assert solver.stats.factorizations == 1
    assert np.allclose(
        mna_solve(matrix, rhs, solver=SolverOptions(backend="iterative")),
        reference, atol=EQUIV_ATOL)


def test_resolve_solver_passthrough_and_defaults():
    assert isinstance(resolve_solver(None), DirectLUSolver)
    assert isinstance(resolve_solver(SolverOptions(backend="iterative")),
                      IterativeSolver)
    shared = ReusePatternLUSolver()
    assert resolve_solver(shared) is shared


def test_effective_gmin_override():
    options = SolverOptions(gmin=1e-9)
    assert options.effective_gmin(1e-12) == 1e-9
    assert SolverOptions().effective_gmin(1e-12) == 1e-12


# -- extraction-cache keys ------------------------------------------------------------------


def test_solver_options_are_part_of_extraction_cache_key(technology,
                                                         nmos_cell, tmp_path):
    from repro.studies import DiskExtractionCache, extraction_key

    base = FlowOptions(substrate=SubstrateExtractionOptions(nx=10, ny=10))
    loose = FlowOptions(
        substrate=base.substrate,
        solver=SolverOptions(backend="iterative", cg_rtol=1e-8))
    tight = FlowOptions(
        substrate=base.substrate,
        solver=SolverOptions(backend="iterative", cg_rtol=1e-13))

    key_base = extraction_key(nmos_cell, technology, base)
    key_loose = extraction_key(nmos_cell, technology, loose)
    key_tight = extraction_key(nmos_cell, technology, tight)
    assert len({key_base, key_loose, key_tight}) == 3

    # Pure parallelism / memory knobs never influence results, so they must
    # not invalidate cached extractions.
    sharded = FlowOptions(
        substrate=base.substrate,
        solver=SolverOptions(ac_workers=4, max_cached_patterns=2))
    assert extraction_key(nmos_cell, technology, sharded) == key_base

    # Two campaigns differing only in the [solver] tolerance must not share
    # DiskExtractionCache entries: an entry stored under one key is a miss
    # under the other.
    cache = DiskExtractionCache(tmp_path / "cache")
    flow = run_extraction_flow(nmos_cell, technology, options=loose)
    cache.store(key_loose, flow)
    assert cache.lookup(key_loose) is not None
    assert cache.lookup(key_tight) is None


def test_campaign_fingerprint_and_sidecar_record_solver(technology):
    from dataclasses import replace

    from repro.core.vco_experiment import VcoExperimentOptions
    from repro.studies import Campaign, ParamSpace

    space = ParamSpace({"vtune": (0.0,), "noise_frequency": (1e6,)})
    default = Campaign(name="c", space=space)
    tuned = Campaign(
        name="c", space=space,
        options=replace(
            VcoExperimentOptions(),
            flow=replace(VcoExperimentOptions().flow,
                         solver=SolverOptions(backend="reuse-lu"))))
    assert default.fingerprint() != tuned.fingerprint()
    assert tuned.describe()["options"]["solver"]["backend"] == "reuse-lu"

    # ac_workers is results-neutral: same fingerprint, so stored results of
    # a serial run still resume a sharded re-run.
    sharded = Campaign(
        name="c", space=space,
        options=replace(
            VcoExperimentOptions(),
            flow=replace(VcoExperimentOptions().flow,
                         solver=SolverOptions(ac_workers=3))))
    assert sharded.fingerprint() == default.fingerprint()
