"""The paper's two test-chip layouts."""

import pytest

from repro.layout.testchips import (
    NET_BIAS,
    NET_GROUND_PAD,
    NET_GROUND_RING,
    NET_OUT,
    NET_SUB,
    NET_SUPPLY,
    NET_TANK_N,
    NET_TANK_P,
    NET_TUNE,
    NmosStructureSpec,
    VcoLayoutSpec,
    backgate_node,
    make_nmos_measurement_structure,
    make_vco_testchip,
)


@pytest.fixture(scope="module")
def nmos_structure():
    return make_nmos_measurement_structure()


@pytest.fixture(scope="module")
def vco():
    return make_vco_testchip()


def test_nmos_structure_has_four_parallel_devices(nmos_structure):
    nmos = nmos_structure.devices_of_type("nmos")
    assert len(nmos) == 4
    # Combined width 4 x 10 fingers x 5 um = 200 um, like the paper's RF NMOS.
    assert sum(d.parameters["w"] for d in nmos) == pytest.approx(200e-6)
    # Each device has its own back-gate node.
    backgates = {d.terminals["b"] for d in nmos}
    assert len(backgates) == 4
    assert backgate_node("MN0") in backgates


def test_nmos_structure_has_rings_injection_and_pads(nmos_structure):
    contacts = nmos_structure.devices_of_type("substrate_contact")
    names = {d.name for d in contacts}
    assert "mos_ground_ring" in names
    assert "outer_guard_ring" in names
    assert any(name.startswith("sub_contact") for name in names)
    nets = nmos_structure.nets()
    for net in (NET_SUB, NET_GROUND_RING, NET_GROUND_PAD, NET_OUT):
        assert net in nets


def test_nmos_structure_ground_wire_nodes(nmos_structure):
    """The ground wire must run between the ring node and the pad node."""
    ring_pins = nmos_structure.pins_of_net(NET_GROUND_RING)
    pad_pins = nmos_structure.pins_of_net(NET_GROUND_PAD)
    assert ring_pins and pad_pins


def test_nmos_structure_ground_width_scaling():
    wide = make_nmos_measurement_structure(
        NmosStructureSpec(ground_width_scale=2.0))
    nominal = make_nmos_measurement_structure()
    # Twice the drawn metal-1 area on the ground wire (approximately; the
    # rings are identical in both).
    assert wide.total_area("M1") > nominal.total_area("M1")


def test_vco_has_expected_devices(vco):
    assert len(vco.devices_of_type("nmos")) == 3       # pair + tail
    assert len(vco.devices_of_type("pmos")) == 2
    assert len(vco.devices_of_type("varactor")) == 2
    assert len(vco.devices_of_type("inductor")) == 1
    contacts = vco.devices_of_type("substrate_contact")
    assert len(contacts) >= 4      # core ring, 2 tap rows, outer ring, SUB


def test_vco_nets_follow_figure5(vco):
    nets = vco.nets()
    for net in (NET_SUB, NET_GROUND_RING, NET_GROUND_PAD, NET_SUPPLY,
                NET_TUNE, NET_TANK_P, NET_TANK_N, NET_OUT, NET_BIAS):
        assert net in nets
    # Cross-coupling: each NMOS gate is the other's drain net.
    nmos = {d.name: d for d in vco.devices_of_type("nmos")}
    assert nmos["MN_left"].terminals["g"] == nmos["MN_right"].terminals["d"]
    assert nmos["MN_right"].terminals["g"] == nmos["MN_left"].terminals["d"]


def test_vco_varactor_between_tank_and_tune(vco):
    varactors = {d.name: d for d in vco.devices_of_type("varactor")}
    assert varactors["C_var_left"].terminals["plus"] == NET_TANK_P
    assert varactors["C_var_left"].terminals["minus"] == NET_TUNE
    assert varactors["C_var_right"].terminals["plus"] == NET_TANK_N


def test_vco_inductor_values(vco):
    inductor = vco.devices_of_type("inductor")[0]
    assert inductor.parameters["inductance"] == pytest.approx(2e-9)
    # The paper quotes 120 fF of coil-to-substrate capacitance per inductor.
    assert inductor.parameters["substrate_capacitance"] == pytest.approx(120e-15)


def test_vco_ground_width_scale_changes_wire(vco):
    wide = make_vco_testchip(VcoLayoutSpec(ground_width_scale=2.0))
    assert wide.total_area("M1") > vco.total_area("M1")


def test_layouts_validate(nmos_structure, vco):
    nmos_structure.validate()
    vco.validate()
