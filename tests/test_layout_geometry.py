"""Geometry primitives: rectangles, paths, bounding boxes."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.layout.geometry import Path, Point, Rect, bounding_box

finite = st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False)
positive = st.floats(min_value=1e-7, max_value=1e-3, allow_nan=False)


def test_point_distance_and_translate():
    a = Point(0.0, 0.0)
    b = Point(3e-6, 4e-6)
    assert a.distance_to(b) == pytest.approx(5e-6)
    assert b.translated(1e-6, -4e-6).as_tuple() == pytest.approx((4e-6, 0.0))


def test_rect_normalises_corners():
    rect = Rect(2.0, 3.0, 1.0, 1.0)
    assert (rect.x0, rect.y0, rect.x1, rect.y1) == (1.0, 1.0, 2.0, 3.0)
    assert rect.width == pytest.approx(1.0)
    assert rect.height == pytest.approx(2.0)


def test_rect_rejects_zero_area():
    with pytest.raises(LayoutError):
        Rect(0.0, 0.0, 0.0, 1.0)


def test_rect_from_center():
    rect = Rect.from_center(0.0, 0.0, 2.0, 4.0)
    assert rect.x0 == -1.0 and rect.y1 == 2.0
    with pytest.raises(LayoutError):
        Rect.from_center(0.0, 0.0, -1.0, 1.0)


def test_rect_area_perimeter_center():
    rect = Rect(0.0, 0.0, 2.0, 3.0)
    assert rect.area == pytest.approx(6.0)
    assert rect.perimeter == pytest.approx(10.0)
    assert rect.center.as_tuple() == pytest.approx((1.0, 1.5))


def test_rect_intersection_and_overlap():
    a = Rect(0.0, 0.0, 2.0, 2.0)
    b = Rect(1.0, 1.0, 3.0, 3.0)
    c = Rect(5.0, 5.0, 6.0, 6.0)
    assert a.intersects(b)
    assert not a.intersects(c)
    overlap = a.intersection(b)
    assert overlap is not None and overlap.area == pytest.approx(1.0)
    assert a.intersection(c) is None
    assert a.overlap_area(b) == pytest.approx(1.0)
    assert a.overlap_area(c) == 0.0


def test_rect_union_and_expand():
    a = Rect(0.0, 0.0, 1.0, 1.0)
    b = Rect(2.0, 2.0, 3.0, 3.0)
    union = a.union_bbox(b)
    assert union.x0 == 0.0 and union.x1 == 3.0
    grown = a.expanded(0.5)
    assert grown.width == pytest.approx(2.0)


def test_rect_contains_point():
    rect = Rect(0.0, 0.0, 1.0, 1.0)
    assert rect.contains_point(Point(0.5, 0.5))
    assert not rect.contains_point(Point(1.5, 0.5))
    assert rect.contains_point(Point(1.1, 0.5), tol=0.2)


def test_bounding_box_of_collection():
    box = bounding_box([Rect(0, 0, 1, 1), Rect(4, -1, 5, 0.5)])
    assert (box.x0, box.y0, box.x1, box.y1) == (0, -1, 5, 1)
    with pytest.raises(LayoutError):
        bounding_box([])


@given(x0=finite, y0=finite, w=positive, h=positive)
def test_rect_area_is_width_times_height(x0, y0, w, h):
    rect = Rect(x0, y0, x0 + w, y0 + h)
    assert rect.area == pytest.approx(rect.width * rect.height)
    assert rect.area > 0


@given(x0=finite, y0=finite, w=positive, h=positive,
       dx=finite, dy=finite)
def test_rect_translation_preserves_area(x0, y0, w, h, dx, dy):
    rect = Rect(x0, y0, x0 + w, y0 + h)
    moved = rect.translated(dx, dy)
    assert moved.area == pytest.approx(rect.area, rel=1e-6)


def test_path_requires_manhattan_segments():
    with pytest.raises(LayoutError):
        Path.from_xy([(0.0, 0.0), (1e-6, 1e-6)], width=1e-6)
    with pytest.raises(LayoutError):
        Path.from_xy([(0.0, 0.0), (0.0, 0.0)], width=1e-6)
    with pytest.raises(LayoutError):
        Path.from_xy([(0.0, 0.0)], width=1e-6)
    with pytest.raises(LayoutError):
        Path.from_xy([(0.0, 0.0), (1e-6, 0.0)], width=-1.0)


def test_path_length_and_squares():
    path = Path.from_xy([(0.0, 0.0), (10e-6, 0.0), (10e-6, 5e-6)], width=1e-6)
    assert path.length == pytest.approx(15e-6)
    # 15 squares minus half a square for the corner.
    assert path.squares() == pytest.approx(14.5)


def test_path_segment_rects_cover_width():
    path = Path.from_xy([(0.0, 0.0), (10e-6, 0.0)], width=2e-6)
    rects = path.segment_rects()
    assert len(rects) == 1
    assert rects[0].height == pytest.approx(2e-6)
    assert rects[0].width == pytest.approx(12e-6)   # extended by half width at ends


def test_path_area_does_not_double_count_corners():
    straight = Path.from_xy([(0.0, 0.0), (20e-6, 0.0)], width=2e-6)
    bent = Path.from_xy([(0.0, 0.0), (10e-6, 0.0), (10e-6, 10e-6)], width=2e-6)
    assert bent.area() < straight.area() + 30e-12
    assert bent.area() > 0


def test_path_translate_and_bbox():
    path = Path.from_xy([(0.0, 0.0), (5e-6, 0.0)], width=1e-6)
    moved = path.translated(0.0, 2e-6)
    assert moved.bbox().center.y == pytest.approx(2e-6)


@given(length=st.floats(min_value=1e-6, max_value=1e-3),
       width=st.floats(min_value=1e-7, max_value=1e-5))
def test_straight_path_squares_is_length_over_width(length, width):
    path = Path.from_xy([(0.0, 0.0), (length, 0.0)], width=width)
    assert path.squares() == pytest.approx(length / width, rel=1e-9)
