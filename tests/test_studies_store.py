"""Tests of the persistence layer: disk cache, result round trip, resume.

Covers the acceptance invariants of the persistent campaign store:

* the :class:`DiskExtractionCache` warm-starts a *fresh process* (modelled by
  a fresh instance over the same directory): zero extractions, identical
  arrays,
* corrupted or version-mismatched entries never fail a campaign — they are
  discarded (with a warning for corruption) and the extraction re-runs,
* ``save -> load`` round trips are bit-identical (``worst_spur`` and every
  tidy column), not merely close,
* resume-after-kill completes only the missing corners and reproduces the
  uninterrupted result exactly,
* the process-pool backend records per-task attempts and names the failing
  corner when it gives up.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import numpy as np
import pytest

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions, ground_resistance_study
from repro.errors import AnalysisError
from repro.studies import (
    Campaign,
    CacheCorruptionWarning,
    DiskExtractionCache,
    ParamSpace,
    ProcessPoolBackend,
    SerialBackend,
    SweepResult,
    SweepRunner,
)
from repro.studies.store import DISK_FORMAT_VERSION, extraction_code_fingerprint
from repro.substrate.extraction import SubstrateExtractionOptions

TINY_MESH = FlowOptions(substrate=SubstrateExtractionOptions(
    nx=12, ny=12, n_z_per_layer=2, lateral_margin=60e-6))


@pytest.fixture(scope="module")
def store_options():
    return VcoExperimentOptions(
        vtune_values=(0.0,),
        noise_frequencies=(1e6, 4e6),
        flow=TINY_MESH)


@pytest.fixture(scope="module")
def store_campaign(store_options):
    return Campaign(
        name="persist_vtune_x_fnoise",
        space=ParamSpace({"vtune": (0.0, 0.75),
                          "noise_frequency": (1e6, 4e6)}),
        options=store_options)


@pytest.fixture(scope="module")
def reference_result(technology, store_campaign, tmp_path_factory):
    """One uninterrupted run of the campaign via a disk cache."""
    cache_dir = tmp_path_factory.mktemp("refcache")
    runner = SweepRunner(technology, cache=DiskExtractionCache(cache_dir))
    return runner.run(store_campaign), cache_dir


# -- disk cache ---------------------------------------------------------------


def test_disk_cache_warm_starts_fresh_instances(technology, store_campaign,
                                                reference_result):
    cold, cache_dir = reference_result
    assert cold.cache_misses == 1

    # A fresh instance over the same directory models a new process / CI run.
    warm_cache = DiskExtractionCache(cache_dir)
    assert len(warm_cache) == 1
    warm = SweepRunner(technology, cache=warm_cache).run(store_campaign)
    assert warm.cache_misses == 0 and warm.cache_hits == 1
    np.testing.assert_array_equal(cold.column("spur_power_dbm"),
                                  warm.column("spur_power_dbm"))


def test_disk_cache_tolerates_corrupted_entry(technology, store_campaign,
                                              tmp_path):
    cache_dir = tmp_path / "cache"
    runner = SweepRunner(technology, cache=DiskExtractionCache(cache_dir))
    first = runner.run(store_campaign)
    assert first.cache_misses == 1
    [entry] = list(DiskExtractionCache(cache_dir).iter_keys())
    entry_path = DiskExtractionCache(cache_dir).entry_path(entry)
    entry_path.write_bytes(b"not a pickle at all")

    fresh = DiskExtractionCache(cache_dir)
    with pytest.warns(CacheCorruptionWarning, match="corrupted"):
        again = SweepRunner(technology, cache=fresh).run(store_campaign)
    # The bad entry fell back to re-extraction and was healed on disk.
    assert again.cache_misses == 1
    assert fresh.stats.corrupted == 1
    np.testing.assert_array_equal(first.column("spur_power_dbm"),
                                  again.column("spur_power_dbm"))
    healed = DiskExtractionCache(cache_dir)
    assert len(healed) == 1
    assert healed.lookup(entry) is not None


def test_disk_cache_evicts_other_format_versions(technology, store_campaign,
                                                 tmp_path):
    cache_dir = tmp_path / "cache"
    cache = DiskExtractionCache(cache_dir)
    runner = SweepRunner(technology, cache=cache)
    runner.run(store_campaign)
    [key] = list(cache.iter_keys())
    path = cache.entry_path(key)
    with path.open("wb") as handle:
        pickle.dump({"format": DISK_FORMAT_VERSION + 1, "key": key,
                     "flow": None}, handle)

    fresh = DiskExtractionCache(cache_dir)
    assert fresh.lookup(key) is None          # silently evicted, no warning
    assert fresh.stats.evictions == 1
    assert fresh.stats.misses == 1
    assert not path.exists()


def test_disk_cache_evicts_entries_of_older_extraction_code(tmp_path):
    from repro.studies.store import build_envelope

    cache = DiskExtractionCache(tmp_path / "cache")
    key = "cd" * 32
    cache.store(key, "payload")
    path = cache.entry_path(key)
    # A validly checksummed envelope written by older extraction code: the
    # distinction matters — a *corrupted* code field fails the checksum and
    # is quarantined with a warning instead.
    with path.open("wb") as handle:
        pickle.dump(build_envelope(key, "stale-payload",
                                   code="sha-of-some-older-extraction-code"),
                    handle)

    fresh = DiskExtractionCache(tmp_path / "cache")
    assert fresh.lookup(key) is None         # silently evicted, no warning
    assert fresh.stats.evictions == 1
    assert not path.exists()
    assert len(extraction_code_fingerprint()) == 64


def test_disk_cache_store_skips_rewriting_existing_entries(tmp_path):
    cache = DiskExtractionCache(tmp_path / "cache")
    key = "ef" * 32
    cache.store(key, "payload")
    before = cache.entry_path(key).stat()
    cache.store(key, "payload")              # content-addressed: same bytes
    after = cache.entry_path(key).stat()
    assert (after.st_ino, after.st_size) == (before.st_ino, before.st_size)


def test_disk_cache_prune_and_describe(tmp_path):
    cache = DiskExtractionCache(tmp_path / "cache")
    for index in range(3):
        key = f"{index:02d}" + "ab" * 31
        cache.store(key, f"payload-{index}")
        os.utime(cache.entry_path(key), (1000.0 + index, 1000.0 + index))
    assert len(cache) == 3
    assert cache.disk_bytes() > 0

    removed, freed = cache.prune(max_entries=1)
    assert removed == 2 and freed > 0
    assert cache.stats.evictions == 2
    # The newest entry (highest mtime) survives.
    assert list(cache.iter_keys()) == ["02" + "ab" * 31]
    assert cache.lookup("02" + "ab" * 31) == "payload-2"

    report = cache.describe()
    assert report["entries"] == 1
    assert report["evictions"] == 2
    cache.clear()
    assert len(cache) == 0 and cache.stats.requests == 0


def test_disk_cache_seed_persists(technology, store_campaign, tmp_path,
                                  reference_result):
    cold, cache_dir = reference_result
    flow = DiskExtractionCache(cache_dir).lookup(
        next(iter(DiskExtractionCache(cache_dir).iter_keys())))
    seeded_dir = tmp_path / "seeded"
    DiskExtractionCache(seeded_dir).seed(flow, options=TINY_MESH)
    # A fresh instance sees the seeded entry on disk.
    warm = SweepRunner(technology,
                       cache=DiskExtractionCache(seeded_dir)).run(store_campaign)
    assert warm.cache_misses == 0 and warm.cache_hits == 1


# -- save / load round trip ---------------------------------------------------


def test_save_load_round_trip_is_bit_identical(store_campaign, tmp_path,
                                               reference_result):
    result, _ = reference_result
    npz_path, meta_path = result.save(tmp_path / "sweep.npz")
    assert npz_path.exists() and meta_path.exists()

    loaded = SweepResult.load(npz_path)
    assert len(loaded) == len(result)
    assert loaded.campaign_name == result.campaign_name
    assert loaded.axes == result.axes
    assert loaded.campaign_spec["fingerprint"] == store_campaign.fingerprint()

    # Bit-identical, not approximately equal.
    assert loaded.worst_spur().spur_power_dbm == result.worst_spur().spur_power_dbm
    for column in ("spur_power_dbm", "carrier_frequency", "carrier_amplitude",
                   "noise_frequency", "vtune", "injected_power_dbm"):
        np.testing.assert_array_equal(loaded.column(column),
                                      result.column(column))
    # The full spur decomposition survives too.
    for original, reloaded in zip(result.records, loaded.records):
        assert reloaded.spur.total_spur_power_dbm() == \
            original.spur.total_spur_power_dbm()
        assert reloaded.spur.per_entry_fm_voltage == \
            original.spur.per_entry_fm_voltage
        assert [e.name for e in reloaded.spur.entries] == \
            [e.name for e in original.spur.entries]
        assert all(a.h_sub == b.h_sub and a.mechanism == b.mechanism
                   for a, b in zip(original.spur.entries,
                                   reloaded.spur.entries))
    # Variants keep their identity but not the (cache-resident) flow.
    assert [v.cache_key for v in loaded.variants] == \
        [v.cache_key for v in result.variants]
    assert all(v.flow is None for v in loaded.variants)


def test_load_rejects_missing_and_mismatched_files(tmp_path, reference_result):
    result, _ = reference_result
    with pytest.raises(AnalysisError, match="no sweep result"):
        SweepResult.load(tmp_path / "nothing.npz")
    npz_path, meta_path = result.save(tmp_path / "orphan.npz")
    meta_path.unlink()
    with pytest.raises(AnalysisError, match="metadata sidecar"):
        SweepResult.load(npz_path)


def test_load_detects_torn_npz_sidecar_pair(tmp_path, reference_result):
    result, _ = reference_result
    npz_path, _meta_path = result.save(tmp_path / "torn.npz")
    # Overwrite the arrays with a different-size result, as if a second save
    # was killed after replacing the sidecar but before replacing the NPZ
    # (or vice versa).
    partial = dataclasses.replace(result, records=result.records[:1])
    partial.save(tmp_path / "other.npz")
    (tmp_path / "other.npz").replace(npz_path)
    with pytest.raises(AnalysisError, match="torn by an interrupted save"):
        SweepResult.load(npz_path)


def test_load_detects_torn_pair_with_equal_record_counts(
        technology, store_options, tmp_path, reference_result):
    result, _ = reference_result
    npz_path, _meta_path = result.save(tmp_path / "torn.npz")
    # A same-shape campaign over different frequencies: same record count,
    # different array bytes — the checksum must still catch the mismatch.
    other_campaign = Campaign(
        name="persist_vtune_x_fnoise",
        space=ParamSpace({"vtune": (0.0, 0.75),
                          "noise_frequency": (2e6, 8e6)}),
        options=store_options)
    other = SweepRunner(technology).run(other_campaign)
    assert len(other) == len(result)
    other.save(tmp_path / "other.npz")
    (tmp_path / "other.npz").replace(npz_path)
    with pytest.raises(AnalysisError, match="torn by an interrupted save"):
        SweepResult.load(npz_path)


def test_orphaned_tmp_files_are_not_cache_entries(tmp_path):
    cache = DiskExtractionCache(tmp_path / "cache")
    key = "ab" * 32
    cache.store(key, "payload")
    # A killed write leaves a ".tmp-*" file next to the entry.
    bucket = cache.entry_path(key).parent
    (bucket / ".tmp-orphan.tmp").write_bytes(b"half-written")
    fresh = DiskExtractionCache(tmp_path / "cache")
    assert len(fresh) == 1
    assert list(fresh.iter_keys()) == [key]
    removed, _freed = fresh.prune(max_entries=1)
    assert removed == 0                      # the orphan is not prunable prey


def test_merge_combines_partial_results(reference_result):
    full, _ = reference_result
    first = dataclasses.replace(full, records=full.records[:2])
    second = dataclasses.replace(full, records=full.records[2:])
    merged = first.merge(second)
    assert [r.point_index for r in merged.records] == \
        [r.point_index for r in full.records]
    np.testing.assert_array_equal(merged.column("spur_power_dbm"),
                                  full.column("spur_power_dbm"))
    assert merged.wall_seconds == pytest.approx(2 * full.wall_seconds)


def test_merge_rejects_different_campaigns(technology, store_options,
                                           reference_result):
    full, _ = reference_result
    other_campaign = Campaign(
        name="other",
        space=ParamSpace({"vtune": (0.3,), "noise_frequency": (2e6,)}),
        options=store_options)
    other = SweepRunner(technology).run(other_campaign)
    with pytest.raises(AnalysisError, match="different campaigns|different axes"):
        full.merge(other)


# -- resume -------------------------------------------------------------------


class _CountingBackend(SerialBackend):
    """Serial backend that records how many tasks it actually executed."""

    def __init__(self):
        super().__init__()
        self.executed = 0

    def run(self, fn, tasks, **kwargs):
        self.executed += len(tasks)
        return super().run(fn, tasks, **kwargs)


def test_resume_after_kill_completes_only_missing_corners(
        technology, store_campaign, tmp_path, reference_result):
    full, cache_dir = reference_result

    # Simulate a campaign killed after its first corner (V_tune = 0.0): the
    # persisted result holds that corner's records only.
    partial = dataclasses.replace(
        full, records=[r for r in full.records if r.vtune == 0.0])
    partial.save(tmp_path / "partial.npz")
    stored = SweepResult.load(tmp_path / "partial.npz")
    assert len(stored) == 2

    backend = _CountingBackend()
    resumed = SweepRunner(technology, backend=backend,
                          cache=DiskExtractionCache(cache_dir)).run(
        store_campaign, resume_from=stored)
    # One corner was stored, one was pending: exactly one task executed.
    assert backend.executed == 1
    assert [r.point_index for r in resumed.records] == [0, 1, 2, 3]
    np.testing.assert_array_equal(resumed.column("spur_power_dbm"),
                                  full.column("spur_power_dbm"))
    np.testing.assert_array_equal(resumed.column("vtune"),
                                  full.column("vtune"))


def test_resume_with_complete_result_executes_nothing(
        technology, store_campaign, reference_result):
    full, cache_dir = reference_result
    backend = _CountingBackend()
    cache = DiskExtractionCache(cache_dir)
    resumed = SweepRunner(technology, backend=backend, cache=cache).run(
        store_campaign, resume_from=full)
    assert backend.executed == 0
    assert cache.stats.misses == 0         # fully-done variants never extract
    np.testing.assert_array_equal(resumed.column("spur_power_dbm"),
                                  full.column("spur_power_dbm"))


def test_resume_rejects_foreign_campaign(technology, store_options,
                                         reference_result):
    full, _ = reference_result
    other = Campaign(
        name="persist_vtune_x_fnoise",      # same name, different grid
        space=ParamSpace({"vtune": (0.0, 0.75),
                          "noise_frequency": (2e6, 8e6)}),
        options=store_options)
    with pytest.raises(AnalysisError, match="fingerprint"):
        SweepRunner(technology).run(other, resume_from=full)


def test_ground_resistance_study_accepts_cache_dir(technology, store_options,
                                                   tmp_path):
    study = ground_resistance_study(technology, options=store_options,
                                    vtune=0.0,
                                    cache_dir=tmp_path / "cache")
    again = ground_resistance_study(technology, options=store_options,
                                    vtune=0.0,
                                    cache_dir=tmp_path / "cache")
    np.testing.assert_array_equal(study.nominal_dbm, again.nominal_dbm)
    with pytest.raises(AnalysisError, match="not both"):
        ground_resistance_study(technology, options=store_options,
                                cache=DiskExtractionCache(tmp_path / "c2"),
                                cache_dir=tmp_path / "c2")


# -- backend retry bookkeeping ------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _FlakyTask:
    """Picklable task that fails until a sentinel file exists."""

    sentinel: str
    value: int

    def corner_label(self) -> str:
        return f"flaky corner value={self.value}"


def _run_flaky(task: _FlakyTask) -> int:
    if not os.path.exists(task.sentinel):
        with open(task.sentinel, "w") as handle:
            handle.write("attempted")
        raise ValueError("transient worker failure")
    return task.value * 10


def test_single_worker_retries_and_counts_attempts(tmp_path):
    backend = ProcessPoolBackend(max_workers=1, retries=2)
    task = _FlakyTask(sentinel=str(tmp_path / "sentinel"), value=3)
    assert backend.run(_run_flaky, [task]) == [30]
    assert backend.task_attempts == [2]


def test_pool_retries_transient_failure(tmp_path):
    backend = ProcessPoolBackend(max_workers=2, retries=1)
    tasks = [_FlakyTask(sentinel=str(tmp_path / "a"), value=1),
             _FlakyTask(sentinel=str(tmp_path / "b"), value=2)]
    # Pre-create one sentinel: that task succeeds first try, the other
    # fails once and succeeds on the retry.
    with open(tasks[1].sentinel, "w") as handle:
        handle.write("ok")
    assert backend.run(_run_flaky, tasks) == [10, 20]
    assert backend.task_attempts[1] == 1
    assert backend.task_attempts[0] == 2


def _crash_worker(task: _FlakyTask) -> int:
    """Hard-kill the worker process on the first attempt (breaks the pool)."""
    if not os.path.exists(task.sentinel):
        with open(task.sentinel, "w") as handle:
            handle.write("crashing")
        os._exit(1)
    return task.value * 10


def test_pool_survives_crashed_worker(tmp_path):
    backend = ProcessPoolBackend(max_workers=2, retries=1)
    tasks = [_FlakyTask(sentinel=str(tmp_path / "crash"), value=1),
             _FlakyTask(sentinel=str(tmp_path / "fine"), value=2)]
    with open(tasks[1].sentinel, "w") as handle:
        handle.write("ok")
    # Task 0 kills its worker (breaking the executor mid-round); a fresh
    # pool must finish both tasks on the second attempt.
    assert backend.run(_crash_worker, tasks) == [10, 20]
    assert backend.task_attempts[0] == 2


def test_pool_crash_with_no_retries_names_a_corner(tmp_path):
    backend = ProcessPoolBackend(max_workers=2, retries=0)
    tasks = [_FlakyTask(sentinel=str(tmp_path / "boom"), value=1),
             _FlakyTask(sentinel=str(tmp_path / "boom2"), value=2)]
    with pytest.raises(AnalysisError, match="flaky corner"):
        backend.run(_crash_worker, tasks)


def _always_fails(task: _FlakyTask) -> int:
    raise ValueError("permanent failure")


def test_exhausted_retries_name_the_corner(tmp_path):
    backend = ProcessPoolBackend(max_workers=1, retries=1)
    task = _FlakyTask(sentinel=str(tmp_path / "never"), value=7)
    with pytest.raises(AnalysisError,
                       match=r"after 2 attempt.*flaky corner value=7"):
        backend.run(_always_fails, [task])
    assert backend.task_attempts == [2]


def test_pool_exhausted_retries_raise(tmp_path):
    backend = ProcessPoolBackend(max_workers=2, retries=0)
    tasks = [_FlakyTask(sentinel=str(tmp_path / "x"), value=1),
             _FlakyTask(sentinel=str(tmp_path / "y"), value=2)]
    with pytest.raises(AnalysisError, match="flaky corner"):
        backend.run(_always_fails, tasks)