"""Tests of the ``repro-campaign`` command line (:mod:`repro.studies.cli`).

End-to-end runs use the same deliberately tiny substrate mesh as the other
study tests; the CLI's behaviour does not depend on mesh resolution.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.studies import SweepResult
from repro.studies.cli import load_campaign_config, main

try:
    import tomllib  # noqa: F401
    HAVE_TOMLLIB = True
except ImportError:                        # Python 3.10
    HAVE_TOMLLIB = False


TINY_CONFIG = {
    "name": "cli_smoke",
    "axes": {
        "vtune": [0.0, 0.75],
        "noise_frequency": {"start": 1e6, "stop": 9e6, "num": 3,
                            "spacing": "log"},
    },
    "options": {
        "injected_power_dbm": -5.0,
        "mesh": {"nx": 12, "ny": 12, "n_z_per_layer": 2,
                 "lateral_margin": 60e-6},
    },
}


@pytest.fixture
def config_path(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(TINY_CONFIG))
    return path


# -- config parsing -----------------------------------------------------------


def test_load_json_config(config_path):
    config = load_campaign_config(config_path)
    campaign = config.campaign
    assert campaign.name == "cli_smoke"
    assert campaign.space.axes["vtune"] == (0.0, 0.75)
    frequencies = campaign.space.axes["noise_frequency"]
    assert len(frequencies) == 3
    np.testing.assert_allclose(frequencies, np.logspace(6, np.log10(9e6), 3))
    assert campaign.options.injected_power_dbm == -5.0
    assert campaign.options.flow.substrate.nx == 12
    assert config.execution.backend == "serial"


@pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
def test_load_toml_config(tmp_path):
    path = tmp_path / "campaign.toml"
    path.write_text(
        'name = "toml_smoke"\n'
        "[axes]\n"
        "vtune = [0.0]\n"
        "noise_frequency = [1e6, 4e6]\n"
        "[layout]\n"
        "ground_width_scale = 2.0\n"
        "[options.mesh]\n"
        "nx = 12\n"
        "[execution]\n"
        'backend = "process-pool"\n'
        "workers = 2\n")
    config = load_campaign_config(path)
    assert config.campaign.base_spec.ground_width_scale == 2.0
    assert config.campaign.options.flow.substrate.nx == 12
    assert config.execution.backend == "process-pool"
    assert config.execution.workers == 2


def test_shipped_fig8_config_parses():
    pytest.importorskip("tomllib")
    config = load_campaign_config("examples/campaign_fig8.toml")
    assert config.campaign.name == "fig8_spur_sweep"
    assert len(config.campaign.space.axes["noise_frequency"]) == 12
    assert config.execution.cache_dir == ".repro-cache"


def test_shipped_smoke_config_parses():
    config = load_campaign_config("examples/campaign_smoke.json")
    assert config.campaign.name == "sweep_smoke"
    assert config.campaign.options.flow.substrate.nx == 16


def test_integer_axes_survive_config_parsing_and_run(tmp_path):
    config = dict(TINY_CONFIG,
                  axes={"mesh_nx": [10, 12], "vtune": [0.0],
                        "noise_frequency": [1e6]})
    path = tmp_path / "mesh.json"
    path.write_text(json.dumps(config))
    campaign = load_campaign_config(path).campaign
    values = campaign.space.axes["mesh_nx"]
    assert values == (10, 12)
    assert all(isinstance(v, int) for v in values)
    # The integer mesh axis must survive all the way into a real sweep.
    rc = main(["run", str(path), "--result", str(tmp_path / "mesh.npz")])
    assert rc == 0


def test_config_rejects_unknown_keys(tmp_path):
    bad = dict(TINY_CONFIG, layout={"no_such_knob": 1.0})
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(bad))
    with pytest.raises(AnalysisError, match="no_such_knob"):
        load_campaign_config(path)

    path.write_text(json.dumps({"name": "x"}))
    with pytest.raises(AnalysisError, match="no \\[axes\\]"):
        load_campaign_config(path)

    path.write_text(json.dumps(dict(
        TINY_CONFIG, axes={"vtune": {"start": 0.0, "stop": 1.0}})))
    config = load_campaign_config(path)        # default num, linear spacing
    assert len(config.campaign.space.axes["vtune"]) == 10

    path.write_text(json.dumps(dict(
        TINY_CONFIG,
        axes={"vtune": {"start": -1.0, "stop": 1.0, "spacing": "log"}})))
    with pytest.raises(AnalysisError, match="positive bounds"):
        load_campaign_config(path)


def test_solver_table_selects_backend(tmp_path):
    config = dict(TINY_CONFIG,
                  solver={"backend": "reuse-lu", "ac_workers": 2,
                          "cg_rtol": 1e-11})
    path = tmp_path / "solver.json"
    path.write_text(json.dumps(config))
    campaign = load_campaign_config(path).campaign
    solver = campaign.options.flow.solver
    assert solver.backend == "reuse-lu"
    assert solver.ac_workers == 2
    assert solver.cg_rtol == 1e-11
    # The sidecar-bound description records the solver table verbatim.
    assert campaign.describe()["options"]["solver"]["backend"] == "reuse-lu"


def test_solver_table_rejects_unknown_keys_and_backends(tmp_path):
    path = tmp_path / "bad_solver.json"
    path.write_text(json.dumps(dict(TINY_CONFIG,
                                    solver={"no_such_option": 1})))
    with pytest.raises(AnalysisError, match="no_such_option"):
        load_campaign_config(path)
    path.write_text(json.dumps(dict(TINY_CONFIG,
                                    solver={"backend": "cholesky"})))
    with pytest.raises(Exception, match="cholesky"):
        load_campaign_config(path)
    # A wrong-typed value (a quoted number) is a clean config error, not a
    # TypeError traceback.
    path.write_text(json.dumps(dict(TINY_CONFIG,
                                    solver={"ac_workers": "2"})))
    with pytest.raises(AnalysisError, match="invalid \\[solver\\]"):
        load_campaign_config(path)


def test_solver_table_changes_campaign_fingerprint(tmp_path):
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(TINY_CONFIG))
    tuned_path = tmp_path / "tuned.json"
    tuned_path.write_text(json.dumps(dict(
        TINY_CONFIG, solver={"backend": "iterative", "cg_rtol": 1e-9})))
    base = load_campaign_config(base_path).campaign
    tuned = load_campaign_config(tuned_path).campaign
    assert base.fingerprint() != tuned.fingerprint()


def test_missing_config_is_a_clean_error(tmp_path, capsys):
    rc = main(["run", str(tmp_path / "absent.toml")])
    assert rc == 2
    assert "does not exist" in capsys.readouterr().err


# -- end-to-end subcommands ---------------------------------------------------


def test_cli_run_twice_warm_starts_and_reproduces(config_path, tmp_path,
                                                  capsys):
    cache_dir = tmp_path / "cache"
    first_npz = tmp_path / "first.npz"
    second_npz = tmp_path / "second.npz"
    summary1 = tmp_path / "s1.json"
    summary2 = tmp_path / "s2.json"

    rc = main(["run", str(config_path), "--result", str(first_npz),
               "--cache-dir", str(cache_dir),
               "--summary-json", str(summary1)])
    assert rc == 0
    rc = main(["run", str(config_path), "--result", str(second_npz),
               "--cache-dir", str(cache_dir),
               "--summary-json", str(summary2)])
    assert rc == 0

    cold = json.loads(summary1.read_text())
    warm = json.loads(summary2.read_text())
    assert cold["extractions"] == 1
    # The acceptance criterion: the second run extracts zero layouts...
    assert warm["extractions"] == 0 and warm["cache_hits"] > 0
    # ... and reproduces the arrays bit-identically.
    with np.load(first_npz) as a, np.load(second_npz) as b:
        assert set(a.files) == set(b.files)
        for name in a.files:
            np.testing.assert_array_equal(a[name], b[name])


def test_cli_resume_completes_partial_result(config_path, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    result_npz = tmp_path / "result.npz"
    rc = main(["run", str(config_path), "--result", str(result_npz),
               "--cache-dir", str(cache_dir)])
    assert rc == 0
    full = SweepResult.load(result_npz)

    # Keep only the first corner's records, as if the run had been killed.
    import dataclasses

    partial = dataclasses.replace(
        full, records=[r for r in full.records if r.vtune == 0.0])
    partial.save(result_npz)

    rc = main(["resume", str(config_path), "--result", str(result_npz),
               "--cache-dir", str(cache_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resuming from" in out
    resumed = SweepResult.load(result_npz)
    assert len(resumed) == len(full)
    np.testing.assert_array_equal(resumed.column("spur_power_dbm"),
                                  full.column("spur_power_dbm"))


def test_cli_resume_without_result_errors(config_path, capsys):
    rc = main(["resume", str(config_path)])
    assert rc == 2
    assert "result path" in capsys.readouterr().err


def test_cli_show_and_cache_commands(config_path, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    result_npz = tmp_path / "result.npz"
    assert main(["run", str(config_path), "--result", str(result_npz),
                 "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()

    assert main(["show", str(result_npz), "--rows", "2"]) == 0
    out = capsys.readouterr().out
    assert "cli_smoke" in out and "worst spur" in out and "vtune" in out

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries        : 1" in out

    assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                 "--all"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 entry" in out

    rc = main(["cache", "prune", "--cache-dir", str(cache_dir)])
    assert rc == 2                           # needs a criterion or --all


def test_cli_cache_stats_rejects_missing_directory(tmp_path, capsys):
    missing = tmp_path / "no-such-cache"
    rc = main(["cache", "stats", "--cache-dir", str(missing)])
    assert rc == 2
    assert "does not exist" in capsys.readouterr().err
    assert not missing.exists()              # no directory conjured up