"""Unit conversions and dB helpers."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units


def test_db_power_ratio():
    assert units.db(10.0) == pytest.approx(10.0)
    assert units.db(1.0) == pytest.approx(0.0)
    assert units.db(0.5) == pytest.approx(-3.0103, rel=1e-4)


def test_db_voltage_ratio():
    assert units.db_voltage(10.0) == pytest.approx(20.0)
    assert units.db_voltage(0.1) == pytest.approx(-20.0)


def test_from_db_roundtrip():
    assert units.from_db(units.db(42.0)) == pytest.approx(42.0)
    assert units.from_db_voltage(units.db_voltage(0.07)) == pytest.approx(0.07)


def test_dbm_to_watt_known_values():
    assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)
    assert units.dbm_to_watt(30.0) == pytest.approx(1.0)
    assert units.dbm_to_watt(-30.0) == pytest.approx(1e-6)


def test_watt_to_dbm_roundtrip():
    assert units.watt_to_dbm(units.dbm_to_watt(-5.0)) == pytest.approx(-5.0)


def test_dbm_to_vpeak_minus5dbm():
    """The paper's -5 dBm tone into 50 ohm has ~178 mV peak amplitude."""
    v_peak = units.dbm_to_vpeak(-5.0)
    assert v_peak == pytest.approx(0.1778, rel=1e-3)


def test_vpeak_to_dbm_roundtrip():
    assert units.vpeak_to_dbm(units.dbm_to_vpeak(-17.3)) == pytest.approx(-17.3)


def test_vrms_to_dbm():
    # 1 V rms into 50 ohm is 20 mW = 13 dBm.
    assert units.vrms_to_dbm(1.0) == pytest.approx(13.0103, rel=1e-4)


@given(st.floats(min_value=-80.0, max_value=40.0))
def test_dbm_vpeak_roundtrip_property(power_dbm):
    v = units.dbm_to_vpeak(power_dbm)
    assert units.vpeak_to_dbm(v) == pytest.approx(power_dbm, abs=1e-9)


@given(st.floats(min_value=1e-12, max_value=1e12))
def test_db_voltage_monotonic_roundtrip(ratio):
    assert units.from_db_voltage(units.db_voltage(ratio)) == pytest.approx(ratio, rel=1e-9)


def test_parse_value_suffixes():
    assert units.parse_value("0.18u") == pytest.approx(0.18e-6)
    assert units.parse_value("3.5G") == pytest.approx(3.5e9)
    assert units.parse_value("120f") == pytest.approx(120e-15)
    assert units.parse_value("15") == pytest.approx(15.0)
    assert units.parse_value("2m") == pytest.approx(2e-3)


def test_parse_value_rejects_garbage():
    with pytest.raises(ValueError):
        units.parse_value("")
    with pytest.raises(ValueError):
        units.parse_value("abc")


def test_format_value():
    assert units.format_value(0.18e-6, "m") == "180 nm"
    assert units.format_value(3.0e9, "Hz") == "3 GHz"
    assert units.format_value(15.6, "ohm") == "15.6 ohm"
    assert units.format_value(0.0, "F") == "0 F"


def test_decade_points_endpoints():
    points = units.decade_points(1e5, 1e7, points_per_decade=5)
    assert points[0] == pytest.approx(1e5)
    assert points[-1] == pytest.approx(1e7)
    assert np.all(np.diff(points) > 0)


def test_decade_points_invalid():
    with pytest.raises(ValueError):
        units.decade_points(-1.0, 10.0)
    with pytest.raises(ValueError):
        units.decade_points(100.0, 10.0)


def test_error_metrics():
    a = np.array([0.0, 1.0, 2.0])
    b = np.array([1.0, 1.0, 0.0])
    assert units.mean_abs_error_db(a, b) == pytest.approx(1.0)
    assert units.max_abs_error_db(a, b) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        units.mean_abs_error_db(a, b[:2])
