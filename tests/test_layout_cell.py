"""Cell container: shapes, pins, device annotations."""

import pytest

from repro.errors import LayoutError
from repro.layout.cell import Cell, DeviceAnnotation
from repro.layout.geometry import Rect


def make_device(name="M1", net="OUT"):
    return DeviceAnnotation(
        name=name, device_type="nmos",
        terminals={"d": net, "g": "G", "s": "S", "b": "B"},
        parameters={"w": 10e-6, "l": 0.18e-6},
        footprint=Rect(0, 0, 10e-6, 10e-6),
        model="nmos_rf")


def test_add_shapes_and_layers():
    cell = Cell("test")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    cell.add_path("M2", [(0, 0), (5e-6, 0)], width=1e-6)
    assert cell.layers() == ["M1", "M2"]
    assert len(cell.shapes_on("M1")) == 1
    assert cell.shapes_on("M3") == []


def test_add_shape_rejects_unknown_type():
    cell = Cell("test")
    with pytest.raises(LayoutError):
        cell.add_shape("M1", "not a shape")


def test_rects_on_converts_paths():
    cell = Cell("test")
    cell.add_path("M1", [(0, 0), (5e-6, 0), (5e-6, 5e-6)], width=1e-6)
    rects = cell.rects_on("M1")
    assert len(rects) == 2


def test_pins_and_nets():
    cell = Cell("test")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    cell.add_pin("VGND", "M1", 0.5e-6, 0.5e-6)
    cell.add_pin("OUT", "M1", 0.0, 0.0, is_port=True)
    assert [p.name for p in cell.pins_of_net("VGND")] == ["VGND"]
    assert [p.name for p in cell.ports()] == ["OUT"]
    assert cell.nets() == ["OUT", "VGND"]


def test_devices_and_duplicates():
    cell = Cell("test")
    cell.add_rect("ACTIVE", 0, 0, 10e-6, 10e-6)
    cell.add_device(make_device())
    with pytest.raises(LayoutError):
        cell.add_device(make_device())
    assert len(cell.devices_of_type("nmos")) == 1
    assert cell.devices_of_type("pmos") == []
    assert "OUT" in cell.nets()


def test_bbox_and_total_area():
    cell = Cell("test")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    cell.add_rect("M1", 2e-6, 0, 3e-6, 1e-6)
    box = cell.bbox()
    assert box.width == pytest.approx(3e-6)
    assert cell.total_area("M1") == pytest.approx(2e-12)
    assert cell.total_area("M9") == 0.0


def test_bbox_of_empty_cell_raises():
    with pytest.raises(LayoutError):
        Cell("empty").bbox()


def test_validate_checks_pin_layers():
    cell = Cell("test")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    cell.add_pin("X", "M7", 0, 0)
    with pytest.raises(LayoutError):
        cell.validate()


def test_validate_checks_device_inside_bbox():
    cell = Cell("test")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    device = DeviceAnnotation(
        name="far", device_type="nmos",
        terminals={"d": "D", "g": "G", "s": "S", "b": "B"},
        parameters={}, footprint=Rect(1.0, 1.0, 1.1, 1.1))
    cell.add_device(device)
    with pytest.raises(LayoutError):
        cell.validate()


def test_iter_shapes_yields_layer_pairs():
    cell = Cell("test")
    cell.add_rect("M1", 0, 0, 1e-6, 1e-6)
    cell.add_rect("M2", 0, 0, 1e-6, 1e-6)
    layers = sorted(layer for layer, _shape in cell.iter_shapes())
    assert layers == ["M1", "M2"]
