"""Parameterised layout generators (p-cells)."""

import pytest

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.geometry import Rect
from repro.layout.primitives import (
    MosfetLayoutSpec,
    draw_bond_pad,
    draw_mosfet,
    draw_spiral_inductor,
    draw_substrate_contact_ring,
    draw_substrate_injection_contact,
    draw_substrate_tap_strip,
    draw_varactor,
    draw_wire,
)


def test_draw_wire_pins_both_ends():
    cell = Cell("t")
    draw_wire(cell, "M1", [(0, 0), (100e-6, 0)], 2e-6, net="VGND",
              nodes=("A", "B"))
    names = [p.name for p in cell.pins]
    assert names == ["A", "B"]
    assert len(cell.shapes_on("M1")) == 1


def test_draw_wire_default_single_node():
    cell = Cell("t")
    draw_wire(cell, "M1", [(0, 0), (10e-6, 0)], 2e-6, net="OUT")
    assert {p.name for p in cell.pins} == {"OUT"}


def test_draw_bond_pad_creates_port():
    cell = Cell("t")
    draw_bond_pad(cell, "VDD", (0.0, 0.0), size=80e-6)
    ports = cell.ports()
    assert len(ports) == 1 and ports[0].name == "VDD"
    assert cell.total_area("M6") == pytest.approx(80e-6 * 80e-6)
    assert cell.shapes_on("PAD")


def test_guard_ring_strips_and_annotation():
    cell = Cell("t")
    inner = Rect(0, 0, 50e-6, 30e-6)
    strips = draw_substrate_contact_ring(cell, "VGND", inner, ring_width=2e-6,
                                         name="ring")
    assert len(strips) == 4
    device = cell.devices[0]
    assert device.device_type == "substrate_contact"
    assert device.terminals["tap"] == "VGND"
    assert device.parameters["ring_width"] == pytest.approx(2e-6)
    # The ring footprint encloses the protected region.
    assert device.footprint.contains_point(inner.center)


def test_guard_ring_rejects_bad_width():
    cell = Cell("t")
    with pytest.raises(LayoutError):
        draw_substrate_contact_ring(cell, "VGND", Rect(0, 0, 1e-6, 1e-6),
                                    ring_width=0.0)


def test_injection_contact_and_tap_strip():
    cell = Cell("t")
    draw_substrate_injection_contact(cell, "SUB", (0.0, 0.0), size=20e-6)
    draw_substrate_tap_strip(cell, "VGND", Rect(50e-6, 0, 100e-6, 5e-6))
    kinds = [d.device_type for d in cell.devices]
    assert kinds == ["substrate_contact", "substrate_contact"]
    assert {d.terminals["tap"] for d in cell.devices} == {"SUB", "VGND"}


def test_mosfet_spec_validation():
    with pytest.raises(LayoutError):
        MosfetLayoutSpec("M", "nmos_rf", "nmos", width_per_finger=-1.0,
                         length=0.18e-6)
    with pytest.raises(LayoutError):
        MosfetLayoutSpec("M", "nmos_rf", "nmos", width_per_finger=1e-6,
                         length=0.18e-6, fingers=0)
    spec = MosfetLayoutSpec("M", "nmos_rf", "nmos", width_per_finger=5e-6,
                            length=0.18e-6, fingers=10, multiplier=4)
    assert spec.total_width == pytest.approx(200e-6)


def test_draw_mosfet_annotation_and_pins():
    cell = Cell("t")
    spec = MosfetLayoutSpec("MN0", "nmos_rf", "nmos", width_per_finger=5e-6,
                            length=0.18e-6, fingers=4)
    annotation = draw_mosfet(cell, spec, (0.0, 0.0),
                             terminals={"d": "OUT", "g": "G", "s": "S", "b": "B"})
    assert annotation.model == "nmos_rf"
    assert annotation.parameters["w"] == pytest.approx(20e-6)
    assert cell.shapes_on("POLY")
    assert {p.name for p in cell.pins} == {"OUT", "G", "S", "B"}


def test_draw_mosfet_requires_all_terminals():
    cell = Cell("t")
    spec = MosfetLayoutSpec("MN0", "nmos_rf", "nmos", width_per_finger=5e-6,
                            length=0.18e-6)
    with pytest.raises(LayoutError):
        draw_mosfet(cell, spec, (0.0, 0.0), terminals={"d": "OUT", "g": "G"})


def test_draw_pmos_adds_nwell():
    cell = Cell("t")
    spec = MosfetLayoutSpec("MP0", "pmos_rf", "pmos", width_per_finger=5e-6,
                            length=0.18e-6)
    draw_mosfet(cell, spec, (0.0, 0.0),
                terminals={"d": "D", "g": "G", "s": "S", "b": "B"},
                in_nwell=True)
    assert cell.shapes_on("NWELL")
    assert cell.shapes_on("PPLUS")


def test_draw_varactor():
    cell = Cell("t")
    annotation = draw_varactor(cell, "CV", (0.0, 0.0),
                               terminals={"plus": "TANK", "minus": "VTUNE",
                                          "well": "VTUNE"},
                               cmin=0.6e-12, cmax=1.8e-12)
    assert annotation.parameters["cmax"] == pytest.approx(1.8e-12)
    assert cell.shapes_on("NWELL")
    with pytest.raises(LayoutError):
        draw_varactor(cell, "CV2", (0.0, 0.0), terminals={"plus": "A"})


def test_draw_spiral_inductor_manhattan_and_annotation():
    cell = Cell("t")
    annotation = draw_spiral_inductor(
        cell, "L1", (0.0, 0.0), terminals={"plus": "TP", "minus": "TN"},
        inductance=2e-9, series_resistance=4.0, outer_diameter=200e-6)
    assert annotation.parameters["inductance"] == pytest.approx(2e-9)
    assert annotation.parameters["substrate_capacitance"] == pytest.approx(120e-15)
    # The spiral is drawn on the thick top metal.
    assert cell.shapes_on("M6")
    assert {p.name for p in cell.pins} == {"TP", "TN"}
    with pytest.raises(LayoutError):
        draw_spiral_inductor(cell, "L2", (0.0, 0.0), terminals={"plus": "X"},
                             inductance=1e-9, series_resistance=1.0)
