"""Device models: MOSFET, varactor, spiral inductor."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import (
    AccumulationModeVaractor,
    MosfetGeometry,
    MosfetModel,
    SpiralInductor,
)
from repro.errors import NetlistError
from repro.technology import make_technology


@pytest.fixture(scope="module")
def nmos_model():
    tech = make_technology()
    return MosfetModel(tech.mos_parameters("nmos_rf"),
                       MosfetGeometry(width=200e-6, length=0.18e-6))


@pytest.fixture(scope="module")
def pmos_model():
    tech = make_technology()
    return MosfetModel(tech.mos_parameters("pmos_rf"),
                       MosfetGeometry(width=120e-6, length=0.18e-6))


# -- MOSFET -----------------------------------------------------------------------------


def test_geometry_validation():
    with pytest.raises(NetlistError):
        MosfetGeometry(width=-1.0, length=0.18e-6)
    geometry = MosfetGeometry(width=200e-6, length=0.18e-6)
    assert geometry.drain_area == pytest.approx(200e-6 * 0.6e-6)
    assert geometry.source_area > geometry.drain_area


def test_cutoff_region(nmos_model):
    op = nmos_model.evaluate(vgs=0.0, vds=1.0, vbs=0.0)
    assert op.region == "cutoff"
    assert op.ids == 0.0
    assert op.gm == 0.0
    assert op.gds > 0.0        # gmin keeps the matrix non-singular


def test_saturation_and_triode_regions(nmos_model):
    sat = nmos_model.evaluate(vgs=0.8, vds=1.5, vbs=0.0)
    assert sat.region == "saturation"
    assert sat.ids > 0.0
    triode = nmos_model.evaluate(vgs=1.6, vds=0.05, vbs=0.0)
    assert triode.region == "triode"
    assert triode.gds > sat.gds


def test_current_continuity_at_vdsat(nmos_model):
    """The triode and saturation expressions meet at vds = vdsat."""
    vgs = 1.0
    op = nmos_model.evaluate(vgs, 2.0, 0.0)
    vdsat = (vgs - op.vth) / (1.0 + (vgs - op.vth) / (
        nmos_model.parameters.esat * nmos_model.geometry.length))
    below = nmos_model.evaluate(vgs, vdsat * 0.999, 0.0)
    above = nmos_model.evaluate(vgs, vdsat * 1.001, 0.0)
    assert below.ids == pytest.approx(above.ids, rel=2e-2)


def test_body_effect_raises_threshold(nmos_model):
    nominal = nmos_model.evaluate(0.8, 1.0, 0.0)
    reverse = nmos_model.evaluate(0.8, 1.0, -0.5)
    assert reverse.vth > nominal.vth
    assert reverse.ids < nominal.ids


def test_gmb_fraction_of_gm(nmos_model):
    op = nmos_model.evaluate(1.0, 1.0, 0.0)
    assert 0.1 < op.gmb / op.gm < 0.8


def test_paper_gmb_gds_ranges(nmos_model):
    """The calibrated card reproduces the paper's measured small-signal ranges.

    Paper: gmb = 10-38 mS and gds = 2.8-22 mS for the 4 x 50 um RF NMOS over a
    0.5-1.6 V bias sweep.  The synthetic model is required to stay within a
    factor ~1.5 of those bands at the sweep extremes.
    """
    low = nmos_model.evaluate(0.5, 0.5, 0.0)
    high = nmos_model.evaluate(1.6, 1.6, 0.0)
    assert 6e-3 < low.gmb < 20e-3
    assert 25e-3 < high.gmb < 55e-3
    assert 1.5e-3 < low.gds < 5e-3
    assert 15e-3 < high.gds < 40e-3
    # The back-gate-to-output gain falls with bias (the Figure-3 trend).
    assert low.backgate_gain > high.backgate_gain


def test_paper_junction_capacitances(nmos_model):
    """Cdbj ~ 120 fF and Csbj ~ 200 fF for the paper's 4 x 50 um device."""
    op = nmos_model.evaluate(0.5, 0.0, 0.0)
    assert op.cdb == pytest.approx(120e-15, rel=0.35)
    assert op.csb == pytest.approx(200e-15, rel=0.35)


def test_junction_crossover_is_multi_ghz(nmos_model):
    """The junction-cap path overtakes the back-gate path only above a few GHz."""
    for bias in (0.5, 1.0, 1.6):
        crossover = nmos_model.junction_crossover_frequency(bias, bias)
        assert crossover > 2e9


def test_pmos_polarity(pmos_model):
    op = pmos_model.evaluate(vgs=-1.0, vds=-1.0, vbs=0.0)
    assert op.ids < 0.0
    assert op.region == "saturation"
    off = pmos_model.evaluate(vgs=0.0, vds=-1.0, vbs=0.0)
    assert off.ids == 0.0


def test_drain_source_swap_antisymmetry(nmos_model):
    forward = nmos_model.evaluate(1.0, 0.3, 0.0)
    # Swap drain and source: vgs' = vgd = 0.7, vds' = -0.3, vbs' = -0.3.
    reverse = nmos_model.evaluate(0.7, -0.3, -0.3)
    assert reverse.ids == pytest.approx(-forward.ids, rel=1e-6)


@given(vgs=st.floats(min_value=0.0, max_value=1.8),
       vds=st.floats(min_value=0.0, max_value=1.8),
       vbs=st.floats(min_value=-0.8, max_value=0.3))
@settings(max_examples=60, deadline=None)
def test_mosfet_outputs_finite_and_passive(nmos_model, vgs, vds, vbs):
    op = nmos_model.evaluate(vgs, vds, vbs)
    assert math.isfinite(op.ids)
    assert op.ids >= 0.0
    assert op.gm >= 0.0 and op.gds > 0.0 and op.gmb >= 0.0
    assert op.cgs >= 0.0 and op.cgd >= 0.0 and op.cdb > 0.0 and op.csb > 0.0


@given(vgs=st.floats(min_value=0.4, max_value=1.8),
       vds=st.floats(min_value=0.0, max_value=1.8))
@settings(max_examples=40, deadline=None)
def test_mosfet_current_increases_with_vgs(nmos_model, vgs, vds):
    lower = nmos_model.evaluate(vgs, vds, 0.0)
    higher = nmos_model.evaluate(vgs + 0.1, vds, 0.0)
    assert higher.ids >= lower.ids


# -- varactor ------------------------------------------------------------------------------


def test_varactor_validation():
    with pytest.raises(NetlistError):
        AccumulationModeVaractor(cmin=-1e-12, cmax=1e-12)
    with pytest.raises(NetlistError):
        AccumulationModeVaractor(cmin=2e-12, cmax=1e-12)
    with pytest.raises(NetlistError):
        AccumulationModeVaractor(cmin=1e-12, cmax=2e-12, slope=0.0)


def test_varactor_limits_and_midpoint():
    varactor = AccumulationModeVaractor(cmin=0.6e-12, cmax=1.8e-12,
                                        v_half=0.4, slope=4.0)
    assert varactor.capacitance(-3.0) == pytest.approx(0.6e-12, rel=1e-3)
    assert varactor.capacitance(3.0) == pytest.approx(1.8e-12, rel=1e-3)
    assert varactor.capacitance(0.4) == pytest.approx(1.2e-12, rel=1e-6)
    assert varactor.tuning_range() == pytest.approx(3.0)


def test_varactor_dcdv_peaks_at_transition():
    varactor = AccumulationModeVaractor(cmin=0.6e-12, cmax=1.8e-12,
                                        v_half=0.4, slope=4.0)
    assert varactor.dc_dv(0.4) > varactor.dc_dv(1.5)
    assert varactor.dc_dv(0.4) > varactor.dc_dv(-0.7)


@given(v=st.floats(min_value=-2.0, max_value=2.0),
       dv=st.floats(min_value=1e-4, max_value=1e-2))
@settings(max_examples=50, deadline=None)
def test_varactor_charge_derivative_is_capacitance(v, dv):
    varactor = AccumulationModeVaractor(cmin=0.6e-12, cmax=1.8e-12,
                                        v_half=0.4, slope=4.0)
    numeric = (varactor.charge(v + dv) - varactor.charge(v - dv)) / (2 * dv)
    assert numeric == pytest.approx(varactor.capacitance(v), rel=1e-2)


@given(v=st.floats(min_value=-5.0, max_value=5.0))
@settings(max_examples=50, deadline=None)
def test_varactor_capacitance_bounded_and_monotonic(v):
    varactor = AccumulationModeVaractor(cmin=0.6e-12, cmax=1.8e-12)
    c = varactor.capacitance(v)
    assert 0.6e-12 <= c <= 1.8e-12
    assert varactor.capacitance(v + 0.1) >= c


# -- inductor -------------------------------------------------------------------------------


def test_inductor_validation():
    with pytest.raises(NetlistError):
        SpiralInductor(inductance=0.0, series_resistance=1.0)
    with pytest.raises(NetlistError):
        SpiralInductor(inductance=1e-9, series_resistance=-1.0)


def test_inductor_quality_factor_and_loss():
    coil = SpiralInductor(inductance=2e-9, series_resistance=4.0)
    q = coil.quality_factor(3e9)
    assert q == pytest.approx(2 * math.pi * 3e9 * 2e-9 / 4.0)
    r_parallel = coil.parallel_tank_loss(3e9)
    assert r_parallel == pytest.approx(4.0 * (1 + q * q))
    with pytest.raises(NetlistError):
        coil.quality_factor(0.0)


def test_inductor_impedance_and_resonance():
    coil = SpiralInductor(inductance=2e-9, series_resistance=4.0,
                          substrate_capacitance=120e-15)
    z = coil.impedance(1e9)
    assert z.real == pytest.approx(4.0)
    assert z.imag == pytest.approx(2 * math.pi * 1e9 * 2e-9)
    # Self resonance with 60 fF effective capacitance: ~14.5 GHz.
    assert coil.self_resonance_frequency() == pytest.approx(14.5e9, rel=0.05)


def test_ideal_inductor_infinite_q():
    coil = SpiralInductor(inductance=1e-9, series_resistance=0.0)
    assert math.isinf(coil.quality_factor(1e9))
    assert math.isinf(coil.parallel_tank_loss(1e9))
