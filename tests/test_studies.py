"""Tests of the design-study sweep engine (:mod:`repro.studies`).

Covers the acceptance properties of the subsystem:

* the extraction cache is content-addressed (structurally identical cells
  share an entry), counts hits/misses and invalidates on layout or mesh
  changes,
* a layout-invariant sweep extracts exactly once, warm re-runs extract zero
  times, and layout sweeps re-extract only the changed variants,
* the process-pool backend produces numerically identical results to the
  serial backend (<= 1e-12),
* the tidy result store answers the summary queries the figures need.

All sweeps here run on a deliberately tiny substrate mesh — the engine's
behaviour does not depend on mesh resolution.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import (
    VcoExperimentOptions,
    VcoImpactAnalysis,
    ground_resistance_study,
)
from repro.errors import AnalysisError
from repro.layout.testchips import VcoLayoutSpec, make_vco_testchip
from repro.studies import (
    Campaign,
    ExtractionCache,
    ParamSpace,
    ProcessPoolBackend,
    SerialBackend,
    SweepRunner,
    fingerprint,
)
from repro.substrate.extraction import SubstrateExtractionOptions


TINY_MESH = FlowOptions(substrate=SubstrateExtractionOptions(
    nx=16, ny=16, n_z_per_layer=2, lateral_margin=60e-6))


@pytest.fixture(scope="module")
def sweep_options():
    return VcoExperimentOptions(
        vtune_values=(0.0, 0.75),
        noise_frequencies=(1e6, 4e6, 12e6),
        flow=TINY_MESH)


@pytest.fixture(scope="module")
def campaign(sweep_options):
    return Campaign(
        name="vtune_x_fnoise",
        space=ParamSpace({"vtune": (0.0, 0.75),
                          "noise_frequency": (1e6, 4e6, 12e6)}),
        options=sweep_options)


# -- parameter space ------------------------------------------------------------------


def test_param_space_grid_shape_and_order():
    space = ParamSpace({"vtune": (0.0, 1.5), "noise_frequency": (1e6, 2e6, 4e6)})
    assert space.shape == (2, 3)
    assert space.size == len(space) == 6
    points = list(space.grid())
    # Last axis varies fastest.
    assert points[0] == {"vtune": 0.0, "noise_frequency": 1e6}
    assert points[1] == {"vtune": 0.0, "noise_frequency": 2e6}
    assert points[3] == {"vtune": 1.5, "noise_frequency": 1e6}


def test_param_space_rejects_unknown_and_empty_axes():
    with pytest.raises(AnalysisError):
        ParamSpace({"not_an_axis": (1.0,)})
    with pytest.raises(AnalysisError):
        ParamSpace({"vtune": ()})


def test_campaign_resolves_layout_and_mesh_variants(sweep_options):
    campaign = Campaign(
        name="variants",
        space=ParamSpace({"ground_width_scale": (1.0, 2.0),
                          "mesh_nx": (12, 16),
                          "vtune": (0.0,)}),
        options=sweep_options)
    variants = campaign.variants()
    assert len(variants) == 4
    assert variants[0].knobs == {"ground_width_scale": 1.0, "mesh_nx": 12}
    assert variants[0].spec.ground_width_scale == 1.0
    assert variants[0].flow_options.substrate.nx == 12
    assert variants[3].spec.ground_width_scale == 2.0
    assert variants[3].flow_options.substrate.nx == 16
    # Simulation axes fall back to the options where not swept.
    powers, vtunes, frequencies = campaign.sim_grid()
    assert powers == (sweep_options.injected_power_dbm,)
    assert vtunes == (0.0,)
    assert frequencies == sweep_options.noise_frequencies
    assert campaign.n_points == 4 * 1 * 1 * 3


# -- extraction cache -----------------------------------------------------------------


def test_fingerprint_is_content_addressed():
    spec = VcoLayoutSpec()
    assert fingerprint(make_vco_testchip(spec)) == \
        fingerprint(make_vco_testchip(VcoLayoutSpec()))
    widened = replace(spec, ground_width_scale=2.0)
    assert fingerprint(make_vco_testchip(spec)) != \
        fingerprint(make_vco_testchip(widened))
    with pytest.raises(AnalysisError):
        fingerprint(object())


def test_cache_counts_hits_misses_and_invalidates(technology):
    cache = ExtractionCache()
    cell = make_vco_testchip()
    flow = cache.get_or_extract(cell, technology, TINY_MESH)
    assert (cache.hits, cache.misses) == (0, 1)
    # A structurally identical, separately built cell hits the same entry.
    again = cache.get_or_extract(make_vco_testchip(), technology, TINY_MESH)
    assert again is flow
    assert (cache.hits, cache.misses) == (1, 1)
    # A different mesh spec invalidates.
    finer = FlowOptions(substrate=replace(TINY_MESH.substrate, nx=20))
    cache.get_or_extract(cell, technology, finer)
    assert (cache.hits, cache.misses) == (1, 2)
    # A different layout invalidates.
    widened = make_vco_testchip(VcoLayoutSpec(ground_width_scale=2.0))
    cache.get_or_extract(widened, technology, TINY_MESH)
    assert (cache.hits, cache.misses) == (1, 3)
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0 and cache.stats.requests == 0


def test_layout_invariant_sweep_extracts_exactly_once(technology, campaign):
    runner = SweepRunner(technology, cache=ExtractionCache())
    cold = runner.run(campaign)
    assert cold.cache_misses == 1 and cold.cache_hits == 0
    warm = runner.run(campaign)
    # Warm cache: the single layout variant is never re-extracted.
    assert warm.cache_misses == 0 and warm.cache_hits == 1
    assert len(runner.cache) == 1
    np.testing.assert_array_equal(cold.column("spur_power_dbm"),
                                  warm.column("spur_power_dbm"))


def test_layout_sweep_reextracts_only_changed_variants(technology, sweep_options):
    cache = ExtractionCache()
    runner = SweepRunner(technology, cache=cache)
    nominal_only = Campaign(
        name="nominal",
        space=ParamSpace({"vtune": (0.0,), "noise_frequency": (1e6,)}),
        options=sweep_options)
    runner.run(nominal_only)
    assert cache.misses == 1

    widths = Campaign(
        name="widths",
        space=ParamSpace({"ground_width_scale": (1.0, 2.0),
                          "vtune": (0.0,), "noise_frequency": (1e6,)}),
        options=sweep_options)
    sweep = runner.run(widths)
    # Only the widened layout is new; the nominal one is a content hit.
    assert sweep.cache_misses == 1 and sweep.cache_hits == 1
    assert sweep.variants[0].from_cache is True
    assert sweep.variants[1].from_cache is False
    assert sweep.variants[0].cache_key != sweep.variants[1].cache_key


# -- backend equivalence --------------------------------------------------------------


def test_process_pool_matches_serial(technology, campaign):
    cache = ExtractionCache()
    serial = SweepRunner(technology, backend=SerialBackend(),
                         cache=cache).run(campaign)
    sharded = SweepRunner(technology, backend=ProcessPoolBackend(max_workers=2),
                          cache=cache).run(campaign)
    assert len(serial) == len(sharded) == 6
    assert [r.point_index for r in serial.records] == \
        [r.point_index for r in sharded.records]
    for column in ("spur_power_dbm", "carrier_frequency", "carrier_amplitude",
                   "noise_frequency", "vtune"):
        assert np.max(np.abs(serial.column(column)
                             - sharded.column(column))) <= 1e-12
    # The sharded run reused the serial run's extraction.
    assert sharded.cache_misses == 0


def test_spur_sweep_backend_equivalence(technology, sweep_options):
    analysis = VcoImpactAnalysis(technology, options=sweep_options)
    cache = ExtractionCache()
    serial = analysis.spur_sweep(cache=cache)
    sharded = analysis.spur_sweep(backend=ProcessPoolBackend(max_workers=2),
                                  cache=cache)
    # The seeded cache means neither run extracts anything.
    assert cache.misses == 0
    for vtune in serial.vtune_values:
        assert np.max(np.abs(serial.spur_power_dbm[vtune]
                             - sharded.spur_power_dbm[vtune])) <= 1e-12


# -- result store ---------------------------------------------------------------------


def test_sweep_result_queries(technology, campaign):
    sweep = SweepRunner(technology).run(campaign)

    frequencies, power = sweep.spur_vs_frequency(vtune=0.0)
    np.testing.assert_allclose(frequencies, (1e6, 4e6, 12e6))
    assert np.all(np.diff(power) < 0)          # spur falls with frequency

    worst = sweep.worst_spur()
    assert worst.noise_frequency == pytest.approx(1e6)
    per_vtune = sweep.worst_per("vtune")
    assert set(per_vtune) == {0.0, 0.75}
    assert all(record.noise_frequency == pytest.approx(1e6)
               for record in per_vtune.values())

    rows = sweep.rows()
    assert len(rows) == 6
    assert {"vtune", "noise_frequency", "spur_power_dbm",
            "injected_power_dbm"} <= set(rows[0])

    with pytest.raises(AnalysisError):
        sweep.column("no_such_column")
    with pytest.raises(AnalysisError):
        sweep.spur_vs_frequency(vtune=99.0)
    with pytest.raises(AnalysisError):
        sweep.spur_vs_frequency()              # two curves left


def test_to_vco_sweep_result_round_trip(technology, campaign):
    sweep = SweepRunner(technology).run(campaign)
    classic = sweep.to_vco_sweep_result()
    assert classic.vtune_values == (0.0, 0.75)
    np.testing.assert_allclose(classic.noise_frequencies, (1e6, 4e6, 12e6))
    for vtune in classic.vtune_values:
        frequencies, power = sweep.spur_vs_frequency(vtune=vtune)
        np.testing.assert_array_equal(classic.spur_power_dbm[vtune], power)
        # Reference line is anchored at the first simulated point.
        assert classic.reference_dbm[vtune][0] == pytest.approx(power[0])
    assert len(classic.points) == 6


def test_ground_resistance_study_shares_cache(technology, sweep_options):
    cache = ExtractionCache()
    study = ground_resistance_study(technology, options=sweep_options,
                                    width_scale=2.0, vtune=0.0, cache=cache)
    assert cache.misses == 2                   # nominal + widened layout
    assert study.improved_ground_resistance == pytest.approx(
        study.nominal_ground_resistance / 2.0, rel=1e-6)
    again = ground_resistance_study(technology, options=sweep_options,
                                    width_scale=2.0, vtune=0.0, cache=cache)
    assert cache.misses == 2                   # warm cache: zero re-extractions
    np.testing.assert_array_equal(study.nominal_dbm, again.nominal_dbm)
