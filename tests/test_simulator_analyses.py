"""DC, AC, transfer-function and transient analyses on known circuits."""

import math

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.errors import ConvergenceError, SimulationError
from repro.netlist import Circuit, SourceValue
from repro.simulator import (
    ac_analysis,
    dc_operating_point,
    transfer_function,
    transient_analysis,
)
from repro.simulator.transient import TransientOptions


# -- DC --------------------------------------------------------------------------------


def test_dc_resistive_divider():
    circuit = Circuit("div")
    circuit.add_voltage_source("V1", "in", "0", 2.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_resistor("R2", "out", "0", 3e3)
    solution = dc_operating_point(circuit)
    assert solution.voltage("out") == pytest.approx(1.5, rel=1e-6)
    assert solution.voltage("in") == pytest.approx(2.0, rel=1e-6)
    # Source current: 2 V across 4 kohm = 0.5 mA flowing out of the source.
    assert solution.branch_current("V1") == pytest.approx(-0.5e-3, rel=1e-5)


def test_dc_current_source_into_resistor():
    circuit = Circuit("i")
    circuit.add_current_source("I1", "0", "a", 1e-3)
    circuit.add_resistor("R1", "a", "0", 2e3)
    solution = dc_operating_point(circuit)
    assert solution.voltage("a") == pytest.approx(2.0, rel=1e-6)


def test_dc_superposition_of_sources():
    circuit = Circuit("sp")
    circuit.add_voltage_source("V1", "a", "0", 1.0)
    circuit.add_resistor("R1", "a", "b", 1e3)
    circuit.add_current_source("I1", "0", "b", 1e-3)
    circuit.add_resistor("R2", "b", "0", 1e3)
    solution = dc_operating_point(circuit)
    # Node b: superposition of the divider (0.5 V) and I1 into R1||R2 (0.5 V).
    assert solution.voltage("b") == pytest.approx(1.0, rel=1e-6)


def test_dc_vcvs_gain():
    circuit = Circuit("e")
    circuit.add_voltage_source("V1", "in", "0", 0.25)
    circuit.add_resistor("Rin", "in", "0", 1e6)
    circuit.add_vcvs("E1", "out", "0", "in", "0", gain=4.0)
    circuit.add_resistor("RL", "out", "0", 1e3)
    solution = dc_operating_point(circuit)
    assert solution.voltage("out") == pytest.approx(1.0, rel=1e-6)


def test_dc_mosfet_common_source(technology):
    circuit = Circuit("cs")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_voltage_source("VG", "g", "0", 0.9)
    circuit.add_resistor("RL", "vdd", "d", 1e3)
    circuit.add_mosfet("M1", "d", "g", "0", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=10e-6, length=0.18e-6)
    solution = dc_operating_point(circuit)
    vd = solution.voltage("d")
    assert 0.0 < vd < 1.8
    op = solution.operating_point_of("M1")
    assert op.ids == pytest.approx((1.8 - vd) / 1e3, rel=1e-3)
    with pytest.raises(ConvergenceError):
        solution.operating_point_of("RL")


def test_dc_diode_connected_mosfet(technology):
    circuit = Circuit("diode")
    # 1 mA pushed into the drain of the diode-connected device.
    circuit.add_current_source("I1", "vdd", "d", 1e-3)
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_mosfet("M1", "d", "d", "0", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=20e-6, length=0.18e-6)
    solution = dc_operating_point(circuit)
    op = solution.operating_point_of("M1")
    assert op.ids == pytest.approx(1e-3, rel=1e-2)
    assert op.vgs == pytest.approx(solution.voltage("d"), rel=1e-9)


def test_dc_empty_circuit_rejected():
    with pytest.raises(Exception):
        dc_operating_point(Circuit("empty"))


# -- AC ---------------------------------------------------------------------------------


def test_ac_rc_lowpass_pole():
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0",
                               SourceValue(ac_magnitude=1.0))
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    f_pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
    ac = ac_analysis(circuit, [f_pole / 100, f_pole, f_pole * 100])
    magnitude = np.abs(ac.voltage("out"))
    assert magnitude[0] == pytest.approx(1.0, rel=1e-3)
    assert magnitude[1] == pytest.approx(1 / math.sqrt(2), rel=1e-3)
    assert magnitude[2] == pytest.approx(0.01, rel=0.05)
    # Phase at the pole is -45 degrees.
    phase = np.degrees(np.angle(ac.voltage("out")))
    assert phase[1] == pytest.approx(-45.0, abs=1.0)


def test_ac_lc_resonance():
    circuit = Circuit("lc")
    circuit.add_current_source("I1", "0", "tank",
                               SourceValue(ac_magnitude=1e-3))
    circuit.add_inductor("L1", "tank", "0", 2e-9)
    circuit.add_capacitor("C1", "tank", "0", 1.4e-12)
    circuit.add_resistor("R1", "tank", "0", 300.0)
    f0 = 1.0 / (2 * math.pi * math.sqrt(2e-9 * 1.4e-12))
    ac = ac_analysis(circuit, [f0 / 2, f0, f0 * 2])
    magnitude = np.abs(ac.voltage("tank"))
    # At resonance the tank impedance is the parallel loss resistance.
    assert magnitude[1] == pytest.approx(0.3, rel=1e-2)
    assert magnitude[1] > magnitude[0]
    assert magnitude[1] > magnitude[2]


def test_ac_magnitude_db_helper():
    circuit = Circuit("d")
    circuit.add_voltage_source("V1", "in", "0", SourceValue(ac_magnitude=1.0))
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_resistor("R2", "out", "0", 1e3)
    ac = ac_analysis(circuit, [1e3])
    assert ac.magnitude_db("out")[0] == pytest.approx(-6.02, abs=0.05)


def test_ac_requires_frequencies():
    circuit = Circuit("x")
    circuit.add_resistor("R1", "a", "0", 1.0)
    circuit.add_voltage_source("V1", "a", "0", 1.0)
    with pytest.raises(SimulationError):
        ac_analysis(circuit, [])
    with pytest.raises(SimulationError):
        ac_analysis(circuit, [-1.0])


def test_ac_mosfet_amplifier_gain(technology):
    """Small-signal gain of a common-source stage is -gm * (RL || rds)."""
    circuit = Circuit("cs")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_voltage_source("VG", "g", "0",
                               SourceValue(dc=0.9, ac_magnitude=1.0))
    circuit.add_resistor("RL", "vdd", "d", 1e3)
    circuit.add_mosfet("M1", "d", "g", "0", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=10e-6, length=0.18e-6)
    solution = dc_operating_point(circuit)
    op = solution.operating_point_of("M1")
    expected = op.gm * (1e3 * (1 / op.gds)) / (1e3 + 1 / op.gds)
    ac = ac_analysis(circuit, [1e5], operating_point=solution)
    assert abs(ac.voltage("d")[0]) == pytest.approx(expected, rel=1e-2)


# -- transfer function ----------------------------------------------------------------------


def test_transfer_function_divider():
    circuit = Circuit("div")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_resistor("R2", "out", "0", 1e3)
    tf = transfer_function(circuit, "V1", ["out", "in"], [1e3, 1e6])
    assert abs(tf.at("out", 1e3)) == pytest.approx(0.5, rel=1e-6)
    assert abs(tf.at("in", 1e6)) == pytest.approx(1.0, rel=1e-6)
    assert tf.magnitude_db("out")[0] == pytest.approx(-6.02, abs=0.05)
    assert tf.nodes() == ["out", "in"]


def test_transfer_function_only_drives_named_source():
    circuit = Circuit("two_sources")
    circuit.add_voltage_source("V1", "a", "0", SourceValue(ac_magnitude=5.0))
    circuit.add_voltage_source("V2", "b", "0", SourceValue(ac_magnitude=7.0))
    circuit.add_resistor("R1", "a", "out", 1e3)
    circuit.add_resistor("R2", "b", "out", 1e3)
    circuit.add_resistor("R3", "out", "0", 1e3)
    tf = transfer_function(circuit, "V1", ["out"], [1e3])
    # With only V1 active at 1 V, out = 1/3 V.
    assert abs(tf.at("out", 1e3)) == pytest.approx(1.0 / 3.0, rel=1e-6)


def test_transfer_function_unknown_source():
    circuit = Circuit("x")
    circuit.add_voltage_source("V1", "a", "0", 1.0)
    circuit.add_resistor("R1", "a", "0", 1.0)
    with pytest.raises(SimulationError):
        transfer_function(circuit, "nope", ["a"], [1e3])
    with pytest.raises(SimulationError):
        transfer_function(circuit, "V1", [], [1e3])


# -- transient -------------------------------------------------------------------------------


def test_transient_rc_step_response():
    circuit = Circuit("rc")
    tau = 1e-6
    circuit.add_voltage_source("V1", "in", "0",
                               SourceValue(dc=0.0, waveform=lambda t: 1.0))
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    result = transient_analysis(circuit, t_stop=5 * tau, timestep=tau / 100)
    v_final = result.voltage("out")[-1]
    assert v_final == pytest.approx(1.0 - math.exp(-5.0), rel=0.02)
    index_tau = int(round(tau / result.timestep))
    assert result.voltage("out")[index_tau] == pytest.approx(1 - math.exp(-1), rel=0.05)


def test_transient_sine_amplitude_tracks_ac():
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0", SourceValue.sine(1.0, 1e6))
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 159.155e-12)   # pole at 1 MHz
    result = transient_analysis(circuit, t_stop=5e-6, timestep=2e-9)
    steady = result.voltage("out")[len(result.times) // 2:]
    amplitude = (steady.max() - steady.min()) / 2
    assert amplitude == pytest.approx(1 / math.sqrt(2), rel=0.05)


def test_transient_trapezoidal_matches_backward_euler():
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0",
                               SourceValue(dc=0.0, waveform=lambda t: 1.0))
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    be = transient_analysis(circuit, 5e-6, 1e-8)
    trap = transient_analysis(circuit, 5e-6, 1e-8,
                              options=TransientOptions(method="trapezoidal"))
    assert trap.voltage("out")[-1] == pytest.approx(be.voltage("out")[-1], rel=1e-3)


def test_transient_rejects_bad_inputs():
    circuit = Circuit("x")
    circuit.add_resistor("R1", "a", "0", 1.0)
    circuit.add_voltage_source("V1", "a", "0", 1.0)
    with pytest.raises(SimulationError):
        transient_analysis(circuit, t_stop=-1.0, timestep=1e-9)
    with pytest.raises(SimulationError):
        transient_analysis(circuit, t_stop=1e-6, timestep=0.0)


def test_transient_nonlinear_follower(technology):
    """A MOSFET source follower driven by a slow ramp tracks its input."""
    circuit = Circuit("sf")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_voltage_source("VG", "g", "0",
                               SourceValue(dc=1.2, waveform=lambda t: 1.2 + 0.2 * min(t / 1e-6, 1.0)))
    circuit.add_mosfet("M1", "vdd", "g", "s", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=50e-6, length=0.5e-6)
    circuit.add_resistor("RS", "s", "0", 2e3)
    result = transient_analysis(circuit, t_stop=2e-6, timestep=2e-8)
    v_start = result.voltage("s")[0]
    v_end = result.voltage("s")[-1]
    # The output follows the 0.2 V gate ramp (attenuated by body effect).
    assert 0.05 < (v_end - v_start) < 0.25
