"""Reference data reconstructed from the paper."""

import numpy as np
import pytest

from repro.data import measurements


def test_nmos_transfer_reference_endpoints():
    bias, transfer = measurements.nmos_transfer_reference()
    assert bias[0] == pytest.approx(0.5)
    assert bias[-1] == pytest.approx(1.6)
    assert transfer[0] == pytest.approx(-45.0)
    assert transfer[-1] == pytest.approx(-52.0)
    # Monotonically decreasing, as in Figure 3.
    assert np.all(np.diff(transfer) < 0)


def test_nmos_transfer_reference_custom_bias():
    bias, transfer = measurements.nmos_transfer_reference(np.array([0.5, 1.05, 1.6]))
    assert transfer[1] == pytest.approx(-48.5)


def test_headline_constants():
    assert measurements.NMOS_SUBSTRATE_DIVISION == pytest.approx(1 / 652)
    assert measurements.VCO_OSCILLATION_FREQUENCY_HZ == pytest.approx(3e9)
    assert measurements.INJECTED_POWER_DBM == -5.0
    assert measurements.NOISE_FREQUENCY_RANGE_HZ[1] == pytest.approx(15e6)
    assert measurements.FIG9_NMOS_BELOW_GROUND_DB == pytest.approx(20.0)
    assert measurements.FIG10_PREDICTED_REDUCTION_DB == pytest.approx(4.5)
    assert measurements.NMOS_GMB_RANGE_S == (10e-3, 38e-3)
    assert measurements.NMOS_GDS_RANGE_S == (2.8e-3, 22e-3)


def test_fig8_reference_slope():
    frequencies, level = measurements.fig8_spur_reference()
    slope = np.polyfit(np.log10(frequencies), level, 1)[0]
    assert slope == pytest.approx(-20.0)
    assert frequencies[0] == pytest.approx(1e5)
    # The offset knob shifts the whole line.
    _, shifted = measurements.fig8_spur_reference(frequencies, vtune_offset_db=3.0)
    assert np.allclose(shifted - level, 3.0)


def test_fig9_reference_structure():
    curves = measurements.fig9_contribution_reference()
    assert set(curves) == {"ground interconnect", "NMOS back-gate", "inductor"}
    frequencies, ground = curves["ground interconnect"]
    _, nmos = curves["NMOS back-gate"]
    _, inductor = curves["inductor"]
    assert np.allclose(ground - nmos, 20.0)
    assert np.allclose(np.diff(inductor), 0.0)
    # The ground path dominates everywhere in the analysed range.
    assert np.all(ground > inductor)


def test_paper_summary_defaults():
    summary = measurements.PaperSummary()
    assert summary.vco_frequency_hz == pytest.approx(3e9)
    assert summary.max_error_nmos_db == pytest.approx(1.0)
    assert summary.max_error_vco_db == pytest.approx(2.0)
