"""The unified work scheduler and its shared-memory data plane.

Covers the `repro.parallel` package end to end:

* plan validation (duplicate ids, unknown deps, cycles) and the scheduler's
  dependency/priority dispatch, dependency-failure propagation and retries —
  inline and on real worker processes;
* the zero-copy arena / shipped-object plane, including the inline fallback;
* worker-count configuration: the ``REPRO_MAX_WORKERS`` environment
  override and the ``[execution] max_workers`` config key;
* the fingerprint seam: parallelism knobs (``ac_workers``, ``ac_mode``,
  worker counts, flow transport) must never invalidate the extraction cache;
* numerical equivalence: process-sharded frequency fan-out == serial to the
  last bit, for AC and multi-RHS transfer sweeps, with and without injected
  worker faults, and a whole campaign on the graph scheduler == serial.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.flow import FlowOptions
from repro.core.vco_experiment import VcoExperimentOptions
from repro.errors import AnalysisError, SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.elements import SourceValue
from repro.parallel import (
    MAX_WORKERS_ENV,
    SharedArena,
    WorkItem,
    WorkScheduler,
    attach_arena,
    default_max_workers,
    load_object,
    ship_object,
    validate_plan,
)
from repro.parallel.plan import TaskFailure
from repro.parallel.shm import InlineArena, InlineObjectRef, ObjectShipper
from repro.simulator.ac import ac_analysis
from repro.simulator.linalg import AC_MODES, SolverOptions, make_solver
from repro.simulator.solver import SharedPatternPair, add_gmin_diagonal
from repro.simulator.transfer import transfer_functions
from repro.studies import (
    Campaign,
    DiskExtractionCache,
    FaultPlan,
    FaultSpec,
    ParamSpace,
    ProcessPoolBackend,
    SweepRunner,
)
from repro.studies.cache import extraction_key, fingerprint
from repro.substrate.extraction import SubstrateExtractionOptions

TINY_MESH = FlowOptions(substrate=SubstrateExtractionOptions(
    nx=12, ny=12, n_z_per_layer=2, lateral_margin=60e-6))


# -- picklable scheduler payloads ---------------------------------------------


@dataclass(frozen=True)
class _Job:
    value: int

    def corner_label(self) -> str:
        return f"job {self.value}"


def _double(job: _Job) -> int:
    return job.value * 2


def _boom(job: _Job) -> int:
    raise ValueError(f"boom {job.value}")


def _add_jobs(job: _Job) -> int:
    return job.value


# -- plan validation ----------------------------------------------------------


def test_validate_plan_returns_topological_order():
    items = [WorkItem(id="c", fn=_double, payload=_Job(3), deps=("a", "b")),
             WorkItem(id="a", fn=_double, payload=_Job(1)),
             WorkItem(id="b", fn=_double, payload=_Job(2), deps=("a",))]
    order = validate_plan(items)
    assert order.index("a") < order.index("b") < order.index("c")


def test_validate_plan_rejects_duplicate_ids():
    items = [WorkItem(id="a", fn=_double, payload=_Job(1)),
             WorkItem(id="a", fn=_double, payload=_Job(2))]
    with pytest.raises(AnalysisError, match="duplicate work item id"):
        validate_plan(items)


def test_validate_plan_rejects_unknown_dependency():
    with pytest.raises(AnalysisError, match="unknown item"):
        validate_plan([WorkItem(id="a", fn=_double, payload=_Job(1),
                                deps=("ghost",))])


def test_validate_plan_rejects_cycles():
    items = [WorkItem(id="a", fn=_double, payload=_Job(1), deps=("b",)),
             WorkItem(id="b", fn=_double, payload=_Job(2), deps=("a",))]
    with pytest.raises(AnalysisError, match="dependency cycle"):
        validate_plan(items)


# -- scheduler: dispatch, binding, failure propagation ------------------------


def test_scheduler_binds_dependency_results_inline():
    # Single worker => the in-process path; bind folds the dep's result in.
    started: list[str] = []
    scheduler = WorkScheduler(max_workers=1)
    items = [
        WorkItem(id="x", fn=_double, payload=_Job(21)),
        WorkItem(id="c", fn=_add_jobs, payload=_Job(0), deps=("x",),
                 priority=1,
                 bind=lambda payload, deps: replace(payload,
                                                    value=deps["x"] + 1)),
    ]
    outcomes = scheduler.run(items,
                             on_start=lambda i, a: started.append(i))
    assert outcomes == {"x": 42, "c": 43}
    assert started == ["x", "c"]
    assert scheduler.attempts == {"x": 1, "c": 1}


def test_scheduler_priority_orders_ready_items():
    order: list[str] = []
    scheduler = WorkScheduler(max_workers=1)
    items = [WorkItem(id="late", fn=_double, payload=_Job(1), priority=5),
             WorkItem(id="early", fn=_double, payload=_Job(2), priority=0),
             WorkItem(id="mid", fn=_double, payload=_Job(3), priority=2)]
    scheduler.run(items, on_start=lambda i, a: order.append(i))
    assert order == ["early", "mid", "late"]


def test_scheduler_dooms_dependents_with_root_failure():
    scheduler = WorkScheduler(max_workers=1)
    items = [WorkItem(id="x", fn=_boom, payload=_Job(7)),
             WorkItem(id="c1", fn=_double, payload=_Job(1), deps=("x",)),
             WorkItem(id="c2", fn=_double, payload=_Job(2), deps=("c1",))]
    outcomes = scheduler.run(items, on_error="skip")
    root = outcomes["x"]
    assert isinstance(root, TaskFailure)
    assert root.error_type == "ValueError" and "boom 7" in root.message
    # Dependents inherit the ROOT failure object verbatim, attempts unspent.
    assert outcomes["c1"] is root and outcomes["c2"] is root
    assert scheduler.attempts == {"x": 1, "c1": 0, "c2": 0}


def test_scheduler_runs_dag_on_worker_processes():
    scheduler = WorkScheduler(max_workers=2)
    items = [WorkItem(id=f"j{i}", fn=_double, payload=_Job(i))
             for i in range(5)]
    items.append(WorkItem(
        id="sum", fn=_add_jobs, payload=_Job(0),
        deps=tuple(f"j{i}" for i in range(5)),
        bind=lambda payload, deps: replace(payload,
                                           value=sum(deps.values()))))
    outcomes = scheduler.run(items)
    assert outcomes["sum"] == sum(2 * i for i in range(5))


def test_scheduler_propagates_failures_across_processes():
    scheduler = WorkScheduler(max_workers=2, retries=1)
    items = [WorkItem(id="x", fn=_boom, payload=_Job(3)),
             WorkItem(id="ok", fn=_double, payload=_Job(4)),
             WorkItem(id="c", fn=_double, payload=_Job(5), deps=("x",))]
    outcomes = scheduler.run(items, on_error="retry_then_skip")
    assert outcomes["ok"] == 8
    failure = outcomes["x"]
    assert isinstance(failure, TaskFailure) and failure.attempts == 2
    assert outcomes["c"] is failure
    assert scheduler.attempts["c"] == 0


# -- shared-memory data plane -------------------------------------------------


def test_arena_roundtrip_and_output_views():
    g = np.arange(6, dtype=float)
    out = np.zeros((2, 3), dtype=complex)
    arena = SharedArena.create({"g": g, "out": out})
    try:
        views = attach_arena(arena.handle)
        np.testing.assert_array_equal(views["g"], g)
        if arena.shared:
            # Writes through an attached view land in the parent's view.
            views["out"][1] = 1.0 + 2.0j
            np.testing.assert_array_equal(arena.view("out")[1],
                                          np.full(3, 1.0 + 2.0j))
        with pytest.raises(AnalysisError, match="no field named"):
            arena.view("missing")
    finally:
        arena.dispose()


def test_arena_inline_fallback(monkeypatch):
    import repro.parallel.shm as shm

    monkeypatch.setattr(shm, "_shared_memory", None)
    arena = SharedArena.create({"g": np.ones(3)})
    assert isinstance(arena, InlineArena) and not arena.shared
    views = attach_arena(arena.handle)
    np.testing.assert_array_equal(views["g"], np.ones(3))
    arena.dispose()


def test_ship_object_roundtrip_and_shipper_memoization():
    payload = {"flow": np.linspace(0.0, 1.0, 7), "label": "variant-0"}
    ref, arena = ship_object(payload)
    try:
        loaded = load_object(ref)
        assert loaded["label"] == "variant-0"
        np.testing.assert_array_equal(loaded["flow"], payload["flow"])
    finally:
        if arena is not None:
            arena.dispose()
    shipper = ObjectShipper()
    try:
        first = shipper.ref_for("key", payload)
        assert shipper.ref_for("key", payload) is first
    finally:
        shipper.close()


def test_inline_object_ref_roundtrip(monkeypatch):
    import repro.parallel.shm as shm

    monkeypatch.setattr(shm, "_shared_memory", None)
    ref, arena = ship_object([1, 2, 3])
    assert isinstance(ref, InlineObjectRef) and arena is None
    assert load_object(ref) == [1, 2, 3]


# -- worker-count configuration -----------------------------------------------


def test_default_max_workers_env_override(monkeypatch):
    import os

    monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
    assert default_max_workers() == min(4, os.cpu_count() or 1)
    monkeypatch.setenv(MAX_WORKERS_ENV, "7")
    assert default_max_workers() == 7
    assert ProcessPoolBackend().max_workers == 7


@pytest.mark.parametrize("raw, match", [
    ("three", "positive integer"),
    ("0", ">= 1"),
    ("-2", ">= 1"),
])
def test_default_max_workers_rejects_invalid_env(monkeypatch, raw, match):
    monkeypatch.setenv(MAX_WORKERS_ENV, raw)
    with pytest.raises(AnalysisError, match=match):
        default_max_workers()


def test_execution_table_max_workers_key(tmp_path):
    from repro.studies.cli import load_campaign_config

    config = tmp_path / "campaign.toml"
    config.write_text(
        'name = "w"\n'
        "[axes]\nvtune = [0.0]\nnoise_frequency = [1e6]\n"
        '[execution]\nbackend = "process-pool"\nmax_workers = 3\n')
    execution = load_campaign_config(config).execution
    backend = execution.make_backend()
    assert isinstance(backend, ProcessPoolBackend)
    assert backend.max_workers == 3


def test_execution_settings_worker_alias_validation():
    from repro.studies.cli import ExecutionSettings

    assert ExecutionSettings(workers=2, max_workers=2).effective_workers() == 2
    assert ExecutionSettings(max_workers=5).effective_workers() == 5
    with pytest.raises(AnalysisError, match="aliases"):
        ExecutionSettings(workers=2, max_workers=3)
    with pytest.raises(AnalysisError, match="must be >= 1"):
        ExecutionSettings(max_workers=0)


# -- fingerprint seam: parallelism never invalidates the cache ----------------


def test_parallelism_knobs_excluded_from_solver_fingerprint():
    base = SolverOptions()
    for knob in ("ac_workers", "ac_mode", "max_cached_patterns"):
        assert knob in SolverOptions.__fingerprint_exclude__
    varied = replace(base, ac_workers=8, ac_mode="process",
                     max_cached_patterns=2)
    assert fingerprint(base) == fingerprint(varied)
    # A genuinely numerical knob still changes the identity.
    assert fingerprint(base) != fingerprint(replace(base, gmin=1e-9))


def test_sweep_task_fingerprint_ignores_flow_transport(technology):
    from repro.studies.runner import SweepTask

    campaign = _layout_campaign()
    variant = campaign.variants()[0]
    task = SweepTask(index=0, variant_index=0, knobs={},
                     technology=technology, spec=variant.spec,
                     options=campaign.options, injected_power_dbm=-10.0,
                     vtune=0.0, noise_frequencies=(1e6,), flow=None,
                     first_point_index=0)
    assert "flow_ref" in SweepTask.__fingerprint_exclude__
    shipped = replace(task, flow_ref=InlineObjectRef(payload=b"flow-bytes"))
    assert fingerprint(task) == fingerprint(shipped)


def test_ac_mode_validation():
    assert AC_MODES == ("thread", "process")
    with pytest.raises(SimulationError, match="ac_mode"):
        SolverOptions(ac_mode="fibers")


def test_extraction_key_stable_across_worker_counts(technology, vco_cell):
    thread_options = replace(TINY_MESH, solver=SolverOptions(ac_workers=1))
    process_options = replace(TINY_MESH, solver=SolverOptions(
        ac_workers=4, ac_mode="process"))
    assert (extraction_key(vco_cell, technology, thread_options)
            == extraction_key(vco_cell, technology, process_options))


# -- frequency fan-out equivalence --------------------------------------------


def _rc_circuit() -> Circuit:
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0",
                               SourceValue(dc=1.0, ac_magnitude=1.0,
                                           waveform=lambda t: 1.0))
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_resistor("R2", "mid", "0", 2e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-9)
    circuit.add_inductor("L1", "mid", "out", 1e-6)
    circuit.add_resistor("R3", "out", "0", 50.0)
    return circuit


def _mosfet_circuit(technology) -> Circuit:
    circuit = Circuit("cs")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.8)
    circuit.add_voltage_source("VG", "g", "0",
                               SourceValue(dc=0.9, ac_magnitude=1.0,
                                           waveform=lambda t: 0.9))
    circuit.add_resistor("RL", "vdd", "d", 1e3)
    circuit.add_mosfet("M1", "d", "g", "0", "0",
                       technology.mos_parameters("nmos_rf"),
                       width=10e-6, length=0.18e-6)
    return circuit


def test_process_ac_fanout_bit_identical_to_serial(technology):
    circuit = _mosfet_circuit(technology)
    frequencies = np.logspace(4, 9, 9)
    serial = ac_analysis(circuit, frequencies)
    process = ac_analysis(circuit, frequencies,
                          solver=SolverOptions(ac_workers=3,
                                               ac_mode="process"))
    np.testing.assert_array_equal(process.vectors, serial.vectors)


def test_process_transfer_fanout_bit_identical_to_serial():
    circuit = _rc_circuit()
    frequencies = np.logspace(3, 8, 8)
    serial = transfer_functions(circuit, ["V1"], ["out", "mid"], frequencies)
    process = transfer_functions(
        circuit, ["V1"], ["out", "mid"], frequencies,
        solver=SolverOptions(ac_workers=4, ac_mode="process"))
    for node in ("out", "mid"):
        np.testing.assert_array_equal(process["V1"].transfers[node],
                                      serial["V1"].transfers[node])


def test_process_fanout_aggregates_worker_stats():
    circuit = _rc_circuit()
    frequencies = np.logspace(3, 8, 8)
    solver = make_solver(SolverOptions(ac_workers=4, ac_mode="process"))
    ac_analysis(circuit, frequencies, solver=solver)
    # Every per-frequency solve came home from the worker processes.
    assert solver.stats.solves == len(frequencies)


def _frequency_block_system():
    """A small (pattern, frequencies, rhs) directly off the RC circuit."""
    from repro.simulator.ac import _ac_rhs, _small_signal_matrices
    from repro.simulator.mna import MnaStructure

    circuit = _rc_circuit()
    circuit.validate()
    structure = MnaStructure.from_circuit(circuit)
    g_matrix, c_matrix = _small_signal_matrices(circuit, structure, None)
    g_matrix = add_gmin_diagonal(g_matrix, structure.n_nodes, 1e-12)
    pattern = SharedPatternPair(g_matrix, c_matrix)
    frequencies = np.logspace(3, 8, 8)
    return pattern, frequencies, _ac_rhs(circuit, structure), structure.size


@pytest.mark.parametrize("kind", ["raise", "exit"])
def test_process_fanout_survives_worker_faults(tmp_path, kind):
    from repro.parallel.freq import run_frequency_blocks

    pattern, frequencies, rhs, size = _frequency_block_system()
    serial_solver = make_solver(SolverOptions())
    serial_out = np.zeros((len(frequencies), size), dtype=complex)
    for index, frequency in enumerate(frequencies):
        serial_out[index] = serial_solver.solve(
            pattern.assemble(2j * np.pi * frequency), rhs)

    plan = FaultPlan(state_dir=str(tmp_path / f"{kind}-state"),
                     specs=(FaultSpec(kind, task_index=1, attempts=1),))
    solver = make_solver(SolverOptions(ac_workers=2, ac_mode="process"))
    out = np.zeros_like(serial_out)
    run_frequency_blocks(pattern, frequencies, solver, rhs=rhs, out=out,
                         fault_plan=plan)
    # The sabotaged block was recomputed in the parent: same bits, full stats.
    np.testing.assert_array_equal(out, serial_out)
    assert solver.stats.solves == len(frequencies)


# -- worker heartbeats and pool-recycle hygiene -------------------------------


@dataclass(frozen=True)
class _WedgeJob:
    """Scheduler payload the fault plan can target (matches on ``index``)."""

    index: int

    def corner_label(self) -> str:
        return f"wedge job {self.index}"


def _wedge_value(job: _WedgeJob) -> int:
    return job.index + 100


def test_scheduler_heartbeat_detects_silently_wedged_worker(tmp_path):
    # A SIGSTOPped worker never errors, never completes and never breaks
    # the pool: only the heartbeat monitor can notice it before the
    # wall-clock task_timeout (set far too high to be the thing that saves
    # this test).  The trip SIGKILLs the frozen worker, recycles the pool
    # and the retry completes.
    plan = FaultPlan(state_dir=str(tmp_path / "stop-state"),
                     specs=(FaultSpec("stop", task_index=0, attempts=1),))
    scheduler = WorkScheduler(max_workers=2, retries=1, task_timeout=300.0,
                              heartbeat_timeout=1.0, backoff_base=0.01)
    items = [WorkItem(id=f"w{index}", fn=plan.wrap(_wedge_value),
                      payload=_WedgeJob(index))
             for index in range(4)]
    start = time.monotonic()
    outcomes = scheduler.run(items)
    elapsed = time.monotonic() - start
    assert outcomes == {f"w{index}": index + 100 for index in range(4)}
    assert scheduler.heartbeat_trips >= 1
    assert scheduler.attempts["w0"] == 2
    assert elapsed < 120.0                       # long before task_timeout


def test_timeout_recycle_with_frequency_blocks_in_flight_leaks_no_shm(
        tmp_path):
    # Satellite regression: a scheduler timeout trip SIGKILLs the shared
    # pool's workers while ac_mode="process" frequency blocks are in
    # flight; the blocks must salvage (recompute in-parent, bit-identical)
    # and every shared-memory arena must be unlinked afterwards.
    from repro.parallel.freq import run_frequency_blocks

    shm_root = Path("/dev/shm")
    if not shm_root.is_dir():
        pytest.skip("no /dev/shm on this platform")

    pattern, frequencies, rhs, size = _frequency_block_system()
    serial_solver = make_solver(SolverOptions())
    serial_out = np.zeros((len(frequencies), size), dtype=complex)
    for index, frequency in enumerate(frequencies):
        serial_out[index] = serial_solver.solve(
            pattern.assemble(2j * np.pi * frequency), rhs)

    before = set(os.listdir(shm_root))

    # Block 0 hangs in its worker until the scheduler's recycle kills it.
    block_plan = FaultPlan(
        state_dir=str(tmp_path / "block-state"),
        specs=(FaultSpec("hang", task_index=0, attempts=1,
                         hang_seconds=120.0),))
    results: dict[str, np.ndarray] = {}

    def blocks() -> None:
        solver = make_solver(SolverOptions(ac_workers=2, ac_mode="process"))
        out = np.zeros_like(serial_out)
        run_frequency_blocks(pattern, frequencies, solver, rhs=rhs, out=out,
                             fault_plan=block_plan)
        results["out"] = out

    thread = threading.Thread(target=blocks)
    thread.start()
    time.sleep(0.3)                              # let the blocks occupy the pool

    hang_plan = FaultPlan(
        state_dir=str(tmp_path / "hang-state"),
        specs=(FaultSpec("hang", task_index=0, attempts=1,
                         hang_seconds=120.0),))
    scheduler = WorkScheduler(max_workers=2, retries=1, task_timeout=0.5,
                              backoff_base=0.01)
    # Two items so the scheduler takes the pool path (one would run inline).
    outcomes = scheduler.run(
        [WorkItem(id="h", fn=hang_plan.wrap(_wedge_value),
                  payload=_WedgeJob(0)),
         WorkItem(id="q", fn=hang_plan.wrap(_wedge_value),
                  payload=_WedgeJob(1))])
    thread.join(timeout=300.0)
    assert not thread.is_alive()

    assert outcomes == {"h": 100, "q": 101}
    np.testing.assert_array_equal(results["out"], serial_out)
    leaked = {name for name in set(os.listdir(shm_root)) - before
              if name.startswith("psm_")}
    assert not leaked


# -- campaign-level equivalence on the graph scheduler ------------------------


def _layout_campaign() -> Campaign:
    """Two layout variants (two extractions) x one corner each."""
    return Campaign(
        name="parallel_equivalence",
        space=ParamSpace({"ground_width_scale": (1.0, 2.0),
                          "noise_frequency": (1e6, 4e6)}),
        options=VcoExperimentOptions(vtune_values=(0.0,),
                                     noise_frequencies=(1e6, 4e6),
                                     flow=TINY_MESH))


def test_graph_campaign_bit_identical_to_serial(technology, tmp_path):
    campaign = _layout_campaign()
    serial = SweepRunner(
        technology, cache=DiskExtractionCache(tmp_path / "serial"),
    ).run(campaign)

    # Cold cache: extractions run as plan items, corners depend on them and
    # receive the flow through shared memory.
    pool_backend = ProcessPoolBackend(max_workers=2)
    cache = DiskExtractionCache(tmp_path / "graph")
    graph = SweepRunner(technology, backend=pool_backend,
                        cache=cache).run(campaign)
    assert not graph.failures
    assert graph.cache_misses == 2 and graph.cache_hits == 0
    np.testing.assert_array_equal(graph.column("spur_power_dbm"),
                                  serial.column("spur_power_dbm"))

    # Re-run against the warm cache with a different worker count: every
    # extraction must hit (parallelism knobs are fingerprint-excluded).
    warm = SweepRunner(technology, backend=ProcessPoolBackend(max_workers=3),
                       cache=cache).run(campaign)
    assert warm.cache_misses == 0 and warm.cache_hits == 2
    np.testing.assert_array_equal(warm.column("spur_power_dbm"),
                                  serial.column("spur_power_dbm"))


def test_graph_campaign_reports_extraction_failure_per_corner(
        technology, tmp_path, monkeypatch):
    import repro.studies.runner as runner_module

    campaign = _layout_campaign()

    def sabotage(task):
        raise RuntimeError("substrate mesher exploded")

    monkeypatch.setattr(runner_module, "_execute_extraction", sabotage)
    # Single worker => the inline graph path; the monkeypatched module
    # global is visible because nothing needs to cross a process boundary.
    runner = SweepRunner(technology, backend=ProcessPoolBackend(max_workers=1),
                         cache=DiskExtractionCache(tmp_path / "cache"),
                         on_error="skip")
    result = runner.run(campaign)
    assert len(result.failures) == 2          # one per corner, none ran
    for failure in result.failures:
        assert failure.error_type == "RuntimeError"
        assert "extraction of variant" in failure.corner_label
        assert failure.variant_index >= 0
    assert not result.records
