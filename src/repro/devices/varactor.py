"""Accumulation-mode NMOS varactor model.

The paper's LC tank uses an accumulation-mode NMOS varactor: an NMOS-like
structure in an n-well whose gate capacitance swings between a minimum
(depletion) and a maximum (accumulation) value as the gate-to-well voltage
crosses zero.  The C-V curve is modelled with the usual smooth ``tanh``
interpolation:

``C(v) = cmin + (cmax - cmin) / 2 * (1 + tanh(slope * (v - v_half)))``

The derivative ``dC/dv`` is what converts a ground-bounce voltage into a
tank-capacitance change and therefore into frequency modulation — it is the
physical origin of the VCO's sensitivity ``K_i`` to noise on the tuning /
ground nodes (Section 5 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import NetlistError


@dataclass(frozen=True)
class AccumulationModeVaractor:
    """Smooth accumulation-mode varactor C-V model.

    Parameters
    ----------
    cmin, cmax:
        Capacitance extremes in farads.
    v_half:
        Gate-to-well voltage at which the capacitance is mid-swing.
    slope:
        Steepness of the transition in 1/V (typical 3-6 for thin-oxide
        accumulation varactors).
    well_capacitance:
        Capacitance of the n-well to the substrate (the capacitive coupling
        path the paper shows to be negligible below GHz frequencies).
    """

    cmin: float
    cmax: float
    v_half: float = 0.4
    slope: float = 4.0
    well_capacitance: float = 50e-15

    def __post_init__(self) -> None:
        if self.cmin <= 0 or self.cmax <= 0:
            raise NetlistError("varactor capacitances must be positive")
        if self.cmax < self.cmin:
            raise NetlistError("cmax must be >= cmin")
        if self.slope <= 0:
            raise NetlistError("varactor slope must be positive")

    def capacitance(self, v_gate_well: float) -> float:
        """Small-signal capacitance at the given gate-to-well voltage."""
        swing = self.cmax - self.cmin
        return self.cmin + 0.5 * swing * (1.0 + math.tanh(self.slope * (v_gate_well - self.v_half)))

    def dc_dv(self, v_gate_well: float) -> float:
        """Capacitance sensitivity dC/dV at the given bias (F/V)."""
        swing = self.cmax - self.cmin
        sech2 = 1.0 / math.cosh(self.slope * (v_gate_well - self.v_half)) ** 2
        return 0.5 * swing * self.slope * sech2

    def charge(self, v_gate_well: float) -> float:
        """Integrated charge Q(V) = ∫ C dV, used by transient companion models."""
        swing = self.cmax - self.cmin
        x = self.slope * (v_gate_well - self.v_half)
        # ∫ tanh = ln(cosh); use log1p-style guard for large |x| to avoid overflow.
        if abs(x) > 30.0:
            log_cosh = abs(x) - math.log(2.0)
        else:
            log_cosh = math.log(math.cosh(x))
        return (self.cmin * v_gate_well
                + 0.5 * swing * (v_gate_well + log_cosh / self.slope))

    def tuning_range(self) -> float:
        """Capacitance tuning ratio cmax / cmin."""
        return self.cmax / self.cmin
