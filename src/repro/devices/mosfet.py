"""MOSFET large- and small-signal model.

The model is a level-1 square-law MOSFET extended with

* body effect (threshold shift with source-bulk voltage, back-gate
  transconductance ``gmb``),
* channel-length modulation (finite output conductance ``gds``),
* a first-order velocity-saturation correction (keeps ``gm`` of the short
  0.18 um devices in the measured 10-130 mS range instead of the unbounded
  square-law values),
* voltage-dependent source/drain junction capacitances and gate overlap
  capacitances.

The model is symmetric: for ``vds < 0`` the drain and source roles swap,
and PMOS devices are handled by evaluating the dual NMOS with negated
terminal voltages.

The quantities this reproduction cares about are the small-signal parameters
of the paper's Section 3: the back-gate transconductance ``gmb``, the output
conductance ``gds`` and the junction capacitances ``Cdbj``/``Csbj`` that set
the 5-19 GHz crossover where capacitive back-gate coupling overtakes the
resistive path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import NetlistError
from ..technology.process import MosParameters


@dataclass(frozen=True)
class MosfetGeometry:
    """Electrical geometry of a MOSFET instance.

    ``drain_extension`` / ``source_extension`` are the diffusion lengths used
    to compute junction areas (``area = W * extension``) and perimeters
    (``perimeter = 2 * (W + extension)``).  The defaults reproduce the paper's
    Cdbj = 120 fF / Csbj = 200 fF for the 4 x 50 um RF NMOS.
    """

    width: float
    length: float
    drain_extension: float = 0.6e-6
    source_extension: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise NetlistError("MOSFET width and length must be positive")

    @property
    def drain_area(self) -> float:
        return self.width * self.drain_extension

    @property
    def source_area(self) -> float:
        return self.width * self.source_extension

    @property
    def drain_perimeter(self) -> float:
        return 2.0 * (self.width + self.drain_extension)

    @property
    def source_perimeter(self) -> float:
        return 2.0 * (self.width + self.source_extension)


@dataclass(frozen=True)
class MosfetOperatingPoint:
    """Operating-point values of a MOSFET at a given bias."""

    ids: float          #: drain current (A), positive into the drain for NMOS
    gm: float           #: gate transconductance d(Ids)/d(Vgs) [S]
    gds: float          #: output conductance d(Ids)/d(Vds) [S]
    gmb: float          #: back-gate (bulk) transconductance d(Ids)/d(Vbs) [S]
    vth: float          #: threshold voltage at this bias [V]
    region: str         #: "cutoff", "triode" or "saturation"
    vgs: float
    vds: float
    vbs: float
    cgs: float          #: gate-source capacitance [F]
    cgd: float          #: gate-drain capacitance [F]
    cdb: float          #: drain-bulk junction capacitance [F]
    csb: float          #: source-bulk junction capacitance [F]

    @property
    def intrinsic_gain(self) -> float:
        """gm / gds (zero if the device is off)."""
        return self.gm / self.gds if self.gds > 0 else 0.0

    @property
    def backgate_gain(self) -> float:
        """gmb / gds — the back-gate-to-drain voltage gain into an ideal load."""
        return self.gmb / self.gds if self.gds > 0 else 0.0


class MosfetModel:
    """Evaluates the MOSFET equations for a given model card and geometry."""

    #: Minimum conductance added across every junction to keep matrices
    #: well-conditioned (standard SPICE ``gmin``).
    GMIN = 1e-12


    def __init__(self, parameters: MosParameters, geometry: MosfetGeometry):
        self.parameters = parameters
        self.geometry = geometry

    # -- threshold and junction helpers --------------------------------------

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (PMOS evaluated as its NMOS dual)."""
        return 1.0 if self.parameters.polarity == "nmos" else -1.0

    def threshold_voltage(self, vbs: float) -> float:
        """Body-effect threshold (in the NMOS-equivalent convention)."""
        p = self.parameters
        vth0 = abs(p.vth0)
        # Clamp the argument: for forward bias beyond phi the sqrt would fail.
        arg = max(p.phi - vbs, 1e-3)
        return vth0 + p.gamma * (math.sqrt(arg) - math.sqrt(p.phi))

    def junction_capacitance(self, area: float, perimeter: float, vbj: float) -> float:
        """Reverse-biased junction capacitance at junction voltage ``vbj``.

        ``vbj`` is the bulk-to-diffusion voltage (negative for reverse bias in
        the NMOS convention).  The standard SPICE expression with grading
        coefficient ``mj`` is used; forward bias is clamped at half the
        built-in potential to avoid the singularity.
        """
        p = self.parameters
        vbj = min(vbj, 0.5 * p.pb)
        factor = (1.0 - vbj / p.pb) ** (-p.mj)
        return (p.cj * area + p.cjsw * perimeter) * factor

    # -- current equations ----------------------------------------------------

    def _esat_l(self) -> float:
        """Velocity-saturation voltage ``esat * L`` of this geometry.

        The saturation current is ``0.5*beta*vov^2 / (1 + vov/(esat*L))`` so
        the transconductance of a short 0.18 um device grows sub-quadratically,
        matching the measured 10-38 mS back-gate transconductance range of the
        paper's RF NMOS.
        """
        return self.parameters.esat * self.geometry.length

    def _effective_overdrive(self, vov: float) -> float:
        """Velocity-saturation-limited overdrive voltage (also ``vdsat``)."""
        return vov / (1.0 + vov / self._esat_l())

    def evaluate(self, vgs: float, vds: float, vbs: float) -> MosfetOperatingPoint:
        """Evaluate currents, conductances and capacitances at a bias point.

        Terminal voltages are the *physical* voltages of the instance (for a
        PMOS they are typically negative); the returned ``ids`` is the current
        flowing into the drain terminal (negative for a conducting PMOS).
        """
        sign = self.sign
        # Map to NMOS-equivalent voltages.
        vgs_n, vds_n, vbs_n = sign * vgs, sign * vds, sign * vbs

        swapped = vds_n < 0.0
        if swapped:
            # Source and drain swap roles; vgs measured from the new source.
            vgs_n = vgs_n - vds_n
            vbs_n = vbs_n - vds_n
            vds_n = -vds_n

        p = self.parameters
        g = self.geometry
        vth = self.threshold_voltage(vbs_n)
        vov = vgs_n - vth
        beta = p.kp * g.width / g.length

        if vov <= 0.0:
            ids = 0.0
            gm = 0.0
            gds = self.GMIN
            gmb = 0.0
            region = "cutoff"
        else:
            esat_l = self._esat_l()
            vsat_factor = 1.0 + vov / esat_l
            vdsat = vov / vsat_factor
            if vds_n < vdsat:
                region = "triode"
                # ``vov_tri`` is chosen so the triode and saturation currents
                # meet continuously at vds = vdsat.
                vov_tri = 0.5 * (vov + vdsat)
                lam = 1.0 + p.lambda_ * vds_n
                ids = beta * (vov_tri - 0.5 * vds_n) * vds_n * lam
                gds = beta * (vov_tri - vds_n) * lam \
                    + beta * (vov_tri - 0.5 * vds_n) * vds_n * p.lambda_
                gds = max(gds, self.GMIN)
                # d(vov_tri)/d(vgs) = 0.5 * (1 + d(vdsat)/d(vov)).
                dvdsat = 1.0 / vsat_factor ** 2
                gm = beta * vds_n * lam * 0.5 * (1.0 + dvdsat)
            else:
                region = "saturation"
                lam = 1.0 + p.lambda_ * vds_n
                ids = 0.5 * beta * vov ** 2 / vsat_factor * lam
                # gm = d(ids)/d(vov) for the velocity-saturated square law.
                gm = 0.5 * beta * vov * (2.0 + vov / esat_l) / vsat_factor ** 2 * lam
                gds = max(0.5 * beta * vov ** 2 / vsat_factor * p.lambda_, self.GMIN)
            # Back-gate transconductance: gmb = gm * d(vth)/d(vbs) chain rule.
            arg = max(p.phi - vbs_n, 1e-3)
            dvth_dvbs = -p.gamma / (2.0 * math.sqrt(arg))
            gmb = gm * (-dvth_dvbs)

        # Capacitances (computed in the un-swapped, physical orientation).
        cox_total = p.cox * g.width * g.length
        cgs_overlap = p.cgso * g.width
        cgd_overlap = p.cgdo * g.width
        if region == "cutoff":
            cgs = cgs_overlap
            cgd = cgd_overlap
        elif region == "triode":
            cgs = cgs_overlap + 0.5 * cox_total
            cgd = cgd_overlap + 0.5 * cox_total
        else:
            cgs = cgs_overlap + (2.0 / 3.0) * cox_total
            cgd = cgd_overlap

        vbd_n = vbs_n - vds_n
        cdb = self.junction_capacitance(g.drain_area, g.drain_perimeter, vbd_n)
        csb = self.junction_capacitance(g.source_area, g.source_perimeter, vbs_n)

        if swapped:
            ids = -ids
            cgs, cgd = cgd, cgs
            cdb, csb = csb, cdb

        return MosfetOperatingPoint(
            ids=sign * ids, gm=gm, gds=gds, gmb=gmb, vth=sign * vth,
            region=region, vgs=vgs, vds=vds, vbs=vbs,
            cgs=cgs, cgd=cgd, cdb=cdb, csb=csb)

    # -- figures used by the paper --------------------------------------------

    def backgate_transfer(self, vgs: float, vds: float, vbs: float = 0.0) -> float:
        """Small-signal transfer from the back-gate to the drain (|gmb/gds|).

        Multiplying this by the substrate voltage division gives the paper's
        Section-3 hand calculation of the substrate-to-output transfer.
        """
        op = self.evaluate(vgs, vds, vbs)
        return op.backgate_gain

    def junction_crossover_frequency(self, vgs: float, vds: float,
                                     vbs: float = 0.0) -> float:
        """Frequency where capacitive junction coupling equals back-gate coupling.

        The paper gives ``f_3dB = 3 * gmb / (2 * pi * (Cdbj + Csbj))`` evaluating
        to 5-19 GHz over the 0.5-1.6 V bias range, showing the junction path is
        negligible below a few GHz.
        """
        op = self.evaluate(vgs, vds, vbs)
        c_total = op.cdb + op.csb
        if c_total <= 0.0:
            raise NetlistError("junction capacitance must be positive")
        return 3.0 * op.gmb / (2.0 * math.pi * c_total)
