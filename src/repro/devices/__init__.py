"""Device models: MOSFET, accumulation-mode varactor, spiral inductor."""

from .mosfet import MosfetGeometry, MosfetModel, MosfetOperatingPoint
from .varactor import AccumulationModeVaractor
from .inductor import SpiralInductor

__all__ = [
    "AccumulationModeVaractor",
    "MosfetGeometry",
    "MosfetModel",
    "MosfetOperatingPoint",
    "SpiralInductor",
]
