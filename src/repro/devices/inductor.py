"""On-chip spiral inductor model.

A standard single-π model: the series branch is the inductance with its metal
series resistance; each terminal couples to the substrate through an oxide
capacitance (the paper's ``Cind = 120 fF`` per inductor) in series with a
small substrate spreading resistance.  The substrate capacitance is the
capacitive coupling path the paper evaluates (and finds negligible at
sub-GHz substrate-noise frequencies, with a frequency-independent FM
contribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import NetlistError


@dataclass(frozen=True)
class SpiralInductor:
    """Single-π spiral-inductor model.

    Parameters
    ----------
    inductance:
        Series inductance in henry.
    series_resistance:
        Metal series resistance in ohm.
    substrate_capacitance:
        Oxide capacitance from each terminal to the substrate (farad).
    substrate_resistance:
        Spreading resistance of the substrate under the coil (ohm).
    """

    inductance: float
    series_resistance: float
    substrate_capacitance: float = 120e-15
    substrate_resistance: float = 250.0

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise NetlistError("inductance must be positive")
        if self.series_resistance < 0:
            raise NetlistError("series resistance must be non-negative")
        if self.substrate_capacitance < 0:
            raise NetlistError("substrate capacitance must be non-negative")

    def quality_factor(self, frequency: float) -> float:
        """Series quality factor ``Q = omega L / R`` at the given frequency."""
        if frequency <= 0:
            raise NetlistError("frequency must be positive")
        if self.series_resistance == 0:
            return math.inf
        return 2.0 * math.pi * frequency * self.inductance / self.series_resistance

    def self_resonance_frequency(self) -> float:
        """Self-resonance with the two substrate capacitances (series combination)."""
        if self.substrate_capacitance == 0:
            return math.inf
        c_eff = self.substrate_capacitance / 2.0
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance * c_eff))

    def impedance(self, frequency: float) -> complex:
        """Series-branch impedance at the given frequency."""
        omega = 2.0 * math.pi * frequency
        return complex(self.series_resistance, omega * self.inductance)

    def parallel_tank_loss(self, frequency: float) -> float:
        """Equivalent parallel loss resistance of the coil at ``frequency``.

        For a moderately high-Q series RL branch, the equivalent parallel
        resistance is ``R * (1 + Q^2)`` — the quantity that sets the LC-tank
        amplitude of the VCO.
        """
        q = self.quality_factor(frequency)
        if math.isinf(q):
            return math.inf
        return self.series_resistance * (1.0 + q * q)
