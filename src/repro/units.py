"""Unit helpers used across the library.

The extraction and simulation code works in plain SI units (metres, ohms,
farads, volts, hertz).  The paper's figures, however, are expressed in dB,
dBm and engineering notation, so this module centralises the conversions to
keep the rest of the code free of ``10 * log10`` boilerplate.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

# Characteristic impedance used by the paper's measurement setup (spectrum
# analyzer input, signal-generator output).
DEFAULT_IMPEDANCE_OHM = 50.0

# Common engineering prefixes, useful for parsing / formatting values.
_SI_PREFIXES = {
    -18: "a",
    -15: "f",
    -12: "p",
    -9: "n",
    -6: "u",
    -3: "m",
    0: "",
    3: "k",
    6: "M",
    9: "G",
    12: "T",
}

_PREFIX_EXPONENTS = {v: k for k, v in _SI_PREFIXES.items() if v}


def db(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio to decibels (``10 log10``)."""
    return 10.0 * np.log10(ratio)


def db_voltage(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a voltage (amplitude) ratio to decibels (``20 log10``)."""
    return 20.0 * np.log10(np.abs(ratio))


def from_db(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels back to a power ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0)


def from_db_voltage(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels back to a voltage (amplitude) ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 20.0)


def dbm_to_watt(power_dbm: float | np.ndarray) -> float | np.ndarray:
    """Convert a power level in dBm to watts."""
    return 1e-3 * 10.0 ** (np.asarray(power_dbm, dtype=float) / 10.0)


def watt_to_dbm(power_watt: float | np.ndarray) -> float | np.ndarray:
    """Convert a power in watts to dBm."""
    return 10.0 * np.log10(np.asarray(power_watt, dtype=float) / 1e-3)


def dbm_to_vpeak(power_dbm: float | np.ndarray,
                 impedance_ohm: float = DEFAULT_IMPEDANCE_OHM) -> float | np.ndarray:
    """Peak sinusoidal voltage of a tone of the given power into ``impedance_ohm``.

    A ``-5 dBm`` tone into 50 ohm (the paper's injected substrate signal) has a
    peak amplitude of roughly 178 mV.
    """
    power = dbm_to_watt(power_dbm)
    return np.sqrt(2.0 * power * impedance_ohm)


def vpeak_to_dbm(v_peak: float | np.ndarray,
                 impedance_ohm: float = DEFAULT_IMPEDANCE_OHM) -> float | np.ndarray:
    """Power in dBm of a sinusoid with the given peak voltage into ``impedance_ohm``."""
    power = np.asarray(v_peak, dtype=float) ** 2 / (2.0 * impedance_ohm)
    return watt_to_dbm(power)


def vrms_to_dbm(v_rms: float | np.ndarray,
                impedance_ohm: float = DEFAULT_IMPEDANCE_OHM) -> float | np.ndarray:
    """Power in dBm of a signal with the given RMS voltage into ``impedance_ohm``."""
    power = np.asarray(v_rms, dtype=float) ** 2 / impedance_ohm
    return watt_to_dbm(power)


def parse_value(text: str) -> float:
    """Parse an engineering-notation value such as ``"0.18u"`` or ``"3.5G"``.

    Supported suffixes: a, f, p, n, u, m, k, M, G, T.  A bare number is
    returned unchanged.  Raises :class:`ValueError` for malformed input.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty value string")
    suffix = text[-1]
    if suffix in _PREFIX_EXPONENTS:
        magnitude = float(text[:-1])
        return magnitude * 10.0 ** _PREFIX_EXPONENTS[suffix]
    return float(text)


def format_value(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering prefix, e.g. ``format_value(1.8e-7, "m")``.

    Values of exactly zero are formatted without a prefix.
    """
    if value == 0.0:
        return f"0 {unit}".strip()
    exponent = int(math.floor(math.log10(abs(value)) / 3.0) * 3)
    exponent = max(min(exponent, 12), -18)
    prefix = _SI_PREFIXES[exponent]
    scaled = value / 10.0 ** exponent
    return f"{scaled:.{digits}g} {prefix}{unit}".strip()


def decade_points(f_start: float, f_stop: float, points_per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced frequency points, inclusive of both endpoints."""
    if f_start <= 0 or f_stop <= 0:
        raise ValueError("frequencies must be positive")
    if f_stop < f_start:
        raise ValueError("f_stop must be >= f_start")
    decades = math.log10(f_stop / f_start)
    n_points = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(math.log10(f_start), math.log10(f_stop), n_points)


def mean_abs_error_db(a_db: Sequence[float] | np.ndarray,
                      b_db: Sequence[float] | np.ndarray) -> float:
    """Mean absolute difference between two curves already expressed in dB."""
    a = np.asarray(a_db, dtype=float)
    b = np.asarray(b_db, dtype=float)
    if a.shape != b.shape:
        raise ValueError("curves must have the same shape")
    return float(np.mean(np.abs(a - b)))


def max_abs_error_db(a_db: Sequence[float] | np.ndarray,
                     b_db: Sequence[float] | np.ndarray) -> float:
    """Maximum absolute difference between two curves already expressed in dB."""
    a = np.asarray(a_db, dtype=float)
    b = np.asarray(b_db, dtype=float)
    if a.shape != b.shape:
        raise ValueError("curves must have the same shape")
    return float(np.max(np.abs(a - b)))
