"""Model merge: assemble the complete impact netlist.

This is the box in the middle of the paper's Figure 2: the substrate
macromodel, the interconnect parasitics, the device-level circuit and the
package model are combined into one simulation netlist.  Substrate ports are
attached to the circuit according to their kind:

* TAP / INJECTION ports connect resistively to their net (through the
  extracted contact resistance),
* BACKGATE ports connect directly to the bulk net of their NMOS device,
* WELL ports connect through the well-to-substrate junction capacitance,
* INDUCTOR ports connect through half the coil-to-substrate oxide capacitance
  to each coil terminal.

The merged netlist is returned as an :class:`ImpactNetlist`, which records
which node represents which physical entry point so the analysis code can
measure the waveform on each of them (the paper's per-device impact
decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExtractionError
from ..interconnect.extraction import InterconnectExtraction
from ..netlist.circuit import Circuit
from ..package.model import PackageModel
from ..substrate.extraction import PortKind, SubstrateExtraction
from .circuit_extractor import ExtractedCircuit


@dataclass
class ImpactNetlist:
    """The assembled impact netlist plus bookkeeping for the analysis code."""

    circuit: Circuit
    #: node that carries the injected substrate noise (the SUB contact net)
    injection_node: str
    #: substrate-port name -> circuit node carrying that port's waveform
    port_nodes: dict[str, str] = field(default_factory=dict)
    #: substrate-port name -> nets of the circuit it couples into
    port_targets: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: names of elements that realise the coupling of each port (for ablation)
    coupling_elements: dict[str, list[str]] = field(default_factory=dict)

    def coupling_element_names(self, port: str) -> list[str]:
        return list(self.coupling_elements.get(port, []))


def merge_models(extracted: ExtractedCircuit,
                 interconnect: InterconnectExtraction,
                 substrate: SubstrateExtraction,
                 package: PackageModel | None = None,
                 substrate_cap_reference: str | None = None,
                 name: str | None = None) -> ImpactNetlist:
    """Merge all extracted models into a single impact netlist.

    ``substrate_cap_reference`` names the node that receives the wire-to-
    substrate capacitances of the interconnect model; it defaults to the node
    of the local ground ring tap (the substrate under the circuit sits close
    to that potential).
    """
    circuit = Circuit(name=name or f"{extracted.cell_name}__impact")

    # 1. Device-level circuit.
    circuit.merge(extracted.circuit)

    # 2. Substrate macromodel: port node names.
    port_nodes: dict[str, str] = {}
    port_targets: dict[str, tuple[str, ...]] = {}
    coupling_elements: dict[str, list[str]] = {}
    injection_node: str | None = None

    tap_ports = substrate.ports_of_kind(PortKind.TAP)
    if substrate_cap_reference is None and tap_ports:
        substrate_cap_reference = tap_ports[0].nets[0]

    node_names: dict[str, str] = {}
    for port in substrate.ports:
        if port.kind in (PortKind.TAP, PortKind.INJECTION, PortKind.BACKGATE):
            # Resistive ports connect straight to their circuit net.
            node = port.nets[0]
        else:
            # Capacitive ports keep a dedicated substrate-side node.
            node = f"sub:{port.name}"
        node_names[port.name] = node
        port_nodes[port.name] = node
        port_targets[port.name] = port.nets
        if port.kind is PortKind.INJECTION:
            injection_node = port.nets[0]

    if injection_node is None:
        raise ExtractionError(
            "substrate extraction contains no injection port (SUB contact)")

    substrate_circuit = substrate.macromodel.to_circuit(node_names=node_names)
    circuit.merge(substrate_circuit, prefix="sub")

    # Capacitive couplings from substrate-side port nodes into the circuit.
    for port in substrate.ports:
        names: list[str] = []
        if port.kind is PortKind.WELL:
            element = circuit.add_capacitor(
                f"Cwell_{port.device}", port_nodes[port.name], port.nets[0],
                port.coupling_capacitance)
            names.append(element.name)
        elif port.kind is PortKind.INDUCTOR:
            per_terminal = port.coupling_capacitance / max(len(port.nets), 1)
            for net in port.nets:
                element = circuit.add_capacitor(
                    f"Cind_{port.device}_{net}", port_nodes[port.name], net,
                    per_terminal)
                names.append(element.name)
        if names:
            coupling_elements[port.name] = names

    # 3. Interconnect parasitics.
    interconnect_circuit = interconnect.to_circuit(
        substrate_node=substrate_cap_reference, name="interconnect")
    circuit.merge(interconnect_circuit, prefix="ic")
    for wire in interconnect.wires:
        coupling_elements.setdefault("interconnect", []).append(f"ic:Rw_{wire.name}")

    # 4. Package / probe model.
    if package is not None:
        package.add_to_circuit(circuit)

    return ImpactNetlist(circuit=circuit, injection_node=injection_node,
                         port_nodes=port_nodes, port_targets=port_targets,
                         coupling_elements=coupling_elements)
