"""Circuit extraction and model merging (the glue of the paper's Figure-2 flow)."""

from .circuit_extractor import ExtractedCircuit, extract_circuit
from .merge import ImpactNetlist, merge_models

__all__ = ["ExtractedCircuit", "ImpactNetlist", "extract_circuit", "merge_models"]
