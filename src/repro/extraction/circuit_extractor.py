"""Circuit extraction: layout device annotations -> netlist devices.

This is the DIVA circuit-extraction role of the paper's flow: it walks the
device annotations of a layout cell and produces the *device-level* netlist
of the analog/RF circuit (MOSFETs, varactors, inductors).  The parasitic
interconnect and substrate networks are extracted separately and merged in
:mod:`repro.extraction.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.inductor import SpiralInductor
from ..devices.mosfet import MosfetGeometry, MosfetModel
from ..devices.varactor import AccumulationModeVaractor
from ..errors import ExtractionError
from ..layout.cell import Cell, DeviceAnnotation
from ..netlist.circuit import Circuit
from ..netlist.devices import MosfetElement, VaractorElement
from ..technology.process import ProcessTechnology


@dataclass
class ExtractedCircuit:
    """Device netlist of a layout cell plus per-device model handles."""

    cell_name: str
    circuit: Circuit
    mosfets: dict[str, MosfetElement]
    varactors: dict[str, VaractorElement]
    inductors: dict[str, SpiralInductor]

    def device_names(self) -> list[str]:
        return sorted(list(self.mosfets) + list(self.varactors) + list(self.inductors))


def _extract_mosfet(circuit: Circuit, annotation: DeviceAnnotation,
                    technology: ProcessTechnology) -> MosfetElement:
    if annotation.model is None:
        raise ExtractionError(f"MOSFET {annotation.name!r} has no model card name")
    parameters = technology.mos_parameters(annotation.model)
    width = annotation.parameters.get("w")
    length = annotation.parameters.get("l")
    if not width or not length:
        raise ExtractionError(f"MOSFET {annotation.name!r} is missing W/L parameters")
    model = MosfetModel(parameters, MosfetGeometry(width=width, length=length))
    terminals = annotation.terminals
    element = MosfetElement(
        name=annotation.name,
        drain=terminals["d"], gate=terminals["g"],
        source=terminals["s"], bulk=terminals["b"],
        model=model)
    circuit.add(element)
    return element


def _extract_varactor(circuit: Circuit, annotation: DeviceAnnotation
                      ) -> VaractorElement:
    p = annotation.parameters
    model = AccumulationModeVaractor(
        cmin=p.get("cmin", 0.6e-12), cmax=p.get("cmax", 1.6e-12),
        v_half=p.get("v_half", 0.4), slope=p.get("slope", 4.0))
    element = VaractorElement(
        name=annotation.name,
        gate=annotation.terminals["plus"],
        well=annotation.terminals["minus"],
        substrate=None,
        model=model)
    circuit.add(element)
    return element


def _extract_inductor(circuit: Circuit, annotation: DeviceAnnotation
                      ) -> SpiralInductor:
    p = annotation.parameters
    model = SpiralInductor(
        inductance=p["inductance"],
        series_resistance=p.get("series_resistance", 1.0),
        substrate_capacitance=p.get("substrate_capacitance", 120e-15))
    plus = annotation.terminals["plus"]
    minus = annotation.terminals["minus"]
    mid = f"{annotation.name}__mid"
    circuit.add_inductor(f"L_{annotation.name}", plus, mid, model.inductance)
    circuit.add_resistor(f"R_{annotation.name}", mid, minus,
                         max(model.series_resistance, 1e-3))
    return model


def extract_circuit(cell: Cell, technology: ProcessTechnology) -> ExtractedCircuit:
    """Extract the device-level netlist of a layout cell."""
    circuit = Circuit(name=f"{cell.name}__devices")
    mosfets: dict[str, MosfetElement] = {}
    varactors: dict[str, VaractorElement] = {}
    inductors: dict[str, SpiralInductor] = {}

    for annotation in cell.devices:
        if annotation.device_type in ("nmos", "pmos"):
            mosfets[annotation.name] = _extract_mosfet(circuit, annotation, technology)
        elif annotation.device_type == "varactor":
            varactors[annotation.name] = _extract_varactor(circuit, annotation)
        elif annotation.device_type == "inductor":
            inductors[annotation.name] = _extract_inductor(circuit, annotation)
        elif annotation.device_type == "substrate_contact":
            continue  # handled by the substrate extractor
        else:
            raise ExtractionError(
                f"unknown device type {annotation.device_type!r} "
                f"for device {annotation.name!r}")

    if not circuit.elements:
        raise ExtractionError(f"cell {cell.name!r} contains no extractable devices")
    return ExtractedCircuit(cell_name=cell.name, circuit=circuit,
                            mosfets=mosfets, varactors=varactors,
                            inductors=inductors)
