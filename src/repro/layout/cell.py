"""Layout cells: shapes grouped per layer, plus pins and device annotations.

This is the "layout" input of the paper's Figure-2 flow.  A :class:`Cell`
holds:

* drawn shapes (:class:`~repro.layout.geometry.Rect` or
  :class:`~repro.layout.geometry.Path`) per layer name,
* :class:`Pin` locations that give electrical names to points of the layout
  (the circuit extractor and the interconnect extractor hook nets onto pins),
* :class:`DeviceAnnotation` records marking where devices (MOSFETs, varactors,
  inductors) sit and which pins are their terminals.  A real flow would
  recognise devices from layer interactions; annotating them keeps the
  geometry honest (the shapes are still drawn) while making recognition
  deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import LayoutError
from .geometry import Path, Point, Rect, bounding_box

Shape = Rect | Path


@dataclass(frozen=True)
class Pin:
    """An electrical connection point of the layout.

    Parameters
    ----------
    name:
        Net name the pin belongs to (e.g. ``"VGND"``, ``"OUT"``).
    layer:
        Layer the pin sits on (e.g. ``"M1"``).
    position:
        Location of the pin in metres.
    is_port:
        True for pins that are externally accessible (pads, probe points);
        ports become the observation/excitation nodes of the impact simulation.
    """

    name: str
    layer: str
    position: Point
    is_port: bool = False


@dataclass(frozen=True)
class DeviceAnnotation:
    """Marks an active or passive device instance in the layout.

    ``device_type`` is one of ``"nmos"``, ``"pmos"``, ``"varactor"``,
    ``"inductor"``, ``"resistor"``, ``"capacitor"``.  ``terminals`` maps
    terminal names (``"d"``, ``"g"``, ``"s"``, ``"b"``, ``"plus"``, ...) to net
    names.  ``parameters`` carries the electrical sizing (W, L, fingers, value,
    ...), and ``footprint`` the occupied region used for substrate coupling.
    """

    name: str
    device_type: str
    terminals: dict[str, str]
    parameters: dict[str, float]
    footprint: Rect
    model: str | None = None


@dataclass
class Cell:
    """A named layout cell: shapes per layer, pins, and device annotations."""

    name: str
    shapes: dict[str, list[Shape]] = field(default_factory=dict)
    pins: list[Pin] = field(default_factory=list)
    devices: list[DeviceAnnotation] = field(default_factory=list)

    def add_shape(self, layer: str, shape: Shape) -> Shape:
        """Add a rectangle or path on the given layer."""
        if not isinstance(shape, (Rect, Path)):
            raise LayoutError(f"unsupported shape type {type(shape).__name__}")
        self.shapes.setdefault(layer, []).append(shape)
        return shape

    def add_rect(self, layer: str, x0: float, y0: float, x1: float, y1: float) -> Rect:
        return self.add_shape(layer, Rect(x0, y0, x1, y1))

    def add_path(self, layer: str, xy: Iterable[tuple[float, float]], width: float) -> Path:
        return self.add_shape(layer, Path.from_xy(list(xy), width))

    def add_pin(self, name: str, layer: str, x: float, y: float,
                is_port: bool = False) -> Pin:
        pin = Pin(name=name, layer=layer, position=Point(x, y), is_port=is_port)
        self.pins.append(pin)
        return pin

    def add_device(self, annotation: DeviceAnnotation) -> DeviceAnnotation:
        if any(d.name == annotation.name for d in self.devices):
            raise LayoutError(f"duplicate device name {annotation.name!r}")
        self.devices.append(annotation)
        return annotation

    # -- queries -----------------------------------------------------------

    def layers(self) -> list[str]:
        """Names of all layers that carry at least one shape."""
        return sorted(self.shapes)

    def shapes_on(self, layer: str) -> list[Shape]:
        return list(self.shapes.get(layer, []))

    def rects_on(self, layer: str) -> list[Rect]:
        """All shapes on a layer converted to rectangles (paths are segmented)."""
        rects: list[Rect] = []
        for shape in self.shapes.get(layer, []):
            if isinstance(shape, Rect):
                rects.append(shape)
            else:
                rects.extend(shape.segment_rects())
        return rects

    def pins_of_net(self, net: str) -> list[Pin]:
        return [pin for pin in self.pins if pin.name == net]

    def nets(self) -> list[str]:
        """All net names referenced by pins or device terminals."""
        names = {pin.name for pin in self.pins}
        for device in self.devices:
            names.update(device.terminals.values())
        return sorted(names)

    def ports(self) -> list[Pin]:
        return [pin for pin in self.pins if pin.is_port]

    def devices_of_type(self, device_type: str) -> list[DeviceAnnotation]:
        return [d for d in self.devices if d.device_type == device_type]

    def bbox(self) -> Rect:
        """Bounding box over all drawn shapes."""
        rects: list[Rect] = []
        for layer_shapes in self.shapes.values():
            for shape in layer_shapes:
                rects.append(shape if isinstance(shape, Rect) else shape.bbox())
        if not rects:
            raise LayoutError(f"cell {self.name!r} has no shapes")
        return bounding_box(rects)

    def total_area(self, layer: str) -> float:
        """Total drawn area on a layer (overlaps are not merged)."""
        return sum(
            shape.area if isinstance(shape, Rect) else shape.area()
            for shape in self.shapes.get(layer, []))

    def iter_shapes(self) -> Iterator[tuple[str, Shape]]:
        for layer, layer_shapes in self.shapes.items():
            for shape in layer_shapes:
                yield layer, shape

    def validate(self) -> None:
        """Basic consistency checks: pins on drawn layers, devices inside bbox."""
        drawn = set(self.shapes)
        for pin in self.pins:
            if pin.layer not in drawn:
                raise LayoutError(
                    f"pin {pin.name!r} references layer {pin.layer!r} with no shapes")
        if self.devices:
            box = self.bbox()
            for device in self.devices:
                if not box.intersects(device.footprint):
                    raise LayoutError(
                        f"device {device.name!r} footprint lies outside the cell")
