"""Planar geometry primitives for the layout model.

The extraction flow only needs rectilinear geometry: axis-aligned rectangles
and orthogonal paths (wires).  Everything is kept in SI metres and plain
floats so the geometry interoperates directly with the numpy-based extractors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import LayoutError


@dataclass(frozen=True)
class Point:
    """A 2-D point in metres."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle defined by two opposite corners.

    The constructor normalises the corners so that ``x0 <= x1`` and
    ``y0 <= y1``; degenerate (zero-area) rectangles are rejected.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        # Normalise the corners (frozen dataclass, hence object.__setattr__).
        x0, x1 = sorted((self.x0, self.x1))
        y0, y1 = sorted((self.y0, self.y1))
        object.__setattr__(self, "x0", x0)
        object.__setattr__(self, "x1", x1)
        object.__setattr__(self, "y0", y0)
        object.__setattr__(self, "y1", y1)
        if self.width <= 0 or self.height <= 0:
            raise LayoutError(
                f"rectangle must have positive area, got {self.width} x {self.height}")

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its centre point and dimensions."""
        if width <= 0 or height <= 0:
            raise LayoutError("width and height must be positive")
        return cls(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def expanded(self, margin: float) -> "Rect":
        """Grow (or shrink for negative margin) the rectangle on all sides."""
        grown = Rect(self.x0 - margin, self.y0 - margin,
                     self.x1 + margin, self.y1 + margin)
        return grown

    def contains_point(self, point: Point, tol: float = 0.0) -> bool:
        return (self.x0 - tol <= point.x <= self.x1 + tol
                and self.y0 - tol <= point.y <= self.y1 + tol)

    def intersects(self, other: "Rect", tol: float = 0.0) -> bool:
        """True if the rectangles overlap or touch (within ``tol``)."""
        return not (other.x0 > self.x1 + tol or other.x1 < self.x0 - tol
                    or other.y0 > self.y1 + tol or other.y1 < self.y0 - tol)

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rectangle, or ``None`` if the rectangles do not overlap."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of both rectangles."""
        return Rect(min(self.x0, other.x0), min(self.y0, other.y0),
                    max(self.x1, other.x1), max(self.y1, other.y1))

    def overlap_area(self, other: "Rect") -> float:
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a collection of rectangles."""
    rects = list(rects)
    if not rects:
        raise LayoutError("cannot compute bounding box of empty collection")
    box = rects[0]
    for rect in rects[1:]:
        box = box.union_bbox(rect)
    return box


@dataclass(frozen=True)
class Path:
    """An orthogonal wire path with a constant width.

    Consecutive points must differ in exactly one coordinate (Manhattan
    routing).  The path can be converted to a list of segment rectangles used
    both for drawing and for resistance extraction.
    """

    points: tuple[Point, ...]
    width: float

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise LayoutError("a path needs at least two points")
        if self.width <= 0:
            raise LayoutError("path width must be positive")
        for a, b in zip(self.points, self.points[1:]):
            dx, dy = b.x - a.x, b.y - a.y
            if dx != 0 and dy != 0:
                raise LayoutError("path segments must be horizontal or vertical")
            if dx == 0 and dy == 0:
                raise LayoutError("path contains a zero-length segment")

    @classmethod
    def from_xy(cls, xy: Sequence[tuple[float, float]], width: float) -> "Path":
        return cls(tuple(Point(x, y) for x, y in xy), width)

    @property
    def length(self) -> float:
        """Centre-line length of the path."""
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))

    def segments(self) -> Iterator[tuple[Point, Point]]:
        for a, b in zip(self.points, self.points[1:]):
            yield a, b

    def segment_rects(self) -> list[Rect]:
        """One rectangle per segment, expanded by half the width."""
        half = self.width / 2
        rects = []
        for a, b in self.segments():
            if a.x == b.x:   # vertical
                y0, y1 = sorted((a.y, b.y))
                rects.append(Rect(a.x - half, y0 - half, a.x + half, y1 + half))
            else:            # horizontal
                x0, x1 = sorted((a.x, b.x))
                rects.append(Rect(x0 - half, a.y - half, x1 + half, a.y + half))
        return rects

    def bbox(self) -> Rect:
        return bounding_box(self.segment_rects())

    def translated(self, dx: float, dy: float) -> "Path":
        return Path(tuple(p.translated(dx, dy) for p in self.points), self.width)

    def squares(self) -> float:
        """Number of resistance squares along the path (length / width).

        Corner squares are counted once; this is the standard first-order
        estimate used by layout parasitic extractors for Manhattan wires.
        """
        total = 0.0
        for a, b in self.segments():
            total += a.distance_to(b) / self.width
        # Subtract half a square per corner to avoid double counting bends.
        corners = max(0, len(self.points) - 2)
        return max(total - 0.5 * corners, 0.0)

    def area(self) -> float:
        """Drawn metal area (approximate; bend overlaps counted once)."""
        rects = self.segment_rects()
        total = sum(r.area for r in rects)
        for first, second in zip(rects, rects[1:]):
            total -= first.overlap_area(second)
        return total
