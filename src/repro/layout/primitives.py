"""Parameterised layout generators (p-cells).

These helpers draw the recurring structures of the paper's test chips into a
:class:`~repro.layout.cell.Cell`: straight wires, substrate-contact (guard)
rings, multi-finger MOS transistors, accumulation-mode varactors, spiral
inductors and bond pads.  Each generator draws real geometry *and* registers
the matching :class:`~repro.layout.cell.DeviceAnnotation` / pins so the
downstream extractors can work from the same cell.

All dimensions are in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import LayoutError
from .cell import Cell, DeviceAnnotation
from .geometry import Path, Rect


def draw_wire(cell: Cell, layer: str, points: list[tuple[float, float]],
              width: float, net: str, *, nodes: tuple[str, str] | None = None,
              port_at_ends: bool = False) -> Path:
    """Draw a Manhattan wire and pin both ends.

    ``net`` names the electrical net of the wire.  By default both end pins
    carry the net name; passing ``nodes=(a, b)`` labels the two ends with
    distinct *node* names instead, which is how the layouts expose the
    resistive split of a net (e.g. the on-chip ground between its local ring
    node and its bond-pad node).  The interconnect extractor turns the wire
    into a resistance between the two end nodes.

    Returns the drawn :class:`Path`.  With ``port_at_ends`` the end pins are
    marked as externally accessible ports.
    """
    path = cell.add_path(layer, points, width)
    first, last = points[0], points[-1]
    name_a, name_b = nodes if nodes is not None else (net, net)
    cell.add_pin(name_a, layer, first[0], first[1], is_port=port_at_ends)
    cell.add_pin(name_b, layer, last[0], last[1], is_port=port_at_ends)
    return path


def draw_bond_pad(cell: Cell, net: str, center: tuple[float, float],
                  size: float = 80e-6, metal: str = "M6") -> Rect:
    """Draw a bond pad: top-metal square plus pad-opening marker and a port pin."""
    cx, cy = center
    pad = Rect.from_center(cx, cy, size, size)
    cell.add_shape(metal, pad)
    cell.add_shape("PAD", Rect.from_center(cx, cy, size * 0.9, size * 0.9))
    cell.add_pin(net, metal, cx, cy, is_port=True)
    return pad


def draw_substrate_contact_ring(cell: Cell, net: str, inner: Rect,
                                ring_width: float = 2e-6,
                                metal: str = "M1",
                                name: str | None = None) -> list[Rect]:
    """Draw a substrate-tap guard ring around ``inner``.

    The ring consists of four rectangles of p+ tap (``PTAP``), contact cuts and
    metal-1 on top, all tied to ``net``.  The paper's "MOS GR" (the ring of
    contacts around the RF NMOS) and the outer "GR" of the measurement
    structure are instances of this generator.

    Returns the four metal rectangles forming the ring.
    """
    if ring_width <= 0:
        raise LayoutError("ring width must be positive")
    outer = inner.expanded(ring_width)
    strips = [
        Rect(outer.x0, inner.y1, outer.x1, outer.y1),   # top
        Rect(outer.x0, outer.y0, outer.x1, inner.y0),   # bottom
        Rect(outer.x0, inner.y0, inner.x0, inner.y1),   # left
        Rect(inner.x1, inner.y0, outer.x1, inner.y1),   # right
    ]
    for strip in strips:
        cell.add_shape("PTAP", strip)
        cell.add_shape("CONT", strip)
        cell.add_shape(metal, strip)
    center_top = strips[0].center
    cell.add_pin(net, metal, center_top.x, center_top.y)
    annotation_name = name or f"guard_ring_{net}_{len(cell.devices)}"
    cell.add_device(DeviceAnnotation(
        name=annotation_name,
        device_type="substrate_contact",
        terminals={"tap": net},
        parameters={
            "ring_width": ring_width,
            "perimeter": outer.perimeter,
            "area": sum(s.area for s in strips),
        },
        footprint=outer,
    ))
    return strips


def draw_substrate_tap_strip(cell: Cell, net: str, rect: Rect,
                             name: str | None = None,
                             metal: str = "M1") -> Rect:
    """Draw a solid substrate-tap strip (p+ taps, contacts, metal) tied to ``net``.

    Used for the tap rows placed between devices inside an analog block —
    they keep the local substrate close to the local ground potential.
    """
    cell.add_shape("PTAP", rect)
    cell.add_shape("CONT", rect)
    cell.add_shape(metal, rect)
    center = rect.center
    cell.add_pin(net, metal, center.x, center.y)
    annotation_name = name or f"tap_strip_{net}_{len(cell.devices)}"
    cell.add_device(DeviceAnnotation(
        name=annotation_name,
        device_type="substrate_contact",
        terminals={"tap": net},
        parameters={"area": rect.area, "perimeter": rect.perimeter,
                    "ring_width": min(rect.width, rect.height)},
        footprint=rect,
    ))
    return rect


def draw_substrate_injection_contact(cell: Cell, net: str,
                                     center: tuple[float, float],
                                     size: float = 20e-6) -> Rect:
    """Draw the substrate-contact used to inject the noise signal (pad "SUB")."""
    cx, cy = center
    tap = Rect.from_center(cx, cy, size, size)
    cell.add_shape("PTAP", tap)
    cell.add_shape("CONT", tap)
    cell.add_shape("M1", tap)
    cell.add_pin(net, "M1", cx, cy, is_port=True)
    cell.add_device(DeviceAnnotation(
        name=f"sub_contact_{net}",
        device_type="substrate_contact",
        terminals={"tap": net},
        parameters={"area": tap.area, "perimeter": tap.perimeter, "ring_width": size},
        footprint=tap,
    ))
    return tap


@dataclass(frozen=True)
class MosfetLayoutSpec:
    """Sizing of a multi-finger MOSFET layout."""

    name: str
    model: str                 #: technology model card name, e.g. "nmos_rf"
    device_type: str           #: "nmos" or "pmos"
    width_per_finger: float
    length: float
    fingers: int = 1
    multiplier: int = 1        #: number of identical devices wired in parallel

    def __post_init__(self) -> None:
        if self.width_per_finger <= 0 or self.length <= 0:
            raise LayoutError("MOS width and length must be positive")
        if self.fingers < 1 or self.multiplier < 1:
            raise LayoutError("fingers and multiplier must be >= 1")

    @property
    def total_width(self) -> float:
        return self.width_per_finger * self.fingers * self.multiplier


def draw_mosfet(cell: Cell, spec: MosfetLayoutSpec, origin: tuple[float, float],
                terminals: dict[str, str], *, in_nwell: bool = False) -> DeviceAnnotation:
    """Draw a folded multi-finger MOSFET and annotate it as a device.

    ``terminals`` maps ``{"d", "g", "s", "b"}`` to net names.  The drawn
    geometry is simplified (active area, poly fingers, source/drain contact
    strips) but dimensionally realistic, so the substrate extractor sees the
    correct footprint and the interconnect extractor can connect to the
    terminal pins.
    """
    missing = {"d", "g", "s", "b"} - set(terminals)
    if missing:
        raise LayoutError(f"MOSFET {spec.name}: missing terminals {sorted(missing)}")
    ox, oy = origin
    finger_pitch = spec.length + 0.5e-6
    active_width = spec.fingers * finger_pitch + 0.5e-6
    active = Rect(ox, oy, ox + active_width, oy + spec.width_per_finger)
    cell.add_shape("ACTIVE", active)
    if in_nwell:
        cell.add_shape("NWELL", active.expanded(0.6e-6))
    implant = "PPLUS" if spec.device_type == "pmos" else "NPLUS"
    cell.add_shape(implant, active.expanded(0.2e-6))

    # Poly gate fingers.
    for i in range(spec.fingers):
        x = ox + 0.25e-6 + i * finger_pitch
        cell.add_shape("POLY", Rect(x, oy - 0.3e-6, x + spec.length,
                                    oy + spec.width_per_finger + 0.3e-6))
    # Source / drain contact strips alternate between fingers.
    for i in range(spec.fingers + 1):
        x = ox + i * finger_pitch
        strip = Rect(x, oy, x + 0.25e-6, oy + spec.width_per_finger)
        cell.add_shape("CONT", strip)
        cell.add_shape("M1", strip)

    center = active.center
    cell.add_pin(terminals["d"], "M1", active.x1, center.y)
    cell.add_pin(terminals["s"], "M1", active.x0, center.y)
    cell.add_pin(terminals["g"], "POLY", center.x, active.y1 + 0.3e-6)
    cell.add_pin(terminals["b"], "M1", center.x, active.y0 - 1e-6)

    annotation = DeviceAnnotation(
        name=spec.name,
        device_type=spec.device_type,
        terminals=dict(terminals),
        parameters={
            "w": spec.total_width,
            "l": spec.length,
            "fingers": float(spec.fingers),
            "multiplier": float(spec.multiplier),
        },
        footprint=active.expanded(0.6e-6),
        model=spec.model,
    )
    cell.add_device(annotation)
    return annotation


def draw_varactor(cell: Cell, name: str, origin: tuple[float, float],
                  terminals: dict[str, str], *, area: float = 400e-12,
                  cmin: float = 0.6e-12, cmax: float = 1.6e-12,
                  v_half: float = 0.4, slope: float = 4.0) -> DeviceAnnotation:
    """Draw an accumulation-mode NMOS varactor inside an n-well.

    ``terminals`` maps ``{"plus", "minus", "well"}`` to net names: ``plus`` is
    the gate terminal (connected to the tank), ``minus`` the tuning terminal
    and ``well`` the n-well body node that couples capacitively to the
    substrate.  The C–V parameters are stored on the annotation and used by
    :class:`repro.devices.varactor.AccumulationModeVaractor`.
    """
    missing = {"plus", "minus", "well"} - set(terminals)
    if missing:
        raise LayoutError(f"varactor {name}: missing terminals {sorted(missing)}")
    ox, oy = origin
    side = math.sqrt(area)
    body = Rect(ox, oy, ox + side, oy + side)
    cell.add_shape("NWELL", body.expanded(0.6e-6))
    cell.add_shape("ACTIVE", body)
    cell.add_shape("POLY", Rect.from_center(body.center.x, body.center.y,
                                            side * 0.8, side * 0.8))
    cell.add_pin(terminals["plus"], "POLY", body.center.x, body.center.y)
    cell.add_pin(terminals["minus"], "M1", body.x1, body.center.y)
    cell.add_pin(terminals["well"], "M1", body.x0, body.center.y)
    annotation = DeviceAnnotation(
        name=name,
        device_type="varactor",
        terminals=dict(terminals),
        parameters={
            "area": area,
            "cmin": cmin,
            "cmax": cmax,
            "v_half": v_half,
            "slope": slope,
        },
        footprint=body.expanded(0.6e-6),
    )
    cell.add_device(annotation)
    return annotation


def draw_spiral_inductor(cell: Cell, name: str, center: tuple[float, float],
                         terminals: dict[str, str], *, inductance: float,
                         series_resistance: float, outer_diameter: float = 200e-6,
                         turns: float = 3.5, width: float = 10e-6,
                         substrate_capacitance: float = 120e-15,
                         q_factor: float = 8.0,
                         metal: str = "M6") -> DeviceAnnotation:
    """Draw a square spiral inductor on the top metal and annotate its model.

    The drawn spiral is an octagonal-ish square approximation sufficient for
    footprint/area bookkeeping; the electrical values (L, series R, substrate
    capacitance — the paper's Cind = 120 fF per inductor) are carried on the
    annotation and consumed by :class:`repro.devices.inductor.SpiralInductor`.
    """
    missing = {"plus", "minus"} - set(terminals)
    if missing:
        raise LayoutError(f"inductor {name}: missing terminals {sorted(missing)}")
    cx, cy = center
    half = outer_diameter / 2
    n_rings = max(1, int(math.ceil(turns)))
    pitch = (half - width) / max(n_rings, 1) * 0.8
    # Rectangular spiral: each ring turns counter-clockwise and steps inward by
    # one pitch; consecutive points always share an x or y coordinate so the
    # path stays Manhattan.
    # Pre-compute the ring offsets so consecutive rings share the exact same
    # floating-point coordinate where they join (keeps the path Manhattan).
    offsets = [half - ring * pitch for ring in range(n_rings + 1)]
    points: list[tuple[float, float]] = []
    for ring in range(n_rings):
        offset = offsets[ring]
        inner = offsets[ring + 1]
        points.extend([
            (cx - offset, cy - offset),
            (cx - offset, cy + offset),
            (cx + offset, cy + offset),
            (cx + offset, cy - inner),
        ])
    # Final stub towards the centre to terminate the spiral.
    points.append((cx, cy - offsets[n_rings]))
    cell.add_path(metal, points, width)
    cell.add_pin(terminals["plus"], metal, points[0][0], points[0][1])
    cell.add_pin(terminals["minus"], metal, points[-1][0], points[-1][1])
    footprint = Rect(cx - half, cy - half, cx + half, cy + half)
    annotation = DeviceAnnotation(
        name=name,
        device_type="inductor",
        terminals=dict(terminals),
        parameters={
            "inductance": inductance,
            "series_resistance": series_resistance,
            "substrate_capacitance": substrate_capacitance,
            "q_factor": q_factor,
            "outer_diameter": outer_diameter,
            "turns": turns,
            "width": width,
        },
        footprint=footprint,
    )
    cell.add_device(annotation)
    return annotation
