"""Layouts of the paper's two test structures.

* :func:`make_nmos_measurement_structure` — the one-transistor validation
  vehicle of Section 3 / Figure 4: four RF NMOS devices in parallel, a local
  substrate-contact ring around them ("MOS GR"), an outer guard ring ("GR"),
  a dedicated substrate-injection contact ("SUB") and the ground interconnect
  whose series resistance nearly doubles the back-gate voltage division.

* :func:`make_vco_testchip` — the 3 GHz LC-tank VCO of Sections 4-6 /
  Figures 5-6: NMOS/PMOS cross-coupled pair, on-chip differential inductor,
  accumulation-mode NMOS varactor, tail current source, non-ideal on-chip
  ground net (VGND), supply (VDD), tuning input (VTUNE), output pads and the
  substrate injection pad (SUB).

Node naming convention: pins carry *node* names.  A physical net that the
extraction should split resistively is drawn with distinct node names at the
two ends of its routing (e.g. ``VGND_RING`` at the local ground ring and
``VGND_PAD`` at the bond pad); the interconnect extractor then places the
extracted wire resistance between those nodes.  The generators take a
``ground_width_scale`` knob so the Figure-10 experiment (ground interconnect
lines widened by a factor of two) re-uses exactly the same layout code.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cell import Cell
from .geometry import Rect
from .primitives import (
    MosfetLayoutSpec,
    draw_bond_pad,
    draw_mosfet,
    draw_spiral_inductor,
    draw_substrate_contact_ring,
    draw_substrate_injection_contact,
    draw_substrate_tap_strip,
    draw_varactor,
    draw_wire,
)

#: Node names shared between the test-chip layouts and the analysis code.
NET_SUB = "SUB"                #: substrate noise-injection contact
NET_GROUND_RING = "VGND_RING"  #: on-chip analog ground at the local ring
NET_GROUND_PAD = "VGND_PAD"    #: analog ground at the bond pad / outer ring
NET_SUPPLY = "VDD"
NET_OUT = "OUT"
NET_TUNE = "VTUNE"
NET_GATE = "VGATE"
NET_TANK_P = "TANKP"
NET_TANK_N = "TANKN"
NET_TAIL = "VTAIL"
NET_BIAS = "VBIAS"             #: tail current-source gate bias

# Backwards-compatible aliases used by analysis code.
NET_GROUND = NET_GROUND_RING
NET_OFFCHIP_GROUND = NET_GROUND_PAD


def backgate_node(device_name: str) -> str:
    """Node name of the local back-gate (bulk) of an NMOS device."""
    return f"BGATE_{device_name}"


@dataclass(frozen=True)
class NmosStructureSpec:
    """Parameters of the NMOS measurement structure layout."""

    fingers_per_device: int = 10
    width_per_finger: float = 5e-6
    length: float = 0.18e-6
    n_parallel: int = 4
    ground_wire_length: float = 600e-6
    ground_wire_width: float = 4e-6
    ground_width_scale: float = 1.0
    injection_distance: float = 150e-6


@dataclass(frozen=True)
class VcoLayoutSpec:
    """Parameters of the VCO test-chip layout."""

    nmos_width: float = 60e-6
    pmos_width: float = 120e-6
    length: float = 0.18e-6
    fingers: int = 8
    tank_inductance: float = 2.0e-9
    inductor_resistance: float = 4.0
    inductor_substrate_cap: float = 120e-15
    varactor_cmin: float = 0.6e-12
    varactor_cmax: float = 1.8e-12
    #: C-V transition voltage and steepness of the accumulation-mode varactor;
    #: chosen so the 0-1.5 V tuning range of the paper's VCO spans the steep
    #: part of the curve (the tank common-mode sits around 1.1 V).
    varactor_v_half: float = 0.6
    varactor_slope: float = 2.0
    ground_wire_length: float = 800e-6
    ground_wire_width: float = 4e-6
    ground_width_scale: float = 1.0
    injection_distance: float = 120e-6


def make_nmos_measurement_structure(
        spec: NmosStructureSpec | None = None) -> Cell:
    """Build the Section-3 NMOS measurement structure layout.

    The four RF NMOS devices sit side by side inside the local ground ring
    (MOS GR, node ``VGND_RING``).  The ring reaches the ground bond pad
    (node ``VGND_PAD``, shared with the outer guard ring) only through a long
    metal-1 wire whose resistance is the quantity the paper identifies as
    nearly doubling the substrate-to-back-gate voltage division.
    """
    spec = spec or NmosStructureSpec()
    cell = Cell(name="nmos_measurement_structure")

    # --- transistors -------------------------------------------------------
    device_pitch = spec.fingers_per_device * (spec.length + 0.5e-6) + 8e-6
    for index in range(spec.n_parallel):
        name = f"MN{index}"
        mos_spec = MosfetLayoutSpec(
            name=name,
            model="nmos_rf",
            device_type="nmos",
            width_per_finger=spec.width_per_finger,
            length=spec.length,
            fingers=spec.fingers_per_device,
        )
        draw_mosfet(cell, mos_spec, origin=(index * device_pitch, 0.0),
                    terminals={"d": NET_OUT, "g": NET_GATE,
                               "s": NET_GROUND_RING, "b": backgate_node(name)})

    mos_region = Rect(-5e-6, -5e-6,
                      spec.n_parallel * device_pitch + 5e-6,
                      spec.width_per_finger + 5e-6)

    # --- local NMOS ground ring (MOS GR) ------------------------------------
    draw_substrate_contact_ring(cell, NET_GROUND_RING, mos_region,
                                ring_width=2e-6, name="mos_ground_ring")

    # --- ground interconnect to the ground bond pad --------------------------
    # This metal-1 wire is the resistance the paper highlights: it sits
    # between the local ground ring (where substrate noise enters resistively)
    # and the off-chip ground reference at the pad.
    ground_width = spec.ground_wire_width * spec.ground_width_scale
    ring_exit = (mos_region.x1 + 2e-6, mos_region.center.y)
    pad_center = (ring_exit[0] + spec.ground_wire_length, ring_exit[1])
    draw_wire(cell, "M1", [ring_exit, pad_center], width=ground_width,
              net="VGND", nodes=(NET_GROUND_RING, NET_GROUND_PAD))
    draw_bond_pad(cell, NET_GROUND_PAD, pad_center)

    # --- outer guard ring (GR), tied to the pad-side ground -------------------
    outer_region = mos_region.expanded(60e-6)
    draw_substrate_contact_ring(cell, NET_GROUND_PAD, outer_region,
                                ring_width=4e-6, name="outer_guard_ring")

    # --- substrate injection contact (SUB) -----------------------------------
    injection_center = (mos_region.x0 - spec.injection_distance,
                        mos_region.center.y)
    draw_substrate_injection_contact(cell, NET_SUB, injection_center)
    draw_bond_pad(cell, NET_SUB,
                  (injection_center[0] - 60e-6, injection_center[1]))

    # --- signal pads ----------------------------------------------------------
    top_y = outer_region.y1 + 80e-6
    draw_bond_pad(cell, NET_OUT, (mos_region.center.x, top_y))
    draw_wire(cell, "M2", [(mos_region.x1, mos_region.center.y),
                           (mos_region.x1, top_y),
                           (mos_region.center.x, top_y)],
              width=2e-6, net=NET_OUT)
    draw_bond_pad(cell, NET_GATE, (mos_region.center.x - 150e-6, top_y))
    draw_wire(cell, "M2", [(mos_region.center.x, mos_region.y1),
                           (mos_region.center.x - 150e-6, mos_region.y1),
                           (mos_region.center.x - 150e-6, top_y)],
              width=2e-6, net=NET_GATE)

    cell.validate()
    return cell


def make_vco_testchip(spec: VcoLayoutSpec | None = None) -> Cell:
    """Build the Section-4 LC-tank VCO test-chip layout.

    The circuit follows Figure 5 of the paper: an NMOS and a PMOS
    cross-coupled pair share a differential LC tank made of an on-chip
    inductor and an accumulation-mode NMOS varactor pair.  The NMOS tail
    returns to the on-chip ground node ``VGND_RING``, which reaches the ground
    bond pad ``VGND_PAD`` only through a long, resistive metal wire — the
    dominant substrate-noise entry identified by the paper.
    """
    spec = spec or VcoLayoutSpec()
    cell = Cell(name="vco_testchip")

    core_origin_y = 0.0
    finger_width_nmos = spec.nmos_width / spec.fingers
    finger_width_pmos = spec.pmos_width / spec.fingers

    # --- cross-coupled NMOS pair --------------------------------------------
    nmos_specs = [
        ("MN_left", NET_TANK_P, NET_TANK_N),
        ("MN_right", NET_TANK_N, NET_TANK_P),
    ]
    for index, (name, drain, gate) in enumerate(nmos_specs):
        mos_spec = MosfetLayoutSpec(
            name=name, model="nmos_rf", device_type="nmos",
            width_per_finger=finger_width_nmos, length=spec.length,
            fingers=spec.fingers)
        draw_mosfet(cell, mos_spec, origin=(index * 60e-6, core_origin_y),
                    terminals={"d": drain, "g": gate,
                               "s": NET_TAIL, "b": backgate_node(name)})

    # --- cross-coupled PMOS pair (in n-well, well tied to VDD) ---------------
    pmos_specs = [
        ("MP_left", NET_TANK_P, NET_TANK_N),
        ("MP_right", NET_TANK_N, NET_TANK_P),
    ]
    for index, (name, drain, gate) in enumerate(pmos_specs):
        mos_spec = MosfetLayoutSpec(
            name=name, model="pmos_rf", device_type="pmos",
            width_per_finger=finger_width_pmos, length=spec.length,
            fingers=spec.fingers)
        draw_mosfet(cell, mos_spec, origin=(index * 60e-6, core_origin_y + 60e-6),
                    terminals={"d": drain, "g": gate,
                               "s": NET_SUPPLY, "b": NET_SUPPLY},
                    in_nwell=True)

    # --- tail current source NMOS ---------------------------------------------
    tail_spec = MosfetLayoutSpec(
        name="MN_tail", model="nmos_rf", device_type="nmos",
        width_per_finger=finger_width_nmos * 2, length=0.5e-6,
        fingers=spec.fingers)
    draw_mosfet(cell, tail_spec, origin=(30e-6, core_origin_y - 60e-6),
                terminals={"d": NET_TAIL, "g": NET_BIAS,
                           "s": NET_GROUND_RING, "b": backgate_node("MN_tail")})

    core_region = Rect(-10e-6, core_origin_y - 70e-6, 130e-6, core_origin_y + 100e-6)

    # --- LC tank ---------------------------------------------------------------
    draw_spiral_inductor(
        cell, "L_tank", center=(60e-6, core_origin_y + 300e-6),
        terminals={"plus": NET_TANK_P, "minus": NET_TANK_N},
        inductance=spec.tank_inductance,
        series_resistance=spec.inductor_resistance,
        substrate_capacitance=spec.inductor_substrate_cap,
        outer_diameter=220e-6, turns=3.5, width=12e-6)
    draw_varactor(
        cell, "C_var_left", origin=(150e-6, core_origin_y + 20e-6),
        terminals={"plus": NET_TANK_P, "minus": NET_TUNE, "well": NET_TUNE},
        cmin=spec.varactor_cmin, cmax=spec.varactor_cmax,
        v_half=spec.varactor_v_half, slope=spec.varactor_slope)
    draw_varactor(
        cell, "C_var_right", origin=(150e-6, core_origin_y + 60e-6),
        terminals={"plus": NET_TANK_N, "minus": NET_TUNE, "well": NET_TUNE},
        cmin=spec.varactor_cmin, cmax=spec.varactor_cmax,
        v_half=spec.varactor_v_half, slope=spec.varactor_slope)

    # --- local ground ring and the resistive on-chip ground net -----------------
    draw_substrate_contact_ring(cell, NET_GROUND_RING, core_region,
                                ring_width=3e-6, name="vco_ground_ring")
    # Tap rows inside the core (standard analog-layout practice): they keep
    # the substrate under the devices close to the local ground potential.
    draw_substrate_tap_strip(
        cell, NET_GROUND_RING,
        Rect(core_region.x0 + 5e-6, core_origin_y + 35e-6,
             core_region.x1 - 5e-6, core_origin_y + 41e-6),
        name="vco_tap_row_mid")
    draw_substrate_tap_strip(
        cell, NET_GROUND_RING,
        Rect(core_region.x0 + 5e-6, core_origin_y - 20e-6,
             core_region.x1 - 5e-6, core_origin_y - 14e-6),
        name="vco_tap_row_low")
    ground_width = spec.ground_wire_width * spec.ground_width_scale
    ring_exit = (core_region.x1 + 3e-6, core_region.center.y)
    pad_center = (ring_exit[0] + spec.ground_wire_length, ring_exit[1])
    draw_wire(cell, "M1", [ring_exit, pad_center], width=ground_width,
              net="VGND", nodes=(NET_GROUND_RING, NET_GROUND_PAD))
    draw_bond_pad(cell, NET_GROUND_PAD, pad_center)

    # --- supply, tuning and output routing ---------------------------------------
    top_y = core_origin_y + 480e-6
    draw_bond_pad(cell, NET_SUPPLY, (-150e-6, top_y))
    draw_wire(cell, "M5", [(-150e-6, top_y), (-150e-6, core_origin_y + 80e-6),
                           (0.0, core_origin_y + 80e-6)],
              width=6e-6, net=NET_SUPPLY)
    draw_bond_pad(cell, NET_TUNE, (350e-6, top_y))
    draw_wire(cell, "M3", [(350e-6, top_y), (350e-6, core_origin_y + 40e-6),
                           (200e-6, core_origin_y + 40e-6)],
              width=2e-6, net=NET_TUNE)
    draw_bond_pad(cell, NET_OUT, (120e-6, top_y))
    draw_wire(cell, "M4", [(120e-6, top_y), (120e-6, core_origin_y + 30e-6)],
              width=3e-6, net=NET_OUT)
    draw_bond_pad(cell, NET_BIAS, (470e-6, top_y))
    draw_wire(cell, "M3", [(470e-6, top_y), (470e-6, core_origin_y - 55e-6),
                           (60e-6, core_origin_y - 55e-6)],
              width=2e-6, net=NET_BIAS)

    # --- substrate injection pad (SUB) --------------------------------------------
    injection_center = (core_region.x0 - spec.injection_distance,
                        core_region.center.y)
    draw_substrate_injection_contact(cell, NET_SUB, injection_center)
    draw_bond_pad(cell, NET_SUB, (injection_center[0] - 80e-6, injection_center[1]))

    # --- outer guard ring, tied to the pad-side ground ------------------------------
    outer_region = core_region.expanded(260e-6)
    draw_substrate_contact_ring(cell, NET_GROUND_PAD, outer_region,
                                ring_width=5e-6, name="chip_guard_ring")

    cell.validate()
    return cell
