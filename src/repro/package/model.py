"""Package / probe parasitics.

The paper's test chips are measured on-wafer with RF probes: the supply,
ground and output connections reach the chip through probe tips rather than
bondwires.  Both situations are covered here:

* :class:`BondwireModel` — series resistance + inductance of a bondwire plus
  the bond-pad capacitance (used when simulating a packaged part),
* :class:`RfProbeModel` — the much smaller contact resistance and inductance
  of a ground-signal-ground probe tip (the paper's measurement setup).

A :class:`PackageModel` maps pad nodes to external nodes through one of these
connection models and can stamp itself into the impact netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetlistError
from ..netlist.circuit import Circuit


@dataclass(frozen=True)
class BondwireModel:
    """Series R-L bondwire with a shunt pad capacitance."""

    inductance: float = 2.0e-9       #: ~1 nH/mm for a 2 mm bondwire
    resistance: float = 0.12         #: ohm
    pad_capacitance: float = 150e-15

    def __post_init__(self) -> None:
        if self.inductance <= 0 or self.resistance <= 0:
            raise NetlistError("bondwire inductance and resistance must be positive")


@dataclass(frozen=True)
class RfProbeModel:
    """Ground-signal-ground probe contact: small series R and L."""

    inductance: float = 50e-12
    resistance: float = 0.05
    pad_capacitance: float = 60e-15

    def __post_init__(self) -> None:
        if self.inductance <= 0 or self.resistance <= 0:
            raise NetlistError("probe inductance and resistance must be positive")


Connection = BondwireModel | RfProbeModel


@dataclass
class PackageModel:
    """Maps on-chip pad nodes to external (board / instrument) nodes."""

    name: str = "package"
    connections: dict[str, tuple[str, Connection]] = field(default_factory=dict)

    def connect(self, pad_node: str, external_node: str,
                model: Connection | None = None) -> None:
        """Register a pad-to-external connection (defaults to an RF probe)."""
        self.connections[pad_node] = (external_node, model or RfProbeModel())

    def add_to_circuit(self, circuit: Circuit) -> None:
        """Stamp every registered connection into ``circuit``.

        Each connection contributes a series R-L between the pad node and the
        external node plus the pad capacitance from the pad node to ground.
        """
        if not self.connections:
            raise NetlistError(f"package model {self.name!r} has no connections")
        for pad_node, (external_node, model) in self.connections.items():
            mid = f"{self.name}:{pad_node}__bw"
            circuit.add_resistor(f"{self.name}:R_{pad_node}", pad_node, mid,
                                 model.resistance)
            circuit.add_inductor(f"{self.name}:L_{pad_node}", mid, external_node,
                                 model.inductance)
            if model.pad_capacitance > 0:
                circuit.add_capacitor(f"{self.name}:Cpad_{pad_node}", pad_node,
                                      "0", model.pad_capacitance)

    @classmethod
    def rf_probed(cls, pads_to_external: dict[str, str],
                  name: str = "probe") -> "PackageModel":
        """Convenience constructor: every pad connected through an RF probe."""
        package = cls(name=name)
        for pad, external in pads_to_external.items():
            package.connect(pad, external, RfProbeModel())
        return package

    @classmethod
    def bondwired(cls, pads_to_external: dict[str, str],
                  name: str = "package") -> "PackageModel":
        """Convenience constructor: every pad connected through a bondwire."""
        package = cls(name=name)
        for pad, external in pads_to_external.items():
            package.connect(pad, external, BondwireModel())
        return package


__all__ = ["BondwireModel", "Connection", "PackageModel", "RfProbeModel"]
