"""Package / probe parasitic models."""

from .model import BondwireModel, Connection, PackageModel, RfProbeModel

__all__ = ["BondwireModel", "Connection", "PackageModel", "RfProbeModel"]
