"""Reference ("measured") curves reconstructed from the paper.

The original measurement data of the DATE 2005 paper is not public; the
curves below are reconstructed from the quantitative statements in the text
and the visual trends of the figures so every experiment has a reference to
compare against:

* Figure 3   — substrate-to-NMOS-output transfer of -45 dB to -52 dB over the
  0.5-1.6 V bias sweep, simulation within 1 dB of measurement.
* Section 3  — substrate voltage division to the back-gate of 1/652 (with the
  ground-interconnect resistance roughly doubling it), gmb = 10-38 mS,
  gds = 2.8-22 mS, Cdbj = 120 fF, Csbj = 200 fF, junction-cap crossover
  between 5 and 19 GHz.
* Figure 8   — total spur power at f_c +/- f_noise decreasing linearly with the
  logarithm of the noise frequency (resistive coupling followed by FM,
  -20 dB/decade), with measured levels around -40 dBm at 100 kHz falling to
  about -82 dBm at 15 MHz for the -5 dBm injected tone; simulation within
  2 dB of measurement.
* Figure 9   — per-entry decomposition: the ground interconnect dominates, the
  NMOS back-gate is roughly 20 dB lower (same -20 dB/dec slope), the inductor
  path is capacitive and therefore flat with frequency and far below both.
* Figure 10  — widening the ground interconnect by 2x (halving its resistance)
  lowers the impact by about 4.5 dB (6 dB in the ideal, purely ground-
  dominated limit).

Every helper returns plain numpy arrays so benchmarks and tests can compare
shapes without re-deriving the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# ---------------------------------------------------------------------------
# Section 3 / Figure 3: NMOS measurement structure
# ---------------------------------------------------------------------------

#: Bias range of the NMOS measurement (V).
NMOS_BIAS_RANGE = (0.5, 1.6)

#: Substrate-to-output transfer quoted by the paper at the two bias extremes (dB).
NMOS_TRANSFER_DB_AT_LOW_BIAS = -45.0
NMOS_TRANSFER_DB_AT_HIGH_BIAS = -52.0

#: Voltage division from the injection contact to the NMOS back-gate.
NMOS_SUBSTRATE_DIVISION = 1.0 / 652.0

#: Factor by which the ground-interconnect resistance increases the division.
NMOS_INTERCONNECT_DIVISION_FACTOR = 2.0

#: Measured small-signal ranges over the bias sweep.
NMOS_GMB_RANGE_S = (10e-3, 38e-3)
NMOS_GDS_RANGE_S = (2.8e-3, 22e-3)

#: Junction capacitances of the 4 x 50 um RF NMOS.
NMOS_CDBJ_F = 120e-15
NMOS_CSBJ_F = 200e-15

#: Crossover frequency range where junction-cap coupling equals back-gate coupling.
NMOS_JUNCTION_CROSSOVER_HZ = (5e9, 19e9)

#: Maximum simulation-vs-measurement error quoted for the NMOS structure (dB).
NMOS_MAX_ERROR_DB = 1.0


def nmos_transfer_reference(bias: np.ndarray | None = None
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Reference substrate-to-output transfer (dB) versus bias voltage.

    The paper quotes the transfer band (-45 dB to -52 dB) over the 0.5-1.6 V
    bias sweep and shows a monotonically decreasing curve; the reference is a
    linear interpolation between the quoted endpoints.
    """
    if bias is None:
        bias = np.linspace(*NMOS_BIAS_RANGE, 12)
    bias = np.asarray(bias, dtype=float)
    span = NMOS_BIAS_RANGE[1] - NMOS_BIAS_RANGE[0]
    fraction = (bias - NMOS_BIAS_RANGE[0]) / span
    transfer = (NMOS_TRANSFER_DB_AT_LOW_BIAS
                + fraction * (NMOS_TRANSFER_DB_AT_HIGH_BIAS
                              - NMOS_TRANSFER_DB_AT_LOW_BIAS))
    return bias, transfer


# ---------------------------------------------------------------------------
# Section 4: VCO headline figures
# ---------------------------------------------------------------------------

VCO_OSCILLATION_FREQUENCY_HZ = 3.0e9
VCO_CORE_CURRENT_A = 5e-3
VCO_SUPPLY_V = 1.8
VCO_PHASE_NOISE_DBC_100KHZ = -100.0

#: Injected substrate tone (Section 4): -5 dBm sinusoid.
INJECTED_POWER_DBM = -5.0

#: Noise-frequency range analysed in Figures 8-10.
NOISE_FREQUENCY_RANGE_HZ = (100e3, 15e6)

#: Maximum simulation-vs-measurement error quoted for the VCO (dB).
VCO_MAX_ERROR_DB = 2.0


# ---------------------------------------------------------------------------
# Figure 8: total spur power versus noise frequency
# ---------------------------------------------------------------------------

#: Anchor level of the measured total spur power at 100 kHz (dBm) and its
#: slope versus the logarithm of the noise frequency.  The paper's figure
#: shows a straight line in log-frequency with the -20 dB/decade signature of
#: resistive coupling followed by FM.
FIG8_SPUR_DBM_AT_100KHZ = -40.0
FIG8_SLOPE_DB_PER_DECADE = -20.0

#: Spread between the different tuning voltages shown in Figure 8 (dB).
FIG8_VTUNE_SPREAD_DB = 4.0


def fig8_spur_reference(noise_frequencies: np.ndarray | None = None,
                        vtune_offset_db: float = 0.0
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Reference total spur power (dBm) versus noise frequency for Figure 8."""
    if noise_frequencies is None:
        noise_frequencies = np.logspace(5, np.log10(15e6), 20)
    noise_frequencies = np.asarray(noise_frequencies, dtype=float)
    decades = np.log10(noise_frequencies / 100e3)
    level = (FIG8_SPUR_DBM_AT_100KHZ + FIG8_SLOPE_DB_PER_DECADE * decades
             + vtune_offset_db)
    return noise_frequencies, level


# ---------------------------------------------------------------------------
# Figure 9: per-entry contributions
# ---------------------------------------------------------------------------

#: Gap between the ground-interconnect contribution and the NMOS back-gate
#: contribution (dB), from the paper's simulation at V_tune = 0 V.
FIG9_NMOS_BELOW_GROUND_DB = 20.0

#: The inductor path is capacitive: flat with frequency and well below the
#: ground path at low frequency.
FIG9_INDUCTOR_SLOPE_DB_PER_DECADE = 0.0


def fig9_contribution_reference(noise_frequencies: np.ndarray | None = None
                                ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Reference per-entry spur contributions for Figure 9.

    Ground and back-gate follow the Figure-8 line (back-gate 20 dB lower);
    the inductor contribution is flat at roughly the level the ground path
    reaches at the top of the frequency range.
    """
    if noise_frequencies is None:
        noise_frequencies = np.logspace(5, np.log10(15e6), 20)
    frequencies, ground = fig8_spur_reference(noise_frequencies)
    nmos = ground - FIG9_NMOS_BELOW_GROUND_DB
    inductor_level = float(ground[-1]) - 10.0
    inductor = np.full_like(ground, inductor_level)
    return {
        "ground interconnect": (frequencies, ground),
        "NMOS back-gate": (frequencies, nmos),
        "inductor": (frequencies, inductor),
    }


# ---------------------------------------------------------------------------
# Figure 10: ground-interconnect resistance reduction
# ---------------------------------------------------------------------------

#: Impact reduction predicted when the ground wires are widened by 2x.
FIG10_PREDICTED_REDUCTION_DB = 4.5

#: Ideal reduction if the impact were entirely set by the ground resistance.
FIG10_IDEAL_REDUCTION_DB = 6.0


# ---------------------------------------------------------------------------
# Section 6: runtime
# ---------------------------------------------------------------------------

#: Wall-clock minutes reported on the 2005 HP-UX server (extraction + simulation).
RUNTIME_EXTRACTION_MINUTES = 20.0
RUNTIME_SIMULATION_MINUTES = 15.0


@dataclass(frozen=True)
class PaperSummary:
    """Convenience bundle of the headline reference numbers."""

    nmos_transfer_low_bias_db: float = NMOS_TRANSFER_DB_AT_LOW_BIAS
    nmos_transfer_high_bias_db: float = NMOS_TRANSFER_DB_AT_HIGH_BIAS
    nmos_substrate_division: float = NMOS_SUBSTRATE_DIVISION
    vco_frequency_hz: float = VCO_OSCILLATION_FREQUENCY_HZ
    injected_power_dbm: float = INJECTED_POWER_DBM
    fig8_slope_db_per_decade: float = FIG8_SLOPE_DB_PER_DECADE
    fig9_nmos_below_ground_db: float = FIG9_NMOS_BELOW_GROUND_DB
    fig10_reduction_db: float = FIG10_PREDICTED_REDUCTION_DB
    max_error_vco_db: float = VCO_MAX_ERROR_DB
    max_error_nmos_db: float = NMOS_MAX_ERROR_DB
