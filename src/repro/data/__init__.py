"""Reference data reconstructed from the paper's quoted numbers and figures."""

from . import measurements

__all__ = ["measurements"]
