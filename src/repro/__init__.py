"""repro — substrate-noise impact simulation for analog/RF circuits.

A from-scratch reproduction of the methodology of

    C. Soens, G. Van der Plas, P. Wambacq, S. Donnay,
    "Simulation Methodology for Analysis of Substrate Noise Impact on
    Analog / RF Circuits Including Interconnect Resistance", DATE 2005.

The package provides every stage of the paper's Figure-2 flow:

* :mod:`repro.technology` — synthetic 0.18 um 1P6M high-ohmic CMOS process,
* :mod:`repro.layout` — layout model plus the paper's two test-chip layouts,
* :mod:`repro.substrate` — box-integration substrate extraction and reduction,
* :mod:`repro.interconnect` — wire resistance / capacitance extraction,
* :mod:`repro.extraction` — circuit extraction and model merging,
* :mod:`repro.package` — bondwire / RF-probe models,
* :mod:`repro.simulator` — sparse-MNA DC / AC / transfer / transient engine,
* :mod:`repro.devices`, :mod:`repro.vco` — device and LC-tank VCO models,
* :mod:`repro.core` — the assembled methodology and the per-figure experiments,
* :mod:`repro.studies` — the design-study sweep engine (declarative spur
  campaigns, extraction cache, serial / process-pool execution backends),
* :mod:`repro.analysis`, :mod:`repro.data` — spectrum/comparison utilities and
  the reference values reconstructed from the paper.

Quickstart::

    from repro.technology import make_technology
    from repro.core import run_nmos_experiment

    technology = make_technology()
    result = run_nmos_experiment(technology)
    print(result.comparison.max_abs_error_db)
"""

from . import (
    analysis,
    core,
    data,
    devices,
    extraction,
    interconnect,
    layout,
    netlist,
    package,
    simulator,
    studies,
    substrate,
    technology,
    units,
    vco,
)
from .errors import (
    AnalysisError,
    ConvergenceError,
    ExtractionError,
    LayoutError,
    NetlistError,
    ReproError,
    SimulationError,
    TechnologyError,
)

__version__ = "0.1.0"

__all__ = [
    "AnalysisError",
    "ConvergenceError",
    "ExtractionError",
    "LayoutError",
    "NetlistError",
    "ReproError",
    "SimulationError",
    "TechnologyError",
    "__version__",
    "analysis",
    "core",
    "data",
    "devices",
    "extraction",
    "interconnect",
    "layout",
    "netlist",
    "package",
    "simulator",
    "studies",
    "substrate",
    "technology",
    "units",
    "vco",
]
