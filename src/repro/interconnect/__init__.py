"""Interconnect parasitic extraction: wire resistance and substrate capacitance."""

from .rcnetwork import WireRC
from .extraction import (
    InterconnectExtraction,
    PIN_SNAP_TOLERANCE,
    extract_interconnect,
)

__all__ = [
    "InterconnectExtraction",
    "PIN_SNAP_TOLERANCE",
    "WireRC",
    "extract_interconnect",
]
