"""Interconnect parasitic extraction (the DIVA role in the paper's flow).

Every routed wire (a :class:`~repro.layout.geometry.Path` on a metal layer)
is turned into

* a series resistance computed from the wire's square count and the layer's
  sheet resistance, placed between the electrical nodes labelled at the two
  wire ends, and
* a capacitance to the substrate computed from the drawn area and perimeter
  with the technology's parallel-plate and fringe densities.

The paper's central observation — that the on-chip ground wire's few ohms of
series resistance dominate the substrate-noise impact on the VCO — enters the
impact netlist exactly here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExtractionError
from ..layout.cell import Cell
from ..layout.geometry import Path, Point
from ..netlist.circuit import Circuit
from ..technology.process import ProcessTechnology
from .rcnetwork import WireRC

#: Maximum distance between a wire endpoint and a pin for them to be
#: considered electrically attached (metres).
PIN_SNAP_TOLERANCE = 1.0e-6


@dataclass
class InterconnectExtraction:
    """Result of the interconnect extraction: one :class:`WireRC` per wire."""

    cell_name: str
    wires: list[WireRC] = field(default_factory=list)

    def wires_between(self, node_a: str, node_b: str) -> list[WireRC]:
        wanted = {node_a, node_b}
        return [w for w in self.wires if {w.node_a, w.node_b} == wanted]

    def resistance_between(self, node_a: str, node_b: str) -> float:
        """Parallel combination of all extracted wires joining two nodes."""
        wires = self.wires_between(node_a, node_b)
        if not wires:
            raise ExtractionError(
                f"no extracted wire between {node_a!r} and {node_b!r}")
        conductance = sum(1.0 / w.resistance for w in wires if w.resistance > 0)
        if conductance == 0:
            return 0.0
        return 1.0 / conductance

    def total_capacitance_of(self, node: str) -> float:
        """Total wire-to-substrate capacitance attached to a node."""
        total = 0.0
        for wire in self.wires:
            if wire.node_a == node and wire.node_b == node:
                total += wire.capacitance
            elif node in (wire.node_a, wire.node_b):
                total += wire.capacitance / 2.0
        return total

    def nodes(self) -> list[str]:
        names: set[str] = set()
        for wire in self.wires:
            names.add(wire.node_a)
            names.add(wire.node_b)
        return sorted(names)

    def to_circuit(self, substrate_node: str | None = None,
                   name: str = "interconnect") -> Circuit:
        """Build the parasitic circuit: series resistors plus substrate caps."""
        circuit = Circuit(name=name)
        for wire in self.wires:
            wire.add_pi_model(circuit, substrate_node)
        return circuit

    def scaled(self, node_a: str, node_b: str, factor: float) -> "InterconnectExtraction":
        """Copy of the extraction with the resistance between two nodes scaled.

        Used by the Figure-10 style what-if analysis ("halve the ground
        interconnect resistance") without redrawing the layout.
        """
        if factor <= 0:
            raise ExtractionError("scale factor must be positive")
        wanted = {node_a, node_b}
        scaled_wires = []
        for wire in self.wires:
            if {wire.node_a, wire.node_b} == wanted:
                wire = WireRC(name=wire.name, node_a=wire.node_a,
                              node_b=wire.node_b,
                              resistance=wire.resistance * factor,
                              capacitance=wire.capacitance,
                              layer=wire.layer, length=wire.length,
                              width=wire.width)
            scaled_wires.append(wire)
        return InterconnectExtraction(cell_name=self.cell_name, wires=scaled_wires)


def _node_at(cell: Cell, point: Point, layer: str) -> str | None:
    """Find the node name of the pin closest to ``point`` (same layer preferred)."""
    best_name: str | None = None
    best_distance = PIN_SNAP_TOLERANCE
    # Prefer pins on the same layer, then any layer.
    for same_layer_only in (True, False):
        for pin in cell.pins:
            if same_layer_only and pin.layer != layer:
                continue
            distance = pin.position.distance_to(point)
            if distance <= best_distance:
                best_distance = distance
                best_name = pin.name
        if best_name is not None:
            return best_name
    return None


def extract_interconnect(cell: Cell, technology: ProcessTechnology
                         ) -> InterconnectExtraction:
    """Extract the RC parasitics of every routed wire in ``cell``."""
    extraction = InterconnectExtraction(cell_name=cell.name)
    # Paths that belong to an annotated inductor are part of the device model
    # (series L/R and substrate capacitance carried by the annotation) and must
    # not be double counted as plain interconnect.
    inductor_footprints = [d.footprint for d in cell.devices
                           if d.device_type == "inductor"]
    counter = 0
    for layer_name, shape in cell.iter_shapes():
        if not isinstance(shape, Path):
            continue
        if layer_name not in technology.layer_stack:
            continue
        layer = technology.layer_stack[layer_name]
        if not layer.is_metal or layer.sheet_resistance is None:
            continue
        bbox = shape.bbox()
        if any(footprint.overlap_area(bbox) > 0.5 * bbox.area
               for footprint in inductor_footprints):
            continue
        start, end = shape.points[0], shape.points[-1]
        node_a = _node_at(cell, start, layer_name)
        node_b = _node_at(cell, end, layer_name)
        if node_a is None or node_b is None:
            raise ExtractionError(
                f"wire on layer {layer_name} in cell {cell.name!r} has an "
                "endpoint without a pin label; cannot determine its nodes")
        resistance = layer.sheet_resistance * shape.squares()
        area_cap = technology.area_capacitance_to_substrate(layer_name)
        fringe_cap = technology.fringe_capacitance_to_substrate(layer_name)
        capacitance = (shape.area() * area_cap
                       + 2.0 * shape.length * fringe_cap)
        counter += 1
        extraction.wires.append(WireRC(
            name=f"{cell.name}_w{counter}_{layer_name}_{node_a}_{node_b}",
            node_a=node_a, node_b=node_b,
            resistance=resistance, capacitance=capacitance,
            layer=layer_name, length=shape.length, width=shape.width))
    if not extraction.wires:
        raise ExtractionError(f"cell {cell.name!r} contains no routed wires")
    return extraction
