"""Distributed RC representation of an extracted wire.

A routed wire with series resistance ``R`` and capacitance to the substrate
``C`` can be represented at different levels of detail:

* a single series resistor with the capacitance split over the two ends
  (lumped pi model) — sufficient below tens of MHz, where the paper operates,
* an ``n``-segment RC ladder — used by the tests to verify that the lumped
  model is a good approximation in the frequency range of interest.

The ladder generation is deliberately independent of the layout so it can be
property-tested on its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExtractionError
from ..netlist.circuit import Circuit


@dataclass(frozen=True)
class WireRC:
    """Total series resistance and shunt capacitance of one routed wire."""

    name: str
    node_a: str
    node_b: str
    resistance: float
    capacitance: float
    layer: str = ""
    length: float = 0.0
    width: float = 0.0

    def __post_init__(self) -> None:
        if self.resistance < 0 or self.capacitance < 0:
            raise ExtractionError(f"wire {self.name}: negative R or C")

    @property
    def rc_time_constant(self) -> float:
        """Elmore-style RC product of the wire (seconds)."""
        return self.resistance * self.capacitance

    def add_pi_model(self, circuit: Circuit, substrate_node: str | None,
                     min_resistance: float = 1e-3) -> None:
        """Add the lumped pi model of this wire to ``circuit``.

        The series resistance connects ``node_a`` to ``node_b`` (skipped when
        both ends are the same electrical node); the capacitance is split in
        half over the two ends towards ``substrate_node`` (skipped when the
        substrate reference is not provided).
        """
        if self.node_a != self.node_b and self.resistance > 0:
            circuit.add_resistor(f"Rw_{self.name}", self.node_a, self.node_b,
                                 max(self.resistance, min_resistance))
        if substrate_node is not None and self.capacitance > 0:
            half = self.capacitance / 2.0
            circuit.add_capacitor(f"Cw_{self.name}_a", self.node_a,
                                  substrate_node, half)
            if self.node_a != self.node_b:
                circuit.add_capacitor(f"Cw_{self.name}_b", self.node_b,
                                      substrate_node, half)
            else:
                # Both ends are the same node: lump the full capacitance once.
                circuit.elements[f"Cw_{self.name}_a"].capacitance = self.capacitance

    def add_ladder_model(self, circuit: Circuit, substrate_node: str,
                         segments: int = 5) -> list[str]:
        """Add an ``segments``-section RC ladder between the two end nodes.

        Returns the list of internal node names created.  Requires distinct
        end nodes and at least one segment.
        """
        if segments < 1:
            raise ExtractionError("ladder needs at least one segment")
        if self.node_a == self.node_b:
            raise ExtractionError("ladder model requires distinct end nodes")
        r_seg = self.resistance / segments
        c_seg = self.capacitance / segments
        internal: list[str] = []
        previous = self.node_a
        # End capacitances: half a segment's worth at each extremity.
        circuit.add_capacitor(f"Cl_{self.name}_end_a", self.node_a,
                              substrate_node, c_seg / 2.0)
        for index in range(1, segments + 1):
            node = self.node_b if index == segments else f"{self.name}__seg{index}"
            if index != segments:
                internal.append(node)
            circuit.add_resistor(f"Rl_{self.name}_{index}", previous, node,
                                 max(r_seg, 1e-6))
            cap_value = c_seg / 2.0 if index == segments else c_seg
            circuit.add_capacitor(f"Cl_{self.name}_{index}", node,
                                  substrate_node, cap_value)
            previous = node
        return internal
