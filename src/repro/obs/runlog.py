"""Structured JSONL run logs, fingerprint-stamped like the journal.

One run log per campaign run, written next to the result sidecar as
``<result stem>.runlog.jsonl``.  The first line is a ``campaign_start``
header carrying the format version and the campaign's content fingerprint
(the same :func:`repro.studies.cache.fingerprint` value the journal and
the ``.meta.json`` sidecar are stamped with), so a log can always be
matched to the campaign definition that produced it.

Each subsequent line is one event — corner start / finish / retry /
timeout / degradation / failure, span dumps, and a ``campaign_finish``
trailer.  Every line is a single ``write()`` of one ``\\n``-terminated
JSON object on an append-mode descriptor, so concurrent readers (``tail
-f``, the ``trace export`` subcommand on a live run) never see a torn
line.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "RUNLOG_FORMAT_VERSION",
    "RUNLOG_KIND",
    "EVENT_KINDS",
    "RunLogWriter",
    "runlog_path_for",
    "read_run_log",
    "validate_run_log",
]

RUNLOG_FORMAT_VERSION = 1
RUNLOG_KIND = "repro-campaign-runlog"

EVENT_KINDS = (
    "campaign_start",
    "corner_start",
    "corner_finish",
    "corner_retry",
    "corner_timeout",
    "corner_degradation",
    "corner_failure",
    "span",
    "campaign_finish",
)


def runlog_path_for(result_path: str | os.PathLike) -> Path:
    """Run-log path next to a result file: ``fig8_result.runlog.jsonl``."""
    result_path = Path(result_path)
    stem = result_path.name
    if stem.endswith(".npz"):
        stem = stem[: -len(".npz")]
    return result_path.parent / f"{stem}.runlog.jsonl"


class RunLogWriter:
    """Append-only JSONL event stream for one campaign run."""

    def __init__(self, path: str | os.PathLike, *, campaign: str = "",
                 fingerprint: str = "", **header):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A new run supersedes any previous log for the same result path.
        self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC
                           | os.O_APPEND, 0o644)
        self._seq = 0
        self.emit("campaign_start", kind=RUNLOG_KIND,
                  format=RUNLOG_FORMAT_VERSION, campaign=campaign,
                  fingerprint=fingerprint, **header)

    def emit(self, event: str, **payload) -> None:
        if event not in EVENT_KINDS:
            raise ValueError(f"unknown run-log event {event!r}")
        if self._fd is None:
            return
        record = {"event": event, "seq": self._seq, "t": time.time()}
        record.update(payload)
        self._seq += 1
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        os.write(self._fd, (line + "\n").encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def read_run_log(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL run log back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(record)
    return events


def validate_run_log(events: list[dict], *,
                     expected_corners: int | None = None) -> list[str]:
    """Schema-check a parsed run log; returns a list of problems ([] = OK)."""
    problems: list[str] = []
    if not events:
        return ["run log is empty"]
    header = events[0]
    if header.get("event") != "campaign_start":
        problems.append("first event is not campaign_start")
    else:
        if header.get("kind") != RUNLOG_KIND:
            problems.append(f"header kind is {header.get('kind')!r}")
        if header.get("format") != RUNLOG_FORMAT_VERSION:
            problems.append(f"unsupported format {header.get('format')!r}")
        if not header.get("fingerprint"):
            problems.append("header has no campaign fingerprint")
    last_seq = -1
    for index, event in enumerate(events):
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            problems.append(f"event {index}: unknown kind {kind!r}")
        for field in ("seq", "t"):
            if field not in event:
                problems.append(f"event {index}: missing {field!r}")
        seq = event.get("seq", -1)
        if isinstance(seq, int):
            if seq <= last_seq:
                problems.append(f"event {index}: seq not increasing")
            last_seq = seq
        if kind in ("corner_start", "corner_finish", "corner_retry",
                    "corner_timeout", "corner_failure") \
                and "corner" not in event:
            problems.append(f"event {index}: {kind} without corner payload")
    finishes = [e for e in events if e.get("event") == "corner_finish"]
    if expected_corners is not None and len(finishes) != expected_corners:
        problems.append(
            f"expected {expected_corners} corner_finish events, "
            f"found {len(finishes)}")
    if events[-1].get("event") != "campaign_finish":
        problems.append("last event is not campaign_finish")
    return problems
