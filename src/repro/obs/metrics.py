"""One metrics registry unifying the repo's ad-hoc stat records.

Counters, gauges and histograms, each addressed by a name plus optional
labels::

    registry = MetricsRegistry()
    registry.counter("solver.factorizations", backend="reuse-lu").add(3)
    registry.histogram("campaign.corner_seconds").observe(0.42)
    registry.snapshot()

``snapshot()`` returns one plain-dict schema::

    {"counters":   {"solver.factorizations{backend=reuse-lu}": 3},
     "gauges":     {...},
     "histograms": {"campaign.corner_seconds":
                        {"count": 1, "sum": 0.42, "min": 0.42, "max": 0.42}}}

The legacy record types (``SolverStats``, ``CacheStats``,
``DiskCacheStats``, the backend retry counters and the degradation
ladder counts) stay as-is for backward compatibility; the ``absorb_*``
adapters translate them into registry counters so every layer reports
through the same schema.
"""

from __future__ import annotations

import threading
from typing import Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
]


def _key(name: str, labels: Mapping[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def inc(self) -> None:
        self.add(1)


class Gauge:
    """A value that can go up or down."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Streaming summary (count/sum/min/max) — enough for run reports."""

    __slots__ = ("count", "sum", "min", "max", "_lock")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> dict:
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "mean": (self.sum / self.count) if self.count else None}


class MetricsRegistry:
    """Registry of named metrics with labels."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def _get(self, table, factory, name, labels):
        key = _key(name, labels)
        with self._lock:
            metric = table.get(key)
            if metric is None:
                metric = table[key] = factory()
            return metric

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """The one schema every stat source reports through."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(
                    self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(
                    self._gauges.items())},
                "histograms": {k: h.as_dict() for k, h in sorted(
                    self._histograms.items())},
            }

    # -- adapters for the legacy stat records ---------------------------------

    def absorb_solver_stats(self, stats, **labels) -> None:
        """Fold a :class:`repro.simulator.solver.SolverStats` in as counters."""
        for name in stats._COUNTERS:
            value = getattr(stats, name)
            if value:
                self.counter(f"solver.{name}", **labels).add(value)

    def absorb_cache_stats(self, stats, **labels) -> None:
        """Fold ``CacheStats`` (or its disk subclass) in as counters."""
        for name in ("hits", "misses", "evictions", "corrupted",
                     "quarantined", "leases_claimed", "leases_stolen",
                     "lease_waits", "publishes", "publishes_rejected"):
            value = getattr(stats, name, 0)
            if value:
                self.counter(f"cache.{name}", **labels).add(value)

    def absorb_degradations(self, degradations: Mapping[str, int]) -> None:
        """Fold the solver degradation-ladder counts in as counters."""
        for kind, count in (degradations or {}).items():
            if count:
                self.counter("solver.degradations", kind=kind).add(count)

    def absorb_backend(self, backend) -> None:
        """Fold the backends' retry bookkeeping in as counters."""
        attempts = getattr(backend, "task_attempts", None)
        if attempts:
            values = (list(attempts.values()) if isinstance(attempts, dict)
                      else list(attempts))
            self.counter("campaign.task_attempts").add(sum(values))
            retries = sum(n - 1 for n in values if n > 1)
            if retries:
                self.counter("campaign.retries").add(retries)
        rebuilds = getattr(backend, "pool_rebuilds", 0)
        if rebuilds:
            self.counter("campaign.pool_rebuilds").add(rebuilds)
        trips = getattr(backend, "heartbeat_trips", 0)
        if trips:
            self.counter("campaign.heartbeat_trips").add(trips)


registry = MetricsRegistry()
