"""Tree-wide ``logging`` setup under the ``repro.`` namespace.

Every module gets its logger with::

    from ..obs import get_logger
    logger = get_logger(__name__)

which lands under the ``repro`` root logger, so one
:func:`configure_logging` call (wired to ``repro-campaign -v/-q``)
controls the whole tree.  Libraries embedding repro can instead attach
their own handlers to the ``repro`` logger; ``configure_logging`` is
idempotent and never duplicates handlers.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """Module logger under the ``repro`` namespace.

    Accepts ``__name__`` (already ``repro.x.y`` inside the package), a bare
    suffix like ``"studies.store"`` or ``None`` for the root logger.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count to a logging level.

    -1 and below (``-q``) → ERROR, 0 → WARNING, 1 (``-v``) → INFO,
    2 and above (``-vv``) → DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0, *, stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger and set the level.

    Repeated calls adjust the level (and stream) instead of stacking
    handlers, so tests and long-lived sessions can reconfigure freely.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(verbosity_to_level(verbosity))
    handler = None
    for existing in root.handlers:
        if getattr(existing, _HANDLER_FLAG, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_FLAG, True)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    # The handler stays wide open; the logger level does the filtering.
    handler.setLevel(logging.NOTSET)
    return root
