"""Campaign-level observers: run-log recording and live progress.

The sweep runner accepts one :class:`CampaignObserver` and invokes its
hooks from the parent process as the campaign advances (corner starts and
retries come from the backend's ``on_start`` callback, finishes from
``on_result``).  :class:`CompositeObserver` fans the hooks out, so the CLI
can record a run log *and* render a progress line in one pass.

Observers are duck-typed against the runner's task/outcome/failure
objects; this module deliberately does not import :mod:`repro.studies`
(the studies package imports us).
"""

from __future__ import annotations

import sys
import time

from .runlog import RunLogWriter
from .trace import tracer

__all__ = [
    "CampaignObserver",
    "CompositeObserver",
    "RunLogRecorder",
    "ProgressReporter",
]


class CampaignObserver:
    """Base observer: every hook is a no-op.  Subclass what you need."""

    def campaign_started(self, *, campaign_name: str, fingerprint: str,
                         total_corners: int, pending_corners: int,
                         prior_corners: int = 0) -> None:
        pass

    def corner_started(self, task, attempt: int) -> None:
        pass

    def corner_finished(self, task, outcome) -> None:
        pass

    def corner_failed(self, failure) -> None:
        pass

    def campaign_finished(self, result) -> None:
        pass

    def close(self) -> None:
        pass


class CompositeObserver(CampaignObserver):
    """Fan every hook out to several observers, in order."""

    def __init__(self, *observers: CampaignObserver):
        self.observers = [obs for obs in observers if obs is not None]

    def campaign_started(self, **kwargs) -> None:
        for obs in self.observers:
            obs.campaign_started(**kwargs)

    def corner_started(self, task, attempt: int) -> None:
        for obs in self.observers:
            obs.corner_started(task, attempt)

    def corner_finished(self, task, outcome) -> None:
        for obs in self.observers:
            obs.corner_finished(task, outcome)

    def corner_failed(self, failure) -> None:
        for obs in self.observers:
            obs.corner_failed(failure)

    def campaign_finished(self, result) -> None:
        for obs in self.observers:
            obs.campaign_finished(result)

    def close(self) -> None:
        for obs in self.observers:
            obs.close()


def _task_corner(task) -> dict:
    return {
        "index": task.index,
        "variant": task.variant_index,
        "power_dbm": task.injected_power_dbm,
        "vtune": task.vtune,
        "label": task.corner_label(),
    }


def _failure_corner(failure) -> dict:
    return {
        "index": None,
        "variant": getattr(failure, "variant_index", -1),
        "power_dbm": getattr(failure, "injected_power_dbm", float("nan")),
        "vtune": getattr(failure, "vtune", float("nan")),
        "label": getattr(failure, "corner_label", ""),
    }


class RunLogRecorder(CampaignObserver):
    """Writes the structured JSONL run log for one campaign run.

    One event per corner start / finish / retry / timeout / degradation /
    failure, a fingerprint-stamped ``campaign_start`` header, the recorded
    spans (when tracing is enabled) and a ``campaign_finish`` summary
    trailer — everything ``repro-campaign trace export`` needs.
    """

    def __init__(self, path):
        self.path = path
        self._writer: RunLogWriter | None = None

    def campaign_started(self, *, campaign_name: str, fingerprint: str,
                         total_corners: int, pending_corners: int,
                         prior_corners: int = 0) -> None:
        # The writer's first line is the campaign_start header event; the
        # corner counts ride on it so readers know the expected shape.
        self._writer = RunLogWriter(self.path, campaign=campaign_name,
                                    fingerprint=fingerprint,
                                    total_corners=total_corners,
                                    pending_corners=pending_corners,
                                    prior_corners=prior_corners)

    def _ensure(self) -> RunLogWriter:
        if self._writer is None:
            raise RuntimeError("run log used before campaign_started")
        return self._writer

    def corner_started(self, task, attempt: int) -> None:
        writer = self._ensure()
        event = "corner_start" if attempt <= 1 else "corner_retry"
        writer.emit(event, corner=_task_corner(task), attempt=attempt)

    def corner_finished(self, task, outcome) -> None:
        writer = self._ensure()
        corner = _task_corner(task)
        writer.emit("corner_finish", corner=corner,
                    records=len(outcome.records),
                    seconds=getattr(outcome, "seconds", None))
        degradations = dict(getattr(outcome, "degradations", ()) or ())
        if degradations:
            writer.emit("corner_degradation", corner=corner,
                        degradations=degradations)

    def corner_failed(self, failure) -> None:
        writer = self._ensure()
        corner = _failure_corner(failure)
        if getattr(failure, "timed_out", False):
            writer.emit("corner_timeout", corner=corner,
                        attempts=getattr(failure, "attempts", None))
        writer.emit("corner_failure", corner=corner,
                    error_type=getattr(failure, "error_type", ""),
                    message=getattr(failure, "message", ""),
                    attempts=getattr(failure, "attempts", None),
                    timed_out=getattr(failure, "timed_out", False))

    def campaign_finished(self, result) -> None:
        writer = self._ensure()
        if tracer.enabled:
            for span in tracer.spans():
                writer.emit("span", span=span.as_dict())
        writer.emit(
            "campaign_finish",
            corners=len({(r.variant_index, r.injected_power_dbm, r.vtune)
                         for r in result.records}),
            points=len(result.records),
            failures=len(result.failures),
            wall_seconds=result.wall_seconds,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses)
        self.close()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


class ProgressReporter(CampaignObserver):
    """Live single-line campaign progress (corners, rate, hit-rate, ETA)."""

    def __init__(self, stream=None, *, cache=None, min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.cache = cache
        self.min_interval = min_interval
        self._total = 0
        self._done = 0
        self._failed = 0
        self._t0 = 0.0
        self._last_render = 0.0
        self._width = 0

    def campaign_started(self, *, campaign_name: str, fingerprint: str,
                         total_corners: int, pending_corners: int,
                         prior_corners: int = 0) -> None:
        self._total = pending_corners
        self._done = 0
        self._failed = 0
        self._t0 = time.monotonic()
        self._last_render = 0.0
        self._render(force=True)

    def corner_finished(self, task, outcome) -> None:
        self._done += 1
        self._render()

    def corner_failed(self, failure) -> None:
        self._failed += 1
        self._render()

    def campaign_finished(self, result) -> None:
        self._render(force=True)
        if self._total:
            self.stream.write("\n")
            self.stream.flush()

    def _render(self, force: bool = False) -> None:
        if not self._total:
            return
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        elapsed = max(now - self._t0, 1e-9)
        settled = self._done + self._failed
        rate = settled / elapsed
        parts = [f"corners {settled}/{self._total}"]
        if self._failed:
            parts.append(f"{self._failed} failed")
        parts.append(f"{rate:.2f}/s")
        if self.cache is not None:
            stats = getattr(self.cache, "stats", None)
            requests = getattr(stats, "requests", 0) if stats else 0
            if requests:
                parts.append(f"cache {100.0 * stats.hits / requests:.0f}%")
        if 0 < settled < self._total and rate > 0:
            eta = (self._total - settled) / rate
            parts.append(f"ETA {_format_eta(eta)}")
        line = " · ".join(parts)
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()


def _format_eta(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
