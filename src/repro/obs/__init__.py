"""Unified observability layer: tracing, metrics, run logs and progress.

Four pieces, one import point:

* :mod:`repro.obs.trace` — hierarchical span tracer (:func:`trace_span`),
  ~ns no-op while disabled, spans cross process boundaries via a
  picklable :class:`TraceContext`.
* :mod:`repro.obs.metrics` — one :class:`MetricsRegistry`
  (counters/gauges/histograms with labels) absorbing the legacy
  ``SolverStats``/``CacheStats``/retry/degradation records behind a
  single ``snapshot()`` schema.
* :mod:`repro.obs.runlog` — fingerprint-stamped JSONL run logs plus the
  Chrome trace-event (Perfetto) exporter in :mod:`repro.obs.export`.
* :mod:`repro.obs.campaign` — runner observers: structured run-log
  recording and the live progress line.

:func:`configure_logging` / :func:`get_logger` put the whole tree's
diagnostics under the ``repro.`` logger namespace.
"""

from .campaign import (
    CampaignObserver,
    CompositeObserver,
    ProgressReporter,
    RunLogRecorder,
)
from .export import (
    export_chrome_trace,
    runlog_to_chrome_trace,
    spans_to_trace_events,
    validate_trace_events,
)
from .logs import ROOT_LOGGER_NAME, configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, registry
from .runlog import (
    EVENT_KINDS,
    RUNLOG_FORMAT_VERSION,
    RunLogWriter,
    read_run_log,
    runlog_path_for,
    validate_run_log,
)
from .trace import (
    SpanRecord,
    TraceContext,
    Tracer,
    collect_spans,
    current_context,
    span_aggregates,
    trace_span,
    tracer,
)

__all__ = [
    "CampaignObserver",
    "CompositeObserver",
    "ProgressReporter",
    "RunLogRecorder",
    "export_chrome_trace",
    "runlog_to_chrome_trace",
    "spans_to_trace_events",
    "validate_trace_events",
    "ROOT_LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "EVENT_KINDS",
    "RUNLOG_FORMAT_VERSION",
    "RunLogWriter",
    "read_run_log",
    "runlog_path_for",
    "validate_run_log",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "collect_spans",
    "current_context",
    "span_aggregates",
    "trace_span",
    "tracer",
]
