"""Hierarchical span tracing with near-zero overhead when disabled.

The tracer is a process-global object holding a flat list of finished
:class:`SpanRecord`\\ s plus one *stack* of open spans per thread.  Code is
instrumented with :func:`trace_span`::

    with trace_span("extract.substrate", cell="vco_testchip"):
        ...

When tracing is disabled (the default), ``trace_span`` returns a shared
no-op context manager without allocating anything — the cost is one
attribute check per call, so hot paths (every ``LinearSolver.solve``) can
stay instrumented unconditionally.

Spans cross process boundaries by value: the parent process captures a
picklable :class:`TraceContext` (trace id + parent span id) into each
``SweepTask``; the worker wraps execution in :func:`collect_spans`, which
records spans parented under the context and hands them back as a tuple
that travels home inside the ``TaskOutcome``.  The parent then calls
:func:`~Tracer.adopt` so worker corners re-parent under the campaign root
span.  Span ids embed the producing pid, so ids never collide when spans
from several workers merge into one timeline.

Wall-clock alignment uses ``time.time()`` for span start (comparable
across processes) and ``time.perf_counter()`` for duration (monotonic).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "tracer",
    "trace_span",
    "collect_spans",
    "current_context",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.  Frozen and picklable (travels in TaskOutcome)."""

    span_id: str
    parent_id: str | None
    name: str
    start: float          # epoch seconds (time.time) — cross-process comparable
    duration: float       # seconds (perf_counter delta) — monotonic
    pid: int
    thread: str
    attrs: tuple[tuple[str, object], ...] = ()

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(span_id=data["span_id"], parent_id=data.get("parent_id"),
                   name=data["name"], start=float(data["start"]),
                   duration=float(data["duration"]), pid=int(data["pid"]),
                   thread=str(data.get("thread", "main")),
                   attrs=tuple(sorted(dict(data.get("attrs", {})).items())))


@dataclass(frozen=True)
class TraceContext:
    """Picklable handle that re-parents spans recorded in another process.

    ``fingerprint()`` of campaign objects must not depend on whether tracing
    happened to be enabled, and the context is per-run anyway, so the field
    is excluded from content-addressed hashing wherever it is embedded.
    """

    trace_id: str
    parent_id: str | None = None


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_t0_perf", "_t0_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else tracer._base_parent()
        self.span_id = tracer._new_id()
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._t0_perf
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:          # tolerate mismatched exits
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._record(SpanRecord(
            span_id=self.span_id, parent_id=self.parent_id, name=self.name,
            start=self._t0_wall, duration=duration, pid=os.getpid(),
            thread=threading.current_thread().name,
            attrs=tuple(sorted(self.attrs.items()))))
        return False

    def set(self, **attrs) -> None:
        """Attach attributes to an open span."""
        self.attrs.update(attrs)


class Tracer:
    """Process-global span collector.  Disabled by default."""

    def __init__(self):
        self.enabled = False
        self.trace_id: str | None = None
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._local = threading.local()
        self._counter = itertools.count(1)

    # -- lifecycle -------------------------------------------------------

    def enable(self, trace_id: str | None = None) -> None:
        if trace_id is None:
            trace_id = f"trace-{os.getpid():x}-{int(time.time() * 1e3):x}"
        self.trace_id = trace_id
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()

    def spans(self) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._spans)

    def mark(self) -> int:
        """Bookmark in the span list, for :meth:`spans_since`."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int) -> tuple[SpanRecord, ...]:
        """Spans recorded (or adopted) after a :meth:`mark` bookmark."""
        with self._lock:
            return tuple(self._spans[mark:])

    # -- span plumbing ---------------------------------------------------

    def _stack(self) -> list:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def _base_parent(self) -> str | None:
        return getattr(self._local, "base_parent", None)

    def _set_base_parent(self, parent_id: str | None):
        previous = getattr(self._local, "base_parent", None)
        self._local.base_parent = parent_id
        return previous

    def _new_id(self) -> str:
        return f"{os.getpid():x}-{next(self._counter):x}"

    def _record(self, span: SpanRecord) -> None:
        with self._lock:
            self._spans.append(span)

    # -- cross-process support -------------------------------------------

    def current_context(self) -> TraceContext | None:
        """Context parenting remote spans under the innermost open span."""
        if not self.enabled or self.trace_id is None:
            return None
        stack = self._stack()
        parent = stack[-1].span_id if stack else self._base_parent()
        return TraceContext(trace_id=self.trace_id, parent_id=parent)

    def adopt(self, spans) -> None:
        """Merge spans recorded elsewhere (worker process or collect block)."""
        if not spans:
            return
        with self._lock:
            self._spans.extend(spans)


tracer = Tracer()


def trace_span(name: str, **attrs):
    """Open a span named ``name``; a shared no-op when tracing is disabled."""
    if not tracer.enabled:
        return _NULL_SPAN
    return _LiveSpan(tracer, name, attrs)


def current_context() -> TraceContext | None:
    return tracer.current_context()


@contextmanager
def collect_spans(context: TraceContext | None):
    """Record spans under ``context`` and yield the list that receives them.

    In a worker process (tracer disabled) this temporarily enables tracing
    for the duration of the block; in-process (serial backend) it carves the
    block's spans out of the live tracer so the caller can hand them through
    the same ``TaskOutcome.spans`` channel without double counting — the
    parent re-adopts them when the outcome is merged.
    """
    sink: list[SpanRecord] = []
    if context is None:
        yield sink
        return
    was_enabled = tracer.enabled
    if not was_enabled:
        tracer.enable(context.trace_id)
        tracer.reset()
    with tracer._lock:
        mark = len(tracer._spans)
    previous_base = tracer._set_base_parent(context.parent_id)
    try:
        yield sink
    finally:
        tracer._set_base_parent(previous_base)
        with tracer._lock:
            sink.extend(tracer._spans[mark:])
            del tracer._spans[mark:]
        if not was_enabled:
            tracer.disable()


def span_aggregates(spans) -> dict[str, dict[str, float]]:
    """Group spans by name: {name: {count, total_seconds, max_seconds}}."""
    table: dict[str, dict[str, float]] = {}
    for span in spans:
        row = table.setdefault(span.name,
                               {"count": 0, "total_seconds": 0.0,
                                "max_seconds": 0.0})
        row["count"] += 1
        row["total_seconds"] += span.duration
        row["max_seconds"] = max(row["max_seconds"], span.duration)
    for row in table.values():
        row["total_seconds"] = float(row["total_seconds"])
        row["max_seconds"] = float(row["max_seconds"])
    return table
