"""Chrome trace-event (Perfetto) export of recorded spans and run logs.

The emitted file follows the Trace Event Format's "JSON object" flavour::

    {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
                      "pid": ..., "tid": ..., "cat": ..., "args": {...}}],
     "displayTimeUnit": "ms",
     "otherData": {...}}

and loads directly in https://ui.perfetto.dev or ``chrome://tracing``.
Complete spans use phase ``"X"`` with microsecond ``ts``/``dur`` relative
to the earliest span, so multi-process campaign timelines line up on one
time axis with each worker pid in its own track.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .runlog import read_run_log
from .trace import SpanRecord

__all__ = [
    "spans_to_trace_events",
    "export_chrome_trace",
    "runlog_to_chrome_trace",
    "validate_trace_events",
]


def _tid_table(spans) -> dict[tuple[int, str], int]:
    """Stable numeric tid per (pid, thread-name) pair."""
    table: dict[tuple[int, str], int] = {}
    for span in spans:
        key = (span.pid, span.thread)
        if key not in table:
            table[key] = len([k for k in table if k[0] == span.pid]) + 1
    return table


def spans_to_trace_events(spans, *, origin: float | None = None) -> list[dict]:
    """Convert spans into complete-duration ("X") trace events."""
    spans = sorted(spans, key=lambda s: s.start)
    if origin is None:
        origin = spans[0].start if spans else 0.0
    tids = _tid_table(spans)
    events: list[dict] = []
    named: set[tuple[int, int]] = set()
    for span in spans:
        tid = tids[(span.pid, span.thread)]
        if (span.pid, tid) not in named:
            named.add((span.pid, tid))
            events.append({"name": "thread_name", "ph": "M", "pid": span.pid,
                           "tid": tid, "args": {"name": span.thread}})
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": span.pid,
            "tid": tid,
            "args": args,
        })
    return events


def export_chrome_trace(spans, path: str | os.PathLike, *,
                        metadata: dict | None = None) -> Path:
    """Write spans as a Perfetto-loadable ``.trace.json`` file."""
    from ..studies.store import atomic_write

    path = Path(path)
    payload = {
        "traceEvents": spans_to_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write(path, lambda handle: handle.write(data))
    return path


def runlog_to_chrome_trace(runlog_path: str | os.PathLike,
                           out_path: str | os.PathLike | None = None) -> Path:
    """Convert a JSONL run log into a ``.trace.json`` Chrome trace.

    Uses the ``span`` events the run logger dumps at campaign finish; the
    corner start/finish events are folded into the metadata so a log from a
    run without ``--trace-out`` still exports a (corner-granularity) trace.
    """
    runlog_path = Path(runlog_path)
    if out_path is None:
        stem = runlog_path.name
        if stem.endswith(".runlog.jsonl"):
            stem = stem[: -len(".runlog.jsonl")]
        out_path = runlog_path.parent / f"{stem}.trace.json"
    events = read_run_log(runlog_path)
    spans = [SpanRecord.from_dict(e["span"])
             for e in events if e.get("event") == "span" and "span" in e]
    if not spans:
        # Fall back to corner start/finish pairs as synthetic spans.
        spans = _corner_spans(events)
    header = events[0] if events else {}
    metadata = {
        "campaign": header.get("campaign", ""),
        "fingerprint": header.get("fingerprint", ""),
        "source": str(runlog_path),
    }
    return export_chrome_trace(spans, out_path, metadata=metadata)


def _corner_spans(events: list[dict]) -> list[SpanRecord]:
    spans: list[SpanRecord] = []
    starts: dict[object, dict] = {}
    for event in events:
        corner = event.get("corner")
        if corner is None:
            continue
        index = corner.get("index")
        if event.get("event") == "corner_start":
            starts[index] = event
        elif event.get("event") == "corner_finish" and index in starts:
            begin = starts.pop(index)
            spans.append(SpanRecord(
                span_id=f"corner-{index}", parent_id=None,
                name=f"corner[{corner.get('label', index)}]",
                start=float(begin["t"]),
                duration=max(0.0, float(event["t"]) - float(begin["t"])),
                pid=0, thread="corners",
                attrs=tuple(sorted(corner.items()))))
    return spans


_REQUIRED_X_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")


def validate_trace_events(payload: dict) -> list[str]:
    """Check a trace-JSON payload against the trace-event schema."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["trace payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "B", "E", "M", "I", "C"):
            problems.append(f"event {index}: unsupported phase {phase!r}")
            continue
        if phase == "X":
            for field in _REQUIRED_X_FIELDS:
                if field not in event:
                    problems.append(f"event {index}: missing {field!r}")
            if event.get("dur", 0) < 0 or event.get("ts", 0) < 0:
                problems.append(f"event {index}: negative ts/dur")
    return problems
