"""Process-level frequency fan-out for AC / transfer-function sweeps.

``ac_workers`` historically sharded the frequency points of one sweep over
*threads* — correct, but the pure-python assembly and scipy wrapper layers
pay the GIL.  This module generalizes the same ``spawn()``/``absorb()`` seam
to worker *processes* on the shared pool:

* the parent packs the :class:`~repro.simulator.solver.SharedPatternPair`
  CSC arrays (``g_data``/``c_data``/``indices``/``indptr``), the right-hand
  side and the output block into one :class:`~repro.parallel.shm.SharedArena`
  — workers attach zero-copy instead of unpickling a ~19k-node mesh per task;
* each worker executes one :class:`FrequencyBlockSpec` — the **same**
  ``np.array_split`` chunk and the same per-point operation sequence as the
  thread path (one-shot ``solve`` for AC, ``factorize`` + multi-RHS block
  solve for transfer functions), so results are bit-identical whichever
  executor runs them;
* each block returns ``(rows?, SolverStats, spans)``: the parent absorbs the
  stats through :meth:`~repro.simulator.linalg.LinearSolver.absorb_stats`
  and adopts the spans, exactly like the thread path absorbs its spawned
  workers.

Fault tolerance is *recomputation*, not retry bookkeeping: any block whose
worker raises, hangs up the pipe or dies (``BrokenProcessPool``) is re-run
in the parent with a ``spawn()``-ed solver — the thread path's exact code —
so an injected worker crash can delay a sweep but never change ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs import get_logger
from ..obs.trace import SpanRecord, TraceContext, collect_spans, tracer
from ..simulator.linalg import LinearSolver, SolverOptions, make_solver
from ..simulator.solver import SharedPatternPair, SolverStats
from .pool import shared_pool
from .shm import ArenaHandle, InlineArena, SharedArena, attach_arena

try:
    from concurrent.futures.process import BrokenProcessPool
except ImportError:                                    # pragma: no cover
    BrokenProcessPool = RuntimeError

logger = get_logger(__name__)


@dataclass(frozen=True)
class FrequencyBlockSpec:
    """One worker's share of a frequency sweep (picklable, tiny).

    ``index`` is the block number — it is the attribute
    :meth:`~repro.studies.faults.FaultPlan.inject` matches, so the fault
    plans of the robustness suite can sabotage chosen blocks.  The matrix,
    RHS and output live in the arena; only this address card rides the pipe.
    """

    index: int
    arena: "ArenaHandle | InlineArena"
    frequencies: tuple[float, ...]      #: this block's frequency points
    row_start: int                      #: first row of ``out`` this block owns
    shape: tuple[int, int]              #: assembled matrix shape
    options: SolverOptions
    multi_rhs: bool                     #: transfer path (factorize + block)
    context: TraceContext | None = None


@dataclass(frozen=True)
class FrequencyBlockResult:
    """What a solve shard sends home: rows (inline arenas only) + telemetry."""

    index: int
    rows: np.ndarray | None             #: None when written via shared memory
    stats: SolverStats
    spans: tuple[SpanRecord, ...]


def _solve_rows(spec: FrequencyBlockSpec, pattern: SharedPatternPair,
                solver: LinearSolver, rhs: np.ndarray,
                out_rows: np.ndarray) -> None:
    """The per-point operation sequence, verbatim from the serial sweeps.

    AC: ``solver.solve(matrix, rhs)``.  Transfer: ``factorize`` then one
    multi-RHS block solve.  Identical ops => bit-identical rows; this same
    function is the parent's recomputation path for failed blocks.
    """
    if spec.multi_rhs:
        for offset, frequency in enumerate(spec.frequencies):
            matrix = pattern.assemble(2j * np.pi * frequency)
            out_rows[offset] = solver.factorize(matrix).solve(rhs)
    else:
        for offset, frequency in enumerate(spec.frequencies):
            matrix = pattern.assemble(2j * np.pi * frequency)
            out_rows[offset] = solver.solve(matrix, rhs)


def _solve_block(spec: FrequencyBlockSpec) -> FrequencyBlockResult:
    """Worker entry point: attach, assemble, solve, report.

    With a shared arena the result rows are written straight into the
    parent-visible ``out`` field — nothing but stats and spans travels back.
    The solver is a fresh non-mirroring instance, matching what ``spawn()``
    hands a worker thread.
    """
    views = attach_arena(spec.arena)
    pattern = SharedPatternPair.from_arrays(
        views["g_data"], views["c_data"], views["indices"], views["indptr"],
        spec.shape)
    solver = make_solver(spec.options, mirror_global=False)
    n_rows = len(spec.frequencies)
    shared = not isinstance(spec.arena, InlineArena)
    out_rows = (views["out"][spec.row_start:spec.row_start + n_rows]
                if shared else
                np.zeros((n_rows,) + views["out"].shape[1:], dtype=complex))
    with collect_spans(spec.context) as spans:
        _solve_rows(spec, pattern, solver, views["rhs"], out_rows)
    return FrequencyBlockResult(
        index=spec.index, rows=None if shared else out_rows,
        stats=solver.stats, spans=tuple(spans))


def _recompute_in_parent(spec: FrequencyBlockSpec,
                         pattern: SharedPatternPair, solver: LinearSolver,
                         rhs: np.ndarray, out: np.ndarray) -> None:
    """Re-run a failed block in-process with the thread path's exact ops."""
    worker = solver.spawn()
    private = pattern.with_private_buffer()
    n_rows = len(spec.frequencies)
    _solve_rows(spec, private, worker, rhs,
                out[spec.row_start:spec.row_start + n_rows])
    solver.absorb(worker)


def run_frequency_blocks(pattern: SharedPatternPair,
                         frequencies: "np.ndarray | Sequence[float]",
                         solver: LinearSolver, *, rhs: np.ndarray,
                         out: np.ndarray, multi_rhs: bool = False,
                         fault_plan=None) -> None:
    """Shard ``frequencies`` across worker processes, writing into ``out``.

    Drop-in sibling of the thread fan-out in
    :func:`repro.simulator.ac.run_frequency_points`: same
    ``np.array_split`` chunking, same per-point ops, stats absorbed into
    ``solver`` and spans adopted into the live tracer.  Blocks that fail in
    a worker — including a worker dying mid-solve — are recomputed in the
    parent, so the call always completes with bit-identical results or
    raises the underlying error from the in-process path.

    ``fault_plan`` wraps the worker callable parent-side (fork-snapshot
    module globals never reach live workers, so the plan must ride in the
    pickled submission) — test-only, mirroring ``SweepRunner(fault_plan=)``.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    n_workers = min(solver.options.ac_workers, len(frequencies))
    if n_workers < 1:
        return
    chunks = np.array_split(np.arange(len(frequencies)), n_workers)
    arena = SharedArena.create({
        "g_data": pattern.g_data,
        "c_data": pattern.c_data,
        "indices": pattern.csc_indices,
        "indptr": pattern.csc_indptr,
        "rhs": np.ascontiguousarray(rhs),
        "out": np.zeros_like(out),
    })
    context = tracer.current_context()
    specs = [FrequencyBlockSpec(
        index=block, arena=arena.handle,
        frequencies=tuple(float(frequencies[i]) for i in chunk),
        row_start=int(chunk[0]), shape=pattern.shape,
        options=solver.options, multi_rhs=multi_rhs, context=context)
        for block, chunk in enumerate(chunks)]
    fn = fault_plan.wrap(_solve_block) if fault_plan is not None \
        else _solve_block

    pool_handle = shared_pool()
    failed: list[FrequencyBlockSpec] = []
    try:
        pending = {}
        try:
            pool = pool_handle.executor(n_workers)
            for spec in specs:
                pending[pool.submit(fn, spec)] = spec
        except BrokenProcessPool:
            pool_handle.recycle()
            failed.extend(spec for spec in specs
                          if spec not in pending.values())
        for future, spec in pending.items():
            try:
                result = future.result()
            except BrokenProcessPool:
                pool_handle.recycle()
                failed.append(spec)
                continue
            except Exception as exc:
                logger.warning(
                    "frequency block %d failed in worker (%s: %s); "
                    "recomputing in parent", spec.index,
                    type(exc).__name__, exc)
                failed.append(spec)
                continue
            n_rows = len(spec.frequencies)
            rows = (arena.view("out")[spec.row_start:spec.row_start + n_rows]
                    if result.rows is None else result.rows)
            out[spec.row_start:spec.row_start + n_rows] = rows
            solver.absorb_stats(result.stats)
            tracer.adopt(result.spans)
        for spec in failed:
            _recompute_in_parent(spec, pattern, solver, rhs, out)
    finally:
        arena.dispose()
