"""The one persistent process pool every parallel consumer shares.

Before this module, the reproduction ran three mutually-blind schedulers:
``ProcessPoolBackend`` built a fresh ``ProcessPoolExecutor`` per campaign,
``ac_workers`` sharded frequency points over *threads* inside each worker,
and extraction fan-out rode the campaign pool by accident of the backend
protocol.  :class:`SharedProcessPool` replaces the process half of that with
a single lazily-created, recyclable executor:

* the :class:`~repro.parallel.scheduler.WorkScheduler` runs campaign DAGs on
  it (extraction -> corner dependencies),
* the process-level frequency fan-out
  (:mod:`repro.parallel.freq`) submits per-frequency solve shards to the
  *same* workers, so one pool's processes stay warm across campaigns,
  analyses and benchmark repetitions instead of paying fork+import per
  ``run()``.

Workers are marked via the pool initializer (:func:`in_worker_process`), so
code that could recurse — a corner task whose AC sweep asks for process
fan-out — detects it is already inside the pool and falls back to the thread
path instead of nesting executors.

``REPRO_MAX_WORKERS`` (environment) overrides the historical
``min(4, os.cpu_count())`` default everywhere a worker count is defaulted:
:func:`default_max_workers` is the one place that decides.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from ..errors import AnalysisError

#: Environment variable overriding the default worker count.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

_IN_WORKER = False


def _mark_worker_process() -> None:
    """Pool initializer: brand this process as a scheduler worker."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """True inside a :class:`SharedProcessPool` worker (never nest pools)."""
    return _IN_WORKER


def default_max_workers() -> int:
    """The default worker count: ``REPRO_MAX_WORKERS`` or ``min(4, cpus)``.

    The environment override exists for many-core hosts where the historical
    cap of four left the machine idle, and for CI containers that want an
    explicit, reproducible width.  Invalid values fail loudly — a silently
    ignored typo would masquerade as a performance regression.
    """
    raw = os.environ.get(MAX_WORKERS_ENV)
    if raw is not None and raw.strip():
        try:
            value = int(raw)
        except ValueError:
            raise AnalysisError(
                f"{MAX_WORKERS_ENV} must be a positive integer, "
                f"got {raw!r}") from None
        if value < 1:
            raise AnalysisError(
                f"{MAX_WORKERS_ENV} must be >= 1, got {value}")
        return value
    return min(4, os.cpu_count() or 1)


class SharedProcessPool:
    """A persistent, recyclable ``ProcessPoolExecutor``.

    ``executor(n)`` returns a pool with at least ``n`` workers, creating or
    growing it on demand; ``recycle()`` SIGKILLs the workers and forgets the
    executor (the next ``executor()`` call builds a fresh one) — that is the
    crash/timeout recovery path, where a graceful shutdown would block on a
    hung task exactly like the ``wait()`` the caller just rescued.

    The pool is *not* thread-safe; the scheduler and the frequency fan-out
    both drive it from the parent process's main thread, one round at a
    time, which is the only access pattern the sweep engine has.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._width = 0

    @property
    def width(self) -> int:
        """Workers of the live executor (0 when none has been created)."""
        return self._width if self._executor is not None else 0

    def executor(self, n_workers: int) -> ProcessPoolExecutor:
        if n_workers < 1:
            raise AnalysisError("a process pool needs at least one worker")
        if self._executor is not None and self._width < n_workers:
            # Growing: the old, narrower pool is idle between scheduler
            # rounds, so a graceful shutdown cannot block.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._executor is None:
            # Start the shared-memory resource tracker in THIS process before
            # any worker forks.  A worker forked without a live tracker would
            # lazily spawn its own on its first segment attach; that tracker
            # dies with the worker (e.g. a recycle's SIGKILL) and unlinks
            # every segment registered with it — yanking shared arenas out
            # from under the parent and the surviving workers.
            try:
                from multiprocessing import resource_tracker
                resource_tracker.ensure_running()
            except ImportError:                        # pragma: no cover
                pass
            self._executor = ProcessPoolExecutor(
                max_workers=n_workers, initializer=_mark_worker_process)
            self._width = n_workers
        return self._executor

    def recycle(self) -> None:
        """Kill the workers and drop the executor (broken/hung pool path)."""
        executor, self._executor, self._width = self._executor, None, 0
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Graceful end-of-process teardown (atexit)."""
        executor, self._executor, self._width = self._executor, None, 0
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


_SHARED = SharedProcessPool()


def shared_pool() -> SharedProcessPool:
    """The process-wide pool instance (the "one process pool" of the title)."""
    return _SHARED


atexit.register(_SHARED.shutdown)
