"""Zero-copy data plane: numpy arrays and pickled objects in shared memory.

Worker processes used to receive every byte of their payload through the
``ProcessPoolExecutor`` pipe: the ~19k-node mesh matrices of a frequency
fan-out re-pickled per task, the extracted flow of a variant re-pickled per
corner.  This module replaces that with ``multiprocessing.shared_memory``:

* :class:`SharedArena` packs named numpy arrays into **one** segment; its
  picklable :class:`ArenaHandle` (name + per-field dtype/shape/offset) is
  all that travels through the pipe.  Workers :func:`attach_arena` once per
  segment (an LRU keeps the mapping across tasks of the same sweep) and get
  zero-copy views — including *output* views, so per-frequency solve shards
  write their result rows straight into memory the parent reads back.
* :func:`ship_object` / :func:`load_object` pickle an arbitrary object
  (e.g. a :class:`~repro.core.flow.FlowResult`) into an arena **once**; every
  task referencing it ships a tiny :class:`ObjectRef`, and the worker-side
  object cache unpickles once per segment, not once per task — the
  cache-aware affinity half of the scheduler's data plane.

Creation falls back to inline (by-value) payloads whenever shared memory is
unavailable or the segment cannot be allocated (e.g. a full ``/dev/shm``):
:class:`InlineArena` / :class:`InlineObjectRef` carry the data through the
pipe instead, with identical semantics except that output arrays must then
travel back in the task result.  Lifecycle: the parent that created a
segment owns ``unlink``; pool workers share the parent's
``resource_tracker`` process, so their attachments need no bookkeeping of
their own (see :func:`attach_arena`).
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import AnalysisError
from ..obs import get_logger

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:                                    # pragma: no cover
    _shared_memory = None

logger = get_logger(__name__)

_ALIGN = 64          #: field alignment inside a segment (cache-line friendly)
_ATTACH_CAP = 8      #: worker-side LRU: segments kept mapped
_OBJECT_CAP = 8      #: worker-side LRU: unpickled shipped objects


@dataclass(frozen=True)
class ArenaField:
    """Location of one array inside a segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable address of a :class:`SharedArena` (what tasks ship)."""

    name: str                       #: shared-memory segment name
    size: int
    fields: tuple[ArenaField, ...]


def _layout(arrays: dict[str, np.ndarray]) -> tuple[tuple, int]:
    fields = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        fields.append((name, array, ArenaField(
            name=name, dtype=array.dtype.str, shape=array.shape,
            offset=offset)))
        offset += array.nbytes
    return tuple(fields), max(offset, 1)


class SharedArena:
    """Named numpy arrays packed into one shared-memory segment.

    Created by the parent (:meth:`create` copies every input array in);
    :meth:`view` returns the parent's zero-copy view of a field — after the
    workers are done, reading the ``out`` field's view *is* collecting the
    result.  :meth:`dispose` closes and unlinks; call it exactly once, from
    the creating process, after the last consumer finished.
    """

    def __init__(self, shm, handle: ArenaHandle):
        self._shm = shm
        self.handle = handle

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray],
               ) -> "SharedArena | InlineArena":
        """Pack ``arrays`` into a fresh segment; inline fallback on failure."""
        if _shared_memory is None:
            return InlineArena.create(arrays)
        fields, size = _layout(arrays)
        try:
            shm = _shared_memory.SharedMemory(create=True, size=size)
        except (OSError, ValueError) as exc:
            logger.warning(
                "shared-memory arena unavailable (%s); falling back to "
                "inline payloads", exc)
            return InlineArena.create(arrays)
        handle = ArenaHandle(name=shm.name, size=size,
                             fields=tuple(field for _, _, field in fields))
        arena = cls(shm, handle)
        for name, array, field in fields:
            arena.view(name)[...] = array
        return arena

    def view(self, name: str) -> np.ndarray:
        for field in self.handle.fields:
            if field.name == name:
                return np.ndarray(field.shape, dtype=np.dtype(field.dtype),
                                  buffer=self._shm.buf, offset=field.offset)
        raise AnalysisError(f"arena has no field named {name!r}")

    @property
    def shared(self) -> bool:
        return True

    def dispose(self) -> None:
        try:
            self._shm.close()
        except OSError:                                # pragma: no cover
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):           # pragma: no cover
            pass


class InlineArena:
    """By-value stand-in when shared memory cannot be used.

    The "handle" is the arena itself: it pickles with the task, every worker
    gets a private copy, and writes to the ``out`` views are *not* visible
    to the parent — callers must check :attr:`shared` and route outputs
    through the task result instead.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        self._arrays = arrays
        self.handle = self

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "InlineArena":
        return cls({name: np.ascontiguousarray(array)
                    for name, array in arrays.items()})

    def view(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise AnalysisError(f"arena has no field named {name!r}") from None

    @property
    def shared(self) -> bool:
        return False

    def dispose(self) -> None:
        self._arrays = {}


#: worker-side cache: segment name -> (SharedMemory, {field -> view})
_ATTACHED: "OrderedDict[str, tuple[Any, dict[str, np.ndarray]]]" \
    = OrderedDict()


def attach_arena(handle: "ArenaHandle | InlineArena") -> dict[str, np.ndarray]:
    """Worker-side zero-copy views of every field of ``handle``.

    Mappings are cached per segment name (LRU of ``_ATTACH_CAP``), so the
    many solve shards of one sweep attach once.  Pool workers are children
    of the creating parent and share its ``resource_tracker`` process, so
    the attach-side re-registration (a Python < 3.13 quirk) is a no-op on
    the tracker's set and needs no unregister workaround — one must *not*
    unregister here, or the parent's own registration vanishes and its
    later ``unlink`` trips a KeyError inside the tracker.
    """
    if isinstance(handle, InlineArena):
        return {field: handle.view(field) for field in handle._arrays}
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        _ATTACHED.move_to_end(handle.name)
        return cached[1]
    shm = _shared_memory.SharedMemory(name=handle.name)
    views = {field.name: np.ndarray(field.shape,
                                    dtype=np.dtype(field.dtype),
                                    buffer=shm.buf, offset=field.offset)
             for field in handle.fields}
    _ATTACHED[handle.name] = (shm, views)
    while len(_ATTACHED) > _ATTACH_CAP:
        _, (old_shm, _views) = _ATTACHED.popitem(last=False)
        try:
            old_shm.close()
        except (OSError, BufferError):                 # pragma: no cover
            pass
    return views


# -- shipped objects ----------------------------------------------------------


@dataclass(frozen=True)
class ObjectRef:
    """Tiny picklable reference to an object shipped through an arena."""

    handle: ArenaHandle


@dataclass(frozen=True)
class InlineObjectRef:
    """By-value fallback: the pickled object rides in the reference."""

    payload: bytes


def ship_object(obj: Any) -> "tuple[ObjectRef | InlineObjectRef, SharedArena | None]":
    """Pickle ``obj`` once into shared memory; returns (ref, owning arena).

    The arena is ``None`` for the inline fallback (nothing to dispose).
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    arena = SharedArena.create(
        {"payload": np.frombuffer(payload, dtype=np.uint8)})
    if isinstance(arena, InlineArena):
        return InlineObjectRef(payload=payload), None
    return ObjectRef(handle=arena.handle), arena


#: worker-side cache: segment name -> unpickled object
_OBJECTS: "OrderedDict[str, Any]" = OrderedDict()


def load_object(ref: "ObjectRef | InlineObjectRef") -> Any:
    """Resolve a shipped-object reference (cached per segment in workers).

    The cache is what turns "N corners of one variant" into one unpickle:
    every corner task carries the same :class:`ObjectRef`, and only the
    first to arrive in a given worker pays the deserialization.
    """
    if isinstance(ref, InlineObjectRef):
        return pickle.loads(ref.payload)
    cached = _OBJECTS.get(ref.handle.name, _OBJECTS)
    if cached is not _OBJECTS:
        _OBJECTS.move_to_end(ref.handle.name)
        return cached
    views = attach_arena(ref.handle)
    obj = pickle.loads(views["payload"].tobytes())
    _OBJECTS[ref.handle.name] = obj
    while len(_OBJECTS) > _OBJECT_CAP:
        _OBJECTS.popitem(last=False)
    return obj


class ObjectShipper:
    """Ship each distinct object once; hand out (and reuse) its reference.

    The runner keys this by extraction-cache key, so all corners of one
    layout variant share a single shared-memory copy of the extracted flow.
    ``close()`` disposes every arena this shipper created — call it after
    the campaign's last task settled (worker mappings stay valid until the
    workers drop them; the parent's ``unlink`` only removes the name).
    """

    def __init__(self) -> None:
        self._refs: dict[Any, ObjectRef | InlineObjectRef] = {}
        self._arenas: list[SharedArena] = []

    def ref_for(self, key: Any, obj: Any) -> "ObjectRef | InlineObjectRef":
        ref = self._refs.get(key)
        if ref is None:
            ref, arena = ship_object(obj)
            self._refs[key] = ref
            if arena is not None:
                self._arenas.append(arena)
        return ref

    def close(self) -> None:
        arenas, self._arenas, self._refs = self._arenas, [], {}
        for arena in arenas:
            arena.dispose()
