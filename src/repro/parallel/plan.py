"""Work items, failure policies and retry bookkeeping of the scheduler.

A campaign flattens into a DAG of :class:`WorkItem`\\ s — extraction tasks,
per-corner simulation tasks, and (inside a corner or an analysis) per-
frequency solve shards.  The vocabulary here used to live in
:mod:`repro.studies.backends`; it moved down so the scheduler, the backends
and the frequency fan-out share *one* definition of what a retry, a failure
policy and an exhausted task mean.  :mod:`repro.studies.backends` re-exports
every public name, so existing imports keep working.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence, TypeVar

from ..errors import AnalysisError, CampaignError, CornerFailure, TaskTimeoutError
from ..obs import get_logger

logger = get_logger(__name__)

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Campaign failure policies accepted by ``run(..., on_error=...)``.
ON_ERROR_ABORT = "abort"
ON_ERROR_SKIP = "skip"
ON_ERROR_RETRY_THEN_SKIP = "retry_then_skip"
ON_ERROR_POLICIES = (ON_ERROR_ABORT, ON_ERROR_SKIP, ON_ERROR_RETRY_THEN_SKIP)


def _task_label(task) -> str:
    """Identity of a task for failure messages.

    Runner tasks describe their own sweep corner via ``corner_label``; any
    other payload falls back to a truncated repr.
    """
    label = getattr(task, "corner_label", None)
    if callable(label):
        return label()
    text = repr(task)
    return text if len(text) <= 200 else text[:197] + "..."


def _check_policy(on_error: str) -> str:
    if on_error not in ON_ERROR_POLICIES:
        raise AnalysisError(
            f"unknown failure policy {on_error!r}; choose one of "
            f"{', '.join(ON_ERROR_POLICIES)}")
    return on_error


def _effective_retries(retries: int, policy: str) -> int:
    """Retry budget under a policy: ``skip`` means one attempt, no retries."""
    return 0 if policy == ON_ERROR_SKIP else retries


def _traceback_summary(exc: BaseException, limit: int = 4) -> str:
    """The last few frames of ``exc``'s traceback, newline-joined."""
    frames = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = "".join(frames[-limit:]) if frames else ""
    return tail.strip()[-2000:]


@dataclass(frozen=True)
class TaskFailure:
    """Structured outcome of a task that exhausted its attempts.

    Returned in the task's result slot when the failure policy is a skip
    variant; the runner converts these into
    :class:`~repro.errors.CornerFailure` records with corner coordinates.
    A work item that never ran because a dependency failed inherits the
    dependency's failure object verbatim — the root cause, not a synthetic
    "dependency failed" wrapper — which is exactly how extraction failures
    have always been reported against each affected corner.
    """

    index: int                  #: position in the submitted task list
    label: str                  #: ``corner_label()`` / repr of the task
    error_type: str             #: exception class name
    message: str                #: exception message (truncated)
    attempts: int               #: attempts spent
    timed_out: bool = False     #: failure was a ``task_timeout`` trip
    traceback_summary: str = ""

    def as_corner_failure(self, *, variant_index: int = -1,
                          injected_power_dbm: float = float("nan"),
                          vtune: float = float("nan")) -> CornerFailure:
        return CornerFailure(
            corner_label=self.label, error_type=self.error_type,
            message=self.message, attempts=self.attempts,
            timed_out=self.timed_out,
            traceback_summary=self.traceback_summary,
            variant_index=variant_index,
            injected_power_dbm=injected_power_dbm, vtune=vtune)


def _failure_record(index: int, task, attempts: int,
                    exc: BaseException | None) -> TaskFailure:
    if exc is None:
        return TaskFailure(index=index, label=_task_label(task),
                           error_type="Unknown",
                           message="task never completed (worker pool broke "
                                   "repeatedly)",
                           attempts=attempts)
    message = str(exc)
    return TaskFailure(
        index=index, label=_task_label(task),
        error_type=type(exc).__name__,
        message=message if len(message) <= 500 else message[:497] + "...",
        attempts=attempts,
        timed_out=isinstance(exc, (TaskTimeoutError, TimeoutError)),
        traceback_summary=_traceback_summary(exc))


def _give_up(task, attempts: int, exc: BaseException) -> None:
    """Abort-policy terminal: raise a CampaignError naming the corner."""
    failure = _failure_record(-1, task, attempts, exc)
    raise CampaignError(
        f"sweep task failed after {attempts} attempt(s): "
        f"{_task_label(task)}", failures=(failure,)) from exc


def _run_with_retries(fn: Callable[[TaskT], ResultT], task: TaskT,
                      index: int, attempts: list[int], retries: int,
                      policy: str,
                      on_start: Callable[[int, int], None] | None = None,
                      ) -> "ResultT | TaskFailure":
    """In-process attempt loop shared by the serial and single-worker paths.

    Retries on ``Exception`` only — ``KeyboardInterrupt`` / ``SystemExit``
    (and any other ``BaseException``) always propagate, whatever the policy:
    a Ctrl-C must stop the campaign, not be recorded as a corner failure.
    ``on_start(index, attempt)`` fires before every attempt (attempt >= 1).
    """
    budget = _effective_retries(retries, policy)
    while True:
        attempts[index] += 1
        if on_start is not None:
            on_start(index, attempts[index])
        try:
            return fn(task)
        except Exception as exc:
            if attempts[index] <= budget:
                logger.info(
                    "task retry: corner=%s attempt=%d/%d error=%s",
                    _task_label(task), attempts[index], budget + 1,
                    type(exc).__name__)
                continue
            if policy == ON_ERROR_ABORT:
                _give_up(task, attempts[index], exc)
            logger.warning(
                "task exhausted: corner=%s attempts=%d error=%s policy=%s",
                _task_label(task), attempts[index], type(exc).__name__, policy)
            return _failure_record(index, task, attempts[index], exc)


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit of a campaign DAG.

    ``fn(payload)`` runs in a worker process (both must be picklable).
    ``deps`` names items that must succeed first; ``bind(payload,
    dep_results)`` runs in the *parent* just before dispatch to fold the
    dependencies' results into the payload (e.g. inject a freshly extracted
    flow into a corner task) — it is the only non-picklable hook.
    ``priority`` orders dispatch among ready items (lower first, submission
    order breaking ties), which is what lets extractions drain ahead of the
    corners queuing behind them.
    """

    id: str
    fn: Callable[[Any], Any]
    payload: Any
    deps: tuple[str, ...] = ()
    priority: int = 0
    bind: Callable[[Any, dict[str, Any]], Any] | None = field(
        default=None, compare=False)
    label: str | None = None

    def describe(self) -> str:
        return self.label if self.label is not None \
            else _task_label(self.payload)


def validate_plan(items: Sequence[WorkItem]) -> list[str]:
    """Check ids are unique, deps known and the graph acyclic.

    Returns one valid topological order of the item ids (Kahn's algorithm);
    raises :class:`~repro.errors.AnalysisError` on a malformed plan.  The
    scheduler dispatches by readiness + priority, not by this order — the
    return value exists for callers that want a deterministic serial order.
    """
    by_id: dict[str, WorkItem] = {}
    for item in items:
        if item.id in by_id:
            raise AnalysisError(f"duplicate work item id {item.id!r}")
        by_id[item.id] = item
    missing = {item.id: 0 for item in items}
    dependents: dict[str, list[str]] = {item.id: [] for item in items}
    for item in items:
        for dep in item.deps:
            if dep not in by_id:
                raise AnalysisError(
                    f"work item {item.id!r} depends on unknown item {dep!r}")
            missing[item.id] += 1
            dependents[dep].append(item.id)
    order = [item_id for item_id, count in missing.items() if count == 0]
    cursor = 0
    while cursor < len(order):
        for child in dependents[order[cursor]]:
            missing[child] -= 1
            if missing[child] == 0:
                order.append(child)
        cursor += 1
    if len(order) != len(items):
        cyclic = sorted(item_id for item_id, count in missing.items()
                        if count > 0)
        raise AnalysisError(
            f"work plan has a dependency cycle involving: {', '.join(cyclic)}")
    return order


# ---------------------------------------------------------------------------
# Worker heartbeats
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HeartbeatSpec:
    """Where and how often pool workers should stamp a liveness heartbeat.

    Shipped (pickled) to the workers inside :class:`HeartbeatedCall`; the
    scheduler watches the directory's ``hb-<pid>`` mtimes and treats a
    worker whose stamps stop as wedged — catching silent hangs (SIGSTOP, a
    GIL-holding C loop, a dead NFS mount) long before the wall-clock
    ``task_timeout`` ceiling.
    """

    directory: str
    interval: float

    def path_for(self, pid: int) -> Path:
        return Path(self.directory) / f"hb-{pid}"


# One stamper thread per worker process, keyed by heartbeat directory so a
# recycled scheduler (fresh temp dir) restarts stamping in reused workers.
_stampers: set[str] = set()
_stampers_lock = threading.Lock()


def _ensure_stamper(spec: HeartbeatSpec) -> None:
    """Start this process's heartbeat thread (idempotent, worker-side)."""
    with _stampers_lock:
        if spec.directory in _stampers:
            return
        _stampers.add(spec.directory)

    path = spec.path_for(os.getpid())
    try:
        # First stamp lands synchronously, before the task runs: a task that
        # wedges its worker instantly must still be visible to the monitor.
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()
    except OSError:
        pass

    def beat() -> None:
        while True:
            time.sleep(spec.interval)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.touch()
            except OSError:
                pass  # directory vanished mid-run: keep trying, not crash

    thread = threading.Thread(target=beat, daemon=True,
                              name="worker-heartbeat")
    thread.start()


class HeartbeatedCall:
    """Picklable task wrapper: ensure the worker heartbeat, then run.

    Wrapping happens at submission time in the scheduler, so any payload
    callable (including :class:`~repro.studies.faults.FaultyCall` chains)
    gains liveness stamping without knowing about it.
    """

    def __init__(self, spec: HeartbeatSpec, fn):
        self.spec = spec
        self.fn = fn

    def __call__(self, payload):
        _ensure_stamper(self.spec)
        return self.fn(payload)
