"""Unified shared-memory work scheduling.

One process pool (:mod:`~repro.parallel.pool`), one task vocabulary
(:mod:`~repro.parallel.plan`), one dependency/priority-aware scheduler
(:mod:`~repro.parallel.scheduler`), one zero-copy data plane
(:mod:`~repro.parallel.shm`), and the process-level frequency fan-out built
on all four (:mod:`~repro.parallel.freq`).  The studies layer's
``ProcessPoolBackend`` is a thin adapter over :class:`WorkScheduler`, and
``ac_mode = "process"`` routes AC/transfer sweeps through
:func:`run_frequency_blocks` — three formerly mutually-blind schedulers now
share these workers.
"""

from .plan import (
    ON_ERROR_ABORT,
    ON_ERROR_POLICIES,
    ON_ERROR_RETRY_THEN_SKIP,
    ON_ERROR_SKIP,
    TaskFailure,
    WorkItem,
    validate_plan,
)
from .pool import (
    MAX_WORKERS_ENV,
    SharedProcessPool,
    default_max_workers,
    in_worker_process,
    shared_pool,
)
from .scheduler import WorkScheduler
from .shm import (
    ArenaHandle,
    InlineArena,
    ObjectShipper,
    SharedArena,
    attach_arena,
    load_object,
    ship_object,
)

__all__ = [
    "ArenaHandle",
    "InlineArena",
    "MAX_WORKERS_ENV",
    "ObjectShipper",
    "ON_ERROR_ABORT",
    "ON_ERROR_POLICIES",
    "ON_ERROR_RETRY_THEN_SKIP",
    "ON_ERROR_SKIP",
    "SharedArena",
    "SharedProcessPool",
    "TaskFailure",
    "WorkItem",
    "WorkScheduler",
    "attach_arena",
    "default_max_workers",
    "in_worker_process",
    "load_object",
    "shared_pool",
    "ship_object",
    "validate_plan",
]
