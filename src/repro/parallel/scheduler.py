"""The unified work scheduler: one DAG, one pool, one failure policy.

:class:`WorkScheduler` executes a plan of :class:`~repro.parallel.plan.WorkItem`\\ s
on the :class:`~repro.parallel.pool.SharedProcessPool`.  It generalizes the
retry / timeout / broken-pool machinery that previously lived inside
``ProcessPoolBackend`` (which is now a thin adapter over this class) from a
flat task list to a dependency graph:

* **priority/dependency-aware dispatch** — items become *ready* when their
  dependencies succeed and are dispatched lowest ``priority`` first
  (submission order breaking ties).  Dispatch is windowed: at most
  ``n_workers`` futures are in flight, so ``task_timeout`` deadlines measure
  actual worker occupancy, not queue time, and a freshly-extracted variant's
  corners start flowing while other extractions still run.
* **cache-aware affinity** — the runner deduplicates extraction items by
  cache key, so every corner of a variant depends on *one* extraction item
  instead of racing the :class:`~repro.studies.store.DiskExtractionCache`.
* **failure propagation** — an item whose dependency exhausts its attempts
  never runs; it inherits the dependency's :class:`TaskFailure` verbatim
  (the root cause), spending zero attempts.
* **identical fault tolerance** — per-item retries, wall-clock
  ``task_timeout`` with worker SIGKILL + pool recycle, broken-pool salvage
  (completed results survive a crash), jittered exponential rebuild backoff,
  and the ``abort`` / ``skip`` / ``retry_then_skip`` policies behave exactly
  as the flat backend always did; ``KeyboardInterrupt`` / ``SystemExit``
  always propagate.

With a single effective worker the plan executes in-process (topological,
priority-ordered) with the same retry semantics — no pool, no pickling.
"""

from __future__ import annotations

import heapq
import random
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import AnalysisError, CampaignError, TaskTimeoutError
from ..obs import get_logger
from .plan import (
    ON_ERROR_ABORT,
    HeartbeatedCall,
    HeartbeatSpec,
    TaskFailure,
    WorkItem,
    _check_policy,
    _effective_retries,
    _failure_record,
    _give_up,
    _task_label,
    validate_plan,
)
from .pool import SharedProcessPool, default_max_workers, shared_pool

logger = get_logger(__name__)


class _TimedOut(Exception):
    """Internal marker cause for a task abandoned by a timeout trip."""


class WorkScheduler:
    """Dependency/priority-aware task execution on one persistent pool.

    ``run(items, ...)`` returns ``{item id -> result | TaskFailure}``.  The
    per-item attempt counts of the most recent run live in ``attempts`` and
    the pool rebuilds (crash or timeout recoveries) in ``pool_rebuilds`` —
    the same churn bookkeeping the flat backend exposed, keyed by item id.
    """

    def __init__(self, max_workers: int | None = None, retries: int = 0,
                 task_timeout: float | None = None,
                 backoff_base: float = 0.25, backoff_max: float = 8.0,
                 backoff_seed: int | None = None,
                 pool: SharedProcessPool | None = None,
                 heartbeat_timeout: float | None = None):
        if max_workers is not None and max_workers < 1:
            raise AnalysisError("WorkScheduler needs at least one worker")
        if retries < 0:
            raise AnalysisError("retries must be >= 0")
        if task_timeout is not None and task_timeout <= 0:
            raise AnalysisError("task_timeout must be positive (seconds)")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise AnalysisError("heartbeat_timeout must be positive (seconds)")
        if backoff_base < 0 or backoff_max < 0:
            raise AnalysisError("backoff delays must be >= 0")
        self.max_workers = max_workers or default_max_workers()
        self.retries = retries
        self.task_timeout = task_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = random.Random(backoff_seed)
        self._pool = pool if pool is not None else shared_pool()
        self._heartbeat: HeartbeatSpec | None = None
        if heartbeat_timeout is not None:
            # Workers stamp every timeout/4, so one lost stamp is noise and
            # a stale mtime means several consecutive misses — a wedged
            # process, not a slow filesystem.
            self._heartbeat = HeartbeatSpec(
                directory=tempfile.mkdtemp(prefix="repro-heartbeat-"),
                interval=max(0.05, heartbeat_timeout / 4.0))
        #: per-item attempt counts of the most recent :meth:`run`
        self.attempts: dict[str, int] = {}
        #: pool rebuilds (crash or timeout) during the most recent :meth:`run`
        self.pool_rebuilds: int = 0
        #: heartbeat-staleness trips during the most recent :meth:`run`
        self.heartbeat_trips: int = 0

    # -- backoff -------------------------------------------------------------

    def _backoff_sleep(self, rebuilds: int) -> None:
        """Jittered exponential delay before the ``rebuilds``-th fresh pool."""
        if self.backoff_base <= 0:
            return
        delay = min(self.backoff_max,
                    self.backoff_base * (2.0 ** (rebuilds - 1)))
        # Full jitter in [delay/2, delay]: desynchronises concurrent
        # campaigns hammering one broken shared resource.
        time.sleep(delay * (0.5 + 0.5 * self._rng.random()))

    # -- execution -----------------------------------------------------------

    def run(self, items: Sequence[WorkItem], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[str, Any], None] | None = None,
            on_start: Callable[[str, int], None] | None = None,
            ) -> dict[str, Any]:
        """Execute the plan; outcomes keyed by item id.

        ``on_result(item_id, result)`` fires in the parent as each item
        *succeeds* (including results salvaged from a breaking pool);
        ``on_start(item_id, attempt)`` as each attempt is submitted
        (``attempt`` counts from 1).  Under the skip policies a failed
        item's slot holds its :class:`TaskFailure`; items doomed by a failed
        dependency hold the dependency's failure object.
        """
        policy = _check_policy(on_error)
        items = list(items)
        validate_plan(items)
        self.attempts = {item.id: 0 for item in items}
        self.pool_rebuilds = 0
        self.heartbeat_trips = 0
        if not items:
            return {}
        budget = _effective_retries(self.retries, policy)
        by_id = {item.id: item for item in items}
        seq = {item.id: position for position, item in enumerate(items)}
        missing = {item.id: len(item.deps) for item in items}
        dependents: dict[str, list[str]] = {item.id: [] for item in items}
        for item in items:
            for dep in item.deps:
                dependents[dep].append(item.id)

        outcomes: dict[str, Any] = {}
        failed: set[str] = set()
        ready: list[tuple[int, int, str]] = []
        for item in items:
            if missing[item.id] == 0:
                heapq.heappush(ready, (item.priority, seq[item.id], item.id))

        def bound_payload(item: WorkItem) -> Any:
            if item.bind is None:
                return item.payload
            return item.bind(item.payload,
                             {dep: outcomes[dep] for dep in item.deps})

        def settle_success(item_id: str, value: Any) -> None:
            outcomes[item_id] = value
            if on_result is not None:
                on_result(item_id, value)
            for child in dependents[item_id]:
                missing[child] -= 1
                if missing[child] == 0 and child not in failed:
                    child_item = by_id[child]
                    heapq.heappush(ready,
                                   (child_item.priority, seq[child], child))

        def settle_failure(item_id: str, failure: TaskFailure) -> None:
            if item_id in failed:
                return
            failed.add(item_id)
            outcomes[item_id] = failure
            # Transitively doom the dependents with the *root* failure: a
            # corner whose extraction failed reports the extraction's error,
            # exactly as the two-phase runner always did.
            for child in dependents[item_id]:
                settle_failure(child, failure)

        n_workers = min(self.max_workers, len(items))
        if n_workers == 1:
            self._run_inline(by_id, seq, ready, failed, budget, policy,
                             bound_payload, settle_success, settle_failure,
                             on_start)
            return outcomes

        resubmit: list[str] = []
        while ready or resubmit:
            unfinished, causes = self._pool_round(
                by_id, seq, ready, resubmit, failed, n_workers, budget,
                policy, bound_payload, settle_success, settle_failure,
                on_start)
            exhausted = [item_id for item_id in unfinished
                         if self.attempts[item_id] > budget]
            if exhausted:
                if policy == ON_ERROR_ABORT:
                    self._abort(by_id, exhausted, causes)
                for item_id in exhausted:
                    settle_failure(item_id, _failure_record(
                        seq[item_id], by_id[item_id].payload,
                        self.attempts[item_id], causes.get(item_id)))
                unfinished = [item_id for item_id in unfinished
                              if item_id not in set(exhausted)]
            resubmit = unfinished
            if resubmit or (ready and self._pool.width == 0):
                self.pool_rebuilds += 1
                logger.warning(
                    "worker pool rebuild: rebuilds=%d unfinished_tasks=%d",
                    self.pool_rebuilds, len(resubmit))
                self._backoff_sleep(self.pool_rebuilds)
        return outcomes

    def _run_inline(self, by_id, seq, ready, failed, budget, policy,
                    bound_payload, settle_success, settle_failure,
                    on_start) -> None:
        """Single-worker path: run the plan in this process, no pool.

        Mirrors the flat backends' in-process retry loop exactly:
        ``Exception`` consumes attempts, ``KeyboardInterrupt`` /
        ``SystemExit`` propagate immediately, the abort policy raises via
        ``_give_up`` with the original exception chained.
        """
        while ready:
            _, _, item_id = heapq.heappop(ready)
            if item_id in failed:
                continue
            item = by_id[item_id]
            payload = bound_payload(item)
            while True:
                self.attempts[item_id] += 1
                if on_start is not None:
                    on_start(item_id, self.attempts[item_id])
                try:
                    value = item.fn(payload)
                except Exception as exc:
                    if self.attempts[item_id] <= budget:
                        logger.info(
                            "task retry: corner=%s attempt=%d/%d error=%s",
                            item.describe(), self.attempts[item_id],
                            budget + 1, type(exc).__name__)
                        continue
                    if policy == ON_ERROR_ABORT:
                        _give_up(item.payload, self.attempts[item_id], exc)
                    logger.warning(
                        "task exhausted: corner=%s attempts=%d error=%s "
                        "policy=%s", item.describe(), self.attempts[item_id],
                        type(exc).__name__, policy)
                    settle_failure(item_id, _failure_record(
                        seq[item_id], item.payload, self.attempts[item_id],
                        exc))
                    break
                settle_success(item_id, value)
                break

    def _abort(self, by_id, exhausted: list[str],
               causes: dict[str, BaseException]) -> None:
        """Abort policy: blame the right item and raise."""
        # Blame an item that failed on its own if there is one; the rest
        # merely shared a broken pool and may never have run, so they
        # are reported as unfinished rather than as the failure.
        blamed = next(
            (item_id for item_id in exhausted
             if causes.get(item_id) is not None
             and not isinstance(causes[item_id],
                                (BrokenProcessPool, _TimedOut))),
            None)
        if blamed is not None:
            _give_up(by_id[blamed].payload, self.attempts[blamed],
                     causes[blamed])
        first = exhausted[0]
        failures = tuple(
            _failure_record(index, by_id[item_id].payload,
                            self.attempts[item_id], causes.get(item_id))
            for index, item_id in enumerate(exhausted))
        raise CampaignError(
            f"worker pool broke {self.attempts[first]} time(s); "
            f"{len(exhausted)} task(s) exhausted their retries without "
            f"completing, including: {_task_label(by_id[first].payload)}",
            failures=failures) from causes.get(first)

    def _pool_round(self, by_id, seq, ready, resubmit, failed,
                    n_workers, budget, policy, bound_payload,
                    settle_success, settle_failure, on_start,
                    ) -> tuple[list[str], dict[str, BaseException]]:
        """One pool lifetime; returns (unfinished item ids, their causes).

        Per-item failures are retried within the round; a broken pool or a
        timeout trip ends the round early with every not-yet-finished item
        listed as unfinished (their submitted attempts count as spent).  The
        pool itself persists across clean rounds and runs — only breakage
        recycles it.
        """
        pool = self._pool.executor(n_workers)
        pending: dict = {}
        deadlines: dict = {}
        submit_failed: list[str] = []

        def submit(item_id: str) -> None:
            item = by_id[item_id]
            self.attempts[item_id] += 1
            if on_start is not None:
                on_start(item_id, self.attempts[item_id])
            fn = item.fn if self._heartbeat is None \
                else HeartbeatedCall(self._heartbeat, item.fn)
            try:
                future = pool.submit(fn, bound_payload(item))
            except BrokenProcessPool:
                # The attempt is spent but no future exists; remember the
                # item so the salvage path reschedules it.
                submit_failed.append(item_id)
                raise
            pending[future] = item_id
            if self.task_timeout is not None:
                deadlines[future] = time.monotonic() + self.task_timeout

        def fill() -> None:
            # Windowed dispatch: keep at most n_workers futures in flight so
            # timeout deadlines measure worker occupancy, not queue time.
            while len(pending) < n_workers and (resubmit or ready):
                item_id = resubmit.pop(0) if resubmit \
                    else heapq.heappop(ready)[2]
                if item_id in failed:
                    continue
                submit(item_id)

        try:
            fill()
            while pending:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values())
                                  - time.monotonic())
                if self._heartbeat is not None:
                    # Wake at heartbeat granularity so a silently wedged
                    # worker is noticed long before the wall-clock deadline.
                    beat = max(0.05, self.heartbeat_timeout / 2.0)
                    timeout = beat if timeout is None else min(timeout, beat)
                done, _ = wait(pending, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    hung = [future for future in list(pending)
                            if deadlines.get(future, float("inf"))
                            <= time.monotonic() and not future.done()]
                    if hung:
                        return self._abandon_hung(hung, pending,
                                                  settle_success)
                    silent = self._silent_workers(pool)
                    if silent:
                        self.heartbeat_trips += 1
                        logger.warning(
                            "worker heartbeat lost: pids=%s "
                            "heartbeat_timeout=%gs action=%s",
                            silent, self.heartbeat_timeout,
                            "kill workers, recycle pool")
                        return self._abandon_hung(
                            list(pending), pending, settle_success,
                            reason=(
                                f"worker heartbeat silent for "
                                f"{self.heartbeat_timeout:g} s (wedged "
                                f"process pid(s) {silent}); the workers "
                                "were killed and the pool recycled"))
                    continue
                for future in done:
                    item_id = pending.pop(future)
                    deadlines.pop(future, None)
                    exc = future.exception()
                    if exc is None:
                        settle_success(item_id, future.result())
                    elif isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        # Never swallow or retry an interrupt, whatever the
                        # policy — mirror the in-process path exactly.
                        for other in pending:
                            other.cancel()
                        raise exc
                    elif isinstance(exc, BrokenProcessPool):
                        return self._drain_broken(item_id, exc, pending,
                                                  settle_success)
                    elif self.attempts[item_id] <= budget:
                        logger.info(
                            "task retry: corner=%s attempt=%d/%d error=%s",
                            by_id[item_id].describe(),
                            self.attempts[item_id] + 1, budget + 1,
                            type(exc).__name__)
                        submit(item_id)  # BrokenProcessPool -> except below
                    elif policy == ON_ERROR_ABORT:
                        _give_up(by_id[item_id].payload,
                                 self.attempts[item_id], exc)
                    else:
                        settle_failure(item_id, _failure_record(
                            seq[item_id], by_id[item_id].payload,
                            self.attempts[item_id], exc))
                fill()
        except BrokenProcessPool as submit_exc:
            # pool.submit itself can raise when the executor broke between
            # futures; salvage exactly like a future-delivered breakage.
            first = submit_failed[0] if submit_failed else None
            return self._drain_broken(first, submit_exc, pending,
                                      settle_success)
        return [], {}

    def _silent_workers(self, pool) -> list[int]:
        """Pids of current pool workers whose heartbeat stamps went stale.

        A worker only counts once it has stamped at least one heartbeat
        (its first task starts the stamper thread) — a missing file means
        "idle or still importing", a stale mtime means several consecutive
        missed stamps from a process that used to stamp: wedged.
        """
        if self._heartbeat is None:
            return []
        processes = getattr(pool, "_processes", None) or {}
        cutoff = time.time() - self.heartbeat_timeout
        silent = []
        for pid in list(processes):
            try:
                mtime = self._heartbeat.path_for(pid).stat().st_mtime
            except OSError:
                continue
            if mtime < cutoff:
                silent.append(pid)
        return silent

    def _abandon_hung(self, hung: list, pending: dict, settle_success,
                      reason: str | None = None,
                      ) -> tuple[list[str], dict[str, BaseException]]:
        """A worker exceeded ``task_timeout``: abandon it, recycle the pool.

        The hung futures' items get a :class:`~repro.errors.TaskTimeoutError`
        cause; every other unfinished item is rescheduled with the timeout
        breakage as its (non-blaming) cause, exactly like a pool crash.  The
        worker processes are SIGKILLed so the executor's shutdown cannot
        block on the hung task — :meth:`SharedProcessPool.recycle` does both.
        A heartbeat trip reuses this path with its own ``reason``.
        """
        logger.warning(
            "task timeout: hung_tasks=%d task_timeout=%ss action=%s",
            len(hung), self.task_timeout, "kill workers, recycle pool")
        timeout_exc = TaskTimeoutError(
            reason if reason is not None else
            f"task exceeded task_timeout={self.task_timeout:g} s; its worker "
            "was killed and the pool recycled")
        unfinished: list[str] = []
        causes: dict[str, BaseException] = {}
        hung_set = set(hung)
        for future, item_id in pending.items():
            # Read the outcome before any cancel(): a cancelled future's
            # exception() raises CancelledError instead of returning.  A
            # "hung" future that completed just after the deadline check is
            # simply salvaged — no work is thrown away over a race.
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    settle_success(item_id, future.result())
                    continue
            else:
                future.cancel()
                exc = None
            unfinished.append(item_id)
            if exc is not None and not isinstance(exc, BrokenProcessPool):
                causes[item_id] = exc
            elif future in hung_set:
                causes[item_id] = timeout_exc
            else:
                causes[item_id] = _TimedOut(
                    "pool recycled while this task was queued")
        self._pool.recycle()
        return unfinished, causes

    def _drain_broken(self, first_id: str | None, breakage: BaseException,
                      pending: dict, settle_success,
                      ) -> tuple[list[str], dict[str, BaseException]]:
        """Salvage a broken pool's futures: keep results that did complete.

        When the executor breaks, every remaining future settles at once;
        items that finished successfully before the crash keep their results
        and only the genuinely unfinished ones are rescheduled.  An item that
        failed with its *own* exception keeps that exception as its blame
        (so an exhausted retry chains the real traceback, not the breakage).
        """
        unfinished = [first_id] if first_id is not None else []
        causes = {first_id: breakage} if first_id is not None else {}
        for future, item_id in pending.items():
            # Read the outcome before any cancel(): a cancelled future's
            # exception() raises CancelledError instead of returning.
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    settle_success(item_id, future.result())
                    continue
            else:
                future.cancel()
                exc = None
            unfinished.append(item_id)
            causes[item_id] = breakage if exc is None \
                or isinstance(exc, BrokenProcessPool) else exc
        self._pool.recycle()
        return unfinished, causes

    def describe(self) -> str:
        knobs = []
        if self.retries:
            knobs.append(f"retries={self.retries}")
        if self.task_timeout is not None:
            knobs.append(f"timeout={self.task_timeout:g}s")
        if self.heartbeat_timeout is not None:
            knobs.append(f"heartbeat={self.heartbeat_timeout:g}s")
        suffix = ("," + ",".join(knobs)) if knobs else ""
        return f"scheduler[{self.max_workers}{suffix}]"
