"""Analytical LC-tank VCO model.

The paper's victim circuit is a 3 GHz NMOS/PMOS cross-coupled LC-tank VCO.
For the spur analysis (Section 5, equations (1)-(3)) the oscillator is
described by a small set of quantities:

* the oscillation frequency ``f_c(V_tune)`` set by the tank inductance and the
  voltage-dependent tank capacitance (accumulation-mode varactor plus the
  device parasitics),
* the oscillation amplitude ``A_c`` set by the tail current and the tank's
  equivalent parallel loss,
* the frequency sensitivity ``K_i = d f_c / d V_i`` of every noise entry
  ``i``, and the AM gain ``G_AM,i = (1/A_c) * d A_c / d V_i``.

The model is deliberately analytical — the paper itself derives the spur
amplitudes from a narrow-band FM description rather than from a full
oscillator transient — but every capacitance and conductance that feeds it is
taken from the extracted devices at their operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices.inductor import SpiralInductor
from ..devices.varactor import AccumulationModeVaractor
from ..errors import AnalysisError


@dataclass
class VcoDesign:
    """Electrical description of the LC-tank VCO used by the analytical model.

    All capacitances are *per tank side* (from one tank node to AC ground).
    """

    tank_inductance: float                     #: differential tank inductance [H]
    inductor: SpiralInductor
    varactor: AccumulationModeVaractor
    fixed_capacitance_per_side: float          #: device + routing caps [F]
    tail_current: float = 5e-3                 #: VCO core current (paper: 5 mA)
    supply_voltage: float = 1.8
    tank_common_mode: float = 0.9              #: DC common-mode of the tank nodes
    tail_transconductance: float = 20e-3       #: gm of the tail device [S]
    #: fraction of the tank-side capacitance whose bias is referenced to the
    #: on-chip ground (NMOS junction + gate caps); used for the ground entry.
    ground_referenced_capacitance: float = 0.4e-12
    #: sensitivity of the ground-referenced capacitance to its bias [F/V]
    ground_referenced_cap_sensitivity: float = 0.15e-12

    def __post_init__(self) -> None:
        if self.tank_inductance <= 0:
            raise AnalysisError("tank inductance must be positive")
        if self.fixed_capacitance_per_side < 0:
            raise AnalysisError("fixed tank capacitance must be non-negative")
        if self.tail_current <= 0:
            raise AnalysisError("tail current must be positive")


class LcTankVco:
    """Oscillation frequency, amplitude and sensitivities of the LC-tank VCO."""

    def __init__(self, design: VcoDesign):
        self.design = design

    # -- tank capacitance -------------------------------------------------------

    def varactor_bias(self, vtune: float) -> float:
        """Gate-to-well bias of the varactor for a given tuning voltage."""
        return self.design.tank_common_mode - vtune

    def tank_capacitance_per_side(self, vtune: float) -> float:
        """Total capacitance from one tank node to AC ground."""
        c_var = self.design.varactor.capacitance(self.varactor_bias(vtune))
        return c_var + self.design.fixed_capacitance_per_side

    def differential_tank_capacitance(self, vtune: float) -> float:
        """Capacitance seen differentially by the tank inductance."""
        return 0.5 * self.tank_capacitance_per_side(vtune)

    # -- oscillation frequency and tuning ----------------------------------------

    def oscillation_frequency(self, vtune: float) -> float:
        """Free-running oscillation frequency for a given tuning voltage."""
        c_diff = self.differential_tank_capacitance(vtune)
        if c_diff <= 0:
            raise AnalysisError("differential tank capacitance must be positive")
        return 1.0 / (2.0 * math.pi * math.sqrt(self.design.tank_inductance * c_diff))

    def tuning_gain(self, vtune: float, delta: float = 1e-3) -> float:
        """K_VCO = d f_c / d V_tune (Hz/V), central difference."""
        f_plus = self.oscillation_frequency(vtune + delta)
        f_minus = self.oscillation_frequency(vtune - delta)
        return (f_plus - f_minus) / (2.0 * delta)

    def tuning_range(self, vtune_min: float = 0.0, vtune_max: float = 1.5,
                     points: int = 11) -> tuple[float, float]:
        """(f_min, f_max) over the tuning voltage range."""
        frequencies = [self.oscillation_frequency(vtune_min + i *
                                                  (vtune_max - vtune_min) / (points - 1))
                       for i in range(points)]
        return min(frequencies), max(frequencies)

    # -- amplitude ------------------------------------------------------------------

    def tank_parallel_resistance(self, vtune: float) -> float:
        """Equivalent differential parallel loss resistance of the tank."""
        f_c = self.oscillation_frequency(vtune)
        return self.design.inductor.parallel_tank_loss(f_c)

    def amplitude(self, vtune: float) -> float:
        """Differential oscillation amplitude (volts, peak).

        Current-limited regime: ``A = (2/pi) * I_tail * R_p``, clipped to the
        supply-limited swing.
        """
        r_p = self.tank_parallel_resistance(vtune)
        current_limited = (2.0 / math.pi) * self.design.tail_current * r_p
        voltage_limited = self.design.supply_voltage
        return min(current_limited, voltage_limited)

    def amplitude_sensitivity_to_tail(self, vtune: float) -> float:
        """d A_c / d I_tail, zero when the oscillator is voltage limited."""
        r_p = self.tank_parallel_resistance(vtune)
        current_limited = (2.0 / math.pi) * self.design.tail_current * r_p
        if current_limited >= self.design.supply_voltage:
            return 0.0
        return (2.0 / math.pi) * r_p

    # -- sensitivities (K_i and G_AM,i) ------------------------------------------------

    def frequency_sensitivity_to_capacitance(self, vtune: float) -> float:
        """d f_c / d C_side (Hz/F): how a per-side capacitance change moves f_c."""
        f_c = self.oscillation_frequency(vtune)
        c_side = self.tank_capacitance_per_side(vtune)
        return -0.5 * f_c / c_side

    def ground_frequency_sensitivity(self, vtune: float) -> float:
        """K_gnd (Hz/V): frequency sensitivity to a bounce of the on-chip ground.

        A ground bounce changes the bias of the varactor (whose tuning input is
        referenced off-chip) and of the ground-referenced NMOS capacitances, so

        ``dC_side/dV_gnd = dC_var/dV + dC_nmos/dV``.
        """
        dc_var = self.design.varactor.dc_dv(self.varactor_bias(vtune))
        dc_total = dc_var + self.design.ground_referenced_cap_sensitivity
        return self.frequency_sensitivity_to_capacitance(vtune) * dc_total

    def tuning_node_frequency_sensitivity(self, vtune: float) -> float:
        """K_tune (Hz/V): sensitivity to noise on the tuning node itself."""
        dc_var = -self.design.varactor.dc_dv(self.varactor_bias(vtune))
        return self.frequency_sensitivity_to_capacitance(vtune) * dc_var

    def backgate_frequency_sensitivity(self, vtune: float,
                                       junction_cap_sensitivity: float) -> float:
        """K_bg (Hz/V) for an NMOS back-gate entry.

        ``junction_cap_sensitivity`` is dC/dV of that device's junction
        capacitance loading the tank (F/V), evaluated at the operating point.
        """
        return self.frequency_sensitivity_to_capacitance(vtune) * junction_cap_sensitivity

    def tank_node_frequency_sensitivity(self, vtune: float) -> float:
        """K_tank (Hz/V): sensitivity to a common-mode shift of the tank nodes.

        A common-mode tank shift changes the varactor bias in the same way a
        ground bounce does (the varactor's other terminal is the off-chip
        tuning voltage), so the sensitivity equals the varactor term alone.
        """
        dc_var = self.design.varactor.dc_dv(self.varactor_bias(vtune))
        return self.frequency_sensitivity_to_capacitance(vtune) * dc_var

    def ground_am_gain(self, vtune: float) -> float:
        """G_AM,gnd (1/V): relative amplitude sensitivity to a ground bounce.

        A ground bounce modulates the tail current through the tail device's
        transconductance; in the current-limited regime this modulates the
        oscillation amplitude.
        """
        amplitude = self.amplitude(vtune)
        da_dit = self.amplitude_sensitivity_to_tail(vtune)
        return da_dit * self.design.tail_transconductance / amplitude

    def generic_am_gain(self, vtune: float, current_sensitivity: float) -> float:
        """G_AM (1/V) for an entry that modulates the tail current by
        ``current_sensitivity`` amperes per volt."""
        amplitude = self.amplitude(vtune)
        da_dit = self.amplitude_sensitivity_to_tail(vtune)
        return da_dit * current_sensitivity / amplitude
