"""LC-tank VCO modelling: tuning, sensitivities and substrate-noise spurs."""

from .lctank import LcTankVco, VcoDesign
from .sensitivity import (
    ENTRY_GROUND,
    ENTRY_INDUCTOR,
    ENTRY_NMOS,
    ENTRY_PMOS_WELL,
    ENTRY_VARACTOR_WELL,
    EntryModel,
    VcoEntryCatalog,
    build_entry_catalog,
    entries_at_frequency,
    junction_capacitance_sensitivity,
)
from .spurs import NoiseEntry, SpurResult, compute_spurs, synthesize_output_waveform

__all__ = [
    "ENTRY_GROUND",
    "ENTRY_INDUCTOR",
    "ENTRY_NMOS",
    "ENTRY_PMOS_WELL",
    "ENTRY_VARACTOR_WELL",
    "EntryModel",
    "LcTankVco",
    "NoiseEntry",
    "SpurResult",
    "VcoDesign",
    "VcoEntryCatalog",
    "build_entry_catalog",
    "compute_spurs",
    "entries_at_frequency",
    "junction_capacitance_sensitivity",
    "synthesize_output_waveform",
]
