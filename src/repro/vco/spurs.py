"""Spur prediction: the paper's equations (1)-(3).

When a substrate-noise tone ``v_noise = A_noise * cos(2*pi*f_noise*t)``
couples into the VCO through ``n`` entries, the output is (paper eq. (1))

``v_out(t) = A_c * (1 + sum_i G_AM,i * h_sub,i * v_noise(t))
            * cos(2*pi*f_c*t + 2*pi * sum_i K_i * integral(h_sub,i * v_noise))``

For small noise (narrow-band FM) spurs appear at ``f_c +/- f_noise`` with
amplitudes (paper eqs. (2) and (3))

``|V_FM(f_c +/- f_noise)| = (A_c / 2) * |sum_i h_sub,i(f_noise) * K_i| * A_noise / f_noise``
``|V_AM(f_c +/- f_noise)| = (A_c / 2) * |sum_i h_sub,i(f_noise) * G_AM,i| * A_noise``

This module evaluates those expressions per entry and combined, converts spur
voltages to power in dBm, and synthesises the time-domain output waveform of
eq. (1) so a spectrum-analyzer view (the paper's Figure 7) can be produced by
FFT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..units import vpeak_to_dbm


@dataclass(frozen=True)
class NoiseEntry:
    """One substrate-noise entry into the VCO.

    Parameters
    ----------
    name:
        Identifier used in reports ("ground interconnect", "NMOS back-gate",
        "inductor", ...).
    h_sub:
        Complex transfer from the substrate-noise source to this entry at the
        analysed noise frequency (V/V).
    k_hz_per_volt:
        Oscillator frequency sensitivity to a voltage on this entry (Hz/V).
    g_am_per_volt:
        AM gain of this entry (1/V).
    mechanism:
        "resistive" or "capacitive" — how the noise reaches the entry; used by
        the mechanism-classification analysis, not by the spur equations.
    """

    name: str
    h_sub: complex
    k_hz_per_volt: float
    g_am_per_volt: float = 0.0
    mechanism: str = "resistive"


@dataclass
class SpurResult:
    """Spur amplitudes of one analysis point (one noise frequency / V_tune)."""

    noise_frequency: float
    carrier_frequency: float
    carrier_amplitude: float
    noise_amplitude: float
    entries: list[NoiseEntry]
    fm_voltage: float                 #: |V_FM| at f_c +/- f_noise (volts peak)
    am_voltage: float                 #: |V_AM| at f_c +/- f_noise (volts peak)
    lower_sideband_voltage: float
    upper_sideband_voltage: float
    per_entry_fm_voltage: dict[str, float] = field(default_factory=dict)
    per_entry_am_voltage: dict[str, float] = field(default_factory=dict)

    @property
    def total_spur_voltage(self) -> float:
        """RSS of the two sidebands' voltages (the paper's 'total spur power')."""
        return math.sqrt(self.lower_sideband_voltage ** 2
                         + self.upper_sideband_voltage ** 2)

    def total_spur_power_dbm(self, impedance: float = 50.0) -> float:
        """Total spur power (both sidebands) in dBm into ``impedance``."""
        power = (self.lower_sideband_voltage ** 2
                 + self.upper_sideband_voltage ** 2) / (2.0 * impedance)
        if power <= 0:
            return -300.0
        return 10.0 * math.log10(power / 1e-3)

    def sideband_power_dbm(self, side: str = "upper",
                           impedance: float = 50.0) -> float:
        voltage = (self.upper_sideband_voltage if side == "upper"
                   else self.lower_sideband_voltage)
        return float(vpeak_to_dbm(max(voltage, 1e-15), impedance))

    def record(self, impedance: float = 50.0) -> dict[str, float]:
        """Flat tidy row of this analysis point (for sweep-result stores)."""
        row = {
            "noise_frequency": self.noise_frequency,
            "carrier_frequency": self.carrier_frequency,
            "carrier_amplitude": self.carrier_amplitude,
            "spur_power_dbm": self.total_spur_power_dbm(impedance),
            "lower_sideband_dbm": self.sideband_power_dbm("lower", impedance),
            "upper_sideband_dbm": self.sideband_power_dbm("upper", impedance),
            "fm_voltage": self.fm_voltage,
            "am_voltage": self.am_voltage,
        }
        for entry in self.entries:
            row[f"entry:{entry.name}_dbm"] = self.entry_power_dbm(
                entry.name, impedance)
        return row

    def entry_power_dbm(self, name: str, impedance: float = 50.0) -> float:
        """Total spur power (both sidebands) of a single entry in dBm."""
        v_fm = self.per_entry_fm_voltage[name]
        v_am = self.per_entry_am_voltage[name]
        power = (v_fm ** 2 + v_am ** 2) / impedance   # both sidebands
        if power <= 0:
            return -300.0
        return 10.0 * math.log10(power / 1e-3)


def compute_spurs(entries: list[NoiseEntry], carrier_frequency: float,
                  carrier_amplitude: float, noise_amplitude: float,
                  noise_frequency: float) -> SpurResult:
    """Evaluate the paper's spur equations for one analysis point."""
    if noise_frequency <= 0:
        raise AnalysisError("noise frequency must be positive")
    if carrier_amplitude <= 0 or noise_amplitude <= 0:
        raise AnalysisError("carrier and noise amplitudes must be positive")
    if not entries:
        raise AnalysisError("at least one noise entry is required")

    half_carrier = carrier_amplitude / 2.0
    fm_sum = complex(0.0, 0.0)
    am_sum = complex(0.0, 0.0)
    per_entry_fm: dict[str, float] = {}
    per_entry_am: dict[str, float] = {}
    for entry in entries:
        fm_term = entry.h_sub * entry.k_hz_per_volt / noise_frequency
        am_term = entry.h_sub * entry.g_am_per_volt
        fm_sum += fm_term
        am_sum += am_term
        per_entry_fm[entry.name] = half_carrier * noise_amplitude * abs(fm_term)
        per_entry_am[entry.name] = half_carrier * noise_amplitude * abs(am_term)

    fm_voltage = half_carrier * noise_amplitude * abs(fm_sum)
    am_voltage = half_carrier * noise_amplitude * abs(am_sum)
    # Narrow-band FM produces anti-phase sidebands while AM produces in-phase
    # sidebands, so the two mechanisms add on one side of the carrier and
    # subtract on the other — the paper's "small difference between left and
    # right spur ... caused by negligible AM".
    upper = half_carrier * noise_amplitude * abs(fm_sum + am_sum)
    lower = half_carrier * noise_amplitude * abs(fm_sum - am_sum)
    return SpurResult(
        noise_frequency=noise_frequency,
        carrier_frequency=carrier_frequency,
        carrier_amplitude=carrier_amplitude,
        noise_amplitude=noise_amplitude,
        entries=list(entries),
        fm_voltage=fm_voltage,
        am_voltage=am_voltage,
        lower_sideband_voltage=lower,
        upper_sideband_voltage=upper,
        per_entry_fm_voltage=per_entry_fm,
        per_entry_am_voltage=per_entry_am)


def synthesize_output_waveform(result: SpurResult, duration: float,
                               sample_rate: float) -> tuple[np.ndarray, np.ndarray]:
    """Synthesise the VCO output voltage of eq. (1) for the analysed tone.

    Returns ``(time, v_out)``.  The FM term integrates the frequency deviation
    analytically (sinusoidal noise), the AM term multiplies the envelope.
    """
    if duration <= 0 or sample_rate <= 0:
        raise AnalysisError("duration and sample rate must be positive")
    n_samples = int(round(duration * sample_rate))
    time = np.arange(n_samples) / sample_rate

    omega_noise = 2.0 * math.pi * result.noise_frequency
    fm_sum = complex(0.0, 0.0)
    am_sum = complex(0.0, 0.0)
    for entry in result.entries:
        fm_sum += entry.h_sub * entry.k_hz_per_volt
        am_sum += entry.h_sub * entry.g_am_per_volt

    # Effective noise reaching the frequency / amplitude control, as real
    # signals with the phase of the summed transfer.
    fm_mag, fm_phase = abs(fm_sum), np.angle(fm_sum)
    am_mag, am_phase = abs(am_sum), np.angle(am_sum)

    # Frequency deviation: delta_f(t) = fm_mag * A_noise * cos(w t + phase).
    # Its integral contributes (fm_mag*A_noise/f_noise) * sin(w t + phase)/(2*pi) cycles.
    phase_deviation = (result.noise_amplitude * fm_mag / result.noise_frequency
                       * np.sin(omega_noise * time + fm_phase))
    envelope = 1.0 + result.noise_amplitude * am_mag * np.cos(
        omega_noise * time + am_phase)
    v_out = result.carrier_amplitude * envelope * np.cos(
        2.0 * math.pi * result.carrier_frequency * time + phase_deviation)
    return time, v_out
