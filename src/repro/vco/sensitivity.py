"""Per-entry sensitivity extraction for the VCO spur analysis.

The spur equations need, for every substrate-noise entry ``i``:

* ``h_sub,i(f)`` — the transfer from the injected substrate tone to the entry,
  obtained from an AC analysis of the assembled impact netlist,
* ``K_i`` — the oscillator frequency sensitivity of the entry, from the
  analytical :class:`~repro.vco.lctank.LcTankVco` model,
* ``G_AM,i`` — the AM gain of the entry.

This module turns a solved :class:`~repro.simulator.transfer.TransferFunction`
plus the VCO model into the list of :class:`~repro.vco.spurs.NoiseEntry`
objects per analysed noise frequency.

Entry inventory (paper Section 5):

* the non-ideal on-chip **ground interconnect** (resistive coupling),
* the **NMOS back-gates** of the cross-coupled pair and the tail device
  (resistive coupling),
* the **inductor** (capacitive coupling through the coil oxide capacitance),
* the **PMOS n-well** and the **varactor n-well** (capacitive coupling through
  the well junction capacitance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


from ..errors import AnalysisError
from ..simulator.transfer import TransferFunction
from .lctank import LcTankVco
from .spurs import NoiseEntry

#: Canonical entry names used in reports and figures.
ENTRY_GROUND = "ground interconnect"
ENTRY_NMOS = "NMOS back-gate"
ENTRY_INDUCTOR = "inductor"
ENTRY_PMOS_WELL = "PMOS n-well"
ENTRY_VARACTOR_WELL = "varactor n-well"


@dataclass(frozen=True)
class EntryModel:
    """Static description of one noise entry (frequency-independent part)."""

    name: str
    k_hz_per_volt: float
    g_am_per_volt: float
    mechanism: str
    #: node whose AC voltage is the entry's h_sub (resistive entries)
    observe_node: str | None = None
    #: node whose voltage must be subtracted (e.g. the device source)
    reference_node: str | None = None
    #: for capacitive entries: substrate-side port node, coupling capacitance
    #: and the effective impedance of the victim node at the noise frequency
    port_node: str | None = None
    coupling_capacitance: float = 0.0
    victim_impedance: float = 0.0


@dataclass
class VcoEntryCatalog:
    """All noise entries of the VCO plus the nodes an AC analysis must observe."""

    entries: list[EntryModel] = field(default_factory=list)

    def observation_nodes(self) -> list[str]:
        nodes: list[str] = []
        for entry in self.entries:
            for node in (entry.observe_node, entry.reference_node, entry.port_node):
                if node is not None and node not in nodes:
                    nodes.append(node)
        return nodes

    def names(self) -> list[str]:
        return [entry.name for entry in self.entries]


def build_entry_catalog(vco: LcTankVco, vtune: float, *,
                        ground_node: str,
                        nmos_backgate_nodes: dict[str, str],
                        nmos_source_nodes: dict[str, str],
                        nmos_junction_sensitivity: dict[str, float],
                        inductor_port_node: str | None = None,
                        inductor_capacitance: float = 120e-15,
                        pmos_well_port_node: str | None = None,
                        pmos_well_capacitance: float = 0.0,
                        varactor_well_port_node: str | None = None,
                        varactor_well_capacitance: float = 0.0,
                        tank_common_mode_impedance: float = 1000.0,
                        supply_impedance: float = 10.0,
                        tune_impedance: float = 50.0) -> VcoEntryCatalog:
    """Assemble the entry catalogue of the paper's VCO at one tuning voltage.

    ``nmos_backgate_nodes`` maps device names to their bulk (back-gate) nodes,
    ``nmos_source_nodes`` to their source nodes and
    ``nmos_junction_sensitivity`` to the dC/dV (F/V) with which their junction
    capacitance loads the tank.
    """
    catalog = VcoEntryCatalog()

    # -- ground interconnect: resistive, the paper's dominant entry ------------
    catalog.entries.append(EntryModel(
        name=ENTRY_GROUND,
        k_hz_per_volt=vco.ground_frequency_sensitivity(vtune),
        g_am_per_volt=vco.ground_am_gain(vtune),
        mechanism="resistive",
        observe_node=ground_node))

    # -- NMOS back-gates: resistive, one entry per device -----------------------
    for device, bulk_node in nmos_backgate_nodes.items():
        sensitivity = nmos_junction_sensitivity.get(device, 0.0)
        catalog.entries.append(EntryModel(
            name=f"{ENTRY_NMOS} ({device})",
            k_hz_per_volt=vco.backgate_frequency_sensitivity(vtune, sensitivity),
            g_am_per_volt=0.0,
            mechanism="resistive",
            observe_node=bulk_node,
            reference_node=nmos_source_nodes.get(device)))

    # -- inductor: capacitive through the coil oxide capacitance -----------------
    if inductor_port_node is not None:
        catalog.entries.append(EntryModel(
            name=ENTRY_INDUCTOR,
            k_hz_per_volt=vco.tank_node_frequency_sensitivity(vtune),
            g_am_per_volt=0.0,
            mechanism="capacitive",
            port_node=inductor_port_node,
            coupling_capacitance=inductor_capacitance,
            victim_impedance=tank_common_mode_impedance))

    # -- PMOS n-well: capacitive, victim is the stiff supply --------------------
    if pmos_well_port_node is not None:
        pmos_sensitivity = sum(nmos_junction_sensitivity.values()) * 0.3
        catalog.entries.append(EntryModel(
            name=ENTRY_PMOS_WELL,
            k_hz_per_volt=vco.backgate_frequency_sensitivity(vtune, pmos_sensitivity),
            g_am_per_volt=0.0,
            mechanism="capacitive",
            port_node=pmos_well_port_node,
            coupling_capacitance=pmos_well_capacitance,
            victim_impedance=supply_impedance))

    # -- varactor n-well: capacitive, victim is the stiff tuning input ------------
    if varactor_well_port_node is not None:
        catalog.entries.append(EntryModel(
            name=ENTRY_VARACTOR_WELL,
            k_hz_per_volt=vco.tuning_node_frequency_sensitivity(vtune),
            g_am_per_volt=0.0,
            mechanism="capacitive",
            port_node=varactor_well_port_node,
            coupling_capacitance=varactor_well_capacitance,
            victim_impedance=tune_impedance))

    return catalog


def entries_at_frequency(catalog: VcoEntryCatalog, transfer: TransferFunction,
                         noise_frequency: float) -> list[NoiseEntry]:
    """Evaluate every catalogue entry's ``h_sub`` at one noise frequency.

    Resistive entries read the node voltage (minus the reference node when
    given) straight from the AC transfer.  Capacitive entries take the voltage
    of the substrate-side port node and multiply by the coupling admittance
    times the victim impedance — the voltage actually induced on the victim.
    """
    if noise_frequency <= 0:
        raise AnalysisError("noise frequency must be positive")
    entries: list[NoiseEntry] = []
    omega = 2.0 * math.pi * noise_frequency
    for model in catalog.entries:
        if model.observe_node is not None:
            h = transfer.at(model.observe_node, noise_frequency)
            if model.reference_node is not None:
                h -= transfer.at(model.reference_node, noise_frequency)
        elif model.port_node is not None:
            port_voltage = transfer.at(model.port_node, noise_frequency)
            h = port_voltage * (1j * omega * model.coupling_capacitance
                                * model.victim_impedance)
        else:
            raise AnalysisError(f"entry {model.name!r} has no observable node")
        entries.append(NoiseEntry(
            name=model.name, h_sub=complex(h),
            k_hz_per_volt=model.k_hz_per_volt,
            g_am_per_volt=model.g_am_per_volt,
            mechanism=model.mechanism))
    return entries


def junction_capacitance_sensitivity(model, vgs: float, vds: float, vbs: float,
                                     delta: float = 1e-3) -> float:
    """Numerical dC/dV of a MOSFET's drain+source junction capacitance (F/V).

    ``model`` is a :class:`~repro.devices.mosfet.MosfetModel`.  The derivative
    is taken with respect to the bulk voltage, which is what a substrate /
    ground bounce modulates.
    """
    op_plus = model.evaluate(vgs, vds, vbs + delta)
    op_minus = model.evaluate(vgs, vds, vbs - delta)
    c_plus = op_plus.cdb + op_plus.csb
    c_minus = op_minus.cdb + op_minus.csb
    return abs(c_plus - c_minus) / (2.0 * delta)
