"""Substrate extraction: box-integration mesh, Kron reduction, port macromodel."""

from .mesh import MeshSpec, SubstrateMesh
from .reduction import SubstrateMacromodel, kron_reduce
from .extraction import (
    PortKind,
    SubstrateExtraction,
    SubstrateExtractionOptions,
    SubstratePort,
    extract_substrate,
    identify_ports,
)

__all__ = [
    "MeshSpec",
    "PortKind",
    "SubstrateExtraction",
    "SubstrateExtractionOptions",
    "SubstrateMacromodel",
    "SubstrateMesh",
    "SubstratePort",
    "extract_substrate",
    "identify_ports",
    "kron_reduce",
]
