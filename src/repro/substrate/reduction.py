"""Port reduction of the substrate mesh to a compact macromodel.

The full box-integration mesh has thousands of internal nodes; the circuit
only interacts with it through a handful of *ports* (substrate taps, guard
rings, device back-gates, wells, inductor footprints).  The mesh is reduced
exactly (for the resistive network) by a Schur complement — Kron reduction —
of the internal nodes:

``Y_red = Y_pp - Y_pi * Y_ii^{-1} * Y_ip``

The reduced admittance matrix is then converted into an equivalent
resistor network between the port nodes, which is what gets merged into the
impact netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..errors import ExtractionError, SimulationError
from ..netlist.circuit import Circuit
from ..obs import trace_span
from ..simulator.linalg import LinearSolver, SolverOptions, resolve_solver


@dataclass
class SubstrateMacromodel:
    """Reduced N-port admittance description of the substrate.

    ``admittance[i, j]`` is the (i, j) entry of the reduced nodal admittance
    matrix in siemens; ``ports`` gives the port names in matrix order.
    ``ground_port`` optionally names a port that is treated as the reference
    (e.g. a backside contact); it is kept in the matrix like any other port.
    """

    ports: tuple[str, ...]
    admittance: np.ndarray
    contact_resistance: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.ports)
        if self.admittance.shape != (n, n):
            raise ExtractionError("admittance matrix shape does not match port count")

    def port_index(self, name: str) -> int:
        try:
            return self.ports.index(name)
        except ValueError:
            raise ExtractionError(f"unknown substrate port {name!r}") from None

    def coupling_resistance(self, port_a: str, port_b: str) -> float:
        """Direct branch resistance between two ports in the equivalent network.

        This is ``-1 / Y_ab`` — the value of the resistor that connects the two
        port nodes in the reduced network (not the two-terminal driving-point
        resistance, which also includes paths through the other ports).
        """
        i, j = self.port_index(port_a), self.port_index(port_b)
        y = -self.admittance[i, j]
        if y <= 0.0:
            return np.inf
        return 1.0 / y

    def transfer_resistance_matrix(self) -> np.ndarray:
        """Pseudo-inverse of the admittance matrix (useful for diagnostics)."""
        return np.linalg.pinv(self.admittance)

    def voltage_division(self, source_port: str, sense_port: str,
                         grounded_ports: dict[str, float]) -> float:
        """Voltage at ``sense_port`` per volt at ``source_port``.

        ``grounded_ports`` maps port names to the resistance with which they
        are tied to the external reference (0 V); use a small value for a
        solidly grounded guard ring, or the extracted interconnect resistance
        to reproduce the paper's observation that the ground-wire resistance
        nearly doubles the back-gate voltage.
        """
        n = len(self.ports)
        y = self.admittance.copy()
        for name, resistance in grounded_ports.items():
            if resistance < 0:
                raise ExtractionError("ground tie resistance must be >= 0")
            index = self.port_index(name)
            y[index, index] += 1.0 / max(resistance, 1e-9)
        src = self.port_index(source_port)
        sense = self.port_index(sense_port)
        keep = [i for i in range(n) if i != src]
        y_kk = y[np.ix_(keep, keep)]
        rhs = -y[np.ix_(keep, [src])].ravel()
        solution = np.linalg.solve(y_kk, rhs)
        voltages = np.zeros(n)
        voltages[src] = 1.0
        for value, index in zip(solution, keep):
            voltages[index] = value
        return float(voltages[sense])

    def to_circuit(self, node_names: dict[str, str] | None = None,
                   name: str = "substrate_macromodel",
                   min_conductance: float = 1e-9) -> Circuit:
        """Convert the macromodel to a resistor network circuit.

        ``node_names`` maps port names to circuit node names (defaults to the
        port names themselves).  Branches with conductance below
        ``min_conductance`` siemens (> 1 Gohm) are dropped to keep the netlist
        compact; the contact resistances recorded during extraction are added
        in series as explicit resistors on dedicated ``<port>__tap`` nodes.
        """
        node_names = node_names or {}
        circuit = Circuit(name=name)
        n = len(self.ports)

        def node_of(port: str) -> str:
            return node_names.get(port, port)

        # Internal mesh-side node of each port (before contact resistance).
        def mesh_node_of(port: str) -> str:
            if port in self.contact_resistance and self.contact_resistance[port] > 0:
                return f"{node_of(port)}__tap"
            return node_of(port)

        for i in range(n):
            for j in range(i + 1, n):
                g = -self.admittance[i, j]
                if g > min_conductance:
                    circuit.add_resistor(
                        f"Rsub_{self.ports[i]}_{self.ports[j]}",
                        mesh_node_of(self.ports[i]), mesh_node_of(self.ports[j]),
                        1.0 / g)
        for port, resistance in self.contact_resistance.items():
            if resistance > 0:
                circuit.add_resistor(f"Rcontact_{port}", node_of(port),
                                     f"{node_of(port)}__tap", resistance)
        return circuit


def kron_reduce(conductance: sp.spmatrix,
                port_nodes: list[list[int]] | list[list[tuple[int, float]]],
                port_names: list[str],
                port_contact_conductance: list[float] | None = None,
                solver: "SolverOptions | LinearSolver | None" = None,
                grid=None) -> SubstrateMacromodel:
    """Reduce a mesh conductance matrix to its port-level macromodel.

    Parameters
    ----------
    conductance:
        The (N x N) mesh Laplacian from
        :meth:`repro.substrate.mesh.SubstrateMesh.conductance_matrix`.
    port_nodes:
        For each port, either a plain list of mesh node indices (the port's
        contact conductance is then split evenly over them) or a list of
        ``(node_index, conductance)`` pairs giving the connection conductance
        per mesh node explicitly (used for partial-coverage contacts).
    port_names:
        Name of each port (same order as ``port_nodes``).
    port_contact_conductance:
        Total contact conductance of each port in siemens when ``port_nodes``
        holds plain indices (``None`` means an ideal connection, implemented
        as a very large conductance).  Ignored for ``(node, conductance)``
        pairs.
    solver:
        Linear-solver backend for the internal-block solve
        (:class:`~repro.simulator.linalg.SolverOptions` or a ready
        :class:`~repro.simulator.linalg.LinearSolver`).  The regularised
        internal matrix is symmetric positive definite, which makes this the
        prime target of the ``iterative`` (CG + incomplete-factorization)
        backend on meshes where a direct LU stops fitting.
    grid:
        Structured-grid shape behind ``conductance`` (a
        :class:`~repro.simulator.linalg.GridGeometry`, from
        :meth:`~repro.substrate.mesh.SubstrateMesh.grid_geometry`).  Enables
        geometric coarsening in the ``multigrid`` backend; other backends
        ignore it.

    Returns
    -------
    SubstrateMacromodel
        Exact Schur complement of the internal mesh nodes.
    """
    if len(port_nodes) != len(port_names):
        raise ExtractionError("port_nodes and port_names must have the same length")
    if not port_names:
        raise ExtractionError("at least one port is required")
    n_mesh = conductance.shape[0]
    n_ports = len(port_names)
    if port_contact_conductance is None:
        port_contact_conductance = [1e6] * n_ports
    if len(port_contact_conductance) != n_ports:
        raise ExtractionError("contact conductance list length mismatch")

    # The Schur blocks of the augmented (mesh + port) system are assembled
    # directly — no augmented matrix is ever formed.  Port couplings only add
    # to the internal diagonal (Y_ii), the dense internal-to-port block
    # (Y_ip) and the port diagonal (Y_pp).
    internal_diagonal = np.zeros(n_mesh)
    y_ip = np.zeros((n_mesh, n_ports))
    y_pp = np.zeros((n_ports, n_ports))

    for port_idx, (nodes, g_total) in enumerate(zip(port_nodes, port_contact_conductance)):
        if not nodes:
            raise ExtractionError(
                f"port {port_names[port_idx]!r} does not contact any mesh node "
                "(is the shape outside the meshed region?)")
        if g_total <= 0:
            raise ExtractionError("port contact conductance must be positive")
        if isinstance(nodes[0], tuple):
            weighted = [(int(node), float(g)) for node, g in nodes]
        else:
            share = g_total / len(nodes)
            weighted = [(int(node), share) for node in nodes]
        for node, share in weighted:
            if share <= 0:
                raise ExtractionError("per-node contact conductance must be positive")
            internal_diagonal[node] += share
            y_ip[node, port_idx] -= share
            y_pp[port_idx, port_idx] += share

    # Regularise the internal block minimally: the floating mesh Laplacian is
    # singular only together with the port rows, and after connecting ports it
    # is non-singular; a tiny diagonal shift guards against round-off.
    y_ii = (sp.csc_matrix(conductance)
            + sp.diags(internal_diagonal + 1e-12, format="csc"))

    # One factorization (or preconditioner setup) of Y_ii, one multi-RHS
    # solve against every port column at once.
    try:
        with trace_span("extract.kron", nodes=n_mesh, ports=n_ports):
            solved = resolve_solver(solver).factorize(
                y_ii, grid=grid).solve(y_ip)
    except SimulationError as exc:
        raise ExtractionError(f"substrate reduction failed: {exc}") from exc
    reduced = y_pp - y_ip.T @ solved
    # Enforce symmetry (numerical round-off).
    reduced = 0.5 * (reduced + reduced.T)
    return SubstrateMacromodel(ports=tuple(port_names), admittance=reduced)
