"""Layout-driven substrate extraction.

This module plays the role of the commercial substrate extractor in the
paper's flow (SubstrateStorm): starting from the layout cell and the process
technology it

1. determines the *ports* through which the circuit interacts with the
   substrate — substrate taps / guard rings (resistive), NMOS back-gates
   (resistive), n-wells of PMOS devices and varactors (capacitive through the
   well junction), and spiral-inductor footprints (capacitive through the
   coil oxide),
2. meshes the substrate under and around the layout with a box-integration
   grid,
3. reduces the mesh to an exact port-level macromodel (Kron reduction).

The result, a :class:`SubstrateExtraction`, carries the macromodel plus the
book-keeping needed by :mod:`repro.extraction.merge` to connect each port to
the right circuit net (directly for resistive ports, through the appropriate
junction/oxide capacitance for capacitive ports).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field


from ..errors import ExtractionError
from ..obs import trace_span
from ..layout.cell import Cell, DeviceAnnotation
from ..layout.geometry import Rect, bounding_box
from ..technology.process import ProcessTechnology
from .mesh import MeshSpec, SubstrateMesh
from .reduction import SubstrateMacromodel, kron_reduce


class PortKind(enum.Enum):
    """How a substrate port couples into the circuit."""

    TAP = "tap"               #: metal ground tap / guard ring: direct resistive tie
    BACKGATE = "backgate"     #: NMOS bulk: direct resistive tie to the bulk net
    WELL = "well"             #: n-well: junction capacitance to the well net
    INDUCTOR = "inductor"     #: coil footprint: oxide capacitance to the coil nets
    INJECTION = "injection"   #: dedicated noise-injection contact


@dataclass(frozen=True)
class SubstratePort:
    """One port of the substrate macromodel and how to hook it to the circuit."""

    name: str
    kind: PortKind
    nets: tuple[str, ...]                 #: circuit nets this port couples to
    region: Rect
    contact_resistance: float = 0.0       #: series contact resistance (TAP ports)
    coupling_capacitance: float = 0.0     #: total coupling cap (WELL / INDUCTOR)
    device: str | None = None             #: source device annotation name

    @property
    def is_resistive(self) -> bool:
        return self.kind in (PortKind.TAP, PortKind.BACKGATE, PortKind.INJECTION)


@dataclass
class SubstrateExtraction:
    """Result of the substrate extraction step."""

    cell_name: str
    ports: list[SubstratePort]
    macromodel: SubstrateMacromodel
    mesh_nodes: int
    #: sub-stage wall seconds ("mesh_assembly", "kron_reduction") — always
    #: measured (cheap perf_counter pairs), independent of the span tracer.
    timings: dict[str, float] = field(default_factory=dict)

    def port(self, name: str) -> SubstratePort:
        for port in self.ports:
            if port.name == name:
                return port
        raise ExtractionError(f"no substrate port named {name!r}")

    def ports_of_kind(self, kind: PortKind) -> list[SubstratePort]:
        return [p for p in self.ports if p.kind == kind]

    def ports_of_net(self, net: str) -> list[SubstratePort]:
        return [p for p in self.ports if net in p.nets]


@dataclass(frozen=True)
class SubstrateExtractionOptions:
    """Controls for the mesh resolution and extent.

    The default resolution (48 x 48 lateral boxes over the port region) keeps
    the lateral box size around 10-15 um for the paper's test chips, which is
    fine enough to separate the device back-gates from the surrounding ground
    taps; coarser meshes over-clamp the back-gate to the ring potential.
    """

    nx: int = 48
    ny: int = 48
    n_z_per_layer: int = 3
    max_depth: float = 200e-6
    lateral_margin: float = 80e-6
    min_tap_conductance: float = 1e-3     #: floor on a tap's contact conductance [S]


def _ring_strips(footprint: Rect, ring_width: float) -> list[Rect]:
    """Rectangles actually covered by a guard ring (footprint minus its hole)."""
    if ring_width <= 0:
        return [footprint]
    inner_x0 = footprint.x0 + ring_width
    inner_y0 = footprint.y0 + ring_width
    inner_x1 = footprint.x1 - ring_width
    inner_y1 = footprint.y1 - ring_width
    if inner_x1 - inner_x0 <= 0 or inner_y1 - inner_y0 <= 0:
        return [footprint]       # solid contact (e.g. the injection tap)
    return [
        Rect(footprint.x0, inner_y1, footprint.x1, footprint.y1),   # top
        Rect(footprint.x0, footprint.y0, footprint.x1, inner_y0),   # bottom
        Rect(footprint.x0, inner_y0, inner_x0, inner_y1),           # left
        Rect(inner_x1, inner_y0, footprint.x1, inner_y1),           # right
    ]


def _tap_contact_resistance(device: DeviceAnnotation,
                            technology: ProcessTechnology) -> float:
    """Effective contact resistance of a tap / guard ring from its drawn area."""
    area = device.parameters.get("area", device.footprint.area)
    contact_pitch = 0.5e-6
    n_cuts = max(1, int(area / contact_pitch ** 2))
    return technology.substrate_contact_resistance / n_cuts


def identify_ports(cell: Cell, technology: ProcessTechnology) -> list[SubstratePort]:
    """Derive the substrate ports of a layout cell from its device annotations."""
    ports: list[SubstratePort] = []
    for device in cell.devices:
        if device.device_type == "substrate_contact":
            net = device.terminals.get("tap")
            if net is None:
                raise ExtractionError(
                    f"substrate contact {device.name!r} has no 'tap' terminal")
            kind = PortKind.INJECTION if net.upper().startswith("SUB") else PortKind.TAP
            ports.append(SubstratePort(
                name=f"sub:{device.name}", kind=kind, nets=(net,),
                region=device.footprint,
                contact_resistance=_tap_contact_resistance(device, technology),
                device=device.name))
        elif device.device_type == "nmos":
            bulk_net = device.terminals.get("b")
            if bulk_net is None:
                raise ExtractionError(f"NMOS {device.name!r} has no bulk terminal")
            ports.append(SubstratePort(
                name=f"bulk:{device.name}", kind=PortKind.BACKGATE,
                nets=(bulk_net,), region=device.footprint, device=device.name))
        elif device.device_type == "pmos":
            well_net = device.terminals.get("b")
            if well_net is None:
                raise ExtractionError(f"PMOS {device.name!r} has no bulk terminal")
            well = technology.well_parameters("nwell")
            cap = well.capacitance(device.footprint.area, device.footprint.perimeter)
            ports.append(SubstratePort(
                name=f"well:{device.name}", kind=PortKind.WELL,
                nets=(well_net,), region=device.footprint,
                coupling_capacitance=cap, device=device.name))
        elif device.device_type == "varactor":
            well_net = device.terminals.get("well")
            if well_net is None:
                raise ExtractionError(f"varactor {device.name!r} has no well terminal")
            well = technology.well_parameters("nwell")
            cap = well.capacitance(device.footprint.area, device.footprint.perimeter)
            ports.append(SubstratePort(
                name=f"well:{device.name}", kind=PortKind.WELL,
                nets=(well_net,), region=device.footprint,
                coupling_capacitance=cap, device=device.name))
        elif device.device_type == "inductor":
            nets = tuple(net for terminal, net in device.terminals.items()
                         if terminal in ("plus", "minus"))
            cap = device.parameters.get("substrate_capacitance", 120e-15)
            ports.append(SubstratePort(
                name=f"ind:{device.name}", kind=PortKind.INDUCTOR,
                nets=nets, region=device.footprint,
                coupling_capacitance=cap, device=device.name))
    if not ports:
        raise ExtractionError(
            f"cell {cell.name!r} has no substrate ports (no annotated devices)")
    return ports


def extract_substrate(cell: Cell, technology: ProcessTechnology,
                      options: SubstrateExtractionOptions | None = None,
                      solver=None) -> SubstrateExtraction:
    """Run the full substrate extraction for a layout cell.

    ``solver`` (a :class:`~repro.simulator.linalg.SolverOptions` or
    :class:`~repro.simulator.linalg.LinearSolver`) selects the backend for
    the mesh solve of the Kron reduction — the dominant cost of the
    extraction, and an SPD system the iterative backend can handle on meshes
    too large for a direct LU.
    """
    options = options or SubstrateExtractionOptions()
    ports = identify_ports(cell, technology)

    # Mesh the region actually spanned by the substrate ports (plus a margin
    # for current spreading) rather than the full layout bounding box: bond
    # pads and long routing far from any port do not influence the substrate
    # coupling but would waste mesh resolution.
    region = bounding_box([port.region for port in ports]).expanded(
        options.lateral_margin)
    spec = MeshSpec(region=region, nx=options.nx, ny=options.ny,
                    max_depth=options.max_depth,
                    n_z_per_layer=options.n_z_per_layer)
    t_mesh = time.perf_counter()
    with trace_span("extract.mesh", nx=options.nx, ny=options.ny):
        mesh = SubstrateMesh(spec=spec, profile=technology.substrate)
        conductance = mesh.conductance_matrix()
    mesh_seconds = time.perf_counter() - t_mesh

    port_nodes: list[list[tuple[int, float]]] = []
    for port in ports:
        if port.kind in (PortKind.TAP, PortKind.INJECTION):
            device = next(d for d in cell.devices if d.name == port.device)
            ring_width = device.parameters.get("ring_width", 0.0)
            regions = _ring_strips(port.region, ring_width)
        else:
            regions = [port.region]
        # Distribute the port's total contact conductance over the surface
        # cells it overlaps, proportionally to the overlapped area.  A guard
        # ring that covers only a sliver of a large mesh cell therefore grabs
        # that cell much more weakly than a cell it covers completely.
        overlaps: dict[int, float] = {}
        total_area = 0.0
        for rect in regions:
            for ix, iy, area in mesh.surface_cells_under(rect):
                node = mesh.node_index(ix, iy, 0)
                overlaps[node] = overlaps.get(node, 0.0) + area
                total_area += area
        if not overlaps or total_area <= 0:
            raise ExtractionError(
                f"substrate port {port.name!r} does not overlap the meshed region")
        if port.contact_resistance > 0:
            total_conductance = max(1.0 / port.contact_resistance,
                                    options.min_tap_conductance)
        else:
            total_conductance = 1e6
        port_nodes.append([(node, total_conductance * area / total_area)
                           for node, area in sorted(overlaps.items())])

    t_kron = time.perf_counter()
    macromodel = kron_reduce(conductance, port_nodes,
                             [port.name for port in ports], solver=solver,
                             grid=mesh.grid_geometry())
    kron_seconds = time.perf_counter() - t_kron
    return SubstrateExtraction(cell_name=cell.name, ports=ports,
                               macromodel=macromodel,
                               mesh_nodes=mesh.n_nodes,
                               timings={"mesh_assembly": mesh_seconds,
                                        "kron_reduction": kron_seconds})
