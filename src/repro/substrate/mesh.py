"""3-D box-integration mesh of the substrate.

The substrate is discretised into a regular grid of boxes: uniform in the
lateral (x, y) directions over the region of interest and layered vertically
according to the technology's doping profile (thin boxes near the surface
where contacts and devices sit, thick boxes in the deep bulk).  Each box is a
node; neighbouring boxes are connected by conductances

``G = sigma_avg * A / d``

where ``A`` is the shared face area, ``d`` the centre-to-centre distance and
``sigma_avg`` the series-averaged conductivity of the two half-boxes — the
standard finite-volume (box integration) discretisation of the Laplace
equation that commercial substrate extractors use.

Surface *ports* (substrate taps, guard rings, device back-gates, wells,
inductor footprints) are attached to the surface boxes they cover and are
later reduced to a compact macromodel by
:mod:`repro.substrate.reduction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..errors import ExtractionError
from ..layout.geometry import Rect
from ..obs import trace_span
from ..technology.process import SubstrateProfile


@dataclass(frozen=True)
class MeshSpec:
    """Lateral extent and resolution of the substrate mesh.

    Parameters
    ----------
    region:
        Lateral extent of the meshed substrate (metres).  Should cover the
        layout with some margin so current can spread.
    nx, ny:
        Number of lateral boxes in x and y.
    max_depth:
        Depth of the deepest meshed box; the remaining bulk below is ignored
        (valid when there is no backside contact) or lumped (when there is).
    n_z_per_layer:
        Number of mesh layers per substrate profile layer (the thick bulk
        layer is subdivided geometrically).
    """

    region: Rect
    nx: int = 40
    ny: int = 40
    max_depth: float = 200e-6
    n_z_per_layer: int = 3

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ExtractionError("mesh needs at least 2 boxes per lateral direction")
        if self.max_depth <= 0:
            raise ExtractionError("max_depth must be positive")


def _vertical_planes(profile: SubstrateProfile, spec: MeshSpec) -> np.ndarray:
    """Depth coordinates of the horizontal mesh planes (starting at 0)."""
    planes = [0.0]
    depth_so_far = 0.0
    for layer in profile.layers:
        bottom = min(depth_so_far + layer.thickness, spec.max_depth)
        thickness = bottom - depth_so_far
        if thickness <= 0:
            break
        # Geometric subdivision: finer boxes near the top of each layer.
        n = max(1, spec.n_z_per_layer)
        ratios = np.geomspace(1.0, 3.0, n)
        ratios = ratios / ratios.sum()
        z = depth_so_far
        for r in ratios:
            z += thickness * r
            planes.append(z)
        depth_so_far = bottom
        if depth_so_far >= spec.max_depth:
            break
    return np.asarray(planes)


@dataclass
class SubstrateMesh:
    """A box-integration mesh plus its assembled conductance matrix."""

    spec: MeshSpec
    profile: SubstrateProfile
    x_edges: np.ndarray = field(init=False)
    y_edges: np.ndarray = field(init=False)
    z_edges: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        region = self.spec.region
        self.x_edges = np.linspace(region.x0, region.x1, self.spec.nx + 1)
        self.y_edges = np.linspace(region.y0, region.y1, self.spec.ny + 1)
        self.z_edges = _vertical_planes(self.profile, self.spec)
        if len(self.z_edges) < 2:
            raise ExtractionError("substrate profile produced an empty mesh")

    # -- indexing ---------------------------------------------------------------

    @property
    def nx(self) -> int:
        return self.spec.nx

    @property
    def ny(self) -> int:
        return self.spec.ny

    @property
    def nz(self) -> int:
        return len(self.z_edges) - 1

    @property
    def n_nodes(self) -> int:
        return self.nx * self.ny * self.nz

    def node_index(self, ix: int, iy: int, iz: int) -> int:
        if not (0 <= ix < self.nx and 0 <= iy < self.ny and 0 <= iz < self.nz):
            raise ExtractionError(f"mesh index out of range: {(ix, iy, iz)}")
        return (iz * self.ny + iy) * self.nx + ix

    def grid_geometry(self):
        """The structured-grid shape behind :meth:`conductance_matrix`.

        Passed (via ``kron_reduce``) to the linear-solver seam so the
        multigrid backend can coarsen geometrically; every other backend
        ignores it.
        """
        from ..simulator.linalg import GridGeometry

        return GridGeometry(nx=self.nx, ny=self.ny, nz=self.nz)

    def cell_centers_x(self) -> np.ndarray:
        return 0.5 * (self.x_edges[:-1] + self.x_edges[1:])

    def cell_centers_y(self) -> np.ndarray:
        return 0.5 * (self.y_edges[:-1] + self.y_edges[1:])

    def cell_centers_z(self) -> np.ndarray:
        return 0.5 * (self.z_edges[:-1] + self.z_edges[1:])

    def conductivity_at_depth(self, depth: float) -> float:
        return 1.0 / self.profile.resistivity_at_depth(depth)

    # -- surface coverage --------------------------------------------------------

    def surface_cells_under(self, rect: Rect) -> list[tuple[int, int, float]]:
        """Surface cells (iz = 0) overlapped by ``rect`` with their overlap area.

        Returns a list of ``(ix, iy, overlap_area)``; an empty list means the
        rectangle lies outside the meshed region.  Overlaps are computed for
        all cells at once by clipping the rectangle against the mesh edge
        grids (an outer product of the per-axis overlap lengths).
        """
        overlap_x = (np.minimum(self.x_edges[1:], rect.x1)
                     - np.maximum(self.x_edges[:-1], rect.x0))
        overlap_y = (np.minimum(self.y_edges[1:], rect.y1)
                     - np.maximum(self.y_edges[:-1], rect.y0))
        np.clip(overlap_x, 0.0, None, out=overlap_x)
        np.clip(overlap_y, 0.0, None, out=overlap_y)
        areas = np.outer(overlap_x, overlap_y)          # indexed [ix, iy]
        xs, ys = np.nonzero(areas > 0.0)
        return [(int(ix), int(iy), float(areas[ix, iy]))
                for ix, iy in zip(xs, ys)]

    # -- assembly -----------------------------------------------------------------

    def conductance_matrix(self) -> sp.csr_matrix:
        """Assemble the (n_nodes x n_nodes) substrate conductance Laplacian.

        The matrix is symmetric, has non-positive off-diagonal entries and
        zero row sums (the substrate floats unless a backside contact is
        added by the caller) — properties the test-suite verifies.
        """
        with trace_span("extract.mesh_assembly", nodes=self.n_nodes):
            return self._conductance_matrix()

    def _conductance_matrix(self) -> sp.csr_matrix:
        nx, ny, nz = self.nx, self.ny, self.nz
        dx = np.diff(self.x_edges)
        dy = np.diff(self.y_edges)
        dz = np.diff(self.z_edges)
        z_centers = self.cell_centers_z()
        sigma = np.array([self.conductivity_at_depth(z) for z in z_centers])

        # All neighbour couplings are assembled as whole index planes: the
        # node grid is reshaped to (nz, ny, nx) and each direction contributes
        # the conductances between adjacent slices in one broadcast expression.
        nodes = np.arange(self.n_nodes).reshape(nz, ny, nx)
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []

        def add_conductances(a: np.ndarray, b: np.ndarray, g: np.ndarray) -> None:
            a, b, g = np.broadcast_arrays(a, b, g)
            a, b, g = a.ravel(), b.ravel(), g.ravel()
            row_parts.append(np.concatenate((a, b, a, b)))
            col_parts.append(np.concatenate((a, b, b, a)))
            val_parts.append(np.concatenate((g, g, -g, -g)))

        if nx > 1:
            # x-neighbours: G = sigma * (dy*dz) / (0.5*(dx_i + dx_i+1))
            g_x = (sigma[:, None, None] * dy[None, :, None] * dz[:, None, None]
                   / (0.5 * (dx[:-1] + dx[1:]))[None, None, :])
            add_conductances(nodes[:, :, :-1], nodes[:, :, 1:], g_x)
        if ny > 1:
            # y-neighbours: G = sigma * (dx*dz) / (0.5*(dy_i + dy_i+1))
            g_y = (sigma[:, None, None] * dx[None, None, :] * dz[:, None, None]
                   / (0.5 * (dy[:-1] + dy[1:]))[None, :, None])
            add_conductances(nodes[:, :-1, :], nodes[:, 1:, :], g_y)
        if nz > 1:
            # z-neighbours: series combination of the two half boxes, which
            # may have different conductivities.
            area = dx[None, None, :] * dy[None, :, None]
            half_upper = 0.5 * dz[:-1, None, None] / (sigma[:-1, None, None] * area)
            half_lower = 0.5 * dz[1:, None, None] / (sigma[1:, None, None] * area)
            add_conductances(nodes[:-1, :, :], nodes[1:, :, :],
                             1.0 / (half_upper + half_lower))

        if not row_parts:
            return sp.csr_matrix((self.n_nodes, self.n_nodes))
        matrix = sp.coo_matrix(
            (np.concatenate(val_parts),
             (np.concatenate(row_parts), np.concatenate(col_parts))),
            shape=(self.n_nodes, self.n_nodes))
        return matrix.tocsr()
