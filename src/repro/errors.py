"""Exception hierarchy for the substrate-noise impact flow.

Every stage of the methodology (layout handling, extraction, simulation,
analysis) raises a subclass of :class:`ReproError`, so callers can catch the
library's failures without masking programming errors.

Campaign execution adds a structured failure layer on top: an exhausted sweep
corner is described by a :class:`CornerFailure` record (exception type,
attempt count, traceback summary), and campaign-level aborts raise
:class:`CampaignError` carrying those records as a payload — so the CLI and
tests branch on failure *kind* (``except TaskTimeoutError`` / ``exc.failures``)
instead of string-matching messages.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TechnologyError(ReproError):
    """Invalid or inconsistent process-technology description."""


class LayoutError(ReproError):
    """Malformed layout: bad geometry, unknown layer, missing pin, ..."""


class ExtractionError(ReproError):
    """A parasitic or circuit extraction step failed."""


class NetlistError(ReproError):
    """Invalid netlist: unknown node, duplicate element, bad element value."""


class SimulationError(ReproError):
    """The impact simulator failed to assemble or solve the system."""


class ConvergenceError(SimulationError):
    """An iterative solve (DC Newton, transient step) did not converge."""


class AnalysisError(ReproError):
    """Post-processing (spectrum, spur extraction, comparison) failed."""


@dataclass(frozen=True)
class CornerFailure:
    """Structured record of one sweep corner that exhausted its attempts.

    Stored inside :class:`~repro.studies.results.SweepResult` (and its JSON
    sidecar) when the campaign's failure policy keeps partial results instead
    of aborting; ``repro-campaign show`` lists these and ``resume`` re-runs
    exactly these corners.
    """

    corner_label: str           #: human-readable corner identity
    error_type: str             #: exception class name (e.g. "ConvergenceError")
    message: str                #: exception message (truncated)
    attempts: int               #: attempts spent before giving up
    timed_out: bool = False     #: True when the corner tripped ``task_timeout``
    traceback_summary: str = ""  #: last few frames of the original traceback
    variant_index: int = -1     #: layout variant (-1 when not a sweep corner)
    injected_power_dbm: float = float("nan")
    vtune: float = float("nan")


class CampaignError(AnalysisError):
    """A sweep campaign could not complete under its failure policy.

    ``failures`` carries the structured :class:`CornerFailure` records of the
    corners that caused the abort (empty when the error is not corner-shaped,
    e.g. a broken configuration).  Subclasses :class:`AnalysisError`, so
    pre-existing callers that catch the broad class keep working.
    """

    def __init__(self, message: str,
                 failures: "tuple[CornerFailure, ...] | list[CornerFailure]" = ()):
        super().__init__(message)
        self.failures: list[CornerFailure] = list(failures)


class TaskTimeoutError(CampaignError, TimeoutError):
    """A sweep task exceeded its wall-clock ``task_timeout``.

    Also a :class:`TimeoutError`, so generic timeout handling
    (``except TimeoutError``) catches it without importing this module.
    """
