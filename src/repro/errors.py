"""Exception hierarchy for the substrate-noise impact flow.

Every stage of the methodology (layout handling, extraction, simulation,
analysis) raises a subclass of :class:`ReproError`, so callers can catch the
library's failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TechnologyError(ReproError):
    """Invalid or inconsistent process-technology description."""


class LayoutError(ReproError):
    """Malformed layout: bad geometry, unknown layer, missing pin, ..."""


class ExtractionError(ReproError):
    """A parasitic or circuit extraction step failed."""


class NetlistError(ReproError):
    """Invalid netlist: unknown node, duplicate element, bad element value."""


class SimulationError(ReproError):
    """The impact simulator failed to assemble or solve the system."""


class ConvergenceError(SimulationError):
    """An iterative solve (DC Newton, transient step) did not converge."""


class AnalysisError(ReproError):
    """Post-processing (spectrum, spur extraction, comparison) failed."""
