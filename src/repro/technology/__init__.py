"""Process-technology description: layers, substrate profile, device cards."""

from .layers import Layer, LayerPurpose, LayerStack, ViaDefinition
from .process import (
    EPSILON_0,
    EPSILON_R_SI,
    EPSILON_R_SIO2,
    MosParameters,
    ProcessTechnology,
    SubstrateLayer,
    SubstrateProfile,
    WellParameters,
)
from .cmos018 import TECHNOLOGY_NAME, make_technology

__all__ = [
    "EPSILON_0",
    "EPSILON_R_SI",
    "EPSILON_R_SIO2",
    "Layer",
    "LayerPurpose",
    "LayerStack",
    "MosParameters",
    "ProcessTechnology",
    "SubstrateLayer",
    "SubstrateProfile",
    "TECHNOLOGY_NAME",
    "ViaDefinition",
    "WellParameters",
    "make_technology",
]
