"""Synthetic 0.18 um 1P6M high-ohmic twin-well CMOS technology.

The paper's test chips are fabricated in a 0.18 um 1-poly / 6-metal CMOS
technology on a high-ohmic (20 ohm·cm) substrate.  The foundry data is not
public, so this module defines a synthetic technology tuned to the quantities
the paper quotes:

* 20 ohm·cm bulk resistivity (high-ohmic substrate, no low-ohmic epi),
* twin-well (explicit n-well and p-well with junction capacitances),
* six metal layers with representative sheet resistances (thin lower metals,
  a thick top metal for inductors),
* junction capacitances that reproduce the paper's device values
  (Cdbj = 120 fF, Csbj = 200 fF for the 4-finger RF NMOS; Cind = 120 fF per
  inductor),
* device transconductances in the measured range (gmb = 10-38 mS,
  gds = 2.8-22 mS for the parallel combination of four RF NMOS devices biased
  between 0.5 V and 1.6 V).

All numbers are representative of a generic 0.18 um node and documented where
they are anchored to a value in the paper.
"""

from __future__ import annotations

from .layers import Layer, LayerPurpose, LayerStack, ViaDefinition
from .process import (
    MosParameters,
    ProcessTechnology,
    SubstrateLayer,
    SubstrateProfile,
    WellParameters,
)

#: Name under which the synthetic technology registers itself.
TECHNOLOGY_NAME = "cmos018-1p6m-high-ohmic"


def _build_layer_stack() -> LayerStack:
    """Six-metal back-end stack with representative 0.18 um parameters."""
    stack = LayerStack()

    # Front-end layers (inside or at the silicon surface).
    stack.add_layer(Layer("NWELL", LayerPurpose.NWELL, gds_number=1))
    stack.add_layer(Layer("PWELL", LayerPurpose.PWELL, gds_number=2))
    stack.add_layer(Layer("ACTIVE", LayerPurpose.DIFFUSION, gds_number=3,
                          sheet_resistance=7.0, thickness=0.2e-6))
    stack.add_layer(Layer("NPLUS", LayerPurpose.NPLUS, gds_number=4))
    stack.add_layer(Layer("PPLUS", LayerPurpose.PPLUS, gds_number=5))
    stack.add_layer(Layer("PTAP", LayerPurpose.SUBSTRATE_TAP, gds_number=6))
    stack.add_layer(Layer("POLY", LayerPurpose.POLY, gds_number=10,
                          sheet_resistance=8.0, thickness=0.2e-6,
                          height_above_substrate=0.0))

    # Metal stack: heights above the silicon surface and thicknesses chosen so
    # that M1 sits ~0.6 um above the substrate and the thick top metal (M6,
    # used for inductors) ~4.3 um above it.  Sheet resistances are typical for
    # the node: ~78 mohm/sq thin copper/aluminium metals, 25 mohm/sq thick M6.
    metal_data = [
        ("M1", 0.60e-6, 0.30e-6, 0.078),
        ("M2", 1.25e-6, 0.35e-6, 0.078),
        ("M3", 1.95e-6, 0.35e-6, 0.078),
        ("M4", 2.65e-6, 0.35e-6, 0.078),
        ("M5", 3.35e-6, 0.45e-6, 0.060),
        ("M6", 4.30e-6, 0.90e-6, 0.025),
    ]
    for index, (name, height, thickness, rsheet) in enumerate(metal_data, start=31):
        stack.add_layer(Layer(name, LayerPurpose.METAL, gds_number=index,
                              sheet_resistance=rsheet, thickness=thickness,
                              height_above_substrate=height))

    # Pad opening marker layer.
    stack.add_layer(Layer("PAD", LayerPurpose.PAD, gds_number=60))

    # Contacts and vias: resistance per cut typical for the node.
    stack.add_layer(Layer("CONT", LayerPurpose.CONTACT, gds_number=20))
    stack.add_via(ViaDefinition("CONT", bottom="ACTIVE", top="M1",
                                resistance_per_cut=8.0,
                                cut_size=0.22e-6, cut_pitch=0.50e-6))
    via_data = [
        ("VIA1", "M1", "M2", 4.0),
        ("VIA2", "M2", "M3", 4.0),
        ("VIA3", "M3", "M4", 4.0),
        ("VIA4", "M4", "M5", 3.0),
        ("VIA5", "M5", "M6", 1.5),
    ]
    for index, (name, bottom, top, r_cut) in enumerate(via_data, start=41):
        stack.add_layer(Layer(name, LayerPurpose.VIA, gds_number=index))
        stack.add_via(ViaDefinition(name, bottom=bottom, top=top,
                                    resistance_per_cut=r_cut,
                                    cut_size=0.26e-6, cut_pitch=0.56e-6))
    return stack


def _build_substrate_profile() -> SubstrateProfile:
    """High-ohmic (20 ohm·cm) bulk without a low-ohmic epi layer.

    The paper stresses that the technology is *high-ohmic*: there is no
    heavily doped bulk shorting everything together, which is why lateral
    substrate resistances are large (the quoted 1/652 voltage division from
    the injection contact to the NMOS back-gate) and why local ground wiring
    matters.  A thin, slightly lower-resistivity surface layer represents the
    channel-stop / well implant region.
    """
    return SubstrateProfile(layers=(
        SubstrateLayer("surface-implant", thickness=2.0e-6, resistivity=0.05),
        SubstrateLayer("bulk-high-ohmic", thickness=298.0e-6, resistivity=0.20),
    ), backside_contact=False)


def _build_mos_parameters() -> dict[str, MosParameters]:
    """NMOS / PMOS model cards tuned to the paper's measured device values.

    The paper's RF NMOS (four devices in parallel) exhibits
    gmb = 10-38 mS and gds = 2.8-22 mS over a 0.5-1.6 V bias sweep with
    junction capacitances Cdbj = 120 fF and Csbj = 200 fF.  The parameters
    below reproduce those ranges for a 4 x (W=50 um / L=0.18 um) device (see
    ``tests/test_devices_mosfet.py`` and the section-3 benchmark).
    """
    # The NMOS card is calibrated against the paper's measured small-signal
    # ranges (gmb = 10-38 mS, gds = 2.8-22 mS for the 4 x 50 um RF NMOS over a
    # 0.5-1.6 V bias sweep).  kp / vth0 / gamma / lambda / esat are therefore
    # *effective* values chosen by that calibration rather than generic
    # foundry numbers; lambda in particular absorbs DIBL of the
    # minimum-length device.
    nmos = MosParameters(
        name="nmos_rf",
        polarity="nmos",
        vth0=0.25,
        kp=100e-6,
        lambda_=1.2,
        gamma=1.1,
        phi=0.85,
        tox=4.1e-9,
        esat=2.3e6,
        cj=0.8e-3,          # F/m^2   (-> Cdbj ~ 120 fF for the 4x50 um NMOS)
        cjsw=0.8e-10,       # F/m
        cgdo=3.7e-10,       # F/m
        cgso=3.7e-10,       # F/m
        pb=0.80,
        mj=0.45,
        l_min=0.18e-6,
    )
    pmos = MosParameters(
        name="pmos_rf",
        polarity="pmos",
        vth0=-0.42,
        kp=110e-6,
        lambda_=0.30,
        gamma=0.48,
        phi=0.85,
        tox=4.1e-9,
        cj=0.9e-3,
        cjsw=0.9e-10,
        cgdo=3.5e-10,
        cgso=3.5e-10,
        pb=0.85,
        mj=0.45,
        l_min=0.18e-6,
    )
    return {"nmos_rf": nmos, "pmos_rf": pmos}


def _build_wells() -> dict[str, WellParameters]:
    """Well junction capacitance densities for the twin-well process.

    Tuned so the n-well under the paper's PMOS pair and varactor couples to
    the substrate with a capacitance *lower* than the 120 fF inductor-to-
    substrate capacitance, matching the paper's ordering of the negligible
    capacitive paths (Section 6).
    """
    return {
        "nwell": WellParameters(
            name="nwell",
            junction_cap_area=0.12e-3,      # F/m^2
            junction_cap_perimeter=0.5e-9,  # F/m
            depth=1.5e-6,
            sheet_resistance=900.0,
        ),
        "pwell": WellParameters(
            name="pwell",
            junction_cap_area=0.10e-3,
            junction_cap_perimeter=0.4e-9,
            depth=1.2e-6,
            sheet_resistance=600.0,
        ),
    }


def make_technology() -> ProcessTechnology:
    """Create the synthetic 0.18 um 1P6M high-ohmic CMOS technology."""
    return ProcessTechnology(
        name=TECHNOLOGY_NAME,
        layer_stack=_build_layer_stack(),
        substrate=_build_substrate_profile(),
        mos=_build_mos_parameters(),
        wells=_build_wells(),
        substrate_contact_resistance=5.0,
        feature_size=0.18e-6,
        supply_voltage=1.8,
    )
