"""Layer definitions for the synthetic process technology.

A :class:`Layer` is a named drawing layer used by the layout model.  Layers
carry a ``purpose`` so the extractors can decide how to treat shapes on them:
metal wires become interconnect resistance/capacitance, diffusion and well
shapes become substrate ports, contacts/vias become vertical resistances, and
so on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import TechnologyError


class LayerPurpose(enum.Enum):
    """What the extraction flow should do with shapes drawn on a layer."""

    METAL = "metal"              #: routed interconnect (has sheet resistance)
    VIA = "via"                  #: vertical connection between two metal layers
    CONTACT = "contact"          #: metal-1 to diffusion / poly contact
    POLY = "poly"                #: polysilicon gate material
    DIFFUSION = "diffusion"      #: active area (source / drain)
    NWELL = "nwell"              #: n-well (PMOS bulk, varactor body)
    PWELL = "pwell"              #: p-well (explicit twin-well process)
    SUBSTRATE_TAP = "substrate_tap"  #: p+ tap connecting metal to bulk
    NPLUS = "nplus"              #: n+ implant
    PPLUS = "pplus"              #: p+ implant
    PAD = "pad"                  #: bond pad opening
    MARKER = "marker"            #: non-physical marker (device recognition)


@dataclass(frozen=True)
class Layer:
    """A single mask layer of the technology.

    Parameters
    ----------
    name:
        Unique layer name, e.g. ``"M1"`` or ``"NWELL"``.
    purpose:
        How extraction treats shapes on the layer.
    gds_number:
        Numeric identifier (kept for familiarity with GDS streams; unused by
        the extractors themselves).
    sheet_resistance:
        Sheet resistance in ohm/square for conducting layers (metal, poly,
        diffusion).  ``None`` for non-conducting layers.
    thickness:
        Physical layer thickness in metres (used for capacitance extraction).
    height_above_substrate:
        Height of the bottom of the layer above the silicon surface in metres.
        ``None`` for layers inside the silicon (wells, diffusion).
    """

    name: str
    purpose: LayerPurpose
    gds_number: int = 0
    sheet_resistance: float | None = None
    thickness: float | None = None
    height_above_substrate: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TechnologyError("layer name must be non-empty")
        if self.sheet_resistance is not None and self.sheet_resistance <= 0:
            raise TechnologyError(
                f"layer {self.name}: sheet resistance must be positive, "
                f"got {self.sheet_resistance}")
        if self.thickness is not None and self.thickness <= 0:
            raise TechnologyError(
                f"layer {self.name}: thickness must be positive")

    @property
    def is_conductor(self) -> bool:
        """True if shapes on this layer carry current laterally."""
        return self.sheet_resistance is not None

    @property
    def is_metal(self) -> bool:
        return self.purpose is LayerPurpose.METAL

    @property
    def is_vertical_connection(self) -> bool:
        return self.purpose in (LayerPurpose.VIA, LayerPurpose.CONTACT)


@dataclass(frozen=True)
class ViaDefinition:
    """Electrical description of a via or contact cut.

    Parameters
    ----------
    layer:
        The via/contact drawing layer.
    bottom / top:
        Names of the layers connected by the cut.
    resistance_per_cut:
        Resistance of a single cut in ohms.
    cut_size:
        Side length of a single square cut in metres.
    cut_pitch:
        Centre-to-centre spacing of cuts in an array, in metres.
    """

    layer: str
    bottom: str
    top: str
    resistance_per_cut: float
    cut_size: float
    cut_pitch: float

    def __post_init__(self) -> None:
        if self.resistance_per_cut <= 0:
            raise TechnologyError(
                f"via {self.layer}: resistance per cut must be positive")
        if self.cut_size <= 0 or self.cut_pitch <= 0:
            raise TechnologyError(
                f"via {self.layer}: cut size and pitch must be positive")
        if self.cut_pitch < self.cut_size:
            raise TechnologyError(
                f"via {self.layer}: cut pitch smaller than cut size")

    def cuts_in_area(self, width: float, height: float) -> int:
        """Number of cuts that fit in a ``width`` x ``height`` rectangle."""
        if width <= 0 or height <= 0:
            return 0
        # Small relative tolerance so e.g. 10 pitches of 0.56 um in a 5.6 um
        # opening are not rounded down to 9 by floating-point noise.
        nx = max(1, int(width / self.cut_pitch + 1e-9))
        ny = max(1, int(height / self.cut_pitch + 1e-9))
        return nx * ny

    def resistance_for_area(self, width: float, height: float) -> float:
        """Effective resistance of a via array filling the given rectangle."""
        cuts = self.cuts_in_area(width, height)
        if cuts == 0:
            raise TechnologyError("via array has zero cuts")
        return self.resistance_per_cut / cuts


@dataclass
class LayerStack:
    """Ordered collection of layers plus the via definitions between them."""

    layers: dict[str, Layer] = field(default_factory=dict)
    vias: dict[str, ViaDefinition] = field(default_factory=dict)

    def add_layer(self, layer: Layer) -> Layer:
        if layer.name in self.layers:
            raise TechnologyError(f"duplicate layer {layer.name!r}")
        self.layers[layer.name] = layer
        return layer

    def add_via(self, via: ViaDefinition) -> ViaDefinition:
        if via.layer in self.vias:
            raise TechnologyError(f"duplicate via definition {via.layer!r}")
        for end in (via.bottom, via.top):
            if end not in self.layers:
                raise TechnologyError(
                    f"via {via.layer} references unknown layer {end!r}")
        self.vias[via.layer] = via
        return via

    def __contains__(self, name: str) -> bool:
        return name in self.layers

    def __getitem__(self, name: str) -> Layer:
        try:
            return self.layers[name]
        except KeyError:
            raise TechnologyError(f"unknown layer {name!r}") from None

    def metal_layers(self) -> list[Layer]:
        """Metal layers ordered from lowest to highest above the substrate."""
        metals = [layer for layer in self.layers.values() if layer.is_metal]
        return sorted(metals, key=lambda layer: layer.height_above_substrate or 0.0)

    def via_between(self, lower: str, upper: str) -> ViaDefinition:
        """Find the via definition connecting two conducting layers."""
        for via in self.vias.values():
            if {via.bottom, via.top} == {lower, upper}:
                return via
        raise TechnologyError(f"no via between {lower!r} and {upper!r}")
