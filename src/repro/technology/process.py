"""Process technology description.

The technology object bundles everything the extractors need:

* the metal/via :class:`~repro.technology.layers.LayerStack` with sheet
  resistances and dielectric heights (interconnect extraction),
* the vertical substrate doping profile (substrate extraction),
* MOS device parameters (circuit extraction / device models),
* junction and well capacitance densities (coupling-path extraction).

Units are SI throughout: metres, ohm·metre, farad per square metre.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TechnologyError
from .layers import Layer, LayerStack

#: Vacuum permittivity in F/m.
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of silicon dioxide (inter-metal dielectric).
EPSILON_R_SIO2 = 3.9

#: Relative permittivity of silicon (substrate, depletion regions).
EPSILON_R_SI = 11.7


@dataclass(frozen=True)
class SubstrateLayer:
    """One horizontal slab of the vertical substrate doping profile.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"p-epi"`` or ``"bulk"``.
    thickness:
        Slab thickness in metres.  The last (deepest) layer may be given a
        large thickness to represent the bulk down to the backside contact.
    resistivity:
        Resistivity in ohm·metre (the paper's 20 ohm·cm bulk is 0.20 ohm·m).
    """

    name: str
    thickness: float
    resistivity: float

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise TechnologyError(f"substrate layer {self.name}: thickness must be > 0")
        if self.resistivity <= 0:
            raise TechnologyError(f"substrate layer {self.name}: resistivity must be > 0")

    @property
    def conductivity(self) -> float:
        """Conductivity in S/m."""
        return 1.0 / self.resistivity

    @property
    def sheet_resistance(self) -> float:
        """Sheet resistance of the slab in ohm/square (lateral conduction)."""
        return self.resistivity / self.thickness


@dataclass(frozen=True)
class SubstrateProfile:
    """Vertical stack of :class:`SubstrateLayer` from the surface downwards."""

    layers: tuple[SubstrateLayer, ...]
    backside_contact: bool = False

    def __post_init__(self) -> None:
        if not self.layers:
            raise TechnologyError("substrate profile needs at least one layer")

    @property
    def total_thickness(self) -> float:
        return sum(layer.thickness for layer in self.layers)

    def layer_at_depth(self, depth: float) -> SubstrateLayer:
        """Return the slab containing the given depth below the surface."""
        if depth < 0:
            raise TechnologyError("depth must be non-negative")
        remaining = depth
        for layer in self.layers:
            if remaining <= layer.thickness:
                return layer
            remaining -= layer.thickness
        return self.layers[-1]

    def resistivity_at_depth(self, depth: float) -> float:
        return self.layer_at_depth(depth).resistivity

    def boundaries(self) -> np.ndarray:
        """Depths of the slab boundaries, starting at 0 (the surface)."""
        edges = [0.0]
        for layer in self.layers:
            edges.append(edges[-1] + layer.thickness)
        return np.asarray(edges)


@dataclass(frozen=True)
class MosParameters:
    """Simplified MOSFET model card (level-1 + body effect + overlap caps).

    The values are per-type (NMOS / PMOS) and independent of geometry; the
    device model scales them by W/L.
    """

    name: str
    polarity: str                     #: "nmos" or "pmos"
    vth0: float                       #: zero-bias threshold voltage [V]
    kp: float                         #: transconductance parameter u0*Cox [A/V^2]
    lambda_: float                    #: channel-length modulation [1/V]
    gamma: float                      #: body-effect coefficient [sqrt(V)]
    phi: float                        #: surface potential 2*phi_F [V]
    tox: float                        #: gate-oxide thickness [m]
    cj: float                         #: junction area capacitance [F/m^2]
    cjsw: float                       #: junction sidewall capacitance [F/m]
    cgdo: float                       #: gate-drain overlap capacitance [F/m]
    cgso: float                       #: gate-source overlap capacitance [F/m]
    pb: float = 0.8                   #: junction built-in potential [V]
    mj: float = 0.5                   #: junction grading coefficient
    l_min: float = 0.18e-6            #: minimum channel length [m]
    esat: float = 6.7e6               #: velocity-saturation critical field [V/m]

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise TechnologyError(f"{self.name}: polarity must be 'nmos' or 'pmos'")
        if self.kp <= 0:
            raise TechnologyError(f"{self.name}: kp must be positive")
        if self.tox <= 0:
            raise TechnologyError(f"{self.name}: tox must be positive")
        if self.phi <= 0:
            raise TechnologyError(f"{self.name}: phi must be positive")

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area [F/m^2]."""
        return EPSILON_0 * EPSILON_R_SIO2 / self.tox


@dataclass(frozen=True)
class WellParameters:
    """Well-to-substrate junction description used for capacitive coupling."""

    name: str
    junction_cap_area: float          #: F/m^2 at zero bias
    junction_cap_perimeter: float     #: F/m at zero bias
    depth: float                      #: well depth [m]
    sheet_resistance: float           #: ohm/square of the well

    def __post_init__(self) -> None:
        if self.junction_cap_area <= 0:
            raise TechnologyError(f"well {self.name}: area cap must be positive")
        if self.depth <= 0:
            raise TechnologyError(f"well {self.name}: depth must be positive")

    def capacitance(self, area: float, perimeter: float) -> float:
        """Total well-to-substrate junction capacitance for a well shape."""
        if area < 0 or perimeter < 0:
            raise TechnologyError("area and perimeter must be non-negative")
        return self.junction_cap_area * area + self.junction_cap_perimeter * perimeter


@dataclass
class ProcessTechnology:
    """Complete synthetic process description consumed by the extraction flow."""

    name: str
    layer_stack: LayerStack
    substrate: SubstrateProfile
    mos: dict[str, MosParameters] = field(default_factory=dict)
    wells: dict[str, WellParameters] = field(default_factory=dict)
    substrate_contact_resistance: float = 5.0   #: ohm per tap contact
    feature_size: float = 0.18e-6
    supply_voltage: float = 1.8
    metal_dielectric_eps_r: float = EPSILON_R_SIO2

    def mos_parameters(self, name: str) -> MosParameters:
        try:
            return self.mos[name]
        except KeyError:
            raise TechnologyError(f"unknown MOS model {name!r}") from None

    def well_parameters(self, name: str) -> WellParameters:
        try:
            return self.wells[name]
        except KeyError:
            raise TechnologyError(f"unknown well {name!r}") from None

    def metal_layer(self, name: str) -> Layer:
        layer = self.layer_stack[name]
        if not layer.is_metal:
            raise TechnologyError(f"layer {name!r} is not a metal layer")
        return layer

    def area_capacitance_to_substrate(self, layer_name: str) -> float:
        """Parallel-plate capacitance density (F/m^2) of a metal layer to bulk."""
        layer = self.metal_layer(layer_name)
        if layer.height_above_substrate is None:
            raise TechnologyError(f"layer {layer_name!r} has no height defined")
        return EPSILON_0 * self.metal_dielectric_eps_r / layer.height_above_substrate

    def fringe_capacitance_to_substrate(self, layer_name: str) -> float:
        """Fringe capacitance density (F/m of perimeter) of a metal layer to bulk.

        A standard empirical approximation: the fringe contribution of a wire
        edge is roughly the permittivity times a logarithmic factor of the
        thickness-to-height ratio.  This keeps the capacitive coupling paths in
        the model at realistic (tens of aF/um) levels without a field solver.
        """
        layer = self.metal_layer(layer_name)
        if layer.height_above_substrate is None or layer.thickness is None:
            raise TechnologyError(f"layer {layer_name!r} missing height or thickness")
        eps = EPSILON_0 * self.metal_dielectric_eps_r
        ratio = layer.thickness / layer.height_above_substrate
        return eps * np.log1p(ratio) + 0.5 * eps

    def coupling_capacitance_between(self, lower: str, upper: str) -> float:
        """Parallel-plate capacitance density between two stacked metal layers."""
        low = self.metal_layer(lower)
        up = self.metal_layer(upper)
        if low.height_above_substrate is None or up.height_above_substrate is None:
            raise TechnologyError("both layers need a defined height")
        if low.thickness is None:
            raise TechnologyError(f"layer {lower!r} needs a thickness")
        gap = up.height_above_substrate - (low.height_above_substrate + low.thickness)
        if gap <= 0:
            raise TechnologyError(
                f"layers {lower!r} and {upper!r} are not vertically separated")
        return EPSILON_0 * self.metal_dielectric_eps_r / gap
