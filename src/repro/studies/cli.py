"""``repro-campaign``: declare, launch, resume and inspect sweep campaigns.

The CLI turns a declarative TOML or JSON config file into a
:class:`~repro.studies.params.Campaign` and drives the
:class:`~repro.studies.runner.SweepRunner` with a persistent
:class:`~repro.studies.store.DiskExtractionCache`, so the paper's
Fig. 7-10-style studies become reproducible artifacts: results land in an
NPZ + JSON pair, extractions warm-start across runs, and an interrupted
campaign picks up exactly where it stopped.

Subcommands::

    repro-campaign run     CONFIG [--result R.npz] [--cache-dir DIR]
                                  [--trace-out T.trace.json] ...
    repro-campaign resume  CONFIG [--result R.npz] ...
    repro-campaign show    RESULT [--rows N] [--timings]
    repro-campaign cache   stats --cache-dir DIR
    repro-campaign cache   prune --cache-dir DIR [--max-entries N]
                                 [--max-age-days D] [--all]
    repro-campaign trace   export RUNLOG [--output OUT.trace.json]

Global ``-v`` / ``-q`` flags raise / lower the ``repro.*`` logging level
(warnings by default; ``-v`` info, ``-vv`` debug, ``-q`` errors only).

Config schema (TOML shown; the same structure as JSON works on every
supported Python — TOML parsing needs the stdlib ``tomllib`` of 3.11+)::

    name = "fig8_spur_sweep"

    [axes]                      # sweep axes: lists, or log/linear ranges
    vtune = [0.0, 0.75, 1.5]
    noise_frequency = { start = 1e5, stop = 15e6, num = 12, spacing = "log" }

    [layout]                    # VcoLayoutSpec overrides (base layout)
    ground_width_scale = 1.0

    [options]                   # VcoExperimentOptions overrides
    injected_power_dbm = -5.0

    [options.mesh]              # SubstrateExtractionOptions overrides
    nx = 40
    ny = 40

    [solver]                    # linear-solver backend (SolverOptions)
    backend = "reuse-lu"        # "direct" | "reuse-lu" | "iterative"
                                # | "multigrid"
    ac_workers = 1              # per-frequency fan-out inside one AC sweep
    ac_mode = "thread"          # "thread" | "process": process ships the
                                # frequency blocks to the shared worker pool
    mg_cycle = "v"              # multigrid knobs: "v" | "w" cycles,
    mg_smoother = "rbgs"        # "rbgs" | "jacobi" smoothing

    [execution]                 # defaults for the CLI flags
    backend = "serial"          # or "process-pool"
    max_workers = 2             # worker processes ("workers" is an alias);
                                # unset: REPRO_MAX_WORKERS or min(4, cpus)
    retries = 0
    cache_dir = ".repro-cache"
    result = "fig8_result.npz"
    on_error = "abort"          # "abort" | "skip" | "retry_then_skip"
    task_timeout = 600.0        # per-task wall-clock bound (process-pool)
    checkpoint_corners = 1      # journal completed corners every N corners
    checkpoint_seconds = 30.0   # ... or every T seconds (0 corners disables)

    [observability]             # telemetry of the run (all optional)
    trace = false               # record hierarchical spans during the run
    trace_out = "c.trace.json"  # ... and export them as a Chrome/Perfetto
                                # trace (implies trace = true)
    run_log = true              # structured <result stem>.runlog.jsonl
    progress = true             # live progress line (default: only on a TTY)

The ``[solver]`` table participates in the extraction-cache key (two
campaigns differing only in solver backend or tolerances never share cached
extractions) and is recorded in the result's ``.meta.json`` sidecar.

Failure handling: with ``on_error = "skip"`` / ``"retry_then_skip"`` a
campaign completes with partial results — failed corners are recorded in the
sidecar, ``show`` lists them, ``resume`` re-runs exactly them, and the exit
code is 3 (partial) instead of 0.  When a result path is configured, the
runner also journals completed corners to ``<result stem>.journal/`` while
running, so a campaign killed mid-flight (even ``kill -9``) resumes losing
at most one checkpoint interval; the journal is discarded once the full
result is saved.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

import numpy as np

from ..errors import AnalysisError, ReproError
from ..layout.testchips import VcoLayoutSpec
from ..obs import (
    CompositeObserver,
    ProgressReporter,
    RunLogRecorder,
    configure_logging,
    export_chrome_trace,
    runlog_path_for,
    runlog_to_chrome_trace,
    tracer,
    validate_trace_events,
)
from ..technology import make_technology
from .backends import (
    ON_ERROR_ABORT,
    ON_ERROR_POLICIES,
    ProcessPoolBackend,
    SerialBackend,
    SweepBackend,
)
from .cache import ExtractionCache
from .params import Campaign, ParamSpace
from .persist import CampaignJournal, CheckpointPolicy, journal_path_for
from .results import SweepResult
from .runner import SweepRunner
from .store import DiskExtractionCache

#: VcoExperimentOptions fields settable from the ``[options]`` table.
_OPTION_FIELDS = (
    "vtune_values",
    "noise_frequencies",
    "injected_power_dbm",
    "source_impedance",
    "supply_voltage",
    "tail_bias_voltage",
    "output_load",
)


@dataclass
class ExecutionSettings:
    """``[execution]`` table of a config, overridable by CLI flags.

    ``max_workers`` and ``workers`` are aliases (the former matches the
    scheduler's vocabulary, the latter the original CLI flag); setting both
    to different values is an error.  When neither is set, the pool width
    falls back to :func:`~repro.parallel.pool.default_max_workers` — the
    ``REPRO_MAX_WORKERS`` environment override, else ``min(4, cpus)``.
    """

    backend: str = "serial"
    workers: int | None = None
    max_workers: int | None = None
    retries: int = 0
    cache_dir: str | None = None
    result: str | None = None
    on_error: str = ON_ERROR_ABORT
    task_timeout: float | None = None
    checkpoint_corners: int = 1       #: journal flush cadence; 0 disables
    checkpoint_seconds: float = 30.0
    lease_stale_seconds: float = 30.0  #: steal extraction leases older than T
    heartbeat_seconds: float | None = None  #: worker liveness bound (pool)

    def __post_init__(self) -> None:
        for name in ("workers", "max_workers"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise AnalysisError(
                    f"[execution] {name} must be >= 1, got {value}")
        if self.lease_stale_seconds <= 0:
            raise AnalysisError(
                "[execution] lease_stale_seconds must be positive")
        if self.heartbeat_seconds is not None and self.heartbeat_seconds <= 0:
            raise AnalysisError(
                "[execution] heartbeat_seconds must be positive")
        if (self.workers is not None and self.max_workers is not None
                and self.workers != self.max_workers):
            raise AnalysisError(
                "[execution] sets both 'workers' and 'max_workers' to "
                f"different values ({self.workers} vs {self.max_workers}); "
                "they are aliases — set one")

    def effective_workers(self) -> int | None:
        """The configured pool width, or None for the environment default."""
        return self.workers if self.workers is not None else self.max_workers

    def make_backend(self) -> SweepBackend:
        if self.backend == "serial":
            return SerialBackend(retries=self.retries)
        if self.backend == "process-pool":
            return ProcessPoolBackend(max_workers=self.effective_workers(),
                                      retries=self.retries,
                                      task_timeout=self.task_timeout,
                                      heartbeat_timeout=self.heartbeat_seconds)
        raise AnalysisError(
            f"unknown backend {self.backend!r} (choose 'serial' or "
            "'process-pool')")

    def make_cache(self) -> ExtractionCache:
        if self.cache_dir:
            return DiskExtractionCache(
                self.cache_dir,
                lease_stale_seconds=self.lease_stale_seconds)
        return ExtractionCache()

    def make_checkpoint(self) -> CheckpointPolicy | None:
        """Journal policy next to the result file (None when disabled)."""
        if not self.result or self.checkpoint_corners < 1:
            return None
        return CheckpointPolicy(path=journal_path_for(self.result),
                                every_corners=self.checkpoint_corners,
                                every_seconds=self.checkpoint_seconds)


@dataclass
class ObservabilitySettings:
    """``[observability]`` table of a config, overridable by CLI flags."""

    trace: bool = False            #: record hierarchical spans for the run
    trace_out: str | None = None   #: export a Chrome/Perfetto trace here
    run_log: bool = True           #: write ``<result stem>.runlog.jsonl``
    progress: bool | None = None   #: live progress line (None = TTY only)

    @property
    def tracing(self) -> bool:
        return self.trace or bool(self.trace_out)

    def progress_enabled(self) -> bool:
        if self.progress is None:
            return sys.stderr.isatty()
        return self.progress


@dataclass
class CampaignConfig:
    """A parsed campaign config file."""

    campaign: Campaign
    execution: ExecutionSettings
    path: Path
    observability: ObservabilitySettings = field(
        default_factory=ObservabilitySettings)


# -- config parsing -----------------------------------------------------------


def _read_config_data(path: Path) -> dict:
    if not path.exists():
        raise AnalysisError(f"campaign config {path} does not exist")
    text = path.read_text()
    if path.suffix.lower() == ".json":
        try:
            return json.loads(text)
        except ValueError as exc:
            raise AnalysisError(f"invalid JSON in {path}: {exc}") from exc
    try:
        import tomllib
    except ImportError as exc:             # Python 3.10: no stdlib TOML parser
        raise AnalysisError(
            f"cannot parse {path}: TOML configs need Python 3.11+ "
            "(tomllib); rewrite the config as JSON to run on this "
            "interpreter") from exc
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise AnalysisError(f"invalid TOML in {path}: {exc}") from exc


def _axis_values(name: str, value) -> tuple[float, ...]:
    """An axis entry: an explicit list, or a log/linear range spec.

    Integer values stay integers — mesh axes (``mesh_nx``, ...) and integer
    layout fields feed APIs that require ints, and floats otherwise work the
    same.
    """
    if isinstance(value, (list, tuple)):
        return tuple(v if isinstance(v, int) and not isinstance(v, bool)
                     else float(v) for v in value)
    if isinstance(value, dict):
        unknown = set(value) - {"start", "stop", "num", "spacing"}
        if unknown:
            raise AnalysisError(
                f"axis {name!r}: unknown range keys {sorted(unknown)}")
        try:
            start, stop = float(value["start"]), float(value["stop"])
            num = int(value.get("num", 10))
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(
                f"axis {name!r}: a range needs numeric 'start', 'stop' "
                "and 'num'") from exc
        spacing = value.get("spacing", "linear")
        if spacing == "log":
            if start <= 0 or stop <= 0:
                raise AnalysisError(
                    f"axis {name!r}: log spacing needs positive bounds")
            return tuple(float(v) for v in
                         np.logspace(np.log10(start), np.log10(stop), num))
        if spacing == "linear":
            return tuple(float(v) for v in np.linspace(start, stop, num))
        raise AnalysisError(
            f"axis {name!r}: spacing must be 'log' or 'linear', "
            f"not {spacing!r}")
    raise AnalysisError(
        f"axis {name!r}: expected a list of values or a range table, "
        f"got {type(value).__name__}")


def _check_table(table: dict, allowed: tuple[str, ...], context: str) -> None:
    unknown = set(table) - set(allowed)
    if unknown:
        raise AnalysisError(
            f"unknown key(s) {sorted(unknown)} in [{context}]; "
            f"allowed: {sorted(allowed)}")


def load_campaign_config(path: str | Path) -> CampaignConfig:
    """Parse a TOML/JSON campaign config into a runnable campaign."""
    from ..core.vco_experiment import VcoExperimentOptions

    path = Path(path)
    data = _read_config_data(path)
    if not isinstance(data, dict):
        raise AnalysisError(f"campaign config {path} must be a table/object")
    _check_table(data,
                 ("name", "axes", "layout", "options", "solver", "execution",
                  "observability"),
                 "top level")

    axes_table = data.get("axes")
    if not axes_table:
        raise AnalysisError(f"campaign config {path} declares no [axes]")
    axes = {name: _axis_values(name, value)
            for name, value in axes_table.items()}

    layout_table = dict(data.get("layout") or {})
    spec_fields = tuple(f.name for f in fields(VcoLayoutSpec))
    _check_table(layout_table, spec_fields, "layout")
    base_spec = VcoLayoutSpec(**layout_table)

    options_table = dict(data.get("options") or {})
    mesh_table = dict(options_table.pop("mesh", {}) or {})
    _check_table(options_table, _OPTION_FIELDS, "options")
    for name in ("vtune_values", "noise_frequencies"):
        if name in options_table:
            options_table[name] = tuple(float(v)
                                        for v in options_table[name])
    options = VcoExperimentOptions(**options_table)
    if mesh_table:
        substrate = options.flow.substrate
        mesh_fields = tuple(f.name for f in fields(type(substrate)))
        _check_table(mesh_table, mesh_fields, "options.mesh")
        options = replace(options, flow=replace(
            options.flow, substrate=replace(substrate, **mesh_table)))

    solver_table = dict(data.get("solver") or {})
    if solver_table:
        from ..simulator.linalg import SolverOptions

        _check_table(solver_table,
                     tuple(f.name for f in fields(SolverOptions)), "solver")
        try:
            solver_options = SolverOptions(**solver_table)
        except TypeError as exc:             # e.g. a quoted number in TOML
            raise AnalysisError(f"invalid [solver] value: {exc}") from exc
        options = replace(options, flow=replace(
            options.flow, solver=solver_options))

    execution_table = dict(data.get("execution") or {})
    _check_table(execution_table,
                 tuple(f.name for f in fields(ExecutionSettings)),
                 "execution")
    execution = ExecutionSettings(**execution_table)

    observability_table = dict(data.get("observability") or {})
    _check_table(observability_table,
                 tuple(f.name for f in fields(ObservabilitySettings)),
                 "observability")
    observability = ObservabilitySettings(**observability_table)

    name = data.get("name") or path.stem
    campaign = Campaign(name=str(name), space=ParamSpace(axes),
                        base_spec=base_spec, options=options)
    return CampaignConfig(campaign=campaign, execution=execution, path=path,
                          observability=observability)


def _apply_overrides(execution: ExecutionSettings,
                     args: argparse.Namespace) -> ExecutionSettings:
    updates = {}
    for field_name in ("backend", "workers", "retries", "cache_dir", "result",
                       "on_error", "task_timeout"):
        value = getattr(args, field_name, None)
        if value is not None:
            updates[field_name] = value
    if "workers" in updates:
        # The CLI flag wins over a config-file max_workers alias; clearing
        # it keeps the replace() below from tripping the conflict check.
        updates["max_workers"] = None
    return replace(execution, **updates) if updates else execution


def _apply_obs_overrides(observability: ObservabilitySettings,
                         args: argparse.Namespace) -> ObservabilitySettings:
    updates: dict = {}
    if getattr(args, "trace_out", None) is not None:
        updates["trace_out"] = args.trace_out
    if getattr(args, "trace", None):
        updates["trace"] = True
    if getattr(args, "progress", None) is not None:
        updates["progress"] = args.progress
    return replace(observability, **updates) if updates else observability


# -- reporting ----------------------------------------------------------------


def _print_run_report(result: SweepResult, cache: ExtractionCache,
                      saved: tuple[Path, Path] | None) -> None:
    summary = result.summary()
    print(f"campaign {summary['campaign']!r}: {summary['points']} points, "
          f"{summary['variants']} layout variant(s) on {summary['backend']}")
    print(f"  extractions this run : {result.cache_misses} "
          f"(cache hits {result.cache_hits})")
    stats = cache.stats
    extra = ""
    if hasattr(stats, "evictions"):
        extra = (f", evictions {stats.evictions}, "
                 f"corrupted {stats.corrupted}")
    print(f"  cache totals         : hits {stats.hits}, "
          f"misses {stats.misses}{extra}")
    print(f"  wall clock           : {result.wall_seconds:.2f} s")
    if result.records:
        worst = result.worst_spur()
        print(f"  worst spur           : {worst.spur_power_dbm:.1f} dBm at "
              f"f_noise={worst.noise_frequency / 1e6:.3f} MHz, "
              f"V_tune={worst.vtune:g} V")
    if result.solver_degradations:
        counts = ", ".join(f"{name}={count}" for name, count
                           in sorted(result.solver_degradations.items()))
        print(f"  solver degradations  : {counts}")
    if result.failures:
        print(f"  FAILED corners       : {len(result.failures)} "
              "(partial result; 'repro-campaign resume' re-runs them)")
        for failure in result.failures[:5]:
            print(f"    - {failure.corner_label} "
                  f"[{failure.error_type} after {failure.attempts} "
                  f"attempt(s)]")
        if len(result.failures) > 5:
            print(f"    ... and {len(result.failures) - 5} more")
    if saved is not None:
        print(f"  result written       : {saved[0]} (+ {saved[1].name})")


def _write_summary_json(path: str, result: SweepResult,
                        cache: ExtractionCache,
                        saved: tuple[Path, Path] | None) -> None:
    payload = dict(result.summary())
    payload["extractions"] = result.cache_misses
    payload["cache_hits"] = result.cache_hits
    payload["cache_totals"] = {"hits": cache.stats.hits,
                               "misses": cache.stats.misses}
    if saved is not None:
        payload["result_npz"] = str(saved[0])
        payload["result_meta"] = str(saved[1])
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# -- subcommands --------------------------------------------------------------


def _launch(args: argparse.Namespace, resume: bool) -> int:
    """Shared body of ``run`` and ``resume``: one campaign through the runner."""
    config = load_campaign_config(args.config)
    execution = _apply_overrides(config.execution, args)
    observability = _apply_obs_overrides(config.observability, args)
    resume_from = None
    if resume:
        if not execution.result:
            raise AnalysisError(
                "resume needs a result path (--result or [execution].result "
                "in the config)")
        from .persist import result_paths

        npz_path = result_paths(Path(execution.result))[0]
        if npz_path.exists():
            resume_from = SweepResult.load(npz_path)
            print(f"resuming from {npz_path} "
                  f"({len(resume_from.records)} stored points)")
        else:
            print(f"no stored result at {npz_path}; starting fresh")
    cache = execution.make_cache()
    runner = SweepRunner(make_technology(), backend=execution.make_backend(),
                         cache=cache, on_error=execution.on_error)
    checkpoint = execution.make_checkpoint()

    enabled_tracer = False
    if observability.tracing and not tracer.enabled:
        tracer.enable()
        tracer.reset()
        enabled_tracer = True

    observers = []
    runlog_path = None
    if execution.result and observability.run_log:
        from .persist import result_paths

        runlog_path = runlog_path_for(result_paths(execution.result)[0])
        observers.append(RunLogRecorder(runlog_path))
    if observability.progress_enabled():
        observers.append(ProgressReporter(cache=cache))
    observer = CompositeObserver(*observers) if observers else None

    trace_path = None
    try:
        result = runner.run(config.campaign, resume_from=resume_from,
                            checkpoint=checkpoint, observer=observer)
        saved = result.save(execution.result) if execution.result else None
        if saved is not None and checkpoint is not None:
            # Every journaled corner now lives in the saved result; keeping
            # the journal would only re-feed stale segments to the next run.
            CampaignJournal(checkpoint.path,
                            campaign_name=config.campaign.name,
                            fingerprint=None).discard()
        if observability.trace_out:
            trace_path = export_chrome_trace(
                tracer.spans(), observability.trace_out,
                metadata={"campaign": config.campaign.name,
                          "fingerprint": config.campaign.fingerprint()})
    finally:
        if enabled_tracer:
            tracer.disable()
    _print_run_report(result, cache, saved)
    if runlog_path is not None:
        print(f"  run log              : {runlog_path}")
    if trace_path is not None:
        print(f"  trace written        : {trace_path} "
              "(load in ui.perfetto.dev)")
    if args.summary_json:
        _write_summary_json(args.summary_json, result, cache, saved)
    # Exit code 3: the campaign *completed* but only partially (skipped
    # corners) — distinct from 0 (full result) and 2 (hard error).
    return 3 if result.failures else 0


def _cmd_run(args: argparse.Namespace) -> int:
    return _launch(args, resume=False)


def _cmd_resume(args: argparse.Namespace) -> int:
    return _launch(args, resume=True)


def _cmd_show(args: argparse.Namespace) -> int:
    result = SweepResult.load(args.result)
    from .persist import result_paths

    meta = json.loads(result_paths(args.result)[1].read_text())
    print(f"campaign   : {result.campaign_name}")
    print(f"backend    : {result.backend_name}")
    print(f"points     : {len(result.records)} "
          f"({len(result.variants)} layout variant(s))")
    print(f"wall clock : {result.wall_seconds:.2f} s; cache hits "
          f"{result.cache_hits}, extractions {result.cache_misses}")
    if meta.get("git_sha"):
        print(f"git sha    : {meta['git_sha']}")
    print("axes       :")
    for name, values in result.axes.items():
        preview = ", ".join(f"{v:g}" for v in values[:6])
        ellipsis = ", ..." if len(values) > 6 else ""
        print(f"  {name:20s} [{preview}{ellipsis}] ({len(values)} values)")
    if result.records:
        worst = result.worst_spur()
        print(f"worst spur : {worst.spur_power_dbm:.1f} dBm at "
              f"f_noise={worst.noise_frequency / 1e6:.3f} MHz, "
              f"V_tune={worst.vtune:g} V, variant {worst.variant_index}")
    if result.solver_degradations:
        counts = ", ".join(f"{name}={count}" for name, count
                           in sorted(result.solver_degradations.items()))
        print(f"degraded   : {counts}")
    if result.failures:
        print(f"failures   : {len(result.failures)} corner(s) incomplete "
              "('repro-campaign resume' re-runs them)")
        for failure in result.failures:
            timeout_note = ", timed out" if failure.timed_out else ""
            print(f"  - {failure.corner_label} [{failure.error_type} after "
                  f"{failure.attempts} attempt(s){timeout_note}]: "
                  f"{failure.message}")
    if args.timings:
        _print_timings(result)
    if args.rows:
        print(f"\nfirst {args.rows} tidy rows:")
        for row in result.rows()[:args.rows]:
            cells = ", ".join(f"{key}={value:g}" for key, value in row.items()
                              if not key.startswith("entry:"))
            print(f"  {cells}")
    return 0


def _print_timings(result: SweepResult) -> None:
    """The ``show --timings`` section: per-span aggregates and metrics."""
    telemetry = result.telemetry or {}
    if not telemetry:
        print("timings    : no telemetry in this result (recorded by an "
              "older version, or loaded without it)")
        return
    metrics = telemetry.get("metrics") or {}
    hist = (metrics.get("histograms") or {}).get("campaign.corner_seconds")
    if hist and hist.get("count"):
        print(f"corners    : {hist['count']} timed; "
              f"mean {hist['mean']:.3f} s, max {hist['max']:.3f} s")
    spans = telemetry.get("spans") or {}
    if spans:
        print("spans      : (count, total, max)")
        width = max(len(name) for name in spans)
        for name in sorted(spans):
            row = spans[name]
            print(f"  {name:<{width}s}  n={int(row['count']):>5d}  "
                  f"total={row['total_seconds']:.4f} s  "
                  f"max={row['max_seconds']:.4f} s")
    counters = metrics.get("counters") or {}
    if counters:
        print("counters   :")
        for name in sorted(counters):
            print(f"  {name:40s} {counters[name]}")


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace export``: run log -> Chrome trace-event JSON."""
    runlog = Path(args.runlog)
    if not runlog.exists():
        raise AnalysisError(f"run log {runlog} does not exist")
    out = runlog_to_chrome_trace(runlog, args.output)
    payload = json.loads(Path(out).read_text())
    problems = validate_trace_events(payload)
    if problems:
        for problem in problems[:10]:
            print(f"repro-campaign: invalid trace: {problem}",
                  file=sys.stderr)
        return 2
    n_spans = sum(1 for event in payload["traceEvents"]
                  if event.get("ph") == "X")
    print(f"wrote {out} ({n_spans} spans; load in ui.perfetto.dev)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if not args.cache_dir:
        raise AnalysisError("cache commands need --cache-dir")
    # Inspection commands must not conjure the directory into existence —
    # a typo'd --cache-dir should fail, not report a healthy empty cache.
    if not Path(args.cache_dir).is_dir():
        raise AnalysisError(
            f"cache directory {args.cache_dir} does not exist")
    cache = DiskExtractionCache(args.cache_dir)
    if args.cache_command == "stats":
        for key, value in cache.describe().items():
            print(f"{key:15s}: {value}")
        return 0
    if args.cache_command == "verify":
        report = cache.verify(repair=args.repair)
        print(f"checked        : {report['checked']}")
        print(f"ok             : {report['ok']}")
        print(f"stale          : {len(report['stale'])}")
        print(f"corrupt        : {len(report['corrupt'])}")
        print(f"quarantined    : {report['quarantine_entries']}")
        for problem in report["corrupt"]:
            print(f"  corrupt {problem['entry']}: {problem['error']}")
        for name in report["stale"]:
            print(f"  stale   {name}")
        if report["corrupt"] or report["stale"]:
            action = ("corrupt entries quarantined, stale entries evicted"
                      if args.repair else "run with --repair to quarantine "
                      "corrupt entries and evict stale ones")
            print(action)
            return 3
        return 0
    # prune
    if args.all:
        removed, freed = len(cache), cache.disk_bytes()
        cache.clear()
    else:
        if args.max_entries is None and args.max_age_days is None:
            raise AnalysisError(
                "cache prune needs --max-entries, --max-age-days or --all")
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        removed, freed = cache.prune(max_entries=args.max_entries,
                                     max_age_seconds=max_age)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
          f"({freed / 1e6:.2f} MB); {len(cache)} left")
    return 0


# -- entry point --------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Declare, launch, resume and inspect sweep campaigns "
                    "of the substrate-noise reproduction flow.")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_execution_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("config", help="campaign config file (.toml or .json)")
        p.add_argument("--result", default=None,
                       help="write the sweep result to this .npz path")
        p.add_argument("--cache-dir", dest="cache_dir", default=None,
                       help="persistent extraction-cache directory")
        p.add_argument("--backend", choices=("serial", "process-pool"),
                       default=None)
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for --backend process-pool")
        p.add_argument("--retries", type=int, default=None,
                       help="per-task retries on worker failure")
        p.add_argument("--on-error", dest="on_error",
                       choices=ON_ERROR_POLICIES, default=None,
                       help="failure policy: abort the campaign, or skip "
                            "failed corners and keep a partial result")
        p.add_argument("--task-timeout", dest="task_timeout", type=float,
                       default=None,
                       help="per-task wall-clock bound in seconds "
                            "(process-pool backend)")
        p.add_argument("--summary-json", dest="summary_json", default=None,
                       help="also write a machine-readable run summary here")
        p.add_argument("--trace", action="store_true", default=None,
                       help="record hierarchical spans during the run "
                            "(dumped into the run log)")
        p.add_argument("--trace-out", dest="trace_out", default=None,
                       help="export the recorded spans as a Chrome/Perfetto "
                            ".trace.json (implies --trace)")
        p.add_argument("--progress", dest="progress",
                       action=argparse.BooleanOptionalAction, default=None,
                       help="force the live progress line on/off "
                            "(default: on when stderr is a TTY)")

    run = sub.add_parser("run", help="run a campaign from a config file")
    add_execution_flags(run)
    run.set_defaults(handler=_cmd_run)

    resume = sub.add_parser(
        "resume", help="complete a partially-run campaign (skips corners "
                       "already in the stored result)")
    add_execution_flags(resume)
    resume.set_defaults(handler=_cmd_resume)

    show = sub.add_parser("show", help="summarise a stored sweep result")
    show.add_argument("result", help="path of a saved result (.npz)")
    show.add_argument("--rows", type=int, default=0,
                      help="also print the first N tidy rows")
    show.add_argument("--timings", action="store_true",
                      help="also print the recorded telemetry (span "
                           "aggregates, corner timing, counters)")
    show.set_defaults(handler=_cmd_show)

    trace = sub.add_parser("trace", help="work with recorded run telemetry")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export", help="convert a .runlog.jsonl into a Chrome/Perfetto "
                       ".trace.json")
    export.add_argument("runlog", help="path of a <result>.runlog.jsonl")
    export.add_argument("--output", default=None,
                        help="output path (default: <stem>.trace.json next "
                             "to the run log)")
    export.set_defaults(handler=_cmd_trace)

    cache = sub.add_parser("cache", help="inspect or prune a cache directory")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry count and disk usage")
    stats.add_argument("--cache-dir", dest="cache_dir", required=True)
    stats.set_defaults(handler=_cmd_cache)
    verify = cache_sub.add_parser(
        "verify", help="audit every entry's envelope and payload checksum")
    verify.add_argument("--cache-dir", dest="cache_dir", required=True)
    verify.add_argument("--repair", action="store_true",
                        help="quarantine corrupt entries and evict entries "
                             "from other format/code versions")
    verify.set_defaults(handler=_cmd_cache)
    prune = cache_sub.add_parser("prune", help="evict cache entries")
    prune.add_argument("--cache-dir", dest="cache_dir", required=True)
    prune.add_argument("--max-entries", type=int, default=None,
                       help="keep at most this many newest entries")
    prune.add_argument("--max-age-days", type=float, default=None,
                       help="drop entries older than this many days")
    prune.add_argument("--all", action="store_true",
                       help="drop every entry")
    prune.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"repro-campaign: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
