"""Tidy result store of a sweep campaign.

Every grid point of a campaign produces one :class:`PointRecord` (the point's
coordinates plus the spur analysis outcome, including the full
:class:`~repro.vco.spurs.SpurResult`).  :class:`SweepResult` aggregates the
records into tidy column arrays and answers the design-study questions the
paper's figures ask:

* :meth:`SweepResult.spur_vs_frequency` — one spur-power-versus-noise-
  frequency curve per corner (Figure 8 / Figure 10 raw material),
* :meth:`SweepResult.worst_spur` / :meth:`SweepResult.worst_per` — worst
  corner summaries,
* :meth:`SweepResult.to_vco_sweep_result` — conversion into the classic
  :class:`~repro.core.results.VcoSpurSweepResult` (with reference lines and
  :mod:`repro.analysis.compare` error metrics) so the Figure-8 benchmark and
  examples keep their interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..analysis.compare import compare_curves, reference_slope_line
from ..core.flow import FlowResult
from ..data import measurements
from ..errors import AnalysisError, CornerFailure
from ..layout.testchips import VcoLayoutSpec
from ..vco.spurs import SpurResult
from .params import AXIS_INJECTED_POWER, AXIS_NOISE_FREQUENCY, AXIS_VTUNE


@dataclass(frozen=True)
class PointRecord:
    """One (variant, amplitude, V_tune, noise frequency) grid point."""

    point_index: int
    variant_index: int
    knobs: dict[str, float]           #: layout/mesh axis values of the variant
    injected_power_dbm: float
    vtune: float
    noise_frequency: float
    spur: SpurResult

    @property
    def spur_power_dbm(self) -> float:
        return self.spur.total_spur_power_dbm()

    @property
    def carrier_frequency(self) -> float:
        return self.spur.carrier_frequency

    @property
    def carrier_amplitude(self) -> float:
        return self.spur.carrier_amplitude

    def row(self) -> dict[str, float]:
        """Flat tidy row (axis coordinates plus outcome columns)."""
        row: dict[str, float] = {"variant": float(self.variant_index)}
        row.update(self.knobs)
        row.update(self.spur.record())
        row[AXIS_INJECTED_POWER] = self.injected_power_dbm
        row[AXIS_VTUNE] = self.vtune
        return row


@dataclass(frozen=True)
class VariantRecord:
    """One extracted layout variant of a campaign.

    ``flow`` is ``None`` for results loaded from disk (the extracted models
    live in the extraction cache under ``cache_key``, not in the result file)
    and for variants that a resumed run did not need to re-extract.
    """

    index: int
    knobs: dict[str, float]
    spec: VcoLayoutSpec
    cache_key: str
    flow: FlowResult | None
    from_cache: bool                  #: True when the extraction was a cache hit


@dataclass
class SweepResult:
    """Aggregated outcome of one campaign run."""

    campaign_name: str
    backend_name: str
    axes: dict[str, tuple[float, ...]]    #: resolved axes incl. defaults
    records: list[PointRecord]
    variants: list[VariantRecord]
    wall_seconds: float
    cache_hits: int                       #: cache hits during this run
    cache_misses: int                     #: cache misses (= extractions) during this run
    #: JSON-serialisable campaign description (:meth:`Campaign.describe`),
    #: persisted in the metadata sidecar and used to validate resumes.
    campaign_spec: dict | None = None
    #: Corners that exhausted their attempts under a skip policy (empty for a
    #: complete run).  ``repro-campaign show`` lists these and ``resume``
    #: re-runs exactly these corners.
    failures: list[CornerFailure] = field(default_factory=list)
    #: Non-zero solver degradation counters summed over all tasks (gmin /
    #: source stepping rungs, iterative->LU fallbacks); empty when every
    #: corner converged on the first-choice numerical path.
    solver_degradations: dict[str, int] = field(default_factory=dict)
    #: Per-run telemetry: a ``repro.obs`` ``MetricsRegistry.snapshot()``
    #: under ``"metrics"`` plus (when tracing was enabled) per-span-name
    #: aggregates under ``"spans"``.  ``None`` for results produced before
    #: the telemetry layer existed.
    telemetry: dict | None = None

    def __len__(self) -> int:
        return len(self.records)

    @property
    def complete(self) -> bool:
        """True when no corner was skipped over a failure."""
        return not self.failures

    def failed_corners(self) -> frozenset[tuple[int, float, float]]:
        """(variant, power, vtune) coordinates of the recorded failures."""
        return frozenset((failure.variant_index, failure.injected_power_dbm,
                          failure.vtune) for failure in self.failures)

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> tuple:
        """Persist to ``<stem>.npz`` + ``<stem>.meta.json``; returns the paths.

        The float columns are stored raw (float64 / complex128), so
        ``SweepResult.load(path)`` reconstructs records whose spur powers are
        bit-identical to the in-memory originals.
        """
        from .persist import save_result

        return save_result(self, path)

    @staticmethod
    def load(path) -> "SweepResult":
        """Load a result persisted by :meth:`save` (``flow``-less variants)."""
        from .persist import load_result

        return load_result(path)

    def merge(self, other: "SweepResult") -> "SweepResult":
        """Combine two partial runs of the *same* campaign into one result.

        Records are keyed by their deterministic grid ``point_index``; where
        both results cover a point, this result's record wins.  Wall-clock
        and cache counters are summed (cumulative cost of both runs).

        This is the API for stitching separately-saved partial results (e.g.
        corners computed on different machines).  Note that
        :meth:`SweepRunner.run(resume_from=...)
        <repro.studies.runner.SweepRunner.run>` merges records itself and
        reports only the *fresh* run's wall clock and cache traffic.
        """
        mine = self.campaign_spec or {}
        theirs = other.campaign_spec or {}
        if mine.get("fingerprint") and theirs.get("fingerprint") \
                and mine["fingerprint"] != theirs["fingerprint"]:
            raise AnalysisError(
                "cannot merge sweep results of different campaigns "
                f"({self.campaign_name!r} vs {other.campaign_name!r}: "
                "campaign fingerprints differ)")
        if dict(self.axes) != dict(other.axes):
            raise AnalysisError(
                "cannot merge sweep results with different axes "
                f"({sorted(self.axes)} vs {sorted(other.axes)})")
        by_point = {record.point_index: record for record in other.records}
        by_point.update({record.point_index: record for record in self.records})
        variants: dict[int, VariantRecord] = {
            variant.index: variant for variant in other.variants}
        for variant in self.variants:
            if variant.flow is not None or variant.index not in variants:
                variants[variant.index] = variant
        # A corner one run failed but the other completed is no longer a
        # failure; among surviving failures, keyed corners dedupe (self wins).
        merged_records = [by_point[index] for index in sorted(by_point)]
        covered = {(r.variant_index, r.injected_power_dbm, r.vtune)
                   for r in merged_records}
        failures: list[CornerFailure] = []
        seen_corners: set[tuple[int, float, float]] = set()
        for failure in [*self.failures, *other.failures]:
            corner = (failure.variant_index, failure.injected_power_dbm,
                      failure.vtune)
            if corner in covered or corner in seen_corners:
                continue
            seen_corners.add(corner)
            failures.append(failure)
        degradations = dict(self.solver_degradations)
        for name, count in other.solver_degradations.items():
            degradations[name] = degradations.get(name, 0) + count
        return SweepResult(
            campaign_name=self.campaign_name,
            backend_name=self.backend_name,
            axes=self.axes,
            records=merged_records,
            variants=[variants[index] for index in sorted(variants)],
            wall_seconds=self.wall_seconds + other.wall_seconds,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            campaign_spec=self.campaign_spec or other.campaign_spec,
            failures=failures,
            solver_degradations=degradations,
            telemetry=self.telemetry or other.telemetry)

    # -- tidy columns --------------------------------------------------------

    @cached_property
    def _columns(self) -> dict[str, np.ndarray]:
        columns = {
            "variant": np.array([r.variant_index for r in self.records]),
            AXIS_INJECTED_POWER: np.array(
                [r.injected_power_dbm for r in self.records]),
            AXIS_VTUNE: np.array([r.vtune for r in self.records]),
            AXIS_NOISE_FREQUENCY: np.array(
                [r.noise_frequency for r in self.records]),
            "spur_power_dbm": np.array(
                [r.spur_power_dbm for r in self.records]),
            "carrier_frequency": np.array(
                [r.carrier_frequency for r in self.records]),
            "carrier_amplitude": np.array(
                [r.carrier_amplitude for r in self.records]),
        }
        for name in self.axes:
            if name not in columns:          # layout / mesh axes
                columns[name] = np.array(
                    [r.knobs.get(name, np.nan) for r in self.records])
        return columns

    def column(self, name: str) -> np.ndarray:
        """Tidy column over all records (axis coordinate or outcome)."""
        try:
            return self._columns[name]
        except KeyError:
            raise AnalysisError(
                f"unknown sweep column {name!r}; available: "
                f"{sorted(self._columns)}") from None

    def rows(self) -> list[dict[str, float]]:
        """All records as flat dict rows (for tables / DataFrame adapters)."""
        return [record.row() for record in self.records]

    # -- selection -----------------------------------------------------------

    def _mask(self, **filters: float) -> np.ndarray:
        mask = np.ones(len(self.records), dtype=bool)
        for name, value in filters.items():
            column = self.column(name)
            mask &= np.isclose(column, value, rtol=1e-12, atol=0.0)
        return mask

    def select(self, **filters: float) -> list[PointRecord]:
        """Records matching the given axis values (e.g. ``vtune=0.0``)."""
        mask = self._mask(**filters)
        return [record for record, keep in zip(self.records, mask) if keep]

    # -- summary queries -----------------------------------------------------

    def spur_vs_frequency(self, **filters: float) -> tuple[np.ndarray, np.ndarray]:
        """Spur-power-versus-noise-frequency curve of one corner.

        Returns ``(frequencies, spur_power_dbm)`` sorted by frequency; the
        filters must pin every other axis down to a single curve.
        """
        selected = self.select(**filters)
        if not selected:
            raise AnalysisError(f"no sweep points match {filters!r}")
        frequencies = np.array([r.noise_frequency for r in selected])
        power = np.array([r.spur_power_dbm for r in selected])
        if len(np.unique(frequencies)) != len(frequencies):
            raise AnalysisError(
                f"filters {filters!r} leave more than one curve "
                "(duplicate noise frequencies)")
        order = np.argsort(frequencies)
        return frequencies[order], power[order]

    def worst_spur(self, **filters: float) -> PointRecord:
        """The grid point with the highest total spur power (worst corner)."""
        selected = self.select(**filters) if filters else self.records
        if not selected:
            raise AnalysisError(f"no sweep points match {filters!r}")
        return max(selected, key=lambda record: record.spur_power_dbm)

    @staticmethod
    def _axis_value(record: PointRecord, axis: str) -> float:
        if axis == "variant":
            return float(record.variant_index)
        if axis == AXIS_VTUNE:
            return record.vtune
        if axis == AXIS_NOISE_FREQUENCY:
            return record.noise_frequency
        if axis == AXIS_INJECTED_POWER:
            return record.injected_power_dbm
        return record.knobs[axis]

    def worst_per(self, axis: str) -> dict[float, PointRecord]:
        """Worst grid point for each value of ``axis`` (worst spur per corner)."""
        if axis not in self.axes and axis != "variant":
            raise AnalysisError(f"unknown sweep axis {axis!r}")
        worst: dict[float, PointRecord] = {}
        for record in self.records:
            value = self._axis_value(record, axis)
            if value not in worst \
                    or record.spur_power_dbm > worst[value].spur_power_dbm:
                worst[value] = record
        return worst

    # -- bridge into the classic figure results ------------------------------

    def to_vco_sweep_result(
            self,
            reference_slope_db_per_decade: float =
            measurements.FIG8_SLOPE_DB_PER_DECADE):
        """Convert a (V_tune x noise frequency) campaign into the Figure-8
        :class:`~repro.core.results.VcoSpurSweepResult`.

        Requires a single layout variant and injected power; the reference
        curve per V_tune is the ideal slope line anchored at the first
        simulated point, exactly as the classic ``spur_sweep`` built it.
        """
        from ..core.results import SpurSweepPoint, VcoSpurSweepResult

        if len(self.variants) != 1:
            raise AnalysisError(
                "to_vco_sweep_result needs a single-layout campaign "
                f"(got {len(self.variants)} variants)")
        if len(self.axes[AXIS_INJECTED_POWER]) != 1:
            raise AnalysisError(
                "to_vco_sweep_result needs a single injected power")

        frequencies = np.asarray(self.axes[AXIS_NOISE_FREQUENCY], dtype=float)
        vtune_values = tuple(self.axes[AXIS_VTUNE])
        spur_power: dict[float, np.ndarray] = {}
        reference: dict[float, np.ndarray] = {}
        comparisons = {}
        carrier_frequencies = {}
        carrier_amplitudes = {}
        points: list[SpurSweepPoint] = []
        for vtune in vtune_values:
            selected = self.select(vtune=vtune)
            power = np.array([r.spur_power_dbm for r in selected])
            spur_power[vtune] = power
            ref = reference_slope_line(frequencies, float(power[0]),
                                       reference_slope_db_per_decade)
            reference[vtune] = ref
            comparisons[vtune] = compare_curves(frequencies, ref,
                                                frequencies, power,
                                                log_axis=True)
            carrier_frequencies[vtune] = selected[0].carrier_frequency
            carrier_amplitudes[vtune] = selected[0].carrier_amplitude
            points.extend(SpurSweepPoint(vtune=vtune,
                                         noise_frequency=r.noise_frequency,
                                         spur=r.spur)
                          for r in selected)
        return VcoSpurSweepResult(
            noise_frequencies=frequencies,
            vtune_values=vtune_values,
            spur_power_dbm=spur_power,
            reference_dbm=reference,
            comparisons=comparisons,
            carrier_frequencies=carrier_frequencies,
            carrier_amplitudes=carrier_amplitudes,
            points=points)

    def summary(self) -> dict[str, float | int | str]:
        """Headline numbers for logging / benchmark records."""
        summary: dict[str, float | int | str] = {
            "campaign": self.campaign_name,
            "backend": self.backend_name,
            "points": len(self.records),
            "variants": len(self.variants),
            "extractions": self.cache_misses,
            "cache_hits": self.cache_hits,
            "wall_seconds": round(self.wall_seconds, 4),
        }
        if (self.campaign_spec or {}).get("fingerprint"):
            summary["fingerprint"] = self.campaign_spec["fingerprint"]
        if self.records:   # a fully-failed skip-policy run has no points
            summary["worst_spur_dbm"] = round(
                self.worst_spur().spur_power_dbm, 2)
        if self.failures:
            summary["failed_corners"] = len(self.failures)
        if self.solver_degradations:
            summary["solver_degradations"] = sum(
                self.solver_degradations.values())
        return summary
