"""The sweep runner: campaign resolution, extraction reuse and task fan-out.

``SweepRunner`` turns a declarative :class:`~repro.studies.params.Campaign`
into a :class:`~repro.studies.results.SweepResult`:

1. resolve the campaign's layout/mesh axes into variants and obtain one
   extracted :class:`~repro.core.flow.FlowResult` per variant through the
   :class:`~repro.studies.cache.ExtractionCache` (layout-invariant sweeps hit
   the cache after the first run; layout sweeps re-extract only the changed
   variants),
2. build one :class:`SweepTask` per (variant, injected power, V_tune) —
   each task analyses all noise frequencies of the campaign in one AC sweep,
   which is the natural unit of work (one DC solve + one transfer function),
3. execute the tasks on the configured backend (serial or sharded across
   processes) and reassemble the per-point records *in task order*, so the
   result is numerically identical whichever backend ran it.

``_execute_task`` is a module-level function with picklable payloads, which
is what lets :class:`~repro.studies.backends.ProcessPoolBackend` ship tasks
to worker processes; the extracted flow rides along in the task (a few tens
of kilobytes), so workers never re-extract.  Against a backend with a graph
entry point (``run_graph``) the two phases fuse into one dependency-aware
plan — extractions and corners share the scheduler's worker pool, and each
variant's flow ships through shared memory once instead of per corner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..core.flow import FlowOptions, FlowResult, run_extraction_flow
from ..errors import AnalysisError, CornerFailure
from ..layout.cell import Cell
from ..obs import (
    MetricsRegistry,
    TraceContext,
    collect_spans,
    get_logger,
    span_aggregates,
    trace_span,
    tracer,
)
from ..technology.process import ProcessTechnology
from .backends import (
    ON_ERROR_ABORT,
    SerialBackend,
    SweepBackend,
    TaskFailure,
    _check_policy,
)
from .cache import CacheStats, ExtractionCache
from .params import Campaign, LayoutVariant
from .persist import CampaignJournal, CheckpointPolicy
from .results import PointRecord, SweepResult, VariantRecord

if TYPE_CHECKING:
    from ..core.vco_experiment import VcoExperimentOptions
    from ..layout.testchips import VcoLayoutSpec
    from ..obs import CampaignObserver
    from .faults import FaultPlan

logger = get_logger(__name__)


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of work: a spur analysis over all noise
    frequencies at a fixed (variant, injected power, V_tune) corner."""

    index: int
    variant_index: int
    knobs: dict[str, float]
    technology: ProcessTechnology
    spec: "VcoLayoutSpec"                  #: layout spec of the variant
    options: "VcoExperimentOptions"        #: options with this task's power
    injected_power_dbm: float
    vtune: float
    noise_frequencies: tuple[float, ...]
    flow: FlowResult | None                #: pre-extracted models of the variant
    first_point_index: int                 #: global index of the first point
    #: per-run trace handle re-parenting worker spans under the campaign
    #: root; ``None`` whenever tracing is disabled.
    trace: "TraceContext | None" = None
    #: shared-memory reference resolving to ``flow`` (graph scheduling ships
    #: each variant's extracted flow *once* instead of per corner); exactly
    #: one of ``flow`` / ``flow_ref`` is set on a dispatched task.
    flow_ref: object | None = None

    # Excluded from content hashing: the same corner must fingerprint
    # identically with and without tracing, and however its flow travelled.
    __fingerprint_exclude__ = ("trace", "flow_ref")

    def corner_label(self) -> str:
        """Human-readable corner identity (used in failure messages)."""
        knobs = "".join(f" {name}={value:g}"
                        for name, value in sorted(self.knobs.items()))
        return (f"variant {self.variant_index}{knobs}, "
                f"P_inj={self.injected_power_dbm:g} dBm, "
                f"V_tune={self.vtune:g} V, "
                f"{len(self.noise_frequencies)} noise frequencies")


@dataclass(frozen=True)
class TaskOutcome:
    """Per-point records produced by one task, tagged with the task index.

    ``degradations`` holds the non-zero solver degradation counters this task
    tripped (gmin/source-stepping rungs, iterative->LU fallbacks), measured
    as the worker-local delta of the global solver stats around the task.
    ``seconds`` is the task's wall clock; ``spans`` carries the spans the
    task recorded under its :class:`~repro.obs.TraceContext` home to the
    parent process (empty whenever tracing is disabled).
    """

    index: int
    records: tuple[PointRecord, ...]
    degradations: tuple[tuple[str, int], ...] = ()
    seconds: float = 0.0
    spans: tuple = ()


@dataclass(frozen=True)
class ExtractionTask:
    """One cache-missing variant to extract (worker-shippable payload).

    When the runner's cache is disk-backed, ``cache_dir``/``key`` ride along
    so the executing process (worker or not) routes the extraction through
    the store's lease protocol — N concurrent runners sharing one cache
    directory then extract each distinct variant exactly once, with the
    others blocking on the claimer's lease and reusing its published entry.
    """

    variant_index: int
    cell: Cell
    technology: ProcessTechnology
    flow_options: FlowOptions
    cache_dir: str | None = None
    key: str = ""
    lease_stale_seconds: float = 30.0

    def corner_label(self) -> str:
        """Human-readable identity of the extraction (failure messages)."""
        return (f"extraction of variant {self.variant_index} "
                f"(cell {self.cell.name!r})")


def _execute_extraction(task: ExtractionTask) -> FlowResult:
    """Extract one variant (worker-side entry point; must stay picklable)."""
    def extract() -> FlowResult:
        return run_extraction_flow(task.cell, task.technology,
                                   options=task.flow_options)

    if not task.cache_dir or not task.key:
        return extract()
    # Lease-claimed path: exactly-once across every process sharing the
    # cache directory (local import keeps the worker payload import-light).
    from .store import DiskExtractionCache

    store = DiskExtractionCache(task.cache_dir,
                                lease_stale_seconds=task.lease_stale_seconds)
    return store.extract_with_claim(task.key, extract)


def _execute_task(task: SweepTask) -> TaskOutcome:
    """Run one task (worker-side entry point; must stay picklable)."""
    # Local import: repro.core.vco_experiment uses the studies package for its
    # own sweeps, so the dependency must not be circular at import time.
    from ..core.vco_experiment import VcoImpactAnalysis
    from ..parallel.shm import load_object
    from ..simulator.solver import SolverStats
    from ..simulator.solver import stats as solver_stats

    if task.flow is None and task.flow_ref is not None:
        # Graph scheduling ships the variant's flow through shared memory;
        # the worker-side cache makes this one unpickle per variant.
        task = replace(task, flow=load_object(task.flow_ref), flow_ref=None)

    before = {name: getattr(solver_stats, name)
              for name in SolverStats.DEGRADATION_COUNTERS}
    t0 = time.perf_counter()
    # collect_spans parents this task's spans under the campaign root span
    # (shipped in ``task.trace``) and hands them back through the outcome —
    # in a worker process *and*, identically, in the serial backend.
    with collect_spans(task.trace) as span_sink:
        with trace_span("campaign.corner", index=task.index,
                        variant=task.variant_index,
                        power_dbm=task.injected_power_dbm, vtune=task.vtune):
            analysis = VcoImpactAnalysis(task.technology, spec=task.spec,
                                         options=task.options,
                                         flow_result=task.flow)
            spur_results, _vco, _catalog, _tf = analysis.analyze(
                task.vtune, np.asarray(task.noise_frequencies, dtype=float))
    seconds = time.perf_counter() - t0
    # Worker-local delta of the global counters: which robustness ladders
    # this corner needed (zero deltas for a first-try-converged corner).
    degradations = tuple(
        (name, getattr(solver_stats, name) - before[name])
        for name in SolverStats.DEGRADATION_COUNTERS
        if getattr(solver_stats, name) > before[name])
    records = tuple(
        PointRecord(point_index=task.first_point_index + offset,
                    variant_index=task.variant_index,
                    knobs=dict(task.knobs),
                    injected_power_dbm=task.injected_power_dbm,
                    vtune=task.vtune,
                    noise_frequency=float(frequency),
                    spur=spur)
        for offset, (frequency, spur)
        in enumerate(zip(task.noise_frequencies, spur_results)))
    return TaskOutcome(index=task.index, records=records,
                       degradations=degradations, seconds=seconds,
                       spans=tuple(span_sink))


class _Checkpointer:
    """Streams completed corners into the crash journal (``on_result`` hook).

    Buffers each settled task's records and flushes them as one atomic
    journal segment every ``policy.every_corners`` corners or
    ``policy.every_seconds`` seconds, whichever comes first.  The runner
    flushes once more in a ``finally`` when the campaign ends, so even an
    aborting run journals every corner that completed before the abort.
    """

    def __init__(self, journal: CampaignJournal, policy: CheckpointPolicy):
        self.journal = journal
        self.policy = policy
        self._buffer: list[PointRecord] = []
        self._corners_since_flush = 0
        self._last_flush = time.monotonic()

    def __call__(self, index: int, outcome: TaskOutcome) -> None:
        self._buffer.extend(outcome.records)
        self._corners_since_flush += 1
        if (self._corners_since_flush >= self.policy.every_corners
                or time.monotonic() - self._last_flush
                >= self.policy.every_seconds):
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self.journal.append(self._buffer)
            self._buffer = []
        self._corners_since_flush = 0
        self._last_flush = time.monotonic()


class SweepRunner:
    """Runs campaigns against a backend and an extraction cache.

    One runner can execute many campaigns; sharing its cache across campaigns
    is how a design session avoids re-extracting layouts it has already seen
    (the counters on ``runner.cache.stats`` record the traffic).

    ``on_error`` selects the campaign failure policy (``"abort"``, ``"skip"``
    or ``"retry_then_skip"``): under the skip policies a corner that exhausts
    its attempts becomes a structured
    :class:`~repro.errors.CornerFailure` on the (partial) result instead of
    aborting the run.  ``fault_plan`` injects deterministic faults into the
    sweep tasks (see :mod:`repro.studies.faults`) — test-harness machinery,
    ``None`` in production.
    """

    def __init__(self, technology: ProcessTechnology,
                 backend: SweepBackend | None = None,
                 cache: ExtractionCache | None = None, *,
                 on_error: str = ON_ERROR_ABORT,
                 fault_plan: "FaultPlan | None" = None):
        self.technology = technology
        self.backend = SerialBackend() if backend is None else backend
        # Explicit None check: an empty cache is falsy (it has __len__).
        self.cache = ExtractionCache() if cache is None else cache
        self.on_error = _check_policy(on_error)
        self.fault_plan = fault_plan

    def _task_fn(self):
        """The (picklable) per-task callable, fault-wrapped when injecting."""
        if self.fault_plan is None:
            return _execute_task
        return self.fault_plan.wrap(_execute_task)

    # -- extraction ----------------------------------------------------------

    def _plan_extractions(self, campaign: Campaign,
                          variants: list[LayoutVariant],
                          ) -> tuple[list[str], dict[str, FlowResult],
                                     set[str], dict[str, ExtractionTask]]:
        """Cache-resolve every variant; plan the (deduplicated) misses.

        Returns ``(keys, resolved, hits, pending)``: the per-variant cache
        keys in variant order, the flows already resolved (cache hits), the
        subset of keys that were hits, and one :class:`ExtractionTask` per
        distinct missing key.  Cache lookups stay parent-side, so workers
        never race the extraction store.
        """
        keys: list[str] = []
        resolved: dict[str, FlowResult] = {}
        hits: set[str] = set()
        pending: dict[str, ExtractionTask] = {}   # key -> task, deduplicated
        for variant in variants:
            cell = campaign.build_cell(variant)
            key = self.cache.key(cell, self.technology, variant.flow_options)
            keys.append(key)
            if key in resolved or key in pending:
                continue                          # duplicate content, no traffic
            flow = self.cache.lookup(key)
            if flow is not None:
                resolved[key] = flow
                hits.add(key)
            else:
                # A disk-backed cache stamps its directory into the task so
                # the extracting process claims the key first (exactly-once
                # across concurrent runners sharing the directory).
                cache_dir = getattr(self.cache, "cache_dir", None)
                pending[key] = ExtractionTask(
                    variant_index=variant.index, cell=cell,
                    technology=self.technology,
                    flow_options=variant.flow_options,
                    cache_dir=str(cache_dir) if cache_dir else None,
                    key=key,
                    lease_stale_seconds=getattr(
                        self.cache, "lease_stale_seconds", 30.0))
        return keys, resolved, hits, pending

    def _extract_variants(self, campaign: Campaign,
                          variants: list[LayoutVariant],
                          ) -> tuple[list[VariantRecord],
                                     dict[int, TaskFailure]]:
        """Resolve every variant to a flow, extracting cache misses in bulk.

        The misses are fanned out through the campaign backend: on a cold
        layout sweep with a process-pool backend, the per-variant extractions
        (the expensive half of a study) run in parallel, not just the
        simulations.  (Backends with a graph entry point skip this phase
        barrier entirely — see :meth:`_run_graph`.)

        Under a skip policy an extraction that exhausts its attempts does not
        abort: its variants come back with ``flow=None`` and the second
        return value maps each affected variant index to the
        :class:`~repro.studies.backends.TaskFailure` (the runner turns those
        into per-corner failure records).
        """
        keys, resolved, hits, pending = self._plan_extractions(campaign,
                                                               variants)
        failed_keys: dict[str, TaskFailure] = {}
        tasks = list(pending.values())
        for key, flow in zip(pending, self.backend.run(_execute_extraction,
                                                       tasks,
                                                       on_error=self.on_error)):
            if isinstance(flow, TaskFailure):
                failed_keys[key] = flow
                continue
            self.cache.store(key, flow)
            resolved[key] = flow
        failures = {variant.index: failed_keys[key]
                    for variant, key in zip(variants, keys)
                    if key in failed_keys}
        return ([VariantRecord(index=variant.index,
                               knobs=dict(variant.knobs),
                               spec=variant.spec,
                               cache_key=key,
                               flow=resolved.get(key),
                               from_cache=key in hits)
                 for variant, key in zip(variants, keys)],
                failures)

    # -- task fan-out --------------------------------------------------------

    def _build_tasks(self, campaign: Campaign,
                     variants: list[LayoutVariant],
                     extracted: list[VariantRecord],
                     skip: frozenset[tuple[int, float, float]] = frozenset(),
                     unavailable: frozenset[int] = frozenset(),
                     deferred: frozenset[int] = frozenset(),
                     ) -> list[SweepTask]:
        """One task per pending (variant, power, vtune) corner.

        ``skip`` holds corners an earlier (persisted) run already completed;
        their tasks are omitted but the deterministic global point indexing
        still advances past them, so merged records line up exactly with a
        never-interrupted run.  ``unavailable`` holds variant indices whose
        extraction failed under a skip policy — their corners are omitted too
        (the runner records them as failures instead).  ``deferred`` holds
        variant indices whose extraction runs *inside* the same work plan as
        the corners (graph scheduling): their tasks are legitimately built
        with ``flow=None`` and receive the flow through the scheduler's
        dependency binding just before dispatch.
        """
        powers, vtunes, frequencies = campaign.sim_grid()
        tasks: list[SweepTask] = []
        point_index = 0
        for variant, record in zip(variants, extracted):
            if variant.index in unavailable:
                point_index += len(powers) * len(vtunes) * len(frequencies)
                continue
            for power in powers:
                options = replace(campaign.options,
                                  injected_power_dbm=power,
                                  flow=variant.flow_options)
                for vtune in vtunes:
                    if (variant.index, power, vtune) not in skip:
                        if (record.flow is None
                                and variant.index not in deferred):
                            raise AnalysisError(
                                f"variant {variant.index} has pending corners "
                                "but no extracted flow (corrupt resume state)")
                        tasks.append(SweepTask(
                            index=len(tasks),
                            variant_index=variant.index,
                            knobs=dict(variant.knobs),
                            technology=self.technology,
                            spec=variant.spec,
                            options=options,
                            injected_power_dbm=power,
                            vtune=vtune,
                            noise_frequencies=frequencies,
                            flow=record.flow,
                            first_point_index=point_index))
                    point_index += len(frequencies)
        return tasks

    # -- resume bookkeeping --------------------------------------------------

    @staticmethod
    def _completed_corners(campaign: Campaign,
                           resume_from: SweepResult | None,
                           n_frequencies: int,
                           ) -> frozenset[tuple[int, float, float]]:
        """Corners of ``campaign`` fully covered by a stored partial result.

        A corner counts as complete only when every noise frequency of the
        campaign has a record (tasks are atomic, so a run killed mid-task
        leaves no partial corners — but a result saved from a *different*
        frequency grid would, and the fingerprint check catches that first).
        """
        if resume_from is None:
            return frozenset()
        stored = (resume_from.campaign_spec or {}).get("fingerprint")
        if stored is not None and stored != campaign.fingerprint():
            raise AnalysisError(
                f"cannot resume campaign {campaign.name!r} from a result of "
                f"campaign {resume_from.campaign_name!r}: the stored "
                "fingerprint does not match this campaign's axes/spec/options")
        counts: dict[tuple[int, float, float], int] = {}
        for record in resume_from.records:
            corner = (record.variant_index, record.injected_power_dbm,
                      record.vtune)
            counts[corner] = counts.get(corner, 0) + 1
        return frozenset(corner for corner, count in counts.items()
                         if count >= n_frequencies)

    @staticmethod
    def _carried_variant(variant: LayoutVariant,
                         resume_from: SweepResult | None) -> VariantRecord:
        """Variant record for a fully-completed variant (no re-extraction)."""
        if resume_from is not None:
            for record in resume_from.variants:
                if record.index == variant.index:
                    return record
        return VariantRecord(index=variant.index, knobs=dict(variant.knobs),
                             spec=variant.spec, cache_key="", flow=None,
                             from_cache=True)

    # -- execution -----------------------------------------------------------

    def run(self, campaign: Campaign,
            resume_from: SweepResult | None = None,
            checkpoint: CheckpointPolicy | None = None,
            observer: "CampaignObserver | None" = None) -> SweepResult:
        """Execute the campaign and aggregate its tidy result.

        With ``resume_from`` (a previously persisted, possibly partial result
        of the *same* campaign), corners the stored result already covers are
        skipped entirely — their variants are not even re-extracted — and the
        stored records are merged with the freshly computed ones into one
        complete result.

        With ``checkpoint``, completed corners stream into an atomic
        crash-recovery journal at ``checkpoint.path`` while the campaign
        runs; corners already journaled there (by a previous run killed
        mid-campaign) are recovered first and not recomputed, so a ``kill
        -9`` loses at most one checkpoint interval.  The journal survives
        this call — discard it (:meth:`CampaignJournal.discard
        <repro.studies.persist.CampaignJournal.discard>`) once the returned
        result has been saved.

        ``observer`` (a :class:`repro.obs.CampaignObserver`, e.g. the run-log
        recorder or the progress reporter) receives parent-process callbacks
        as corners start, retry, finish and fail.  When the process-global
        :data:`repro.obs.tracer` is enabled, the whole run executes under a
        ``campaign.run`` root span and every task ships a
        :class:`~repro.obs.TraceContext` so worker-recorded spans re-parent
        under that root when their outcomes come home.
        """
        root_span = None
        trace_mark = 0
        if tracer.enabled:
            trace_mark = tracer.mark()
            # Entered manually (not a ``with`` around the body): the span
            # must be closed *before* the observer's campaign_finished hook
            # dumps the recorded spans into the run log.
            root_span = trace_span("campaign.run", campaign=campaign.name)
            root_span.__enter__()
        try:
            result = self._run(campaign, resume_from, checkpoint, observer,
                               trace_mark)
        except BaseException:
            if root_span is not None:
                root_span.__exit__(None, None, None)
            if observer is not None:
                observer.close()
            raise
        if root_span is not None:
            root_span.__exit__(None, None, None)
            if result.telemetry is not None:
                # Re-aggregate now that the root span itself is recorded.
                result.telemetry["spans"] = span_aggregates(
                    tracer.spans_since(trace_mark))
        if observer is not None:
            observer.campaign_finished(result)
        return result

    def _run(self, campaign: Campaign,
             resume_from: SweepResult | None,
             checkpoint: CheckpointPolicy | None,
             observer: "CampaignObserver | None",
             trace_mark: int) -> SweepResult:
        from ..simulator.solver import SolverStats
        from ..simulator.solver import stats as solver_stats

        start = time.perf_counter()
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        solver_before = {name: getattr(solver_stats, name)
                         for name in SolverStats._COUNTERS}

        variants = campaign.variants()
        powers, vtunes, frequencies = campaign.sim_grid()
        done = self._completed_corners(campaign, resume_from, len(frequencies))

        prior_records: list[PointRecord] = []
        if resume_from is not None:
            prior_records.extend(
                record for record in resume_from.records
                if (record.variant_index, record.injected_power_dbm,
                    record.vtune) in done)

        checkpointer: _Checkpointer | None = None
        if checkpoint is not None:
            fingerprint = campaign.fingerprint()
            recovered = CampaignJournal.recover(checkpoint.path,
                                                fingerprint=fingerprint)
            seen_points = {record.point_index for record in prior_records}
            recovered = [record for record in recovered
                         if record.point_index not in seen_points]
            counts: dict[tuple[int, float, float], int] = {}
            for record in recovered:
                corner = (record.variant_index, record.injected_power_dbm,
                          record.vtune)
                counts[corner] = counts.get(corner, 0) + 1
            journaled = frozenset(corner for corner, count in counts.items()
                                  if count >= len(frequencies))
            done |= journaled
            prior_records.extend(
                record for record in recovered
                if (record.variant_index, record.injected_power_dbm,
                    record.vtune) in journaled)
            journal = CampaignJournal(checkpoint.path,
                                      campaign_name=campaign.name,
                                      fingerprint=fingerprint)
            journal.open()
            checkpointer = _Checkpointer(journal, checkpoint)

        pending_variants = [
            variant for variant in variants
            if any((variant.index, power, vtune) not in done
                   for power in powers for vtune in vtunes)]
        # Backends exposing a graph entry point (the scheduler-backed pool)
        # run extractions and corners as ONE dependency-aware plan: corners
        # of cached variants overlap with extractions still running instead
        # of waiting behind the two-phase barrier below.
        use_graph = callable(getattr(self.backend, "run_graph", None))
        failed_extractions: dict[int, TaskFailure] = {}
        graph_keys: list[str] = []
        graph_resolved: dict[str, FlowResult] = {}
        graph_pending: dict[str, ExtractionTask] = {}
        deferred: frozenset[int] = frozenset()
        if use_graph:
            (graph_keys, graph_resolved, graph_hits,
             graph_pending) = self._plan_extractions(campaign,
                                                     pending_variants)
            deferred = frozenset(
                variant.index
                for variant, key in zip(pending_variants, graph_keys)
                if key in graph_pending)
            extracted_records = [
                VariantRecord(index=variant.index,
                              knobs=dict(variant.knobs),
                              spec=variant.spec, cache_key=key,
                              flow=graph_resolved.get(key),
                              from_cache=key in graph_hits)
                for variant, key in zip(pending_variants, graph_keys)]
        else:
            extracted_records, failed_extractions = self._extract_variants(
                campaign, pending_variants)
        extracted = {record.index: record for record in extracted_records}
        variant_records = [
            extracted.get(variant.index)
            or self._carried_variant(variant, resume_from)
            for variant in variants]
        tasks = self._build_tasks(campaign, variants, variant_records,
                                  skip=done,
                                  unavailable=frozenset(failed_extractions),
                                  deferred=deferred)
        if tracer.enabled:
            # Same context for every task: all corners of this run hang
            # directly off the campaign root span.
            context = tracer.current_context()
            tasks = [replace(task, trace=context) for task in tasks]

        if observer is not None:
            observer.campaign_started(
                campaign_name=campaign.name,
                fingerprint=campaign.fingerprint(),
                total_corners=len(variants) * len(powers) * len(vtunes),
                pending_corners=len(tasks),
                prior_corners=len(done))
        logger.info(
            "campaign start: name=%s pending_corners=%d prior_corners=%d "
            "backend=%s", campaign.name, len(tasks), len(done),
            self.backend.describe())

        # One failure record per pending corner of a failed extraction: the
        # corner never ran, and a later ``resume`` re-attempts exactly it.
        failures: list[CornerFailure] = []
        for variant in variants:
            extraction_failure = failed_extractions.get(variant.index)
            if extraction_failure is None:
                continue
            for power in powers:
                for vtune in vtunes:
                    if (variant.index, power, vtune) in done:
                        continue
                    failure = extraction_failure.as_corner_failure(
                        variant_index=variant.index,
                        injected_power_dbm=power, vtune=vtune)
                    failures.append(failure)
                    if observer is not None:
                        observer.corner_failed(failure)

        def handle_result(index: int, outcome: TaskOutcome) -> None:
            if checkpointer is not None:
                checkpointer(index, outcome)
            if outcome.spans:
                tracer.adopt(outcome.spans)
            if observer is not None:
                observer.corner_finished(tasks[index], outcome)

        handle_start = None
        if observer is not None:
            def handle_start(index: int, attempt: int) -> None:
                observer.corner_started(tasks[index], attempt)

        try:
            if use_graph:
                outcomes = self._run_graph(tasks, pending_variants,
                                           graph_keys, graph_resolved,
                                           graph_pending, handle_result,
                                           handle_start)
            else:
                outcomes = self.backend.run(self._task_fn(), tasks,
                                            on_error=self.on_error,
                                            on_result=handle_result,
                                            on_start=handle_start)
        finally:
            # Journal every corner that completed, even when aborting: the
            # next run recovers them instead of recomputing.
            if checkpointer is not None:
                checkpointer.flush()

        if use_graph and graph_pending:
            # Backfill the variant records of freshly extracted variants:
            # their flows arrived through the plan, after the records were
            # built (flows of variants that failed to extract stay None,
            # exactly like the two-phase path).
            refreshed = {record.index: record for record in variant_records}
            for variant, key in zip(pending_variants, graph_keys):
                record = refreshed[variant.index]
                if record.flow is None and key in graph_resolved:
                    refreshed[variant.index] = replace(
                        record, flow=graph_resolved[key])
            variant_records = [refreshed[variant.index]
                               for variant in variants]

        degradations: dict[str, int] = dict(
            resume_from.solver_degradations) if resume_from else {}
        successes: list[TaskOutcome] = []
        # Position-keyed, not ``outcome.index``-keyed: a corner doomed by a
        # failed extraction inherits the extraction's TaskFailure verbatim,
        # whose index is the *extraction's* plan position.
        for position, outcome in enumerate(outcomes):
            if isinstance(outcome, TaskFailure):
                task = tasks[position]
                failure = outcome.as_corner_failure(
                    variant_index=task.variant_index,
                    injected_power_dbm=task.injected_power_dbm,
                    vtune=task.vtune)
                failures.append(failure)
                if observer is not None:
                    observer.corner_failed(failure)
            else:
                successes.append(outcome)
                for name, count in outcome.degradations:
                    degradations[name] = degradations.get(name, 0) + count

        records = list(prior_records)
        for outcome in sorted(successes, key=lambda o: o.index):
            records.extend(outcome.records)
        records.sort(key=lambda record: record.point_index)
        telemetry = self._build_telemetry(
            solver_before=solver_before,
            cache_hits=self.cache.hits - hits_before,
            cache_misses=self.cache.misses - misses_before,
            degradations=degradations,
            successes=successes,
            trace_mark=trace_mark)
        return SweepResult(
            campaign_name=campaign.name,
            backend_name=self.backend.describe(),
            axes=campaign.resolved_axes(),
            records=records,
            variants=variant_records,
            wall_seconds=time.perf_counter() - start,
            cache_hits=self.cache.hits - hits_before,
            cache_misses=self.cache.misses - misses_before,
            campaign_spec=campaign.describe(),
            failures=failures,
            solver_degradations=degradations,
            telemetry=telemetry)

    def _run_graph(self, tasks: list[SweepTask],
                   pending_variants: list[LayoutVariant],
                   keys: list[str],
                   resolved: "dict[str, FlowResult]",
                   pending: dict[str, ExtractionTask],
                   handle_result, handle_start):
        """Execute extractions and corners as one dependency-aware plan.

        Extraction items (``x<j>``, one per distinct cache key, priority 0)
        and corner items (``c<i>``, priority 1) go down the scheduler
        together; corners of a cache-missing variant depend on its extraction
        item and receive the flow through the item's ``bind`` hook just
        before dispatch.  With real worker processes involved, each variant's
        flow ships through shared memory **once**
        (:class:`~repro.parallel.shm.ObjectShipper`) and every corner carries
        only a tiny reference; the inline single-worker plan passes flows by
        reference instead.  Returns the corner outcomes in task order —
        numerically identical to the two-phase path.
        """
        from ..parallel.plan import WorkItem
        from ..parallel.shm import ObjectShipper

        key_by_variant = {variant.index: key
                          for variant, key in zip(pending_variants, keys)}
        xid_by_key = {key: f"x{position}"
                      for position, key in enumerate(pending)}
        key_by_xid = {xid: key for key, xid in xid_by_key.items()}
        n_items = len(pending) + len(tasks)
        ship = min(getattr(self.backend, "max_workers", 1), n_items) > 1
        shipper = ObjectShipper()
        task_fn = self._task_fn()

        items = [WorkItem(id=xid_by_key[key], fn=_execute_extraction,
                          payload=extraction, priority=0)
                 for key, extraction in pending.items()]
        for position, task in enumerate(tasks):
            key = key_by_variant[task.variant_index]
            deps: tuple[str, ...] = ()
            bind = None
            payload = task
            if key in xid_by_key:
                xid = xid_by_key[key]
                deps = (xid,)
                if ship:
                    def bind(payload, dep_results, key=key, xid=xid):
                        return replace(payload, flow_ref=shipper.ref_for(
                            key, dep_results[xid]))
                else:
                    def bind(payload, dep_results, xid=xid):
                        return replace(payload, flow=dep_results[xid])
            elif ship and task.flow is not None:
                payload = replace(task, flow=None,
                                  flow_ref=shipper.ref_for(key, task.flow))
            items.append(WorkItem(id=f"c{position}", fn=task_fn,
                                  payload=payload, deps=deps, priority=1,
                                  bind=bind))

        def on_result(item_id: str, value) -> None:
            if item_id.startswith("x"):
                key = key_by_xid[item_id]
                self.cache.store(key, value)
                resolved[key] = value
            elif handle_result is not None:
                handle_result(int(item_id[1:]), value)

        on_start = None
        if handle_start is not None:
            def on_start(item_id: str, attempt: int) -> None:
                if item_id.startswith("c"):
                    handle_start(int(item_id[1:]), attempt)

        try:
            outcome_map = self.backend.run_graph(
                items, on_error=self.on_error, on_result=on_result,
                on_start=on_start,
                flat_ids=[f"c{position}" for position in range(len(tasks))])
        finally:
            # Workers that still hold a mapped segment keep it alive; the
            # parent-side dispose only unlinks the names.
            shipper.close()
        return [outcome_map[f"c{position}"]
                for position in range(len(tasks))]

    def _build_telemetry(self, *, solver_before: dict[str, int],
                         cache_hits: int, cache_misses: int,
                         degradations: dict[str, int],
                         successes: list[TaskOutcome],
                         trace_mark: int) -> dict:
        """Per-run metrics in the one ``MetricsRegistry.snapshot()`` schema.

        Built on a fresh registry so every number is a delta of *this* run,
        not a process-lifetime accumulation.  The solver counters cover the
        in-process solver traffic (all of it under the serial backend;
        extraction-only under a process pool, where the workers' degradation
        deltas come home through the task outcomes instead).
        """
        from ..simulator.solver import SolverStats
        from ..simulator.solver import stats as solver_stats

        reg = MetricsRegistry()
        delta = SolverStats(backend=solver_stats.backend)
        for name in SolverStats._COUNTERS:
            setattr(delta, name,
                    getattr(solver_stats, name) - solver_before[name])
        reg.absorb_solver_stats(delta)
        reg.absorb_cache_stats(CacheStats(hits=cache_hits,
                                          misses=cache_misses))
        reg.absorb_degradations(degradations)
        reg.absorb_backend(self.backend)
        for outcome in successes:
            if outcome.seconds:
                reg.histogram("campaign.corner_seconds").observe(
                    outcome.seconds)
        telemetry: dict = {"metrics": reg.snapshot()}
        if tracer.enabled:
            telemetry["spans"] = span_aggregates(
                tracer.spans_since(trace_mark))
        return telemetry
