"""The sweep runner: campaign resolution, extraction reuse and task fan-out.

``SweepRunner`` turns a declarative :class:`~repro.studies.params.Campaign`
into a :class:`~repro.studies.results.SweepResult`:

1. resolve the campaign's layout/mesh axes into variants and obtain one
   extracted :class:`~repro.core.flow.FlowResult` per variant through the
   :class:`~repro.studies.cache.ExtractionCache` (layout-invariant sweeps hit
   the cache after the first run; layout sweeps re-extract only the changed
   variants),
2. build one :class:`SweepTask` per (variant, injected power, V_tune) —
   each task analyses all noise frequencies of the campaign in one AC sweep,
   which is the natural unit of work (one DC solve + one transfer function),
3. execute the tasks on the configured backend (serial or sharded across
   processes) and reassemble the per-point records *in task order*, so the
   result is numerically identical whichever backend ran it.

``_execute_task`` is a module-level function with picklable payloads, which
is what lets :class:`~repro.studies.backends.ProcessPoolBackend` ship tasks
to worker processes; the extracted flow rides along in the task (a few tens
of kilobytes), so workers never re-extract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..core.flow import FlowOptions, FlowResult, run_extraction_flow
from ..errors import AnalysisError
from ..layout.cell import Cell
from ..technology.process import ProcessTechnology
from .backends import SerialBackend, SweepBackend
from .cache import ExtractionCache
from .params import Campaign, LayoutVariant
from .results import PointRecord, SweepResult, VariantRecord

if TYPE_CHECKING:
    from ..core.vco_experiment import VcoExperimentOptions
    from ..layout.testchips import VcoLayoutSpec


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of work: a spur analysis over all noise
    frequencies at a fixed (variant, injected power, V_tune) corner."""

    index: int
    variant_index: int
    knobs: dict[str, float]
    technology: ProcessTechnology
    spec: "VcoLayoutSpec"                  #: layout spec of the variant
    options: "VcoExperimentOptions"        #: options with this task's power
    injected_power_dbm: float
    vtune: float
    noise_frequencies: tuple[float, ...]
    flow: FlowResult                       #: pre-extracted models of the variant
    first_point_index: int                 #: global index of the first point

    def corner_label(self) -> str:
        """Human-readable corner identity (used in failure messages)."""
        knobs = "".join(f" {name}={value:g}"
                        for name, value in sorted(self.knobs.items()))
        return (f"variant {self.variant_index}{knobs}, "
                f"P_inj={self.injected_power_dbm:g} dBm, "
                f"V_tune={self.vtune:g} V, "
                f"{len(self.noise_frequencies)} noise frequencies")


@dataclass(frozen=True)
class TaskOutcome:
    """Per-point records produced by one task, tagged with the task index."""

    index: int
    records: tuple[PointRecord, ...]


@dataclass(frozen=True)
class ExtractionTask:
    """One cache-missing variant to extract (worker-shippable payload)."""

    variant_index: int
    cell: Cell
    technology: ProcessTechnology
    flow_options: FlowOptions

    def corner_label(self) -> str:
        """Human-readable identity of the extraction (failure messages)."""
        return (f"extraction of variant {self.variant_index} "
                f"(cell {self.cell.name!r})")


def _execute_extraction(task: ExtractionTask) -> FlowResult:
    """Extract one variant (worker-side entry point; must stay picklable)."""
    return run_extraction_flow(task.cell, task.technology,
                               options=task.flow_options)


def _execute_task(task: SweepTask) -> TaskOutcome:
    """Run one task (worker-side entry point; must stay picklable)."""
    # Local import: repro.core.vco_experiment uses the studies package for its
    # own sweeps, so the dependency must not be circular at import time.
    from ..core.vco_experiment import VcoImpactAnalysis

    analysis = VcoImpactAnalysis(task.technology, spec=task.spec,
                                 options=task.options, flow_result=task.flow)
    spur_results, _vco, _catalog, _tf = analysis.analyze(
        task.vtune, np.asarray(task.noise_frequencies, dtype=float))
    records = tuple(
        PointRecord(point_index=task.first_point_index + offset,
                    variant_index=task.variant_index,
                    knobs=dict(task.knobs),
                    injected_power_dbm=task.injected_power_dbm,
                    vtune=task.vtune,
                    noise_frequency=float(frequency),
                    spur=spur)
        for offset, (frequency, spur)
        in enumerate(zip(task.noise_frequencies, spur_results)))
    return TaskOutcome(index=task.index, records=records)


class SweepRunner:
    """Runs campaigns against a backend and an extraction cache.

    One runner can execute many campaigns; sharing its cache across campaigns
    is how a design session avoids re-extracting layouts it has already seen
    (the counters on ``runner.cache.stats`` record the traffic).
    """

    def __init__(self, technology: ProcessTechnology,
                 backend: SweepBackend | None = None,
                 cache: ExtractionCache | None = None):
        self.technology = technology
        self.backend = SerialBackend() if backend is None else backend
        # Explicit None check: an empty cache is falsy (it has __len__).
        self.cache = ExtractionCache() if cache is None else cache

    # -- extraction ----------------------------------------------------------

    def _extract_variants(self, campaign: Campaign,
                          variants: list[LayoutVariant]) -> list[VariantRecord]:
        """Resolve every variant to a flow, extracting cache misses in bulk.

        The misses are fanned out through the campaign backend: on a cold
        layout sweep with a process-pool backend, the per-variant extractions
        (the expensive half of a study) run in parallel, not just the
        simulations.
        """
        keys: list[str] = []
        resolved: dict[str, FlowResult] = {}
        hits: set[str] = set()
        pending: dict[str, ExtractionTask] = {}   # key -> task, deduplicated
        for variant in variants:
            cell = campaign.build_cell(variant)
            key = self.cache.key(cell, self.technology, variant.flow_options)
            keys.append(key)
            if key in resolved or key in pending:
                continue                          # duplicate content, no traffic
            flow = self.cache.lookup(key)
            if flow is not None:
                resolved[key] = flow
                hits.add(key)
            else:
                pending[key] = ExtractionTask(
                    variant_index=variant.index, cell=cell,
                    technology=self.technology,
                    flow_options=variant.flow_options)
        tasks = list(pending.values())
        for key, flow in zip(pending, self.backend.run(_execute_extraction,
                                                       tasks)):
            self.cache.store(key, flow)
            resolved[key] = flow
        return [VariantRecord(index=variant.index,
                              knobs=dict(variant.knobs),
                              spec=variant.spec,
                              cache_key=key,
                              flow=resolved[key],
                              from_cache=key in hits)
                for variant, key in zip(variants, keys)]

    # -- task fan-out --------------------------------------------------------

    def _build_tasks(self, campaign: Campaign,
                     variants: list[LayoutVariant],
                     extracted: list[VariantRecord],
                     skip: frozenset[tuple[int, float, float]] = frozenset(),
                     ) -> list[SweepTask]:
        """One task per pending (variant, power, vtune) corner.

        ``skip`` holds corners an earlier (persisted) run already completed;
        their tasks are omitted but the deterministic global point indexing
        still advances past them, so merged records line up exactly with a
        never-interrupted run.
        """
        powers, vtunes, frequencies = campaign.sim_grid()
        tasks: list[SweepTask] = []
        point_index = 0
        for variant, record in zip(variants, extracted):
            for power in powers:
                options = replace(campaign.options,
                                  injected_power_dbm=power,
                                  flow=variant.flow_options)
                for vtune in vtunes:
                    if (variant.index, power, vtune) not in skip:
                        if record.flow is None:
                            raise AnalysisError(
                                f"variant {variant.index} has pending corners "
                                "but no extracted flow (corrupt resume state)")
                        tasks.append(SweepTask(
                            index=len(tasks),
                            variant_index=variant.index,
                            knobs=dict(variant.knobs),
                            technology=self.technology,
                            spec=variant.spec,
                            options=options,
                            injected_power_dbm=power,
                            vtune=vtune,
                            noise_frequencies=frequencies,
                            flow=record.flow,
                            first_point_index=point_index))
                    point_index += len(frequencies)
        return tasks

    # -- resume bookkeeping --------------------------------------------------

    @staticmethod
    def _completed_corners(campaign: Campaign,
                           resume_from: SweepResult | None,
                           n_frequencies: int,
                           ) -> frozenset[tuple[int, float, float]]:
        """Corners of ``campaign`` fully covered by a stored partial result.

        A corner counts as complete only when every noise frequency of the
        campaign has a record (tasks are atomic, so a run killed mid-task
        leaves no partial corners — but a result saved from a *different*
        frequency grid would, and the fingerprint check catches that first).
        """
        if resume_from is None:
            return frozenset()
        stored = (resume_from.campaign_spec or {}).get("fingerprint")
        if stored is not None and stored != campaign.fingerprint():
            raise AnalysisError(
                f"cannot resume campaign {campaign.name!r} from a result of "
                f"campaign {resume_from.campaign_name!r}: the stored "
                "fingerprint does not match this campaign's axes/spec/options")
        counts: dict[tuple[int, float, float], int] = {}
        for record in resume_from.records:
            corner = (record.variant_index, record.injected_power_dbm,
                      record.vtune)
            counts[corner] = counts.get(corner, 0) + 1
        return frozenset(corner for corner, count in counts.items()
                         if count >= n_frequencies)

    @staticmethod
    def _carried_variant(variant: LayoutVariant,
                         resume_from: SweepResult | None) -> VariantRecord:
        """Variant record for a fully-completed variant (no re-extraction)."""
        if resume_from is not None:
            for record in resume_from.variants:
                if record.index == variant.index:
                    return record
        return VariantRecord(index=variant.index, knobs=dict(variant.knobs),
                             spec=variant.spec, cache_key="", flow=None,
                             from_cache=True)

    # -- execution -----------------------------------------------------------

    def run(self, campaign: Campaign,
            resume_from: SweepResult | None = None) -> SweepResult:
        """Execute the campaign and aggregate its tidy result.

        With ``resume_from`` (a previously persisted, possibly partial result
        of the *same* campaign), corners the stored result already covers are
        skipped entirely — their variants are not even re-extracted — and the
        stored records are merged with the freshly computed ones into one
        complete result.
        """
        start = time.perf_counter()
        hits_before = self.cache.hits
        misses_before = self.cache.misses

        variants = campaign.variants()
        powers, vtunes, frequencies = campaign.sim_grid()
        done = self._completed_corners(campaign, resume_from, len(frequencies))

        pending_variants = [
            variant for variant in variants
            if any((variant.index, power, vtune) not in done
                   for power in powers for vtune in vtunes)]
        extracted = {record.index: record
                     for record in self._extract_variants(campaign,
                                                          pending_variants)}
        variant_records = [
            extracted.get(variant.index)
            or self._carried_variant(variant, resume_from)
            for variant in variants]
        tasks = self._build_tasks(campaign, variants, variant_records,
                                  skip=done)
        outcomes = self.backend.run(_execute_task, tasks)

        records: list[PointRecord] = []
        if resume_from is not None:
            records.extend(
                record for record in resume_from.records
                if (record.variant_index, record.injected_power_dbm,
                    record.vtune) in done)
        for outcome in sorted(outcomes, key=lambda o: o.index):
            records.extend(outcome.records)
        records.sort(key=lambda record: record.point_index)
        return SweepResult(
            campaign_name=campaign.name,
            backend_name=self.backend.describe(),
            axes=campaign.resolved_axes(),
            records=records,
            variants=variant_records,
            wall_seconds=time.perf_counter() - start,
            cache_hits=self.cache.hits - hits_before,
            cache_misses=self.cache.misses - misses_before,
            campaign_spec=campaign.describe())
