"""Execution backends of the sweep engine.

A campaign resolves into an ordered list of independent *tasks* (one spur
analysis per layout variant / amplitude / V_tune combination).  Backends only
decide *where* those tasks run:

* :class:`SerialBackend` — in-process, in order; the reference for numerical
  equivalence and the best choice for tiny campaigns (no pickling, shares the
  parent's memory).
* :class:`ProcessPoolBackend` — shards tasks across worker processes with
  :class:`concurrent.futures.ProcessPoolExecutor`.  Tasks are independent
  (each carries its own extracted flow and builds its own testbench), so the
  sharding is embarrassingly parallel; results are reassembled in task order,
  which keeps the output bit-identical to the serial backend.

Both implement the same two-method protocol (``run`` plus a ``describe`` for
benchmarks), so runners and benchmarks treat them interchangeably.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar

from ..errors import AnalysisError

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


class SweepBackend(Protocol):
    """Executes an ordered list of independent tasks."""

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT]) -> list[ResultT]:
        """Apply ``fn`` to every task, returning results in task order."""
        ...

    def describe(self) -> str:
        """Short label for reports / benchmark records."""
        ...


class SerialBackend:
    """Run every task in the calling process, in order."""

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT]) -> list[ResultT]:
        return [fn(task) for task in tasks]

    def describe(self) -> str:
        return "serial"


class ProcessPoolBackend:
    """Shard tasks across worker processes.

    ``fn`` and every task must be picklable (the runner's task payloads are
    plain dataclasses of arrays and model objects).  Worker failures are not
    swallowed: the first task exception is re-raised in the parent once all
    submitted futures have settled, so a failing corner of a campaign fails
    the campaign.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise AnalysisError("ProcessPoolBackend needs at least one worker")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT]) -> list[ResultT]:
        if not tasks:
            return []
        # A pool larger than the task list would only spawn idle workers.
        n_workers = min(self.max_workers, len(tasks))
        if n_workers == 1:
            return [fn(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            return [future.result() for future in futures]

    def describe(self) -> str:
        return f"process-pool[{self.max_workers}]"
