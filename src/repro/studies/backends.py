"""Execution backends of the sweep engine.

A campaign resolves into an ordered list of independent *tasks* (one spur
analysis per layout variant / amplitude / V_tune combination).  Backends only
decide *where* those tasks run:

* :class:`SerialBackend` — in-process, in order; the reference for numerical
  equivalence and the best choice for tiny campaigns (no pickling, shares the
  parent's memory).
* :class:`ProcessPoolBackend` — shards tasks across worker processes with
  :class:`concurrent.futures.ProcessPoolExecutor`.  Tasks are independent
  (each carries its own extracted flow and builds its own testbench), so the
  sharding is embarrassingly parallel; results are reassembled in task order,
  which keeps the output bit-identical to the serial backend.

Both implement the same protocol (``run`` plus a ``describe`` for benchmarks)
and share one retry/failure-policy layer, so a campaign behaves identically
whichever backend executes it:

* **retries** — a task that raises is re-attempted up to ``retries`` times;
  per-task attempt counts land in ``task_attempts`` after every ``run``.
  ``KeyboardInterrupt`` and ``SystemExit`` are never swallowed or retried.
* **failure policies** — ``run(..., on_error=...)`` selects what an
  *exhausted* task does: ``"abort"`` (default) raises a
  :class:`~repro.errors.CampaignError` naming the corner; ``"skip"`` gives
  every task a single attempt and records failures; ``"retry_then_skip"``
  spends the retry budget first.  Under the skip policies ``run`` returns a
  :class:`TaskFailure` in the failed task's result slot instead of raising,
  so campaigns complete with partial results.
* **timeouts** — ``ProcessPoolBackend(task_timeout=...)`` detects a hung
  worker (a ``wait()`` that would otherwise block forever), abandons its
  future, kills and recycles the pool, and retries the task; the timeout is
  surfaced as a :class:`~repro.errors.TaskTimeoutError` cause.
* **backoff** — every pool rebuild (crash or timeout) sleeps an
  exponentially growing, jittered delay so a crash-looping environment does
  not hot-spin through its retry budget.
* **streaming** — ``run(..., on_result=...)`` invokes a parent-process
  callback as each task settles successfully, which is what lets the runner
  checkpoint completed corners *during* the campaign instead of only at the
  end.
"""

from __future__ import annotations

import os
import random
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TypeVar

from ..errors import AnalysisError, CampaignError, CornerFailure, TaskTimeoutError
from ..obs import get_logger

logger = get_logger(__name__)

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Campaign failure policies accepted by ``run(..., on_error=...)``.
ON_ERROR_ABORT = "abort"
ON_ERROR_SKIP = "skip"
ON_ERROR_RETRY_THEN_SKIP = "retry_then_skip"
ON_ERROR_POLICIES = (ON_ERROR_ABORT, ON_ERROR_SKIP, ON_ERROR_RETRY_THEN_SKIP)


def _task_label(task) -> str:
    """Identity of a task for failure messages.

    Runner tasks describe their own sweep corner via ``corner_label``; any
    other payload falls back to a truncated repr.
    """
    label = getattr(task, "corner_label", None)
    if callable(label):
        return label()
    text = repr(task)
    return text if len(text) <= 200 else text[:197] + "..."


def _check_policy(on_error: str) -> str:
    if on_error not in ON_ERROR_POLICIES:
        raise AnalysisError(
            f"unknown failure policy {on_error!r}; choose one of "
            f"{', '.join(ON_ERROR_POLICIES)}")
    return on_error


def _effective_retries(retries: int, policy: str) -> int:
    """Retry budget under a policy: ``skip`` means one attempt, no retries."""
    return 0 if policy == ON_ERROR_SKIP else retries


def _traceback_summary(exc: BaseException, limit: int = 4) -> str:
    """The last few frames of ``exc``'s traceback, newline-joined."""
    frames = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = "".join(frames[-limit:]) if frames else ""
    return tail.strip()[-2000:]


@dataclass(frozen=True)
class TaskFailure:
    """Structured outcome of a task that exhausted its attempts.

    Returned in the task's result slot when the failure policy is a skip
    variant; the runner converts these into
    :class:`~repro.errors.CornerFailure` records with corner coordinates.
    """

    index: int                  #: position in the submitted task list
    label: str                  #: ``corner_label()`` / repr of the task
    error_type: str             #: exception class name
    message: str                #: exception message (truncated)
    attempts: int               #: attempts spent
    timed_out: bool = False     #: failure was a ``task_timeout`` trip
    traceback_summary: str = ""

    def as_corner_failure(self, *, variant_index: int = -1,
                          injected_power_dbm: float = float("nan"),
                          vtune: float = float("nan")) -> CornerFailure:
        return CornerFailure(
            corner_label=self.label, error_type=self.error_type,
            message=self.message, attempts=self.attempts,
            timed_out=self.timed_out,
            traceback_summary=self.traceback_summary,
            variant_index=variant_index,
            injected_power_dbm=injected_power_dbm, vtune=vtune)


def _failure_record(index: int, task, attempts: int,
                    exc: BaseException | None) -> TaskFailure:
    if exc is None:
        return TaskFailure(index=index, label=_task_label(task),
                           error_type="Unknown",
                           message="task never completed (worker pool broke "
                                   "repeatedly)",
                           attempts=attempts)
    message = str(exc)
    return TaskFailure(
        index=index, label=_task_label(task),
        error_type=type(exc).__name__,
        message=message if len(message) <= 500 else message[:497] + "...",
        attempts=attempts,
        timed_out=isinstance(exc, (TaskTimeoutError, TimeoutError)),
        traceback_summary=_traceback_summary(exc))


def _give_up(task, attempts: int, exc: BaseException) -> None:
    """Abort-policy terminal: raise a CampaignError naming the corner."""
    failure = _failure_record(-1, task, attempts, exc)
    raise CampaignError(
        f"sweep task failed after {attempts} attempt(s): "
        f"{_task_label(task)}", failures=(failure,)) from exc


def _run_with_retries(fn: Callable[[TaskT], ResultT], task: TaskT,
                      index: int, attempts: list[int], retries: int,
                      policy: str,
                      on_start: Callable[[int, int], None] | None = None,
                      ) -> "ResultT | TaskFailure":
    """In-process attempt loop shared by the serial and single-worker paths.

    Retries on ``Exception`` only — ``KeyboardInterrupt`` / ``SystemExit``
    (and any other ``BaseException``) always propagate, whatever the policy:
    a Ctrl-C must stop the campaign, not be recorded as a corner failure.
    ``on_start(index, attempt)`` fires before every attempt (attempt >= 1).
    """
    budget = _effective_retries(retries, policy)
    while True:
        attempts[index] += 1
        if on_start is not None:
            on_start(index, attempts[index])
        try:
            return fn(task)
        except Exception as exc:
            if attempts[index] <= budget:
                logger.info(
                    "task retry: corner=%s attempt=%d/%d error=%s",
                    _task_label(task), attempts[index], budget + 1,
                    type(exc).__name__)
                continue
            if policy == ON_ERROR_ABORT:
                _give_up(task, attempts[index], exc)
            logger.warning(
                "task exhausted: corner=%s attempts=%d error=%s policy=%s",
                _task_label(task), attempts[index], type(exc).__name__, policy)
            return _failure_record(index, task, attempts[index], exc)


class SweepBackend(Protocol):
    """Executes an ordered list of independent tasks."""

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[int, ResultT], None] | None = None,
            on_start: Callable[[int, int], None] | None = None,
            ) -> "list[ResultT | TaskFailure]":
        """Apply ``fn`` to every task, returning outcomes in task order.

        Under the skip policies a failed task's slot holds a
        :class:`TaskFailure` instead of a result.  ``on_result(index,
        result)`` is called in the parent process as each task *succeeds*;
        ``on_start(index, attempt)`` in the parent process as each attempt
        is started / submitted (``attempt`` counts from 1, so observers can
        distinguish first runs from retries).
        """
        ...

    def describe(self) -> str:
        """Short label for reports / benchmark records."""
        ...


class SerialBackend:
    """Run every task in the calling process, in order.

    Shares the pool backend's retry semantics and bookkeeping: ``retries``
    re-attempts failing tasks and ``task_attempts`` records the per-task
    attempt counts of the most recent ``run``.  (Wall-clock task timeouts
    need a worker process to abandon and are therefore pool-only.)
    """

    def __init__(self, retries: int = 0):
        if retries < 0:
            raise AnalysisError("retries must be >= 0")
        self.retries = retries
        #: per-task attempt counts of the most recent :meth:`run`
        self.task_attempts: list[int] = []

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[int, ResultT], None] | None = None,
            on_start: Callable[[int, int], None] | None = None,
            ) -> "list[ResultT | TaskFailure]":
        policy = _check_policy(on_error)
        attempts = [0] * len(tasks)
        self.task_attempts = attempts
        results: list = []
        for index, task in enumerate(tasks):
            outcome = _run_with_retries(fn, task, index, attempts,
                                        self.retries, policy, on_start)
            results.append(outcome)
            if on_result is not None and not isinstance(outcome, TaskFailure):
                on_result(index, outcome)
        return results

    def describe(self) -> str:
        if self.retries:
            return f"serial[retries={self.retries}]"
        return "serial"


class _TimedOut(Exception):
    """Internal marker cause for a task abandoned by a timeout trip."""


class ProcessPoolBackend:
    """Shard tasks across worker processes, with retries, timeouts and backoff.

    ``fn`` and every task must be picklable (the runner's task payloads are
    plain dataclasses of arrays and model objects).  Worker failures are not
    swallowed: under the default ``abort`` policy a task that still fails
    after ``retries`` re-submissions aborts the campaign with a
    :class:`~repro.errors.CampaignError` naming the failing corner's
    parameters (the chained ``__cause__`` keeps the original traceback).  A
    hard-killed worker (OOM, segfault) breaks the whole executor; completed
    results are salvaged and the unfinished tasks get a fresh pool until
    their retries run out — persistent breakage is then reported as such, not
    blamed on a corner that never ran.

    ``task_timeout`` (seconds) bounds each task's wall clock: a worker that
    exceeds it is declared hung, its future abandoned, the pool's processes
    killed and recycled, and the task retried (its trip recorded as a
    :class:`~repro.errors.TaskTimeoutError` cause) — without it, a single
    hung worker stalls ``wait()`` forever.  Every pool rebuild sleeps an
    exponential, jittered backoff (``backoff_base * 2**(rebuilds-1)`` capped
    at ``backoff_max``) so a crash-looping environment cannot hot-spin.

    (With a single effective worker the tasks run in the calling process to
    skip the pool overhead: retries still apply to task exceptions, but
    timeouts cannot preempt and a process-killing fault there takes the
    parent down — there is no pool to break.)  ``task_attempts`` records how
    many attempts each task of the last ``run`` took, so campaigns can
    report flaky-worker churn.
    """

    def __init__(self, max_workers: int | None = None, retries: int = 0,
                 task_timeout: float | None = None,
                 backoff_base: float = 0.25, backoff_max: float = 8.0,
                 backoff_seed: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise AnalysisError("ProcessPoolBackend needs at least one worker")
        if retries < 0:
            raise AnalysisError("retries must be >= 0")
        if task_timeout is not None and task_timeout <= 0:
            raise AnalysisError("task_timeout must be positive (seconds)")
        if backoff_base < 0 or backoff_max < 0:
            raise AnalysisError("backoff delays must be >= 0")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.retries = retries
        self.task_timeout = task_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = random.Random(backoff_seed)
        #: per-task attempt counts of the most recent :meth:`run`
        self.task_attempts: list[int] = []
        #: pool rebuilds (crash or timeout) during the most recent :meth:`run`
        self.pool_rebuilds: int = 0

    # -- backoff -------------------------------------------------------------

    def _backoff_sleep(self, rebuilds: int) -> None:
        """Jittered exponential delay before the ``rebuilds``-th fresh pool."""
        if self.backoff_base <= 0:
            return
        delay = min(self.backoff_max,
                    self.backoff_base * (2.0 ** (rebuilds - 1)))
        # Full jitter in [delay/2, delay]: desynchronises concurrent
        # campaigns hammering one broken shared resource.
        time.sleep(delay * (0.5 + 0.5 * self._rng.random()))

    # -- execution -----------------------------------------------------------

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[int, ResultT], None] | None = None,
            on_start: Callable[[int, int], None] | None = None,
            ) -> "list[ResultT | TaskFailure]":
        policy = _check_policy(on_error)
        attempts = [0] * len(tasks)
        self.task_attempts = attempts
        self.pool_rebuilds = 0
        if not tasks:
            return []
        budget = _effective_retries(self.retries, policy)
        # A pool larger than the task list would only spawn idle workers.
        n_workers = min(self.max_workers, len(tasks))
        if n_workers == 1:
            results = []
            for index, task in enumerate(tasks):
                outcome = _run_with_retries(fn, task, index, attempts,
                                            self.retries, policy, on_start)
                results.append(outcome)
                if on_result is not None \
                        and not isinstance(outcome, TaskFailure):
                    on_result(index, outcome)
            return results
        results: list = [None] * len(tasks)
        remaining = list(range(len(tasks)))
        while remaining:
            # A hard-killed worker (OOM, segfault) breaks the whole executor
            # and a hung worker trips the task timeout; the unfinished tasks
            # then get a fresh pool, each having spent one attempt, until
            # they succeed or exhaust their retries.
            remaining, causes = self._pool_round(fn, tasks, results, attempts,
                                                 remaining, n_workers, budget,
                                                 policy, on_result, on_start)
            exhausted = [index for index in remaining
                         if attempts[index] > budget]
            if exhausted:
                if policy == ON_ERROR_ABORT:
                    self._abort(tasks, attempts, exhausted, causes)
                for index in exhausted:
                    results[index] = _failure_record(index, tasks[index],
                                                     attempts[index],
                                                     causes.get(index))
                remaining = [index for index in remaining
                             if index not in set(exhausted)]
            if remaining:
                self.pool_rebuilds += 1
                logger.warning(
                    "worker pool rebuild: rebuilds=%d unfinished_tasks=%d",
                    self.pool_rebuilds, len(remaining))
                self._backoff_sleep(self.pool_rebuilds)
        return results

    def _abort(self, tasks, attempts: list[int], exhausted: list[int],
               causes: dict[int, BaseException]) -> None:
        """Abort policy: blame the right task and raise."""
        # Blame a task that failed on its own if there is one; the rest
        # merely shared a broken pool and may never have run, so they
        # are reported as unfinished rather than as the failure.
        blamed = next(
            (index for index in exhausted
             if causes.get(index) is not None
             and not isinstance(causes[index], (BrokenProcessPool, _TimedOut))),
            None)
        if blamed is not None:
            _give_up(tasks[blamed], attempts[blamed], causes[blamed])
        first = exhausted[0]
        failures = tuple(_failure_record(index, tasks[index], attempts[index],
                                         causes.get(index))
                         for index in exhausted)
        raise CampaignError(
            f"worker pool broke {attempts[first]} time(s); "
            f"{len(exhausted)} task(s) exhausted their retries without "
            f"completing, including: {_task_label(tasks[first])}",
            failures=failures) from causes.get(first)

    def _pool_round(self, fn: Callable[[TaskT], ResultT],
                    tasks: Sequence[TaskT], results: list,
                    attempts: list[int], indices: list[int],
                    n_workers: int, budget: int, policy: str,
                    on_result, on_start=None,
                    ) -> tuple[list[int], dict[int, BaseException]]:
        """One executor lifetime; returns (unfinished indices, their causes).

        Per-task failures are retried within the round; a broken pool or a
        timeout trip ends the round early with every not-yet-finished task
        listed as unfinished (their submitted attempts count as spent).
        """
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            pending: dict = {}
            deadlines: dict = {}

            def submit(index: int):
                attempts[index] += 1
                if on_start is not None:
                    on_start(index, attempts[index])
                future = pool.submit(fn, tasks[index])
                pending[future] = index
                if self.task_timeout is not None:
                    deadlines[future] = time.monotonic() + self.task_timeout

            for index in indices:
                submit(index)
            while pending:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values())
                                  - time.monotonic())
                done, _ = wait(pending, timeout=timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    hung = [future for future in list(pending)
                            if deadlines.get(future, float("inf"))
                            <= time.monotonic() and not future.done()]
                    if hung:
                        return self._abandon_hung(pool, hung, pending,
                                                  results, on_result)
                    continue
                for future in done:
                    index = pending.pop(future)
                    deadlines.pop(future, None)
                    exc = future.exception()
                    if exc is None:
                        results[index] = future.result()
                        if on_result is not None:
                            on_result(index, results[index])
                    elif isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        # Never swallow or retry an interrupt, whatever the
                        # policy — mirror the in-process path exactly.
                        for other in pending:
                            other.cancel()
                        raise exc
                    elif isinstance(exc, BrokenProcessPool):
                        return self._drain_broken(index, exc, pending,
                                                  results, on_result)
                    elif attempts[index] <= budget:
                        logger.info(
                            "task retry: corner=%s attempt=%d/%d error=%s",
                            _task_label(tasks[index]), attempts[index] + 1,
                            budget + 1, type(exc).__name__)
                        try:
                            submit(index)
                        except BrokenProcessPool as submit_exc:
                            return self._drain_broken(index, submit_exc,
                                                      pending, results,
                                                      on_result)
                    elif policy == ON_ERROR_ABORT:
                        _give_up(tasks[index], attempts[index], exc)
                    else:
                        results[index] = _failure_record(
                            index, tasks[index], attempts[index], exc)
        return [], {}

    def _abandon_hung(self, pool, hung: list, pending: dict, results: list,
                      on_result) -> tuple[list[int], dict[int, BaseException]]:
        """A worker exceeded ``task_timeout``: abandon it, kill the pool.

        The hung futures' tasks get a :class:`~repro.errors.TaskTimeoutError`
        cause; every other unfinished task is rescheduled with the timeout
        breakage as its (non-blaming) cause, exactly like a pool crash.  The
        worker processes are killed so the executor's shutdown cannot block
        on the hung task — the pool is unusable afterwards and the caller
        builds a fresh one.
        """
        logger.warning(
            "task timeout: hung_tasks=%d task_timeout=%gs action=%s",
            len(hung), self.task_timeout, "kill workers, recycle pool")
        timeout_exc = TaskTimeoutError(
            f"task exceeded task_timeout={self.task_timeout:g} s; its worker "
            "was killed and the pool recycled")
        unfinished: list[int] = []
        causes: dict[int, BaseException] = {}
        hung_set = set(hung)
        for future, index in pending.items():
            # Read the outcome before any cancel(): a cancelled future's
            # exception() raises CancelledError instead of returning.  A
            # "hung" future that completed just after the deadline check is
            # simply salvaged — no work is thrown away over a race.
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                    if on_result is not None:
                        on_result(index, results[index])
                    continue
            else:
                future.cancel()
                exc = None
            unfinished.append(index)
            if exc is not None and not isinstance(exc, BrokenProcessPool):
                causes[index] = exc
            elif future in hung_set:
                causes[index] = timeout_exc
            else:
                causes[index] = _TimedOut(
                    "pool recycled while this task was queued")
        # SIGKILL the workers: a hung task never returns, so a graceful
        # shutdown would block exactly like the wait() we just rescued.
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        return unfinished, causes

    @staticmethod
    def _drain_broken(first_index: int, breakage: BaseException,
                      pending: dict, results: list, on_result,
                      ) -> tuple[list[int], dict[int, BaseException]]:
        """Salvage a broken pool's futures: keep results that did complete.

        When the executor breaks, every remaining future settles at once;
        tasks that finished successfully before the crash keep their results
        and only the genuinely unfinished ones are rescheduled.  A task that
        failed with its *own* exception keeps that exception as its blame
        (so an exhausted retry chains the real traceback, not the breakage).
        """
        unfinished = [first_index]
        causes = {first_index: breakage}
        for future, index in pending.items():
            # Read the outcome before any cancel(): a cancelled future's
            # exception() raises CancelledError instead of returning.
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                    if on_result is not None:
                        on_result(index, results[index])
                    continue
            else:
                future.cancel()
                exc = None
            unfinished.append(index)
            causes[index] = breakage if exc is None \
                or isinstance(exc, BrokenProcessPool) else exc
        return unfinished, causes

    def describe(self) -> str:
        knobs = []
        if self.retries:
            knobs.append(f"retries={self.retries}")
        if self.task_timeout is not None:
            knobs.append(f"timeout={self.task_timeout:g}s")
        suffix = ("," + ",".join(knobs)) if knobs else ""
        return f"process-pool[{self.max_workers}{suffix}]"
