"""Execution backends of the sweep engine.

A campaign resolves into an ordered list of independent *tasks* (one spur
analysis per layout variant / amplitude / V_tune combination).  Backends only
decide *where* those tasks run:

* :class:`SerialBackend` — in-process, in order; the reference for numerical
  equivalence and the best choice for tiny campaigns (no pickling, shares the
  parent's memory).
* :class:`ProcessPoolBackend` — shards tasks across worker processes.  Since
  the unified scheduler landed this is a thin adapter over
  :class:`~repro.parallel.scheduler.WorkScheduler`: the flat task list
  becomes a dependency-free work plan executed on the persistent
  :func:`~repro.parallel.pool.shared_pool`, so campaign corners, extraction
  items and process-level frequency shards all share one set of warm
  workers.  Results are reassembled in task order, which keeps the output
  bit-identical to the serial backend.

Both implement the same protocol (``run`` plus a ``describe`` for benchmarks)
and share one retry/failure-policy layer (:mod:`repro.parallel.plan` — this
module re-exports the vocabulary for compatibility), so a campaign behaves
identically whichever backend executes it:

* **retries** — a task that raises is re-attempted up to ``retries`` times;
  per-task attempt counts land in ``task_attempts`` after every ``run``.
  ``KeyboardInterrupt`` and ``SystemExit`` are never swallowed or retried.
* **failure policies** — ``run(..., on_error=...)`` selects what an
  *exhausted* task does: ``"abort"`` (default) raises a
  :class:`~repro.errors.CampaignError` naming the corner; ``"skip"`` gives
  every task a single attempt and records failures; ``"retry_then_skip"``
  spends the retry budget first.  Under the skip policies ``run`` returns a
  :class:`TaskFailure` in the failed task's result slot instead of raising,
  so campaigns complete with partial results.
* **timeouts** — ``ProcessPoolBackend(task_timeout=...)`` detects a hung
  worker (a ``wait()`` that would otherwise block forever), abandons its
  future, kills and recycles the pool, and retries the task; the timeout is
  surfaced as a :class:`~repro.errors.TaskTimeoutError` cause.
* **backoff** — every pool rebuild (crash or timeout) sleeps an
  exponentially growing, jittered delay so a crash-looping environment does
  not hot-spin through its retry budget.
* **streaming** — ``run(..., on_result=...)`` invokes a parent-process
  callback as each task settles successfully, which is what lets the runner
  checkpoint completed corners *during* the campaign instead of only at the
  end.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, TypeVar

from ..errors import AnalysisError
from ..obs import get_logger
from ..parallel.plan import (
    ON_ERROR_ABORT,
    ON_ERROR_POLICIES,
    ON_ERROR_RETRY_THEN_SKIP,
    ON_ERROR_SKIP,
    TaskFailure,
    WorkItem,
    _check_policy,
    _run_with_retries,
)
from ..parallel.pool import default_max_workers
from ..parallel.scheduler import WorkScheduler

__all__ = [
    "ON_ERROR_ABORT",
    "ON_ERROR_POLICIES",
    "ON_ERROR_RETRY_THEN_SKIP",
    "ON_ERROR_SKIP",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepBackend",
    "TaskFailure",
]

logger = get_logger(__name__)

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


class SweepBackend(Protocol):
    """Executes an ordered list of independent tasks."""

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[int, ResultT], None] | None = None,
            on_start: Callable[[int, int], None] | None = None,
            ) -> "list[ResultT | TaskFailure]":
        """Apply ``fn`` to every task, returning outcomes in task order.

        Under the skip policies a failed task's slot holds a
        :class:`TaskFailure` instead of a result.  ``on_result(index,
        result)`` is called in the parent process as each task *succeeds*;
        ``on_start(index, attempt)`` in the parent process as each attempt
        is started / submitted (``attempt`` counts from 1, so observers can
        distinguish first runs from retries).
        """
        ...

    def describe(self) -> str:
        """Short label for reports / benchmark records."""
        ...


class SerialBackend:
    """Run every task in the calling process, in order.

    Shares the pool backend's retry semantics and bookkeeping: ``retries``
    re-attempts failing tasks and ``task_attempts`` records the per-task
    attempt counts of the most recent ``run``.  (Wall-clock task timeouts
    need a worker process to abandon and are therefore pool-only.)
    """

    def __init__(self, retries: int = 0):
        if retries < 0:
            raise AnalysisError("retries must be >= 0")
        self.retries = retries
        #: per-task attempt counts of the most recent :meth:`run`
        self.task_attempts: list[int] = []

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[int, ResultT], None] | None = None,
            on_start: Callable[[int, int], None] | None = None,
            ) -> "list[ResultT | TaskFailure]":
        policy = _check_policy(on_error)
        attempts = [0] * len(tasks)
        self.task_attempts = attempts
        results: list = []
        for index, task in enumerate(tasks):
            outcome = _run_with_retries(fn, task, index, attempts,
                                        self.retries, policy, on_start)
            results.append(outcome)
            if on_result is not None and not isinstance(outcome, TaskFailure):
                on_result(index, outcome)
        return results

    def describe(self) -> str:
        if self.retries:
            return f"serial[retries={self.retries}]"
        return "serial"


class ProcessPoolBackend:
    """Shard tasks across worker processes, with retries, timeouts and backoff.

    ``fn`` and every task must be picklable (the runner's task payloads are
    plain dataclasses of arrays and model objects).  Worker failures are not
    swallowed: under the default ``abort`` policy a task that still fails
    after ``retries`` re-submissions aborts the campaign with a
    :class:`~repro.errors.CampaignError` naming the failing corner's
    parameters (the chained ``__cause__`` keeps the original traceback).  A
    hard-killed worker (OOM, segfault) breaks the whole executor; completed
    results are salvaged and the unfinished tasks get a fresh pool until
    their retries run out — persistent breakage is then reported as such, not
    blamed on a corner that never ran.

    ``task_timeout`` (seconds) bounds each task's wall clock: a worker that
    exceeds it is declared hung, its future abandoned, the pool's processes
    killed and recycled, and the task retried (its trip recorded as a
    :class:`~repro.errors.TaskTimeoutError` cause) — without it, a single
    hung worker stalls ``wait()`` forever.  Every pool rebuild sleeps an
    exponential, jittered backoff (``backoff_base * 2**(rebuilds-1)`` capped
    at ``backoff_max``) so a crash-looping environment cannot hot-spin.

    (With a single effective worker the tasks run in the calling process to
    skip the pool overhead: retries still apply to task exceptions, but
    timeouts cannot preempt and a process-killing fault there takes the
    parent down — there is no pool to break.)  ``task_attempts`` records how
    many attempts each task of the last ``run`` took, so campaigns can
    report flaky-worker churn.

    All of the above is implemented by
    :class:`~repro.parallel.scheduler.WorkScheduler` (this class merely
    translates the flat task list into a dependency-free work plan); the
    default worker count honours ``REPRO_MAX_WORKERS`` via
    :func:`~repro.parallel.pool.default_max_workers`.
    """

    def __init__(self, max_workers: int | None = None, retries: int = 0,
                 task_timeout: float | None = None,
                 backoff_base: float = 0.25, backoff_max: float = 8.0,
                 backoff_seed: int | None = None,
                 heartbeat_timeout: float | None = None):
        if max_workers is not None and max_workers < 1:
            raise AnalysisError("ProcessPoolBackend needs at least one worker")
        self.max_workers = max_workers or default_max_workers()
        self._scheduler = WorkScheduler(
            max_workers=self.max_workers, retries=retries,
            task_timeout=task_timeout, backoff_base=backoff_base,
            backoff_max=backoff_max, backoff_seed=backoff_seed,
            heartbeat_timeout=heartbeat_timeout)
        self.retries = retries
        self.task_timeout = task_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        #: per-task attempt counts of the most recent :meth:`run`
        self.task_attempts: list[int] = []
        #: pool rebuilds (crash or timeout) during the most recent :meth:`run`
        self.pool_rebuilds: int = 0

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT], *,
            on_error: str = ON_ERROR_ABORT,
            on_result: Callable[[int, ResultT], None] | None = None,
            on_start: Callable[[int, int], None] | None = None,
            ) -> "list[ResultT | TaskFailure]":
        policy = _check_policy(on_error)
        attempts = [0] * len(tasks)
        self.task_attempts = attempts
        self.pool_rebuilds = 0
        if not tasks:
            return []
        items = [WorkItem(id=str(index), fn=fn, payload=task)
                 for index, task in enumerate(tasks)]

        def adapt_start(item_id: str, attempt: int) -> None:
            attempts[int(item_id)] = attempt
            if on_start is not None:
                on_start(int(item_id), attempt)

        def adapt_result(item_id: str, result) -> None:
            if on_result is not None:
                on_result(int(item_id), result)

        scheduler = self._scheduler
        try:
            outcomes = scheduler.run(items, on_error=policy,
                                     on_result=adapt_result,
                                     on_start=adapt_start)
        finally:
            # Mirror the scheduler's churn bookkeeping into the flat,
            # index-keyed views campaigns have always reported — also on an
            # abort raise, where attempts were spent but no result returns.
            for index in range(len(tasks)):
                attempts[index] = scheduler.attempts.get(str(index),
                                                         attempts[index])
            self.pool_rebuilds = scheduler.pool_rebuilds
        return [outcomes[str(index)] for index in range(len(tasks))]

    def run_graph(self, items: Sequence[WorkItem], *,
                  on_error: str = ON_ERROR_ABORT,
                  on_result: Callable[[str, object], None] | None = None,
                  on_start: Callable[[str, int], None] | None = None,
                  flat_ids: Sequence[str] = (),
                  ) -> dict:
        """Execute a dependency-aware :class:`WorkItem` plan; outcomes by id.

        This is the runner's graph entry point: extraction items and the
        corner items depending on them go down as *one* plan, so corners of
        an already-cached variant overlap with extractions still running
        instead of waiting behind a phase barrier.  Retry, timeout, backoff
        and failure-policy semantics are exactly those of :meth:`run`.

        ``flat_ids`` names the items whose attempt counts should populate
        ``task_attempts`` (in that order) — the runner passes its corner item
        ids so churn reporting matches the flat :meth:`run` path exactly.
        """
        policy = _check_policy(on_error)
        flat_ids = list(flat_ids)
        self.task_attempts = [0] * len(flat_ids)
        self.pool_rebuilds = 0
        scheduler = self._scheduler
        try:
            return scheduler.run(items, on_error=policy,
                                 on_result=on_result, on_start=on_start)
        finally:
            self.task_attempts = [scheduler.attempts.get(item_id, 0)
                                  for item_id in flat_ids]
            self.pool_rebuilds = scheduler.pool_rebuilds

    def describe(self) -> str:
        knobs = []
        if self.retries:
            knobs.append(f"retries={self.retries}")
        if self.task_timeout is not None:
            knobs.append(f"timeout={self.task_timeout:g}s")
        suffix = ("," + ",".join(knobs)) if knobs else ""
        return f"process-pool[{self.max_workers}{suffix}]"
