"""Execution backends of the sweep engine.

A campaign resolves into an ordered list of independent *tasks* (one spur
analysis per layout variant / amplitude / V_tune combination).  Backends only
decide *where* those tasks run:

* :class:`SerialBackend` — in-process, in order; the reference for numerical
  equivalence and the best choice for tiny campaigns (no pickling, shares the
  parent's memory).
* :class:`ProcessPoolBackend` — shards tasks across worker processes with
  :class:`concurrent.futures.ProcessPoolExecutor`.  Tasks are independent
  (each carries its own extracted flow and builds its own testbench), so the
  sharding is embarrassingly parallel; results are reassembled in task order,
  which keeps the output bit-identical to the serial backend.

Both implement the same two-method protocol (``run`` plus a ``describe`` for
benchmarks), so runners and benchmarks treat them interchangeably.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Protocol, Sequence, TypeVar

from ..errors import AnalysisError

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def _task_label(task) -> str:
    """Identity of a task for failure messages.

    Runner tasks describe their own sweep corner via ``corner_label``; any
    other payload falls back to a truncated repr.
    """
    label = getattr(task, "corner_label", None)
    if callable(label):
        return label()
    text = repr(task)
    return text if len(text) <= 200 else text[:197] + "..."


class SweepBackend(Protocol):
    """Executes an ordered list of independent tasks."""

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT]) -> list[ResultT]:
        """Apply ``fn`` to every task, returning results in task order."""
        ...

    def describe(self) -> str:
        """Short label for reports / benchmark records."""
        ...


class SerialBackend:
    """Run every task in the calling process, in order."""

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT]) -> list[ResultT]:
        return [fn(task) for task in tasks]

    def describe(self) -> str:
        return "serial"


class ProcessPoolBackend:
    """Shard tasks across worker processes, with task-level retries.

    ``fn`` and every task must be picklable (the runner's task payloads are
    plain dataclasses of arrays and model objects).  Worker failures are not
    swallowed: a task that still fails after ``retries`` re-submissions
    aborts the campaign with an :class:`AnalysisError` naming the failing
    corner's parameters (the chained ``__cause__`` keeps the original
    traceback).  A hard-killed worker (OOM, segfault) breaks the whole
    executor; completed results are salvaged and the unfinished tasks get a
    fresh pool until their retries run out — persistent breakage is then
    reported as such, not blamed on a corner that never ran.  (With a single
    effective worker the tasks run in the calling process to skip the pool
    overhead: retries still apply to task exceptions, but a process-killing
    fault there takes the parent down — there is no pool to break.)
    ``task_attempts`` records how many attempts each task of the last
    ``run`` took, so campaigns can report flaky-worker churn.
    """

    def __init__(self, max_workers: int | None = None, retries: int = 0):
        if max_workers is not None and max_workers < 1:
            raise AnalysisError("ProcessPoolBackend needs at least one worker")
        if retries < 0:
            raise AnalysisError("retries must be >= 0")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.retries = retries
        #: per-task attempt counts of the most recent :meth:`run`
        self.task_attempts: list[int] = []

    def _give_up(self, task, attempts: int, exc: BaseException) -> None:
        raise AnalysisError(
            f"sweep task failed after {attempts} attempt(s): "
            f"{_task_label(task)}") from exc

    def run(self, fn: Callable[[TaskT], ResultT],
            tasks: Sequence[TaskT]) -> list[ResultT]:
        attempts = [0] * len(tasks)
        self.task_attempts = attempts
        if not tasks:
            return []
        # A pool larger than the task list would only spawn idle workers.
        n_workers = min(self.max_workers, len(tasks))
        if n_workers == 1:
            return [self._run_in_process(fn, task, index, attempts)
                    for index, task in enumerate(tasks)]
        results: list[ResultT | None] = [None] * len(tasks)
        remaining = list(range(len(tasks)))
        while remaining:
            # A hard-killed worker (OOM, segfault) breaks the whole executor;
            # the unfinished tasks then get a fresh pool, each having spent
            # one attempt, until they succeed or exhaust their retries.
            remaining, causes = self._pool_round(fn, tasks, results, attempts,
                                                remaining, n_workers)
            exhausted = [index for index in remaining
                         if attempts[index] > self.retries]
            if not exhausted:
                continue
            # Blame a task that failed on its own if there is one; the rest
            # merely shared a broken pool and may never have run, so they
            # are reported as unfinished rather than as the failure.
            blamed = next(
                (index for index in exhausted
                 if causes.get(index) is not None
                 and not isinstance(causes[index], BrokenProcessPool)),
                None)
            if blamed is not None:
                self._give_up(tasks[blamed], attempts[blamed], causes[blamed])
            first = exhausted[0]
            raise AnalysisError(
                f"worker pool broke {attempts[first]} time(s); "
                f"{len(exhausted)} task(s) exhausted their retries without "
                f"completing, including: {_task_label(tasks[first])}"
            ) from causes.get(first)
        return results

    def _pool_round(self, fn: Callable[[TaskT], ResultT],
                    tasks: Sequence[TaskT], results: list,
                    attempts: list[int], indices: list[int],
                    n_workers: int,
                    ) -> tuple[list[int], dict[int, BaseException]]:
        """One executor lifetime; returns (unfinished indices, their causes).

        Per-task failures are retried within the round; a broken pool ends
        the round early with every not-yet-finished task listed as
        unfinished (their submitted attempts count as spent).
        """
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            pending: dict = {}
            for index in indices:
                attempts[index] += 1
                pending[pool.submit(fn, tasks[index])] = index
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    exc = future.exception()
                    if exc is None:
                        results[index] = future.result()
                    elif isinstance(exc, BrokenProcessPool):
                        return self._drain_broken(index, exc, pending, results)
                    elif attempts[index] <= self.retries:
                        attempts[index] += 1
                        try:
                            pending[pool.submit(fn, tasks[index])] = index
                        except BrokenProcessPool as submit_exc:
                            return self._drain_broken(index, submit_exc,
                                                      pending, results)
                    else:
                        self._give_up(tasks[index], attempts[index], exc)
        return [], {}

    @staticmethod
    def _drain_broken(first_index: int, breakage: BaseException,
                      pending: dict, results: list,
                      ) -> tuple[list[int], dict[int, BaseException]]:
        """Salvage a broken pool's futures: keep results that did complete.

        When the executor breaks, every remaining future settles at once;
        tasks that finished successfully before the crash keep their results
        and only the genuinely unfinished ones are rescheduled.  A task that
        failed with its *own* exception keeps that exception as its blame
        (so an exhausted retry chains the real traceback, not the breakage).
        """
        unfinished = [first_index]
        causes = {first_index: breakage}
        for future, index in pending.items():
            # Read the outcome before any cancel(): a cancelled future's
            # exception() raises CancelledError instead of returning.
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                    continue
            else:
                future.cancel()
                exc = None
            unfinished.append(index)
            causes[index] = breakage if exc is None \
                or isinstance(exc, BrokenProcessPool) else exc
        return unfinished, causes

    def _run_in_process(self, fn: Callable[[TaskT], ResultT], task: TaskT,
                        index: int, attempts: list[int]) -> ResultT:
        """Single-worker path: no pool, but the same retry bookkeeping."""
        while True:
            attempts[index] += 1
            try:
                return fn(task)
            except Exception as exc:
                if attempts[index] > self.retries:
                    self._give_up(task, attempts[index], exc)

    def describe(self) -> str:
        if self.retries:
            return f"process-pool[{self.max_workers},retries={self.retries}]"
        return f"process-pool[{self.max_workers}]"
