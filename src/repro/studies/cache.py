"""Content-addressed cache of extraction results.

Extraction (substrate mesh + Kron reduction, interconnect, devices, merge) is
the expensive, *layout-determined* half of a spur analysis: every simulation
point that shares a layout cell, mesh spec and technology can share one
:class:`~repro.core.flow.FlowResult`.  The cache keys entries by a stable
content hash of exactly that triple (plus the optional package model), so

* layout-invariant sweeps (noise frequency x V_tune x amplitude) extract once,
* layout sweeps re-extract only the variants whose geometry actually changed,
* re-running a campaign against a warm cache performs zero extractions.

Keys are *content* addressed: two structurally identical cells built by two
different calls of the same generator hash to the same key, so seeding the
cache with an existing flow makes later sweeps over the same layout free.
Hit / miss counters let tests and benchmarks assert the caching behaviour the
same way :data:`repro.simulator.solver.stats` does for factorizations.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.flow import FlowOptions, FlowResult, run_extraction_flow
from ..errors import AnalysisError
from ..layout.cell import Cell
from ..obs import trace_span
from ..package.model import PackageModel
from ..technology.process import ProcessTechnology


def _canonical(obj, out: list[bytes]) -> None:
    """Append a canonical byte representation of ``obj`` to ``out``.

    Deterministic across processes and interpreter runs (no ``id()``-based
    ``repr``, no hash randomization): floats use ``repr`` (shortest
    round-trip), containers are delimited and dicts sorted by key, dataclasses
    contribute their qualified class name plus every field.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        out.append(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        out.append(f"f:{obj!r};".encode())
    elif isinstance(obj, complex):
        out.append(f"c:{obj.real!r},{obj.imag!r};".encode())
    elif isinstance(obj, bytes):
        out.append(b"b:" + obj + b";")
    elif isinstance(obj, enum.Enum):
        out.append(f"e:{type(obj).__qualname__}.{obj.name};".encode())
    elif isinstance(obj, np.ndarray):
        out.append(f"nd:{obj.dtype.str}:{obj.shape};".encode())
        out.append(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _canonical(obj.item(), out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # A dataclass may exclude result-neutral fields (pure parallelism /
        # memory / transport knobs) from its content identity via
        # __fingerprint_exclude__: changing SolverOptions.ac_workers,
        # ac_mode or max_cached_patterns — or how a SweepTask's flow is
        # shipped (flow_ref) — must never invalidate cached extractions or
        # refuse campaign resumes.  Every new scheduler knob joins the
        # excluding class's tuple, not this function.
        excluded = getattr(type(obj), "__fingerprint_exclude__", ())
        out.append(f"dc:{type(obj).__qualname__}(".encode())
        for field in dataclasses.fields(obj):
            if field.name in excluded:
                continue
            out.append(f"{field.name}=".encode())
            _canonical(getattr(obj, field.name), out)
        out.append(b");")
    elif isinstance(obj, dict):
        out.append(b"{")
        for key in sorted(obj, key=repr):
            _canonical(key, out)
            out.append(b"=>")
            _canonical(obj[key], out)
        out.append(b"};")
    elif isinstance(obj, (list, tuple)):
        out.append(b"[" if isinstance(obj, list) else b"(")
        for item in obj:
            _canonical(item, out)
        out.append(b"];" if isinstance(obj, list) else b");")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"s{")
        for item in sorted(obj, key=repr):
            _canonical(item, out)
        out.append(b"};")
    else:
        raise AnalysisError(
            f"cannot fingerprint object of type {type(obj).__qualname__} "
            "(add explicit support to repro.studies.cache)")


def fingerprint(*objects) -> str:
    """Stable SHA-256 content hash of the given objects."""
    chunks: list[bytes] = []
    for obj in objects:
        _canonical(obj, chunks)
    return hashlib.sha256(b"".join(chunks)).hexdigest()


def extraction_key(cell: Cell, technology: ProcessTechnology,
                   options: FlowOptions | None = None,
                   package: PackageModel | None = None) -> str:
    """Cache key of one extraction: hash of (layout, technology, mesh spec)."""
    return fingerprint(cell, technology, options or FlowOptions(), package)


@dataclass
class CacheStats:
    """Counters of the cache traffic (mirrors the solver's ``stats``)."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class ExtractionCache:
    """In-memory content-addressed store of :class:`FlowResult` objects.

    ``get_or_extract`` is the only path campaigns use: it hashes the request,
    returns the cached flow on a hit and runs the extraction flow (recording a
    miss) otherwise.  ``seed`` installs an already-extracted flow under its
    content key, which makes engine runs over a layout that was extracted
    elsewhere (e.g. by :class:`~repro.core.vco_experiment.VcoImpactAnalysis`)
    start warm.
    """

    def __init__(self, extractor: Callable[..., FlowResult] = run_extraction_flow):
        self._extractor = extractor
        self._entries: dict[str, FlowResult] = {}
        self.stats = CacheStats()

    # -- counters ------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.stats.reset()

    # -- access --------------------------------------------------------------

    def key(self, cell: Cell, technology: ProcessTechnology,
            options: FlowOptions | None = None,
            package: PackageModel | None = None) -> str:
        return extraction_key(cell, technology, options, package)

    def lookup(self, key: str) -> FlowResult | None:
        """Counted lookup: returns the cached flow or ``None`` on a miss.

        Every lookup increments exactly one counter, so after any sequence of
        requests ``misses`` equals the number of extractions that had to run.
        """
        with trace_span("cache.lookup"):
            flow = self._entries.get(key)
        if flow is not None:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return flow

    def store(self, key: str, flow: FlowResult) -> None:
        """Install an extracted flow under ``key`` (no counter traffic)."""
        with trace_span("cache.store"):
            self._entries[key] = flow

    def get_or_extract(self, cell: Cell, technology: ProcessTechnology,
                       options: FlowOptions | None = None,
                       package: PackageModel | None = None) -> FlowResult:
        """Return the cached flow for this request, extracting on a miss."""
        key = self.key(cell, technology, options, package)
        flow = self.lookup(key)
        if flow is None:
            flow = self._extractor(cell, technology, package=package,
                                   options=options)
            self.store(key, flow)
        return flow

    def seed(self, flow: FlowResult, options: FlowOptions | None = None,
             package: PackageModel | None = None) -> str:
        """Install an existing flow under its content key (no counter traffic).

        ``options`` must be the flow options the extraction was run with —
        they are part of the key, and the :class:`FlowResult` does not record
        them itself.  Returns the key.
        """
        key = self.key(flow.cell, flow.technology, options, package)
        self.store(key, flow)
        return key
