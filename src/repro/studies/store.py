"""Persistent, content-addressed extraction store (disk-backed cache).

:class:`DiskExtractionCache` is the on-disk sibling of the in-memory
:class:`~repro.studies.cache.ExtractionCache`: the same counted
``key``/``lookup``/``store``/``get_or_extract`` protocol, but every stored
:class:`~repro.core.flow.FlowResult` is also written to a cache directory so
campaigns warm-start *across processes and CI runs*.  The layout is

.. code-block:: text

    <cache_dir>/
        objects/<key[:2]>/<key>.flow.pkl     one envelope per extraction
        leases/<key[:2]>/<key>.lease         in-progress extraction claims
        leases/<key[:2]>/<key>.gen           monotonic fencing generation
        quarantine/                          corrupt entries moved aside

where ``key`` is the stable SHA-256 content hash of (layout cell, mesh spec,
technology) computed by :func:`~repro.studies.cache.extraction_key` — the
same hash whichever process computes it, which is what makes the directory
shareable between runs, machines and CI caches.

Robustness properties:

* **durable atomic writes** — entries are written to a temporary file in the
  same directory, fsync-ed, ``os.replace``-d into place, and the directory
  entry fsync-ed, so a killed process (or a power cut) never leaves a
  half-written or vanishing entry behind (``REPRO_FSYNC=0`` trades the
  power-cut guarantee for speed; the kill -9 guarantee stands regardless);
* **checksummed envelopes** — every entry records the SHA-256 of its pickled
  payload, verified on every read, so silent bit-rot is detected instead of
  deserialised;
* **versioned format** — every entry also records the on-disk format version
  *and* a fingerprint of the extraction-relevant source code; entries
  written by an incompatible store version or by older extraction code are
  silently discarded and re-extracted (counted as evictions), so a stale
  cache directory can never reproduce pre-fix numbers;
* **corruption quarantine** — an unreadable, truncated or checksum-failing
  entry produces a warning, is moved to ``<cache>/quarantine/`` for
  post-mortem, and the extraction simply re-runs (counted in
  ``stats.corrupted`` and ``stats.quarantined``); a corrupt cache can never
  fail a campaign.  ``verify()`` (CLI: ``repro-campaign cache verify``)
  audits every entry offline;
* **lease-based claiming** — ``claim``/``publish``/``release`` (used
  together via :meth:`DiskExtractionCache.extract_with_claim`) let N
  crash-prone processes share one directory and still extract each variant
  exactly once: ``O_CREAT | O_EXCL`` lease files carry the holder's
  pid/host/nonce and a monotonic fencing generation, the holder refreshes
  the lease mtime from a keepalive thread, waiters poll for the published
  entry, stale leases (dead holders) are stolen with a generation bump, and
  a revived zombie's late ``publish`` is rejected because its nonce no
  longer matches the lease on disk;
* **counters** — ``stats`` extends the in-memory cache's hit/miss counters
  with eviction, corruption, quarantine and lease counts, so tests and CI
  can assert warm-start *and* exactly-once behaviour.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import itertools
import json
import os
import pickle
import socket
import tempfile
import threading
import time
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from ..core.flow import FlowResult, run_extraction_flow
from ..errors import AnalysisError
from ..obs import get_logger, trace_span
from .cache import CacheStats, ExtractionCache
from .faults import crashpoint, fault_region

logger = get_logger(__name__)

#: Version of the on-disk entry format.  Bump when the envelope layout or the
#: pickled payload becomes incompatible; older entries are then evicted and
#: re-extracted instead of being misread.  v2: the flow is pickled separately
#: into ``payload`` bytes with a ``sha256`` checksum over them.
DISK_FORMAT_VERSION = 2

#: Suffix of entry files under ``objects/``.
ENTRY_SUFFIX = ".flow.pkl"

#: Suffix of lease files under ``leases/``.
LEASE_SUFFIX = ".lease"

#: A lease whose mtime is older than this is presumed orphaned by a dead or
#: wedged holder and may be stolen (the holder's keepalive thread refreshes
#: the mtime far more often than this while it is alive).
DEFAULT_LEASE_STALE_SECONDS = 30.0

#: Source trees (relative to the ``repro`` package) whose code determines the
#: extraction output.  Their contents are hashed into every entry envelope, so
#: entries computed by *older extraction code* are evicted and re-extracted
#: instead of being served stale — the content key alone only covers the
#: extraction *inputs* (layout cell, mesh spec, technology).
_EXTRACTION_SOURCES = (
    "core/flow.py",
    "devices",
    "extraction",
    "interconnect",
    "layout",
    "netlist",
    "package",
    "substrate",
    "technology",
)

# Per-process uniquifier for tombstone / quarantine file names.
_unique = itertools.count()


@functools.lru_cache(maxsize=1)
def _fsync_enabled() -> bool:
    """Whether durable writes actually fsync (``REPRO_FSYNC=0`` disables).

    Disabling trades the power-cut guarantee for speed — atomicity against
    ``kill -9`` (the rename discipline) is preserved either way.  Cached per
    process; tests toggling the variable call ``_fsync_enabled.cache_clear()``.
    """
    return os.environ.get("REPRO_FSYNC", "1").lower() not in (
        "0", "false", "off")


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut."""
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: best effort
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def atomic_write(path: Path, write: Callable, binary: bool = True,
                 durable: bool = True) -> None:
    """Write a file atomically: temp file in the same directory + replace.

    ``write`` receives the open temporary file handle.  A crash anywhere
    before the final ``os.replace`` leaves only a ``.tmp-*`` orphan, never a
    truncated file at ``path``.  With ``durable`` (the default) the
    temporary file is fsync-ed before the rename and the parent directory
    fsync-ed after it, so the entry also survives power loss; see
    :func:`_fsync_enabled`.  Shared by the cache store and the result
    persistence, so the cleanup subtleties live in one place.  The
    ``write``/``fsync``/``rename`` steps are chaos-instrumented
    (:func:`~repro.studies.faults.crashpoint`).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                            suffix=".tmp")
    fsync = durable and _fsync_enabled()
    try:
        with os.fdopen(descriptor, "wb" if binary else "w") as handle:
            crashpoint("write")
            write(handle)
            if fsync:
                handle.flush()
                crashpoint("fsync")
                os.fsync(handle.fileno())
        crashpoint("rename")
        os.replace(tmp_name, path)
    except BaseException:
        os.unlink(tmp_name)
        raise
    if fsync:
        _fsync_dir(path.parent)


@functools.lru_cache(maxsize=1)
def extraction_code_fingerprint() -> str:
    """SHA-256 over the extraction-relevant sources of this installation."""
    import repro

    digest = hashlib.sha256()
    try:
        root = Path(repro.__file__).parent
        for relative in _EXTRACTION_SOURCES:
            path = root / relative
            files = [path] if path.is_file() else sorted(path.rglob("*.py"))
            for source in files:
                digest.update(str(source.relative_to(root)).encode())
                digest.update(source.read_bytes())
    except OSError:
        # Sourceless installation: fall back to a constant so caches still
        # work (entries then invalidate only via DISK_FORMAT_VERSION).
        return "unknown"
    return digest.hexdigest()


def _envelope_digest(format_version, key, code, payload: bytes) -> str:
    """Checksum covering the envelope's identity fields and payload bytes.

    Covering ``format``/``key``/``code`` too (not just the payload) lets the
    reader tell a *validly signed* entry from other extraction code (silent
    eviction) apart from a torn or bit-rotten one whose code field merely
    reads differently (quarantine + warning).
    """
    digest = hashlib.sha256()
    for part in (str(format_version), str(key), str(code)):
        digest.update(part.encode())
        digest.update(b"\x00")
    digest.update(payload)
    return digest.hexdigest()


def build_envelope(key: str, flow, code: str | None = None,
                   format_version: int | None = None,
                   generation: int | None = None) -> dict:
    """Assemble a checksummed on-disk entry envelope for ``flow``.

    ``code``/``format_version`` override the current fingerprints — that is
    for tests building entries "written by other code"; production writers
    use the defaults.
    """
    code = code if code is not None else extraction_code_fingerprint()
    format_version = (format_version if format_version is not None
                      else DISK_FORMAT_VERSION)
    payload = pickle.dumps(flow, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "format": format_version,
        "key": key,
        "code": code,
        "sha256": _envelope_digest(format_version, key, code, payload),
        "payload": payload,
        "host": socket.gethostname(),
        "pid": os.getpid(),
    }
    if generation is not None:
        envelope["generation"] = generation
    return envelope


@dataclass
class DiskCacheStats(CacheStats):
    """Hit/miss counters plus the disk-specific robustness counters."""

    evictions: int = 0  #: entries removed by pruning or version mismatch
    corrupted: int = 0  #: unreadable entries discarded (then re-extracted)
    quarantined: int = 0  #: corrupt entries moved to ``quarantine/``
    leases_claimed: int = 0  #: extraction leases this process won
    leases_stolen: int = 0  #: stale leases of dead holders this process stole
    lease_waits: int = 0  #: extractions reused by waiting on another's lease
    publishes: int = 0  #: lease-fenced publishes accepted
    publishes_rejected: int = 0  #: zombie publishes fenced off (stolen lease)

    _DISK_COUNTERS = ("evictions", "corrupted", "quarantined",
                      "leases_claimed", "leases_stolen", "lease_waits",
                      "publishes", "publishes_rejected")

    def reset(self) -> None:
        super().reset()
        for name in self._DISK_COUNTERS:
            setattr(self, name, 0)


class CacheCorruptionWarning(UserWarning):
    """A cache entry could not be read and was quarantined."""


def _read_sentinel(path: Path) -> dict | None:
    """Best-effort read of a JSON sentinel (lease / lock) file.

    Returns ``None`` for a missing, empty or torn file — callers treat that
    as "holder state unknown" and fall back to mtime-based staleness.
    """
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        info = json.loads(text)
    except ValueError:
        return None
    return info if isinstance(info, dict) else None


def _sentinel_age(path: Path) -> float | None:
    """Seconds since the sentinel's last heartbeat (mtime); None if gone."""
    try:
        return time.time() - path.stat().st_mtime
    except OSError:
        return None


def _steal_sentinel(path: Path, stale_seconds: float) -> bool:
    """Atomically remove ``path`` iff it is genuinely stale.

    The naive steal — ``unlink()`` after observing a stale mtime — has a
    window: between the staleness check and the unlink another process can
    steal the sentinel *and recreate a fresh one*, which the unlink then
    destroys.  Stealing by ``os.replace`` to a uniquely-named tombstone is
    atomic (exactly one stealer wins; losers get ``FileNotFoundError``), and
    re-checking the tombstone's mtime *after* the rename closes the race:
    a fresh sentinel grabbed by mistake is re-linked back into place
    (without clobbering any newer claimant) instead of deleted.

    Returns ``True`` iff a stale sentinel was removed and the caller may
    race to create its own.
    """
    tombstone = path.parent / (
        f"{path.name}.steal-{os.getpid()}-{next(_unique)}")
    crashpoint("rename")
    try:
        os.replace(path, tombstone)
    except FileNotFoundError:
        return False  # another stealer (or the releasing holder) beat us
    age = _sentinel_age(tombstone)
    if age is not None and age > stale_seconds:
        tombstone.unlink(missing_ok=True)
        return True
    # We renamed a *fresh* sentinel out from under a live holder (our
    # staleness check raced another steal + recreate).  Put it back without
    # clobbering anything created in the meantime.
    try:
        os.link(tombstone, path)
    except OSError:
        pass  # a newer claimant already recreated the path: leave theirs
    tombstone.unlink(missing_ok=True)
    return False


def _release_sentinel(path: Path, nonce: str) -> bool:
    """Remove ``path`` iff its content still carries ``nonce`` (atomic).

    The same tombstone technique as :func:`_steal_sentinel`: rename first,
    then inspect, so a releaser can never unlink a successor's fresh
    sentinel after its own was stolen.
    """
    tombstone = path.parent / (
        f"{path.name}.release-{os.getpid()}-{next(_unique)}")
    try:
        os.replace(path, tombstone)
    except FileNotFoundError:
        return False  # stolen and released already
    info = _read_sentinel(tombstone)
    if info is not None and info.get("nonce") == nonce:
        tombstone.unlink(missing_ok=True)
        return True
    # Not ours (stolen while we raced): restore the rightful holder's file.
    try:
        os.link(tombstone, path)
    except OSError:
        pass
    tombstone.unlink(missing_ok=True)
    return False


@dataclass
class ExtractionLease:
    """A claimed, fenced right to extract one cache key.

    Obtained from :meth:`DiskExtractionCache.claim`; prove liveness with
    :meth:`refresh` (or the :meth:`keepalive` context manager, which runs a
    daemon thread), hand the result to :meth:`DiskExtractionCache.publish`,
    and always :meth:`release`.  ``generation`` is the monotonic fencing
    token: every successful claim of a key bumps it, so a publish guarded by
    a stolen (older-generation) lease is rejected.
    """

    key: str
    path: Path
    nonce: str
    generation: int
    stale_seconds: float = DEFAULT_LEASE_STALE_SECONDS
    _stop: threading.Event = field(default_factory=threading.Event,
                                   repr=False, compare=False)

    def is_current(self) -> bool:
        """Whether the lease file on disk is still ours (nonce match)."""
        info = _read_sentinel(self.path)
        return info is not None and info.get("nonce") == self.nonce

    def refresh(self) -> bool:
        """Heartbeat: bump the lease mtime iff the lease is still ours."""
        if not self.is_current():
            return False
        try:
            os.utime(self.path)
        except OSError:
            return False
        return True

    @contextlib.contextmanager
    def keepalive(self):
        """Refresh the lease from a daemon thread while the body runs."""
        interval = max(0.05, self.stale_seconds / 4.0)
        self._stop.clear()

        def beat() -> None:
            while not self._stop.wait(interval):
                if not self.refresh():
                    return  # stolen: stop heartbeating a stranger's lease

        thread = threading.Thread(target=beat, daemon=True,
                                  name=f"lease-keepalive-{self.key[:8]}")
        thread.start()
        try:
            yield self
        finally:
            self._stop.set()
            thread.join(timeout=2.0)

    def release(self) -> bool:
        """Remove the lease iff still ours; idempotent and steal-safe."""
        self._stop.set()
        return _release_sentinel(self.path, self.nonce)


class DiskExtractionCache(ExtractionCache):
    """Content-addressed :class:`FlowResult` store persisted under a directory.

    Drop-in replacement for :class:`ExtractionCache` anywhere the sweep engine
    accepts a cache (``SweepRunner(cache=...)``, ``spur_sweep(cache=...)``).
    Entries read from disk are memoised in memory, so repeated lookups within
    one process unpickle at most once.  Safe to share between concurrent,
    crash-prone processes: see the module docstring and
    :meth:`extract_with_claim`.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str],
        extractor: Callable[..., FlowResult] = run_extraction_flow,
        lease_stale_seconds: float = DEFAULT_LEASE_STALE_SECONDS,
    ):
        super().__init__(extractor)
        self.stats = DiskCacheStats()
        self.cache_dir = Path(cache_dir)
        self.objects_dir = self.cache_dir / "objects"
        self.leases_dir = self.cache_dir / "leases"
        self.quarantine_dir = self.cache_dir / "quarantine"
        self.lease_stale_seconds = float(lease_stale_seconds)
        self.objects_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """On-disk location of the entry for ``key``."""
        return self.objects_dir / key[:2] / f"{key}{ENTRY_SUFFIX}"

    def lease_path(self, key: str) -> Path:
        """On-disk location of the extraction lease for ``key``."""
        return self.leases_dir / key[:2] / f"{key}{LEASE_SUFFIX}"

    def _generation_path(self, key: str) -> Path:
        return self.leases_dir / key[:2] / f"{key}.gen"

    def _entry_files(self) -> list[Path]:
        # Orphaned ".tmp-*" files from a killed write are not entries.
        return sorted(path for path in self.objects_dir.glob(f"*/*{ENTRY_SUFFIX}")
                      if not path.name.startswith("."))

    def iter_keys(self) -> Iterator[str]:
        """Keys of every entry currently on disk."""
        for path in self._entry_files():
            yield path.name[: -len(ENTRY_SUFFIX)]

    # -- sizing --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entry_files())

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self.entry_path(key).exists()

    def disk_bytes(self) -> int:
        """Total size of all entry files in bytes."""
        return sum(path.stat().st_size for path in self._entry_files())

    # -- reads ---------------------------------------------------------------

    def lookup(self, key: str) -> FlowResult | None:
        """Counted lookup through the memory memo, then the disk store."""
        flow = self._entries.get(key)
        if flow is None:
            flow = self._read(key)
            if flow is not None:
                self._entries[key] = flow
        if flow is not None:
            self.stats.hits += 1
            self._touch(key)
        else:
            self.stats.misses += 1
        return flow

    def _touch(self, key: str) -> None:
        """Bump the entry's mtime so pruning approximates LRU, not FIFO."""
        try:
            os.utime(self.entry_path(key))
        except OSError:
            pass

    @staticmethod
    def _unpack(envelope, key: str | None = None) -> FlowResult:
        """Validate a current-format envelope and return its flow; raise if bad."""
        if not isinstance(envelope, dict) or "format" not in envelope:
            raise ValueError("not a cache envelope")
        if key is not None and envelope.get("key") != key:
            raise ValueError(
                f"envelope key {envelope.get('key')!r} does not match "
                f"file name")
        payload = envelope.get("payload")
        if not isinstance(payload, bytes):
            raise ValueError("envelope payload is not bytes")
        digest = _envelope_digest(envelope.get("format"),
                                  envelope.get("key"),
                                  envelope.get("code"), payload)
        if digest != envelope.get("sha256"):
            raise ValueError(
                f"envelope checksum mismatch (stored "
                f"{str(envelope.get('sha256'))[:12]}…, computed "
                f"{digest[:12]}…)")
        return pickle.loads(payload)

    @staticmethod
    def _foreign_format(envelope) -> bool:
        """Whether the envelope declares another on-disk format version."""
        return (isinstance(envelope, dict)
                and envelope.get("format") is not None
                and envelope.get("format") != DISK_FORMAT_VERSION)

    def _read(self, key: str) -> FlowResult | None:
        """Uncounted disk read; quarantines (and survives) bad entries."""
        path = self.entry_path(key)
        if not path.exists():
            return None
        try:
            with trace_span("cache.disk_read"), path.open("rb") as handle:
                envelope = pickle.load(handle)
            if self._foreign_format(envelope):
                # Written by another version of the store: its layout is
                # unknown to us, so evict silently and re-extract.
                path.unlink(missing_ok=True)
                self.stats.evictions += 1
                return None
            flow = self._unpack(envelope, key)
            if envelope.get("code") != extraction_code_fingerprint():
                # Validly checksummed, but written by different extraction
                # code: evict silently and re-extract.
                path.unlink(missing_ok=True)
                self.stats.evictions += 1
                return None
            return flow
        except Exception as exc:  # noqa: BLE001 - any bad entry => re-extract
            # Warn (visible to interactive callers and pytest) *and* log with
            # structured context (machine-readable alongside the run logs).
            destination = self._quarantine(path)
            where = (f"quarantined to {destination.name!r}" if destination
                     else "already removed")
            warnings.warn(
                f"discarding corrupted extraction-cache entry {path.name!r} "
                f"({type(exc).__name__}: {exc}; {where}); the extraction "
                f"will re-run",
                CacheCorruptionWarning,
                stacklevel=3,
            )
            logger.warning(
                "cache corruption: entry=%s error=%s message=%s action=%s",
                path.name,
                type(exc).__name__,
                exc,
                where,
            )
            self.stats.corrupted += 1
            return None

    def _quarantine(self, path: Path) -> Path | None:
        """Move a corrupt entry aside for post-mortem; atomic, never raises."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = self.quarantine_dir / (
            f"{path.name}.{os.getpid()}-{next(_unique)}")
        try:
            os.replace(path, destination)
        except OSError:
            path.unlink(missing_ok=True)
            return None
        self.stats.quarantined += 1
        return destination

    # -- writes --------------------------------------------------------------

    def store(self, key: str, flow: FlowResult,
              generation: int | None = None) -> None:
        """Write-through install: memoise and atomically persist the entry.

        Keys are content-addressed, so an entry file that already exists
        holds the same payload — re-seeding a warm layout skips the pickle
        and rewrite entirely (a stale-code entry left behind by this
        shortcut is still caught and evicted by the next disk read).
        ``generation`` records the publishing lease's fencing token in the
        envelope (observability only; not part of validation).
        """
        self._entries[key] = flow
        path = self.entry_path(key)
        if path.exists():
            self._touch(key)
            return
        envelope = build_envelope(key, flow, generation=generation)
        with trace_span("cache.disk_write"), fault_region("publisher"):
            atomic_write(path, lambda handle: pickle.dump(
                envelope, handle, protocol=pickle.HIGHEST_PROTOCOL))

    # -- lease-based claiming ------------------------------------------------

    def claim(self, key: str) -> ExtractionLease | None:
        """Try to win the exclusive right to extract ``key``.

        Returns a fenced :class:`ExtractionLease` on success, or ``None``
        while another *live* holder's lease exists (callers wait and reuse
        the published entry — see :meth:`extract_with_claim`).  A stale
        lease (dead or wedged holder) is stolen on the way: the steal bumps
        the key's fencing generation, so the previous holder — even one that
        revives later — can no longer publish.
        """
        path = self.lease_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with fault_region("claimer"):
            while True:
                try:
                    descriptor = os.open(
                        path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    age = _sentinel_age(path)
                    if age is None:
                        continue  # holder just released: race for it again
                    if age <= self.lease_stale_seconds:
                        return None  # live holder: wait, don't duplicate
                    if _steal_sentinel(path, self.lease_stale_seconds):
                        self.stats.leases_stolen += 1
                        logger.warning(
                            "stole stale extraction lease: key=%s age=%.1fs",
                            key[:12], age)
                    continue
                # Lease file won.  Fence it: bump the persistent generation
                # (only ever written by the current holder, so it is
                # monotonic across lease lineages), then record our identity.
                nonce = uuid.uuid4().hex
                try:
                    generation = self._bump_generation(key)
                    token = json.dumps({
                        "key": key,
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                        "nonce": nonce,
                        "generation": generation,
                        "code": extraction_code_fingerprint(),
                        "created": time.time(),
                    }).encode()
                    crashpoint("write")
                    os.write(descriptor, token)
                    if _fsync_enabled():
                        crashpoint("fsync")
                        os.fsync(descriptor)
                finally:
                    os.close(descriptor)
                self.stats.leases_claimed += 1
                return ExtractionLease(
                    key=key, path=path, nonce=nonce, generation=generation,
                    stale_seconds=self.lease_stale_seconds)

    def _bump_generation(self, key: str) -> int:
        """Advance the key's fencing generation (holder-only, durable)."""
        path = self._generation_path(key)
        try:
            current = int(path.read_text())
        except (OSError, ValueError):
            current = 0
        generation = current + 1
        atomic_write(path, lambda handle: handle.write(str(generation)),
                     binary=False)
        return generation

    def publish(self, lease: ExtractionLease, flow: FlowResult) -> bool:
        """Install an extracted flow under the lease's fencing guard.

        Returns ``False`` — without writing — when the lease was stolen
        (this process stalled past the stale bound and a newer-generation
        holder took over): the classic revived-zombie write is fenced off.
        The flow is still memoised in-process (content addressing makes it
        numerically identical to whatever the new holder publishes).
        """
        if not lease.is_current():
            self.stats.publishes_rejected += 1
            logger.warning(
                "rejected zombie publish: key=%s generation=%d "
                "(lease stolen by a newer holder)",
                lease.key[:12], lease.generation)
            self._entries[lease.key] = flow
            return False
        self.store(lease.key, flow, generation=lease.generation)
        self.stats.publishes += 1
        return True

    def release(self, lease: ExtractionLease) -> bool:
        """Release a lease (idempotent; safe after a steal)."""
        return lease.release()

    def extract_with_claim(
        self,
        key: str,
        extract: Callable[[], FlowResult],
        wait_timeout: float | None = None,
        poll_seconds: float | None = None,
    ) -> FlowResult:
        """Exactly-once extraction across processes sharing this directory.

        The full claim protocol in one call: reuse a published entry if one
        exists; otherwise claim the key and extract under a keepalive
        heartbeat, publish, release; or — when another live process holds
        the claim — block, polling until its entry appears (then reuse it)
        or its lease goes stale or vanishes unpublished (then race to take
        over).  ``wait_timeout`` bounds the *total* time spent waiting on
        other holders (``AnalysisError`` past it); extraction time under our
        own claim is never bounded here.
        """
        poll = poll_seconds if poll_seconds is not None else max(
            0.05, min(0.5, self.lease_stale_seconds / 4.0))
        deadline = (time.monotonic() + wait_timeout
                    if wait_timeout is not None else None)
        while True:
            if key in self._entries or self.entry_path(key).exists():
                flow = self.lookup(key)
                if flow is not None:
                    return flow
                # Entry was corrupt (now quarantined): fall through, claim,
                # and re-extract.
            lease = self.claim(key)
            if lease is not None:
                try:
                    with trace_span("cache.extract_claimed", key=key[:12]), \
                            lease.keepalive():
                        flow = extract()
                    self.publish(lease, flow)
                finally:
                    lease.release()
                return flow
            # Someone else is extracting this key right now: wait for their
            # publish instead of duplicating the work.
            self.stats.lease_waits += 1
            lease_path = self.lease_path(key)
            while True:
                if self.entry_path(key).exists():
                    break  # published: reuse it
                age = _sentinel_age(lease_path)
                if age is None or age > self.lease_stale_seconds:
                    break  # released unpublished or gone stale: take over
                if deadline is not None and time.monotonic() > deadline:
                    raise AnalysisError(
                        f"timed out after {wait_timeout:.0f}s waiting for "
                        f"another process to extract cache key {key[:12]}… "
                        f"(lease {lease_path} still fresh); raise "
                        "wait_timeout or investigate the holder")
                time.sleep(poll)

    # -- maintenance ---------------------------------------------------------

    #: A maintenance lock older than this is presumed orphaned by a killed
    #: process and is stolen rather than waited on forever.
    _LOCK_STALE_SECONDS = 60.0

    @contextlib.contextmanager
    def maintenance_lock(self, timeout: float = 10.0):
        """Advisory ``.lock`` sentinel serialising destructive maintenance.

        ``prune`` and ``clear`` of *concurrent processes sharing one cache
        directory* acquire this before deleting entries, so two overlapping
        prunes cannot double-count evictions or race each other's directory
        scans.  It is advisory only: readers and writers (``lookup`` /
        ``store``) never take it — their atomic per-entry files already make
        them safe against a concurrent prune.  A lock left behind by a
        killed process goes stale after an age bound and is stolen via an
        atomic rename-to-tombstone (:func:`_steal_sentinel`), so a stealer
        can never delete the *fresh* lock a faster stealer just created;
        release uses the same discipline (:func:`_release_sentinel`), so a
        holder whose lock was stolen cannot delete its successor's.
        """
        lock = self.cache_dir / ".lock"
        nonce = uuid.uuid4().hex
        token = json.dumps({"pid": os.getpid(),
                            "host": socket.gethostname(),
                            "nonce": nonce}).encode()
        deadline = time.monotonic() + timeout
        while True:
            try:
                descriptor = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(descriptor, token)
                os.close(descriptor)
                break
            except FileExistsError:
                age = _sentinel_age(lock)
                if age is None:
                    continue  # holder just released it: retry at once
                if age > self._LOCK_STALE_SECONDS:
                    _steal_sentinel(lock, self._LOCK_STALE_SECONDS)
                    continue
                if time.monotonic() > deadline:
                    raise AnalysisError(
                        f"extraction cache {self.cache_dir} is locked by "
                        "another maintenance operation (.lock held "
                        f"{age:.0f}s); retry later or remove the lock "
                        "file if its owner is gone"
                    ) from None
                time.sleep(0.05)
        try:
            yield
        finally:
            _release_sentinel(lock, nonce)

    def clear(self) -> None:
        """Remove every entry (memory and disk) and reset the counters."""
        with self.maintenance_lock():
            for path in self._entry_files():
                path.unlink(missing_ok=True)
        self._entries.clear()
        self.stats.reset()

    def prune(
        self,
        max_entries: int | None = None,
        max_age_seconds: float | None = None,
    ) -> tuple[int, int]:
        """Evict old entries; returns ``(entries_removed, bytes_freed)``.

        ``max_entries`` keeps only the most recently touched entries;
        ``max_age_seconds`` drops entries older than the given age.  Both
        criteria may be combined; with neither, nothing is removed.  The
        scan-and-delete runs under :meth:`maintenance_lock`.
        """
        with self.maintenance_lock():
            return self._prune_locked(max_entries, max_age_seconds)

    def _prune_locked(
        self,
        max_entries: int | None,
        max_age_seconds: float | None,
    ) -> tuple[int, int]:
        stamped = []
        for path in self._entry_files():
            stat = path.stat()
            stamped.append((stat.st_mtime, stat.st_size, path))
        stamped.sort(key=lambda entry: entry[0], reverse=True)  # newest first
        doomed = []
        if max_age_seconds is not None:
            cutoff = time.time() - max_age_seconds
            doomed = [entry for entry in stamped if entry[0] < cutoff]
            stamped = [entry for entry in stamped if entry[0] >= cutoff]
        if max_entries is not None and max_entries >= 0:
            doomed.extend(stamped[max_entries:])
        freed = 0
        for _mtime, size, path in doomed:
            key = path.name[: -len(ENTRY_SUFFIX)]
            self._entries.pop(key, None)
            freed += size
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
        return len(doomed), freed

    # -- offline audit -------------------------------------------------------

    def verify(self, repair: bool = False) -> dict:
        """Audit every on-disk entry without serving or memoising any.

        Checks each envelope's structure, key-vs-filename consistency and
        payload checksum, and classifies entries as ``ok``, ``corrupt``
        (unreadable / torn / checksum mismatch) or ``stale`` (other format
        version or extraction-code fingerprint).  With ``repair``, corrupt
        entries are quarantined and stale ones evicted, exactly as a live
        read would; without it, nothing on disk changes.  Returns the report
        the CLI's ``cache verify`` prints.
        """
        report: dict = {
            "cache_dir": str(self.cache_dir),
            "checked": 0, "ok": 0,
            "corrupt": [], "stale": [],
            "repaired": bool(repair),
            "quarantine_entries": sum(
                1 for path in self.quarantine_dir.glob("*")
                if path.is_file()) if self.quarantine_dir.is_dir() else 0,
        }
        for path in self._entry_files():
            key = path.name[: -len(ENTRY_SUFFIX)]
            report["checked"] += 1
            try:
                with path.open("rb") as handle:
                    envelope = pickle.load(handle)
                if self._foreign_format(envelope):
                    report["stale"].append(path.name)
                    if repair:
                        path.unlink(missing_ok=True)
                        self.stats.evictions += 1
                    continue
                self._unpack(envelope, key)
                if envelope.get("code") != extraction_code_fingerprint():
                    report["stale"].append(path.name)
                    if repair:
                        path.unlink(missing_ok=True)
                        self.stats.evictions += 1
                    continue
            except Exception as exc:  # noqa: BLE001 - classify, don't die
                report["corrupt"].append(
                    {"entry": path.name,
                     "error": f"{type(exc).__name__}: {exc}"})
                if repair:
                    self.stats.corrupted += 1
                    if self._quarantine(path):
                        report["quarantine_entries"] += 1
                continue
            report["ok"] += 1
        return report

    def describe(self) -> dict[str, int | str]:
        """Headline numbers for the CLI's ``cache stats`` report."""
        described = {
            "cache_dir": str(self.cache_dir),
            "entries": len(self),
            "disk_bytes": self.disk_bytes(),
            "format_version": DISK_FORMAT_VERSION,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
        }
        for name in DiskCacheStats._DISK_COUNTERS:
            described[name] = getattr(self.stats, name)
        return described
