"""Persistent, content-addressed extraction store (disk-backed cache).

:class:`DiskExtractionCache` is the on-disk sibling of the in-memory
:class:`~repro.studies.cache.ExtractionCache`: the same counted
``key``/``lookup``/``store``/``get_or_extract`` protocol, but every stored
:class:`~repro.core.flow.FlowResult` is also written to a cache directory so
campaigns warm-start *across processes and CI runs*.  The layout is

.. code-block:: text

    <cache_dir>/
        objects/<key[:2]>/<key>.flow.pkl     one envelope per extraction

where ``key`` is the stable SHA-256 content hash of (layout cell, mesh spec,
technology) computed by :func:`~repro.studies.cache.extraction_key` — the
same hash whichever process computes it, which is what makes the directory
shareable between runs, machines and CI caches.

Robustness properties:

* **atomic writes** — entries are written to a temporary file in the same
  directory and ``os.replace``-d into place, so a killed process never leaves
  a half-written entry behind;
* **versioned format** — every entry is an envelope recording the on-disk
  format version *and* a fingerprint of the extraction-relevant source code;
  entries written by an incompatible store version or by older extraction
  code are silently discarded and re-extracted (counted as evictions), so a
  stale cache directory can never reproduce pre-fix numbers;
* **corruption tolerance** — an unreadable or truncated entry produces a
  warning, is deleted, and the extraction simply re-runs (counted in
  ``stats.corrupted``); a corrupt cache can never fail a campaign;
* **counters** — ``stats`` extends the in-memory cache's hit/miss counters
  with eviction and corruption counts, so tests and CI can assert the
  warm-start behaviour (`hits > 0`, `misses == 0`).
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import os
import pickle
import tempfile
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from ..core.flow import FlowResult, run_extraction_flow
from ..errors import AnalysisError
from ..obs import get_logger, trace_span
from .cache import CacheStats, ExtractionCache

logger = get_logger(__name__)

#: Version of the on-disk entry format.  Bump when the envelope layout or the
#: pickled payload becomes incompatible; older entries are then evicted and
#: re-extracted instead of being misread.
DISK_FORMAT_VERSION = 1

#: Suffix of entry files under ``objects/``.
ENTRY_SUFFIX = ".flow.pkl"

#: Source trees (relative to the ``repro`` package) whose code determines the
#: extraction output.  Their contents are hashed into every entry envelope, so
#: entries computed by *older extraction code* are evicted and re-extracted
#: instead of being served stale — the content key alone only covers the
#: extraction *inputs* (layout cell, mesh spec, technology).
_EXTRACTION_SOURCES = (
    "core/flow.py",
    "devices",
    "extraction",
    "interconnect",
    "layout",
    "netlist",
    "package",
    "substrate",
    "technology",
)


def atomic_write(path: Path, write: Callable, binary: bool = True) -> None:
    """Write a file atomically: temp file in the same directory + replace.

    ``write`` receives the open temporary file handle.  A crash anywhere
    before the final ``os.replace`` leaves only a ``.tmp-*`` orphan, never a
    truncated file at ``path``.  Shared by the cache store and the result
    persistence, so the cleanup subtleties live in one place.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                            suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb" if binary else "w") as handle:
            write(handle)
        os.replace(tmp_name, path)
    except BaseException:
        os.unlink(tmp_name)
        raise


@functools.lru_cache(maxsize=1)
def extraction_code_fingerprint() -> str:
    """SHA-256 over the extraction-relevant sources of this installation."""
    import repro

    digest = hashlib.sha256()
    try:
        root = Path(repro.__file__).parent
        for relative in _EXTRACTION_SOURCES:
            path = root / relative
            files = [path] if path.is_file() else sorted(path.rglob("*.py"))
            for source in files:
                digest.update(str(source.relative_to(root)).encode())
                digest.update(source.read_bytes())
    except OSError:
        # Sourceless installation: fall back to a constant so caches still
        # work (entries then invalidate only via DISK_FORMAT_VERSION).
        return "unknown"
    return digest.hexdigest()


@dataclass
class DiskCacheStats(CacheStats):
    """Hit/miss counters plus the disk-specific eviction/corruption counts."""

    evictions: int = 0  #: entries removed by pruning or version mismatch
    corrupted: int = 0  #: unreadable entries discarded (then re-extracted)

    def reset(self) -> None:
        super().reset()
        self.evictions = 0
        self.corrupted = 0


class CacheCorruptionWarning(UserWarning):
    """A cache entry could not be read and was discarded."""


class DiskExtractionCache(ExtractionCache):
    """Content-addressed :class:`FlowResult` store persisted under a directory.

    Drop-in replacement for :class:`ExtractionCache` anywhere the sweep engine
    accepts a cache (``SweepRunner(cache=...)``, ``spur_sweep(cache=...)``).
    Entries read from disk are memoised in memory, so repeated lookups within
    one process unpickle at most once.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str],
        extractor: Callable[..., FlowResult] = run_extraction_flow,
    ):
        super().__init__(extractor)
        self.stats = DiskCacheStats()
        self.cache_dir = Path(cache_dir)
        self.objects_dir = self.cache_dir / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """On-disk location of the entry for ``key``."""
        return self.objects_dir / key[:2] / f"{key}{ENTRY_SUFFIX}"

    def _entry_files(self) -> list[Path]:
        # Orphaned ".tmp-*" files from a killed write are not entries.
        return sorted(path for path in self.objects_dir.glob(f"*/*{ENTRY_SUFFIX}")
                      if not path.name.startswith("."))

    def iter_keys(self) -> Iterator[str]:
        """Keys of every entry currently on disk."""
        for path in self._entry_files():
            yield path.name[: -len(ENTRY_SUFFIX)]

    # -- sizing --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entry_files())

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self.entry_path(key).exists()

    def disk_bytes(self) -> int:
        """Total size of all entry files in bytes."""
        return sum(path.stat().st_size for path in self._entry_files())

    # -- reads ---------------------------------------------------------------

    def lookup(self, key: str) -> FlowResult | None:
        """Counted lookup through the memory memo, then the disk store."""
        flow = self._entries.get(key)
        if flow is None:
            flow = self._read(key)
            if flow is not None:
                self._entries[key] = flow
        if flow is not None:
            self.stats.hits += 1
            self._touch(key)
        else:
            self.stats.misses += 1
        return flow

    def _touch(self, key: str) -> None:
        """Bump the entry's mtime so pruning approximates LRU, not FIFO."""
        try:
            os.utime(self.entry_path(key))
        except OSError:
            pass

    def _read(self, key: str) -> FlowResult | None:
        """Uncounted disk read; discards (and survives) bad entries."""
        path = self.entry_path(key)
        if not path.exists():
            return None
        try:
            with trace_span("cache.disk_read"), path.open("rb") as handle:
                envelope = pickle.load(handle)
            if not isinstance(envelope, dict) or "format" not in envelope:
                raise ValueError("not a cache envelope")
            if envelope["format"] != DISK_FORMAT_VERSION \
                    or envelope.get("code") != extraction_code_fingerprint():
                # Written by another version of the store or by different
                # extraction code: evict silently and re-extract.
                path.unlink(missing_ok=True)
                self.stats.evictions += 1
                return None
            if envelope.get("key") != key:
                raise ValueError(
                    f"envelope key {envelope.get('key')!r} does not match "
                    f"file name"
                )
            return envelope["flow"]
        except Exception as exc:  # noqa: BLE001 - any bad entry => re-extract
            # Warn (visible to interactive callers and pytest) *and* log with
            # structured context (machine-readable alongside the run logs).
            warnings.warn(
                f"discarding corrupted extraction-cache entry {path.name!r} "
                f"({type(exc).__name__}: {exc}); the extraction will re-run",
                CacheCorruptionWarning,
                stacklevel=3,
            )
            logger.warning(
                "cache corruption: entry=%s error=%s message=%s action=%s",
                path.name,
                type(exc).__name__,
                exc,
                "discarded, will re-extract",
            )
            path.unlink(missing_ok=True)
            self.stats.corrupted += 1
            return None

    # -- writes --------------------------------------------------------------

    def store(self, key: str, flow: FlowResult) -> None:
        """Write-through install: memoise and atomically persist the entry.

        Keys are content-addressed, so an entry file that already exists
        holds the same payload — re-seeding a warm layout skips the pickle
        and rewrite entirely (a stale-code entry left behind by this
        shortcut is still caught and evicted by the next disk read).
        """
        self._entries[key] = flow
        path = self.entry_path(key)
        if path.exists():
            self._touch(key)
            return
        envelope = {"format": DISK_FORMAT_VERSION, "key": key,
                    "code": extraction_code_fingerprint(), "flow": flow}
        with trace_span("cache.disk_write"):
            atomic_write(path, lambda handle: pickle.dump(
                envelope, handle, protocol=pickle.HIGHEST_PROTOCOL))

    # -- maintenance ---------------------------------------------------------

    #: A maintenance lock older than this is presumed orphaned by a killed
    #: process and is stolen rather than waited on forever.
    _LOCK_STALE_SECONDS = 60.0

    @contextlib.contextmanager
    def maintenance_lock(self, timeout: float = 10.0):
        """Advisory ``.lock`` sentinel serialising destructive maintenance.

        ``prune`` and ``clear`` of *concurrent processes sharing one cache
        directory* acquire this before deleting entries, so two overlapping
        prunes cannot double-count evictions or race each other's directory
        scans.  It is advisory only: readers and writers (``lookup`` /
        ``store``) never take it — their atomic per-entry files already make
        them safe against a concurrent prune.  A lock left behind by a
        killed process goes stale after an age bound and is stolen, not
        waited on forever.
        """
        lock = self.cache_dir / ".lock"
        deadline = time.monotonic() + timeout
        while True:
            try:
                descriptor = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(descriptor, str(os.getpid()).encode())
                os.close(descriptor)
                break
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder just released it: retry at once
                if age > self._LOCK_STALE_SECONDS:
                    lock.unlink(missing_ok=True)
                    continue
                if time.monotonic() > deadline:
                    raise AnalysisError(
                        f"extraction cache {self.cache_dir} is locked by "
                        "another maintenance operation (.lock held "
                        f"{age:.0f}s); retry later or remove the lock "
                        "file if its owner is gone"
                    ) from None
                time.sleep(0.05)
        try:
            yield
        finally:
            lock.unlink(missing_ok=True)

    def clear(self) -> None:
        """Remove every entry (memory and disk) and reset the counters."""
        with self.maintenance_lock():
            for path in self._entry_files():
                path.unlink(missing_ok=True)
        self._entries.clear()
        self.stats.reset()

    def prune(
        self,
        max_entries: int | None = None,
        max_age_seconds: float | None = None,
    ) -> tuple[int, int]:
        """Evict old entries; returns ``(entries_removed, bytes_freed)``.

        ``max_entries`` keeps only the most recently touched entries;
        ``max_age_seconds`` drops entries older than the given age.  Both
        criteria may be combined; with neither, nothing is removed.  The
        scan-and-delete runs under :meth:`maintenance_lock`.
        """
        with self.maintenance_lock():
            return self._prune_locked(max_entries, max_age_seconds)

    def _prune_locked(
        self,
        max_entries: int | None,
        max_age_seconds: float | None,
    ) -> tuple[int, int]:
        stamped = []
        for path in self._entry_files():
            stat = path.stat()
            stamped.append((stat.st_mtime, stat.st_size, path))
        stamped.sort(key=lambda entry: entry[0], reverse=True)  # newest first
        doomed = []
        if max_age_seconds is not None:
            cutoff = time.time() - max_age_seconds
            doomed = [entry for entry in stamped if entry[0] < cutoff]
            stamped = [entry for entry in stamped if entry[0] >= cutoff]
        if max_entries is not None and max_entries >= 0:
            doomed.extend(stamped[max_entries:])
        freed = 0
        for _mtime, size, path in doomed:
            key = path.name[: -len(ENTRY_SUFFIX)]
            self._entries.pop(key, None)
            freed += size
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
        return len(doomed), freed

    def describe(self) -> dict[str, int | str]:
        """Headline numbers for the CLI's ``cache stats`` report."""
        return {
            "cache_dir": str(self.cache_dir),
            "entries": len(self),
            "disk_bytes": self.disk_bytes(),
            "format_version": DISK_FORMAT_VERSION,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "corrupted": self.stats.corrupted,
        }
