"""Declarative parameter spaces and sweep campaigns.

A design study in the paper's sense (Figures 8-10) is a grid of independent
spur analyses: spur power evaluated over noise frequency, tuning voltage,
aggressor amplitude and layout variants (ground-grid width, mesh density).
This module describes such a study *declaratively*:

* :class:`ParamSpace` — named axes and their values, expanded into a full
  cartesian grid.
* :class:`Campaign` — a parameter space bound to a concrete test chip
  (a base :class:`~repro.layout.testchips.VcoLayoutSpec`, experiment options
  and a cell builder), resolved into layout *variants* (points that require
  their own extraction) times simulation points (points that reuse the same
  extracted model).

Axis names fall into three groups:

* simulation axes — ``noise_frequency`` [Hz], ``vtune`` [V] and
  ``injected_power_dbm`` [dBm]; these never invalidate the extraction,
* layout axes — any field of :class:`~repro.layout.testchips.VcoLayoutSpec`
  (``ground_width_scale``, ``nmos_width``, ...); each distinct combination is
  a new layout variant with its own extraction,
* mesh axes — ``mesh_nx``, ``mesh_ny``, ``mesh_n_z_per_layer``,
  ``mesh_max_depth`` and ``mesh_lateral_margin``, mapped onto
  :class:`~repro.substrate.extraction.SubstrateExtractionOptions`; these also
  re-extract, since the substrate macromodel depends on the mesh.

Axes that are not listed fall back to the campaign's experiment options
(``vtune_values``, ``noise_frequencies``, ``injected_power_dbm``), so a
campaign is "options plus the axes you want to sweep".
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from ..core.flow import FlowOptions
from ..errors import AnalysisError
from ..layout.cell import Cell
from ..layout.testchips import VcoLayoutSpec, make_vco_testchip

if TYPE_CHECKING:
    from ..core.vco_experiment import VcoExperimentOptions

#: Reserved simulation-axis names (never invalidate the extraction).
AXIS_NOISE_FREQUENCY = "noise_frequency"
AXIS_VTUNE = "vtune"
AXIS_INJECTED_POWER = "injected_power_dbm"
SIM_AXES = (AXIS_NOISE_FREQUENCY, AXIS_VTUNE, AXIS_INJECTED_POWER)

#: Mesh-axis names and the SubstrateExtractionOptions field each one drives.
MESH_AXES: dict[str, str] = {
    "mesh_nx": "nx",
    "mesh_ny": "ny",
    "mesh_n_z_per_layer": "n_z_per_layer",
    "mesh_max_depth": "max_depth",
    "mesh_lateral_margin": "lateral_margin",
}


def _layout_axis_names() -> tuple[str, ...]:
    return tuple(f.name for f in fields(VcoLayoutSpec))


@dataclass(frozen=True)
class ParamSpace:
    """Named sweep axes expanded into a cartesian grid.

    ``axes`` maps an axis name to the tuple of values it takes; insertion
    order is the nesting order of the grid (last axis varies fastest).
    """

    axes: Mapping[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        known = set(SIM_AXES) | set(MESH_AXES) | set(_layout_axis_names())
        normalized: dict[str, tuple[float, ...]] = {}
        for name, values in self.axes.items():
            if name not in known:
                raise AnalysisError(
                    f"unknown sweep axis {name!r}; simulation axes are "
                    f"{sorted(SIM_AXES)}, mesh axes {sorted(MESH_AXES)}, "
                    f"layout axes are the VcoLayoutSpec fields")
            values = tuple(values)
            if not values:
                raise AnalysisError(f"sweep axis {name!r} has no values")
            normalized[name] = values
        object.__setattr__(self, "axes", normalized)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.axes)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(values) for values in self.axes.values())

    @property
    def size(self) -> int:
        size = 1
        for n in self.shape:
            size *= n
        return size

    def __len__(self) -> int:
        return self.size

    def grid(self) -> Iterator[dict[str, float]]:
        """All grid points as ``{axis: value}`` dicts, last axis fastest."""
        names = self.names
        for combo in itertools.product(*self.axes.values()):
            yield dict(zip(names, combo))

    def subspace(self, names: Sequence[str]) -> "ParamSpace":
        """The axes of ``names`` that are present, in this space's order."""
        return ParamSpace({name: values for name, values in self.axes.items()
                           if name in names})


@dataclass(frozen=True)
class LayoutVariant:
    """One layout/mesh combination of a campaign (one extraction)."""

    index: int
    knobs: dict[str, float]          #: layout + mesh axis values of this variant
    spec: VcoLayoutSpec
    flow_options: FlowOptions


@dataclass(frozen=True)
class Campaign:
    """A declarative sweep campaign over one test-chip family.

    The campaign binds a :class:`ParamSpace` to a base layout spec and the
    experiment options; :meth:`variants` resolves the layout/mesh axes into
    concrete extraction targets while :meth:`sim_grid` resolves the
    simulation axes (falling back to the options for axes not swept).
    """

    name: str
    space: ParamSpace
    base_spec: VcoLayoutSpec = field(default_factory=VcoLayoutSpec)
    #: experiment options supplying defaults for axes that are not swept
    options: "VcoExperimentOptions | None" = None
    #: builds the layout cell of a variant (module-level, hence picklable)
    cell_builder: Callable[[VcoLayoutSpec], Cell] = make_vco_testchip

    def __post_init__(self) -> None:
        if self.options is None:
            from ..core.vco_experiment import VcoExperimentOptions

            object.__setattr__(self, "options", VcoExperimentOptions())

    # -- axis classification -------------------------------------------------

    def layout_axes(self) -> ParamSpace:
        return self.space.subspace(_layout_axis_names())

    def mesh_axes(self) -> ParamSpace:
        return self.space.subspace(tuple(MESH_AXES))

    def sim_axes(self) -> ParamSpace:
        return self.space.subspace(SIM_AXES)

    # -- resolution ----------------------------------------------------------

    def variants(self) -> list[LayoutVariant]:
        """All layout/mesh combinations, each needing its own extraction."""
        layout = self.layout_axes()
        mesh = self.mesh_axes()
        variants: list[LayoutVariant] = []
        for layout_knobs in layout.grid() if layout.axes else [{}]:
            for mesh_knobs in mesh.grid() if mesh.axes else [{}]:
                spec = replace(self.base_spec, **layout_knobs) \
                    if layout_knobs else self.base_spec
                substrate = self.options.flow.substrate
                if mesh_knobs:
                    substrate = replace(substrate, **{
                        MESH_AXES[name]: value
                        for name, value in mesh_knobs.items()})
                flow_options = replace(self.options.flow, substrate=substrate)
                variants.append(LayoutVariant(
                    index=len(variants),
                    knobs={**layout_knobs, **mesh_knobs},
                    spec=spec, flow_options=flow_options))
        return variants

    def build_cell(self, variant: LayoutVariant) -> Cell:
        return self.cell_builder(variant.spec)

    def sim_grid(self) -> tuple[tuple[float, ...], tuple[float, ...],
                                tuple[float, ...]]:
        """Resolved ``(injected powers, vtune values, noise frequencies)``."""
        powers = self.space.axes.get(
            AXIS_INJECTED_POWER, (self.options.injected_power_dbm,))
        vtunes = self.space.axes.get(AXIS_VTUNE, self.options.vtune_values)
        frequencies = self.space.axes.get(
            AXIS_NOISE_FREQUENCY, self.options.noise_frequencies)
        return tuple(powers), tuple(vtunes), tuple(frequencies)

    def resolved_axes(self) -> dict[str, tuple[float, ...]]:
        """All axes with their values, including option-supplied defaults."""
        powers, vtunes, frequencies = self.sim_grid()
        axes: dict[str, tuple[float, ...]] = {}
        axes.update(self.layout_axes().axes)
        axes.update(self.mesh_axes().axes)
        axes[AXIS_INJECTED_POWER] = powers
        axes[AXIS_VTUNE] = vtunes
        axes[AXIS_NOISE_FREQUENCY] = frequencies
        return axes

    @property
    def n_points(self) -> int:
        """Total number of (variant x power x vtune x frequency) grid points."""
        powers, vtunes, frequencies = self.sim_grid()
        n_variants = max(len(self.layout_axes()), 1) * max(len(self.mesh_axes()), 1)
        return n_variants * len(powers) * len(vtunes) * len(frequencies)

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the campaign's grid, layout and options.

        Two campaigns with the same axes, base spec and experiment options
        fingerprint identically whichever process built them; persisted
        results record it so a ``resume`` can refuse to mix campaigns.  The
        ``cell_builder`` callable is deliberately excluded (callables have no
        stable content hash) — campaigns with custom builders should use
        distinct names.
        """
        from .cache import fingerprint as content_fingerprint

        return content_fingerprint(self.name, dict(self.space.axes),
                                   self.base_spec, self.options)

    def describe(self) -> dict:
        """JSON-serialisable description persisted alongside sweep results."""
        options = self.options
        return {
            "name": self.name,
            "fingerprint": self.fingerprint(),
            "axes": {name: list(values)
                     for name, values in self.space.axes.items()},
            "resolved_axes": {name: list(values)
                              for name, values in self.resolved_axes().items()},
            "base_spec": asdict(self.base_spec),
            "options": {
                "vtune_values": list(options.vtune_values),
                "noise_frequencies": list(options.noise_frequencies),
                "injected_power_dbm": options.injected_power_dbm,
                "source_impedance": options.source_impedance,
                "supply_voltage": options.supply_voltage,
                "tail_bias_voltage": options.tail_bias_voltage,
                "output_load": options.output_load,
                "substrate_mesh": asdict(options.flow.substrate),
                "solver": asdict(options.flow.solver),
            },
            "n_points": self.n_points,
        }
