"""Deterministic fault injection for campaign robustness tests.

A :class:`FaultPlan` wraps the runner's per-task callable and makes chosen
tasks misbehave in controlled, reproducible ways: raise an exception, hang
past the backend's ``task_timeout``, kill their worker process outright
(``os._exit``, simulating an OOM-kill or segfault), or corrupt a cached
object on disk before running.  The fault-tolerance test suite drives every
recovery path of the sweep engine with these instead of relying on flaky
real-world failures.

Determinism across *processes* is the hard part: a pool backend retries a
faulted task in a fresh worker, so an in-memory attempt counter would reset
and the fault would fire forever.  The plan therefore counts attempts with
``O_CREAT | O_EXCL`` marker files in a shared ``state_dir`` — each execution
atomically claims the next attempt number, whichever process it runs in, so
"fail the first two attempts of task 3" means exactly that, every run.

Everything here is picklable (plain dataclasses plus a module-level wrapper
class), which is what lets a plan ride into
:class:`~repro.studies.backends.ProcessPoolBackend` workers.

Below the task-level faults sits a second, filesystem-level harness:
**crash points**.  The store and the journal bracket their critical
filesystem sequences in :func:`fault_region` tags (``"claimer"``,
``"publisher"``, ``"journal"``) and call :func:`crashpoint` before each
primitive operation (``"write"``, ``"fsync"``, ``"rename"``).  Arming a spec
— via :func:`arm_crash_points` or the ``REPRO_CRASH_POINTS`` environment
variable, format ``tag:op:k[,tag:op:k...]`` — makes the process die with
``os._exit`` at the *k*-th matching operation, exactly the way ``kill -9``
lands between two syscalls.  Unarmed, a crash point is a no-op costing one
``None`` check.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import AnalysisError

#: Supported fault kinds.
FAULT_RAISE = "raise"          #: the task raises :class:`InjectedFault`
FAULT_HANG = "hang"            #: the task sleeps far past any sane timeout
FAULT_EXIT = "exit"            #: the task's process dies via ``os._exit``
FAULT_CORRUPT = "corrupt"      #: a cached file is scribbled over, then run
FAULT_STOP = "stop"            #: the worker SIGSTOPs itself: alive but silent
FAULT_KINDS = (FAULT_RAISE, FAULT_HANG, FAULT_EXIT, FAULT_CORRUPT, FAULT_STOP)


class InjectedFault(RuntimeError):
    """The exception raised by a ``"raise"``-kind injected fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: which task, what kind, and for how many attempts.

    ``task_index`` matches the task payload's ``index`` attribute (the
    runner's :class:`~repro.studies.runner.SweepTask` ordering).  The fault
    fires on the first ``attempts`` executions of that task and lets later
    retries through — set ``attempts`` above the backend's retry budget to
    make the task fail permanently.
    """

    kind: str                   #: one of :data:`FAULT_KINDS`
    task_index: int             #: task to sabotage (payload ``.index``)
    attempts: int = 1           #: how many executions misbehave
    hang_seconds: float = 3600.0   #: sleep length of a ``"hang"`` fault
    exit_code: int = 137        #: status of an ``"exit"`` fault (SIGKILL-like)
    target: str = ""            #: directory whose cache a ``"corrupt"`` hits
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise AnalysisError(
                f"unknown fault kind {self.kind!r}; choose one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.attempts < 1:
            raise AnalysisError("a fault must fire on at least one attempt")
        if self.kind == FAULT_CORRUPT and not self.target:
            raise AnalysisError("a corrupt fault needs a target directory")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of scripted faults sharing one state directory.

    ``state_dir`` holds the cross-process attempt markers; point it at a
    fresh temporary directory per test so runs never see each other's
    counters.  ``wrap(fn)`` returns a picklable callable that injects the
    plan's faults before delegating to ``fn`` — the runner installs it via
    ``SweepRunner(fault_plan=...)``.
    """

    state_dir: str
    specs: tuple[FaultSpec, ...] = ()

    def wrap(self, fn) -> "FaultyCall":
        return FaultyCall(self, fn)

    # -- cross-process attempt accounting ------------------------------------

    def claim_attempt(self, spec_index: int) -> int:
        """Atomically claim the next attempt number of a spec (1-based).

        ``O_CREAT | O_EXCL`` makes the claim race-free even when retries of
        the same task land in different worker processes simultaneously.
        """
        state = Path(self.state_dir)
        state.mkdir(parents=True, exist_ok=True)
        attempt = 1
        while True:
            marker = state / f"spec{spec_index:02d}.attempt{attempt:04d}"
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(handle)
            return attempt

    def attempts_seen(self, spec_index: int) -> int:
        """How many executions a spec has intercepted so far (any process)."""
        state = Path(self.state_dir)
        if not state.is_dir():
            return 0
        return sum(1 for entry in state.iterdir()
                   if entry.name.startswith(f"spec{spec_index:02d}.attempt"))

    # -- the faults themselves -----------------------------------------------

    def inject(self, task) -> None:
        """Fire every armed fault matching ``task`` (worker-side)."""
        index = getattr(task, "index", None)
        for spec_index, spec in enumerate(self.specs):
            if index != spec.task_index:
                continue
            if self.claim_attempt(spec_index) > spec.attempts:
                continue
            if spec.kind == FAULT_RAISE:
                raise InjectedFault(spec.message)
            if spec.kind == FAULT_HANG:
                time.sleep(spec.hang_seconds)
            elif spec.kind == FAULT_EXIT:
                # Die the way a segfault / OOM-kill does: no cleanup, no
                # exception propagation — the pool sees a vanished worker.
                os._exit(spec.exit_code)
            elif spec.kind == FAULT_CORRUPT:
                _corrupt_one_file(spec.target)
            elif spec.kind == FAULT_STOP:
                # Freeze the process the way a SIGSTOP / stuck NFS mount /
                # debugger attach does: the pid stays alive, futures never
                # resolve, and nothing raises.  Only heartbeat monitoring can
                # notice before the wall-clock timeout; the recycle's SIGKILL
                # still reaps a stopped process.
                os.kill(os.getpid(), signal.SIGSTOP)


def _corrupt_one_file(target: str) -> None:
    """Scribble over the first regular file under ``target`` (recursively).

    Deterministic (lexicographic order, dotfiles and lock sentinels skipped)
    and non-atomic on purpose: this models a torn or bit-rotten cache entry,
    which the disk cache must detect and treat as a miss rather than
    deserialize garbage.
    """
    root = Path(target)
    victims = sorted(
        path for path in root.rglob("*")
        if path.is_file() and not path.name.startswith(".")
        and not path.name.endswith(".lock"))
    if not victims:
        return
    victim = victims[0]
    size = victim.stat().st_size
    with victim.open("r+b") as handle:
        handle.seek(max(0, size // 2))
        handle.write(b"\x00CORRUPTED\x00")


class FaultyCall:
    """Picklable task-callable wrapper: inject the plan's faults, then run."""

    def __init__(self, plan: FaultPlan, fn):
        self.plan = plan
        self.fn = fn

    def __call__(self, task):
        self.plan.inject(task)
        return self.fn(task)


# ---------------------------------------------------------------------------
# Filesystem crash points
# ---------------------------------------------------------------------------

#: Environment variable carrying the armed crash-point spec.  Parsed at
#: import, so freshly spawned interpreters (and forked pool workers, which
#: inherit the parent's environment) arm themselves without cooperation.
CRASH_POINTS_ENV = "REPRO_CRASH_POINTS"

#: Exit status of a fired crash point — the same 137 a ``kill -9`` leaves.
CRASH_EXIT_CODE = 137

#: Operations a crash point can interrupt.
CRASH_OPS = ("write", "fsync", "rename")

#: Regions the store and journal tag.  Other tags are accepted; these are
#: the ones the chaos matrix sweeps.
CRASH_REGIONS = ("claimer", "publisher", "journal")

# Armed spec: {(tag, op): k} meaning "die at the k-th (tag, op) hit", or
# None when nothing is armed (the common case — crashpoint() returns after
# a single attribute load).  Hit counters live beside it.
_CRASH_SPECS: dict[tuple[str, str], int] | None = None
_CRASH_HITS: dict[tuple[str, str], int] = {}
_CRASH_LOCK = threading.Lock()
_REGION = threading.local()


def parse_crash_points(text: str) -> dict[tuple[str, str], int]:
    """Parse ``"tag:op:k[,tag:op:k...]"`` into an armed-spec mapping."""
    specs: dict[tuple[str, str], int] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 3:
            raise AnalysisError(
                f"bad crash-point spec {chunk!r}; expected tag:op:k")
        tag, op, count = parts
        if op not in CRASH_OPS:
            raise AnalysisError(
                f"unknown crash-point op {op!r}; choose one of "
                f"{', '.join(CRASH_OPS)}")
        try:
            k = int(count)
        except ValueError:
            raise AnalysisError(
                f"crash-point count {count!r} is not an integer") from None
        if k < 1:
            raise AnalysisError("a crash point must fire on hit >= 1")
        specs[(tag, op)] = k
    return specs


def arm_crash_points(spec: str | None) -> None:
    """Arm (or, with ``None``/empty, disarm) crash points in this process."""
    global _CRASH_SPECS
    with _CRASH_LOCK:
        _CRASH_HITS.clear()
        _CRASH_SPECS = parse_crash_points(spec) if spec else None


def disarm_crash_points() -> None:
    """Disarm all crash points and forget hit counters."""
    arm_crash_points(None)


@contextlib.contextmanager
def fault_region(tag: str):
    """Tag the enclosed block's :func:`crashpoint` calls with ``tag``.

    Regions nest; the innermost tag wins.  Pure thread-local bookkeeping —
    safe (and free) in production code paths.
    """
    stack = getattr(_REGION, "stack", None)
    if stack is None:
        stack = _REGION.stack = []
    stack.append(tag)
    try:
        yield
    finally:
        stack.pop()


def current_fault_region() -> str | None:
    """The innermost active :func:`fault_region` tag, if any."""
    stack = getattr(_REGION, "stack", None)
    return stack[-1] if stack else None


def crashpoint(op: str) -> None:
    """Die via ``os._exit`` if an armed spec matches this (region, op) hit.

    Unarmed (the default) this is a no-op.  Armed, the k-th matching hit
    terminates the process with :data:`CRASH_EXIT_CODE` and no cleanup —
    deliberately indistinguishable from ``kill -9`` landing between two
    filesystem syscalls.
    """
    if _CRASH_SPECS is None:
        return
    tag = current_fault_region()
    if tag is None:
        return
    key = (tag, op)
    target = _CRASH_SPECS.get(key)
    if target is None:
        return
    with _CRASH_LOCK:
        _CRASH_HITS[key] = hits = _CRASH_HITS.get(key, 0) + 1
    if hits == target:
        os._exit(CRASH_EXIT_CODE)


# Arm from the environment at import time so subprocesses (chaos children,
# forked pool workers) participate without any in-band plumbing.
if os.environ.get(CRASH_POINTS_ENV):
    arm_crash_points(os.environ[CRASH_POINTS_ENV])
