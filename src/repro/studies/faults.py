"""Deterministic fault injection for campaign robustness tests.

A :class:`FaultPlan` wraps the runner's per-task callable and makes chosen
tasks misbehave in controlled, reproducible ways: raise an exception, hang
past the backend's ``task_timeout``, kill their worker process outright
(``os._exit``, simulating an OOM-kill or segfault), or corrupt a cached
object on disk before running.  The fault-tolerance test suite drives every
recovery path of the sweep engine with these instead of relying on flaky
real-world failures.

Determinism across *processes* is the hard part: a pool backend retries a
faulted task in a fresh worker, so an in-memory attempt counter would reset
and the fault would fire forever.  The plan therefore counts attempts with
``O_CREAT | O_EXCL`` marker files in a shared ``state_dir`` — each execution
atomically claims the next attempt number, whichever process it runs in, so
"fail the first two attempts of task 3" means exactly that, every run.

Everything here is picklable (plain dataclasses plus a module-level wrapper
class), which is what lets a plan ride into
:class:`~repro.studies.backends.ProcessPoolBackend` workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import AnalysisError

#: Supported fault kinds.
FAULT_RAISE = "raise"          #: the task raises :class:`InjectedFault`
FAULT_HANG = "hang"            #: the task sleeps far past any sane timeout
FAULT_EXIT = "exit"            #: the task's process dies via ``os._exit``
FAULT_CORRUPT = "corrupt"      #: a cached file is scribbled over, then run
FAULT_KINDS = (FAULT_RAISE, FAULT_HANG, FAULT_EXIT, FAULT_CORRUPT)


class InjectedFault(RuntimeError):
    """The exception raised by a ``"raise"``-kind injected fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: which task, what kind, and for how many attempts.

    ``task_index`` matches the task payload's ``index`` attribute (the
    runner's :class:`~repro.studies.runner.SweepTask` ordering).  The fault
    fires on the first ``attempts`` executions of that task and lets later
    retries through — set ``attempts`` above the backend's retry budget to
    make the task fail permanently.
    """

    kind: str                   #: one of :data:`FAULT_KINDS`
    task_index: int             #: task to sabotage (payload ``.index``)
    attempts: int = 1           #: how many executions misbehave
    hang_seconds: float = 3600.0   #: sleep length of a ``"hang"`` fault
    exit_code: int = 137        #: status of an ``"exit"`` fault (SIGKILL-like)
    target: str = ""            #: directory whose cache a ``"corrupt"`` hits
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise AnalysisError(
                f"unknown fault kind {self.kind!r}; choose one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.attempts < 1:
            raise AnalysisError("a fault must fire on at least one attempt")
        if self.kind == FAULT_CORRUPT and not self.target:
            raise AnalysisError("a corrupt fault needs a target directory")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of scripted faults sharing one state directory.

    ``state_dir`` holds the cross-process attempt markers; point it at a
    fresh temporary directory per test so runs never see each other's
    counters.  ``wrap(fn)`` returns a picklable callable that injects the
    plan's faults before delegating to ``fn`` — the runner installs it via
    ``SweepRunner(fault_plan=...)``.
    """

    state_dir: str
    specs: tuple[FaultSpec, ...] = ()

    def wrap(self, fn) -> "FaultyCall":
        return FaultyCall(self, fn)

    # -- cross-process attempt accounting ------------------------------------

    def claim_attempt(self, spec_index: int) -> int:
        """Atomically claim the next attempt number of a spec (1-based).

        ``O_CREAT | O_EXCL`` makes the claim race-free even when retries of
        the same task land in different worker processes simultaneously.
        """
        state = Path(self.state_dir)
        state.mkdir(parents=True, exist_ok=True)
        attempt = 1
        while True:
            marker = state / f"spec{spec_index:02d}.attempt{attempt:04d}"
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(handle)
            return attempt

    def attempts_seen(self, spec_index: int) -> int:
        """How many executions a spec has intercepted so far (any process)."""
        state = Path(self.state_dir)
        if not state.is_dir():
            return 0
        return sum(1 for entry in state.iterdir()
                   if entry.name.startswith(f"spec{spec_index:02d}.attempt"))

    # -- the faults themselves -----------------------------------------------

    def inject(self, task) -> None:
        """Fire every armed fault matching ``task`` (worker-side)."""
        index = getattr(task, "index", None)
        for spec_index, spec in enumerate(self.specs):
            if index != spec.task_index:
                continue
            if self.claim_attempt(spec_index) > spec.attempts:
                continue
            if spec.kind == FAULT_RAISE:
                raise InjectedFault(spec.message)
            if spec.kind == FAULT_HANG:
                time.sleep(spec.hang_seconds)
            elif spec.kind == FAULT_EXIT:
                # Die the way a segfault / OOM-kill does: no cleanup, no
                # exception propagation — the pool sees a vanished worker.
                os._exit(spec.exit_code)
            elif spec.kind == FAULT_CORRUPT:
                _corrupt_one_file(spec.target)


def _corrupt_one_file(target: str) -> None:
    """Scribble over the first regular file under ``target`` (recursively).

    Deterministic (lexicographic order, dotfiles and lock sentinels skipped)
    and non-atomic on purpose: this models a torn or bit-rotten cache entry,
    which the disk cache must detect and treat as a miss rather than
    deserialize garbage.
    """
    root = Path(target)
    victims = sorted(
        path for path in root.rglob("*")
        if path.is_file() and not path.name.startswith(".")
        and not path.name.endswith(".lock"))
    if not victims:
        return
    victim = victims[0]
    size = victim.stat().st_size
    with victim.open("r+b") as handle:
        handle.seek(max(0, size // 2))
        handle.write(b"\x00CORRUPTED\x00")


class FaultyCall:
    """Picklable task-callable wrapper: inject the plan's faults, then run."""

    def __init__(self, plan: FaultPlan, fn):
        self.plan = plan
        self.fn = fn

    def __call__(self, task):
        self.plan.inject(task)
        return self.fn(task)
