"""Campaign-level result persistence: NPZ tidy arrays + JSON metadata.

A persisted :class:`~repro.studies.results.SweepResult` is two files:

* ``<stem>.npz`` — the tidy per-point arrays (axis coordinates, spur
  outcomes, and the full per-entry decomposition) stored as raw float64 /
  complex128 columns, so a save/load round trip is **bit-identical**: every
  reconstructed :class:`~repro.vco.spurs.SpurResult` reproduces the original
  spur powers exactly, not to within a tolerance;
* ``<stem>.meta.json`` — a human-readable sidecar recording the campaign
  spec (axes, base layout spec, options, content fingerprint), the git SHA
  and timestamp of the run, the backend, wall-clock timings and the cache
  traffic, plus the layout variants (knobs, spec, cache key).

The extracted :class:`~repro.core.flow.FlowResult` models are deliberately
*not* persisted here — they live in the
:class:`~repro.studies.store.DiskExtractionCache`, keyed by the very cache
keys the sidecar records.  A loaded result therefore carries
``variants[i].flow is None``; everything the summary queries
(:meth:`~repro.studies.results.SweepResult.worst_spur`,
:meth:`~repro.studies.results.SweepResult.spur_vs_frequency`, ...) need is in
the records themselves.

Partially-completed campaigns are resumed by loading the partial result and
passing it to :meth:`SweepRunner.run(campaign, resume_from=...)
<repro.studies.runner.SweepRunner.run>` (or ``repro-campaign resume`` on the
command line), which skips every corner the stored result already covers.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import shutil
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import AnalysisError, CornerFailure
from ..layout.testchips import VcoLayoutSpec
from ..vco.spurs import NoiseEntry, SpurResult

if TYPE_CHECKING:
    from .results import PointRecord, SweepResult

#: Version of the persisted result format (NPZ columns + sidecar schema).
RESULT_FORMAT_VERSION = 1

#: Version of the crash-recovery journal layout (manifest + segment pickles).
JOURNAL_FORMAT_VERSION = 1

#: Prefix of layout/mesh knob columns inside the NPZ archive.
_KNOB_PREFIX = "knob__"

#: Scalar float columns stored per record (attribute name == column name).
_SPUR_FLOAT_FIELDS = (
    "carrier_frequency",
    "carrier_amplitude",
    "noise_amplitude",
    "fm_voltage",
    "am_voltage",
    "lower_sideband_voltage",
    "upper_sideband_voltage",
)


def result_paths(path: str | Path) -> tuple[Path, Path]:
    """Normalise a result path into its ``(.npz, .meta.json)`` pair."""
    path = Path(path)
    if path.name.endswith(".meta.json"):
        path = path.with_name(path.name[: -len(".meta.json")] + ".npz")
    elif path.suffix != ".npz":
        path = path.with_suffix(".npz")
    return path, path.with_name(path.name[: -len(".npz")] + ".meta.json")


def git_sha(cwd: str | Path | None = None) -> str | None:
    """HEAD commit of the enclosing git checkout, or ``None`` outside one."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


# -- saving -------------------------------------------------------------------


def save_result(result: "SweepResult", path: str | Path) -> tuple[Path, Path]:
    """Persist ``result`` to ``<stem>.npz`` + ``<stem>.meta.json``.

    Returns the two paths written.  Each file is written atomically
    (temporary file + ``os.replace``), and the sidecar lands *before* the
    NPZ: a save killed between the two replaces leaves at worst a sidecar
    without arrays, which ``load`` reports as "no sweep result" and
    ``resume`` treats as a fresh start.  A torn pair from *overwriting* an
    older save is caught at load time: the sidecar records a checksum of
    the arrays (deterministic — identical data saves byte-identically), and
    ``load`` refuses a sidecar whose checksum does not match the NPZ.
    """
    from .store import atomic_write

    npz_path, meta_path = result_paths(path)
    columns = _encode_records(result)
    meta = _encode_meta(result)
    meta["arrays_sha256"] = _columns_checksum(columns)

    def write_meta(handle):
        json.dump(meta, handle, indent=2)
        handle.write("\n")

    atomic_write(meta_path, write_meta, binary=False)
    atomic_write(npz_path, lambda handle: np.savez(handle, **columns))
    return npz_path, meta_path


def _columns_checksum(columns: dict[str, np.ndarray]) -> str:
    """Deterministic SHA-256 over the tidy arrays (names, dtypes, bytes).

    Stored in the sidecar and re-verified on load, so an interrupted
    overwrite can never silently pair one save's metadata with another
    save's arrays — even when both runs have the same number of records.
    """
    digest = hashlib.sha256()
    for name in sorted(columns):
        array = columns[name]
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _encode_records(result: "SweepResult") -> dict[str, np.ndarray]:
    records = result.records
    n = len(records)

    knob_names = sorted({name for record in records for name in record.knobs})
    entry_names: list[str] = []
    for record in records:
        for entry in record.spur.entries:
            if entry.name not in entry_names:
                entry_names.append(entry.name)
    e = len(entry_names)
    entry_index = {name: i for i, name in enumerate(entry_names)}

    columns: dict[str, np.ndarray] = {
        "point_index": np.array([r.point_index for r in records], dtype=np.int64),
        "variant_index": np.array([r.variant_index for r in records],
                                  dtype=np.int64),
        "injected_power_dbm": np.array([r.injected_power_dbm for r in records],
                                       dtype=np.float64),
        "vtune": np.array([r.vtune for r in records], dtype=np.float64),
        "noise_frequency": np.array([r.noise_frequency for r in records],
                                    dtype=np.float64),
        "entry_names": np.array(entry_names, dtype=str),
    }
    for field_name in _SPUR_FLOAT_FIELDS:
        columns[field_name] = np.array(
            [getattr(r.spur, field_name) for r in records], dtype=np.float64)
    for name in knob_names:
        columns[_KNOB_PREFIX + name] = np.array(
            [r.knobs.get(name, np.nan) for r in records], dtype=np.float64)

    h_sub = np.zeros((n, e), dtype=np.complex128)
    k_hz = np.zeros((n, e), dtype=np.float64)
    g_am = np.zeros((n, e), dtype=np.float64)
    fm_v = np.zeros((n, e), dtype=np.float64)
    am_v = np.zeros((n, e), dtype=np.float64)
    present = np.zeros((n, e), dtype=bool)
    mechanism_rows = [[""] * e for _ in range(n)]
    for row, record in enumerate(records):
        for entry in record.spur.entries:
            col = entry_index[entry.name]
            present[row, col] = True
            h_sub[row, col] = entry.h_sub
            k_hz[row, col] = entry.k_hz_per_volt
            g_am[row, col] = entry.g_am_per_volt
            mechanism_rows[row][col] = entry.mechanism
            fm_v[row, col] = record.spur.per_entry_fm_voltage.get(entry.name, 0.0)
            am_v[row, col] = record.spur.per_entry_am_voltage.get(entry.name, 0.0)
    # dtype sized from the data: mechanism strings round-trip untruncated.
    mechanism = (np.array(mechanism_rows, dtype=str) if n and e
                 else np.full((n, e), "", dtype="U1"))
    columns.update(entry_h_sub=h_sub, entry_k_hz_per_volt=k_hz,
                   entry_g_am_per_volt=g_am, entry_fm_voltage=fm_v,
                   entry_am_voltage=am_v, entry_present=present,
                   entry_mechanism=mechanism)
    return columns


def _encode_meta(result: "SweepResult") -> dict:
    return {
        "format": RESULT_FORMAT_VERSION,
        "kind": "repro-sweep-result",
        "campaign_name": result.campaign_name,
        "backend_name": result.backend_name,
        "axes": {name: list(values) for name, values in result.axes.items()},
        "campaign": result.campaign_spec,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "n_records": len(result.records),
        "timings": {
            "wall_seconds": result.wall_seconds,
        },
        "cache": {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
        },
        "variants": [
            {
                "index": variant.index,
                "knobs": variant.knobs,
                "spec": asdict(variant.spec),
                "cache_key": variant.cache_key,
                "from_cache": variant.from_cache,
            }
            for variant in result.variants
        ],
        # NaN coordinates (failures with no pinned corner) survive the round
        # trip: json emits the non-strict NaN token, which json.loads accepts.
        "failures": [asdict(failure) for failure in result.failures],
        "solver_degradations": dict(result.solver_degradations),
        # Per-run metrics snapshot + span aggregates (repro.obs schema);
        # None for runs made without the telemetry layer.
        "telemetry": result.telemetry,
    }


# -- loading ------------------------------------------------------------------


def load_result(path: str | Path) -> "SweepResult":
    """Load a persisted sweep result (``.npz`` plus its ``.meta.json``)."""
    from .results import PointRecord, SweepResult, VariantRecord

    npz_path, meta_path = result_paths(path)
    if not npz_path.exists():
        raise AnalysisError(f"no sweep result at {npz_path}")
    if not meta_path.exists():
        raise AnalysisError(f"sweep result {npz_path} has no metadata sidecar "
                            f"({meta_path.name} is missing)")
    try:
        meta = json.loads(meta_path.read_text())
    except (ValueError, OSError) as exc:
        raise AnalysisError(
            f"unreadable sweep-result metadata {meta_path}: {exc}") from exc
    if meta.get("kind") != "repro-sweep-result":
        raise AnalysisError(f"{meta_path} is not a sweep-result sidecar")
    if meta.get("format") != RESULT_FORMAT_VERSION:
        raise AnalysisError(
            f"sweep result {npz_path} uses on-disk format "
            f"{meta.get('format')!r}; this version reads "
            f"{RESULT_FORMAT_VERSION}")

    with np.load(npz_path, allow_pickle=False) as archive:
        columns = {name: archive[name] for name in archive.files}
    if meta.get("arrays_sha256") != _columns_checksum(columns):
        raise AnalysisError(
            f"sweep result {npz_path} is inconsistent with its sidecar "
            f"{meta_path.name} (array checksum mismatch): the pair was "
            "torn by an interrupted save — re-run or delete the result")

    records = _decode_records(columns, PointRecord)
    variants = [
        VariantRecord(index=entry["index"],
                      knobs={k: float(v) for k, v in entry["knobs"].items()},
                      spec=VcoLayoutSpec(**entry["spec"]),
                      cache_key=entry["cache_key"],
                      flow=None,
                      from_cache=bool(entry["from_cache"]))
        for entry in meta.get("variants", [])
    ]
    failures = [CornerFailure(**entry) for entry in meta.get("failures", [])]
    return SweepResult(
        campaign_name=meta["campaign_name"],
        backend_name=meta["backend_name"],
        axes={name: tuple(values) for name, values in meta["axes"].items()},
        records=records,
        variants=variants,
        wall_seconds=float(meta["timings"]["wall_seconds"]),
        cache_hits=int(meta["cache"]["hits"]),
        cache_misses=int(meta["cache"]["misses"]),
        campaign_spec=meta.get("campaign"),
        failures=failures,
        solver_degradations={name: int(count) for name, count
                             in meta.get("solver_degradations", {}).items()},
        telemetry=meta.get("telemetry"))


# -- crash-safe checkpoint journal --------------------------------------------


def journal_path_for(result_path: str | Path) -> Path:
    """Default journal directory of a result path (``<stem>.journal/``)."""
    npz_path, _meta_path = result_paths(result_path)
    return npz_path.with_name(npz_path.name[: -len(".npz")] + ".journal")


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the runner flushes completed corners to the crash journal.

    A flush happens whenever ``every_corners`` corners have completed since
    the last one *or* ``every_seconds`` have elapsed — whichever comes first
    — plus once unconditionally when the campaign ends (even by an abort), so
    a kill at any instant loses at most one interval of work.
    """

    path: str | Path                #: journal directory
    every_corners: int = 1          #: flush after this many completed corners
    every_seconds: float = 30.0     #: ... or after this much wall clock

    def __post_init__(self):
        if self.every_corners < 1:
            raise AnalysisError("checkpoint every_corners must be >= 1")
        if self.every_seconds <= 0:
            raise AnalysisError("checkpoint every_seconds must be positive")


class CampaignJournal:
    """Append-only crash-recovery journal of completed sweep corners.

    The journal is a directory holding a ``manifest.json`` (campaign name and
    fingerprint, validated on recovery) plus numbered segment pickles, each a
    tuple of :class:`~repro.studies.results.PointRecord`.  Every file lands
    atomically (temporary file + ``os.replace``), so a process killed at any
    point — including ``kill -9`` mid-write — leaves only whole segments: the
    next run recovers every corner that was flushed and recomputes at most
    the unflushed tail.

    Records recovered from pickles are bit-identical to the originals, so a
    killed-and-resumed campaign saves the same NPZ arrays, byte for byte, as
    an uninterrupted one.
    """

    _MANIFEST = "manifest.json"
    _SEGMENT_PREFIX = "seg-"

    def __init__(self, directory: str | Path, *, campaign_name: str,
                 fingerprint: str | None):
        self.directory = Path(directory)
        self.campaign_name = campaign_name
        self.fingerprint = fingerprint
        self._next_segment = 0
        self._opened = False

    # -- writing -------------------------------------------------------------

    def open(self) -> None:
        """Create the journal directory and manifest (idempotent)."""
        from .store import atomic_write

        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "kind": "repro-campaign-journal",
            "format": JOURNAL_FORMAT_VERSION,
            "campaign_name": self.campaign_name,
            "fingerprint": self.fingerprint,
        }

        def write_manifest(handle):
            json.dump(manifest, handle, indent=2)
            handle.write("\n")

        atomic_write(self.directory / self._MANIFEST, write_manifest,
                     binary=False)
        existing = self._segment_numbers(self.directory)
        self._next_segment = (max(existing) + 1) if existing else 0
        self._opened = True

    def append(self, records: "Sequence[PointRecord]") -> None:
        """Atomically persist one batch of completed-corner records.

        The write is durable (fsync + rename + dir-fsync) and runs inside
        the ``"journal"`` chaos region, so the crash-point harness can kill
        the process at any filesystem step — recovery must then replay to a
        byte-identical result either way.
        """
        from .faults import fault_region
        from .store import atomic_write

        if not records:
            return
        if not self._opened:
            self.open()
        name = f"{self._SEGMENT_PREFIX}{self._next_segment:06d}.pkl"
        with fault_region("journal"):
            atomic_write(self.directory / name,
                         lambda handle: pickle.dump(tuple(records), handle,
                                                    protocol=4))
        self._next_segment += 1

    def discard(self) -> None:
        """Delete the journal (after its corners landed in a saved result)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    # -- recovery ------------------------------------------------------------

    @classmethod
    def _segment_numbers(cls, directory: Path) -> list[int]:
        numbers = []
        for entry in directory.glob(cls._SEGMENT_PREFIX + "*.pkl"):
            digits = entry.name[len(cls._SEGMENT_PREFIX):-len(".pkl")]
            if digits.isdigit():
                numbers.append(int(digits))
        return sorted(numbers)

    @classmethod
    def recover(cls, directory: str | Path, *,
                fingerprint: str | None) -> "list[PointRecord]":
        """Load every journaled record, validating the campaign fingerprint.

        Returns ``[]`` when no journal exists.  A journal written by a
        *different* campaign (fingerprint mismatch) raises instead of being
        silently mixed into the wrong result.
        """
        directory = Path(directory)
        manifest_path = directory / cls._MANIFEST
        if not manifest_path.exists():
            return []
        try:
            manifest = json.loads(manifest_path.read_text())
        except (ValueError, OSError) as exc:
            raise AnalysisError(
                f"unreadable campaign journal manifest {manifest_path}: "
                f"{exc}") from exc
        if manifest.get("kind") != "repro-campaign-journal":
            raise AnalysisError(
                f"{directory} is not a campaign journal")
        if manifest.get("format") != JOURNAL_FORMAT_VERSION:
            raise AnalysisError(
                f"campaign journal {directory} uses format "
                f"{manifest.get('format')!r}; this version reads "
                f"{JOURNAL_FORMAT_VERSION}")
        stored = manifest.get("fingerprint")
        if fingerprint is not None and stored is not None \
                and stored != fingerprint:
            raise AnalysisError(
                f"campaign journal {directory} belongs to campaign "
                f"{manifest.get('campaign_name')!r} (fingerprint mismatch); "
                "delete it or point the checkpoint elsewhere")
        records: list = []
        seen: set[int] = set()
        for number in cls._segment_numbers(directory):
            path = directory / f"{cls._SEGMENT_PREFIX}{number:06d}.pkl"
            with path.open("rb") as handle:
                batch = pickle.load(handle)
            for record in batch:
                if record.point_index not in seen:   # re-runs dedupe cleanly
                    seen.add(record.point_index)
                    records.append(record)
        records.sort(key=lambda record: record.point_index)
        return records


def _decode_records(columns: dict[str, np.ndarray], point_record_cls) -> list:
    n = len(columns["point_index"])
    entry_names = [str(name) for name in columns["entry_names"]]
    knob_names = [name[len(_KNOB_PREFIX):] for name in columns
                  if name.startswith(_KNOB_PREFIX)]

    records = []
    for row in range(n):
        knobs = {}
        for name in knob_names:
            value = float(columns[_KNOB_PREFIX + name][row])
            if not np.isnan(value):
                knobs[name] = value
        entries = []
        per_entry_fm = {}
        per_entry_am = {}
        for col, name in enumerate(entry_names):
            if not columns["entry_present"][row, col]:
                continue
            entries.append(NoiseEntry(
                name=name,
                h_sub=complex(columns["entry_h_sub"][row, col]),
                k_hz_per_volt=float(columns["entry_k_hz_per_volt"][row, col]),
                g_am_per_volt=float(columns["entry_g_am_per_volt"][row, col]),
                mechanism=str(columns["entry_mechanism"][row, col])))
            per_entry_fm[name] = float(columns["entry_fm_voltage"][row, col])
            per_entry_am[name] = float(columns["entry_am_voltage"][row, col])
        noise_frequency = float(columns["noise_frequency"][row])
        spur = SpurResult(
            noise_frequency=noise_frequency,
            carrier_frequency=float(columns["carrier_frequency"][row]),
            carrier_amplitude=float(columns["carrier_amplitude"][row]),
            noise_amplitude=float(columns["noise_amplitude"][row]),
            entries=entries,
            fm_voltage=float(columns["fm_voltage"][row]),
            am_voltage=float(columns["am_voltage"][row]),
            lower_sideband_voltage=float(
                columns["lower_sideband_voltage"][row]),
            upper_sideband_voltage=float(
                columns["upper_sideband_voltage"][row]),
            per_entry_fm_voltage=per_entry_fm,
            per_entry_am_voltage=per_entry_am)
        records.append(point_record_cls(
            point_index=int(columns["point_index"][row]),
            variant_index=int(columns["variant_index"][row]),
            knobs=knobs,
            injected_power_dbm=float(columns["injected_power_dbm"][row]),
            vtune=float(columns["vtune"][row]),
            noise_frequency=noise_frequency,
            spur=spur))
    return records
