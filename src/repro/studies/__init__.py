"""Design-study sweep engine: declarative spur campaigns over the test chips.

The paper's end product is a design study — spur power swept over noise
frequency, V_tune and ground-grid layout variants (Figures 8-10).  This
package turns such studies into declarative campaigns executed by one engine:

* :mod:`repro.studies.params` — :class:`ParamSpace` / :class:`Campaign`
  grid specs over simulation, layout and mesh axes,
* :mod:`repro.studies.cache` — a content-addressed
  :class:`ExtractionCache` keyed by (layout cell, mesh spec, technology)
  with hit/miss counters,
* :mod:`repro.studies.store` — the persistent :class:`DiskExtractionCache`
  (same protocol, entries survive the process; atomic, versioned,
  corruption-tolerant),
* :mod:`repro.studies.backends` — :class:`SerialBackend` and the sharded
  :class:`ProcessPoolBackend` behind one protocol, sharing task-level
  retries, wall-clock timeouts, pool-rebuild backoff and the
  abort/skip/retry_then_skip failure policies,
* :mod:`repro.studies.runner` — the :class:`SweepRunner` orchestrating
  extraction reuse, task fan-out, corner-level resume, crash-safe
  checkpointing (:class:`CheckpointPolicy`) and structured
  :class:`~repro.errors.CornerFailure` reporting,
* :mod:`repro.studies.faults` — the deterministic :class:`FaultPlan`
  injection harness the fault-tolerance tests drive all of the above with,
* :mod:`repro.studies.results` — the tidy :class:`SweepResult` store with
  worst-corner and spur-vs-frequency queries plus ``save``/``load``/
  ``merge`` persistence (NPZ + JSON metadata sidecar),
* :mod:`repro.studies.cli` — the ``repro-campaign`` command line
  (``run`` / ``resume`` / ``show`` / ``cache stats|prune``) over
  declarative TOML/JSON campaign configs.

Quickstart (see ``examples/spur_campaign.py`` for the narrated version)::

    from repro.studies import Campaign, ParamSpace, ProcessPoolBackend, SweepRunner
    from repro.technology import make_technology

    campaign = Campaign(
        name="vtune_x_fnoise",
        space=ParamSpace({"vtune": (0.0, 0.75, 1.5),
                          "noise_frequency": (1e6, 5e6, 10e6)}))
    runner = SweepRunner(make_technology(), backend=ProcessPoolBackend(2))
    result = runner.run(campaign)
    print(result.summary(), result.worst_spur().row())
"""

from ..errors import CampaignError, CornerFailure, TaskTimeoutError
from .backends import (
    ON_ERROR_ABORT,
    ON_ERROR_POLICIES,
    ON_ERROR_RETRY_THEN_SKIP,
    ON_ERROR_SKIP,
    ProcessPoolBackend,
    SerialBackend,
    SweepBackend,
    TaskFailure,
)
from .cache import CacheStats, ExtractionCache, extraction_key, fingerprint
from .faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm_crash_points,
    crashpoint,
    disarm_crash_points,
    fault_region,
)
from .params import (
    AXIS_INJECTED_POWER,
    AXIS_NOISE_FREQUENCY,
    AXIS_VTUNE,
    Campaign,
    LayoutVariant,
    ParamSpace,
)
from .persist import (
    CampaignJournal,
    CheckpointPolicy,
    journal_path_for,
    load_result,
    save_result,
)
from .results import PointRecord, SweepResult, VariantRecord
from .runner import SweepRunner, SweepTask
from .store import (
    CacheCorruptionWarning,
    DiskCacheStats,
    DiskExtractionCache,
    ExtractionLease,
)

__all__ = [
    "AXIS_INJECTED_POWER",
    "AXIS_NOISE_FREQUENCY",
    "AXIS_VTUNE",
    "CacheCorruptionWarning",
    "CacheStats",
    "Campaign",
    "CampaignError",
    "CampaignJournal",
    "CheckpointPolicy",
    "CornerFailure",
    "DiskCacheStats",
    "DiskExtractionCache",
    "ExtractionCache",
    "ExtractionLease",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "arm_crash_points",
    "crashpoint",
    "disarm_crash_points",
    "fault_region",
    "LayoutVariant",
    "ON_ERROR_ABORT",
    "ON_ERROR_POLICIES",
    "ON_ERROR_RETRY_THEN_SKIP",
    "ON_ERROR_SKIP",
    "ParamSpace",
    "PointRecord",
    "ProcessPoolBackend",
    "SerialBackend",
    "SweepBackend",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "TaskFailure",
    "TaskTimeoutError",
    "VariantRecord",
    "extraction_key",
    "fingerprint",
    "journal_path_for",
    "load_result",
    "save_result",
]
