"""Comparison of simulated curves against reference (measured) curves.

The paper validates its methodology by overlaying measurement and simulation
(Figures 3 and 8) and quoting a maximum error (1 dB for the NMOS structure,
2 dB for the VCO).  The same bookkeeping is provided here: curves are
interpolated onto a common axis, absolute/mean errors in dB are computed, and
slopes are fitted to classify the coupling/modulation mechanism the way
Section 5 of the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class CurveComparison:
    """Error metrics between a simulated and a reference curve (both in dB)."""

    axis: np.ndarray
    reference_db: np.ndarray
    simulated_db: np.ndarray

    @property
    def error_db(self) -> np.ndarray:
        return self.simulated_db - self.reference_db

    @property
    def max_abs_error_db(self) -> float:
        return float(np.max(np.abs(self.error_db)))

    @property
    def mean_abs_error_db(self) -> float:
        return float(np.mean(np.abs(self.error_db)))

    @property
    def bias_db(self) -> float:
        """Mean signed error (positive = simulation reads high)."""
        return float(np.mean(self.error_db))

    def within(self, tolerance_db: float) -> bool:
        return self.max_abs_error_db <= tolerance_db


def compare_curves(axis_ref: np.ndarray, reference_db: np.ndarray,
                   axis_sim: np.ndarray, simulated_db: np.ndarray,
                   log_axis: bool = False) -> CurveComparison:
    """Interpolate the simulated curve onto the reference axis and compare."""
    axis_ref = np.asarray(axis_ref, dtype=float)
    reference_db = np.asarray(reference_db, dtype=float)
    axis_sim = np.asarray(axis_sim, dtype=float)
    simulated_db = np.asarray(simulated_db, dtype=float)
    if axis_ref.shape != reference_db.shape or axis_sim.shape != simulated_db.shape:
        raise AnalysisError("axis and curve shapes must match")
    if len(axis_sim) < 2:
        raise AnalysisError("simulated curve needs at least two points")
    x_ref = np.log10(axis_ref) if log_axis else axis_ref
    x_sim = np.log10(axis_sim) if log_axis else axis_sim
    order = np.argsort(x_sim)
    interpolated = np.interp(x_ref, x_sim[order], simulated_db[order])
    return CurveComparison(axis=axis_ref, reference_db=reference_db,
                           simulated_db=interpolated)


def reference_slope_line(frequencies: np.ndarray, anchor_db: float,
                         slope_db_per_decade: float) -> np.ndarray:
    """Ideal dB line of the given slope anchored at the first frequency.

    The paper does not tabulate absolute spur levels, so the Figure-8/10
    reference curves are mechanism lines (e.g. -20 dB/decade for resistive
    coupling + FM) anchored at the first simulated point; this helper builds
    them for both the classic experiments and the sweep engine.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.size == 0:
        raise AnalysisError("need at least one frequency for a reference line")
    if np.any(frequencies <= 0):
        raise AnalysisError("frequencies must be positive for a log-axis line")
    decades = np.log10(frequencies / frequencies[0])
    return anchor_db + slope_db_per_decade * decades


def slope_per_decade(frequencies: np.ndarray, level_db: np.ndarray) -> float:
    """Least-squares slope of a dB curve against log10(frequency), in dB/decade.

    Used to classify the impact mechanism the way the paper's Section 5 does:
    roughly -20 dB/decade means resistive coupling followed by FM, ~0 dB/decade
    means either resistive+AM or capacitive+FM, +20 dB/decade capacitive+AM.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    level_db = np.asarray(level_db, dtype=float)
    if frequencies.shape != level_db.shape or len(frequencies) < 2:
        raise AnalysisError("need at least two points to fit a slope")
    if np.any(frequencies <= 0):
        raise AnalysisError("frequencies must be positive for a log slope")
    log_f = np.log10(frequencies)
    slope, _intercept = np.polyfit(log_f, level_db, 1)
    return float(slope)


def classify_mechanism(slope_db_per_decade: float,
                       tolerance: float = 6.0) -> str:
    """Map a spur-power slope to the paper's coupling/modulation mechanism.

    * ~ -20 dB/dec : resistive coupling followed by FM (the paper's finding)
    * ~   0 dB/dec : resistive+AM or capacitive+FM
    * ~ +20 dB/dec : capacitive coupling followed by AM
    """
    if abs(slope_db_per_decade + 20.0) <= tolerance:
        return "resistive coupling + FM"
    if abs(slope_db_per_decade) <= tolerance:
        return "resistive+AM or capacitive+FM"
    if abs(slope_db_per_decade - 20.0) <= tolerance:
        return "capacitive coupling + AM"
    return "mixed / unclassified"
