"""Spectrum-analyzer emulation and spur extraction.

The paper measures the VCO output with an HP 8565E spectrum analyzer and
reports spur powers at ``f_c +/- f_noise``.  This module provides the same
view for simulated waveforms: a windowed FFT calibrated so a sinusoid of
amplitude ``A`` reads ``A^2 / (2 * R)`` watts, plus peak/spur search helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..units import watt_to_dbm


@dataclass
class Spectrum:
    """Single-sided power spectrum of a real waveform."""

    frequencies: np.ndarray            #: Hz
    power_dbm: np.ndarray              #: dBm into ``impedance``
    impedance: float = 50.0
    resolution_bandwidth: float = 0.0  #: Hz (frequency bin spacing)

    def power_at(self, frequency: float) -> float:
        """Power (dBm) in the bin closest to ``frequency``."""
        index = int(np.argmin(np.abs(self.frequencies - frequency)))
        return float(self.power_dbm[index])

    def peak_power_near(self, frequency: float, span: float) -> tuple[float, float]:
        """(frequency, power_dbm) of the strongest bin within ``span`` of ``frequency``."""
        mask = np.abs(self.frequencies - frequency) <= span / 2.0
        if not np.any(mask):
            raise AnalysisError("no spectrum bins in the requested span")
        local_power = self.power_dbm[mask]
        local_freq = self.frequencies[mask]
        index = int(np.argmax(local_power))
        return float(local_freq[index]), float(local_power[index])

    def carrier(self) -> tuple[float, float]:
        """(frequency, power_dbm) of the strongest spectral line."""
        index = int(np.argmax(self.power_dbm))
        return float(self.frequencies[index]), float(self.power_dbm[index])

    def spur_powers(self, carrier_frequency: float, offset: float,
                    search_span: float | None = None) -> tuple[float, float]:
        """Spur power (dBm) at ``carrier_frequency -/+ offset`` (lower, upper)."""
        span = search_span if search_span is not None else 4.0 * self.resolution_bandwidth
        span = max(span, 2.0 * self.resolution_bandwidth)
        _, lower = self.peak_power_near(carrier_frequency - offset, span)
        _, upper = self.peak_power_near(carrier_frequency + offset, span)
        return lower, upper

    def total_spur_power_dbm(self, carrier_frequency: float, offset: float,
                             search_span: float | None = None) -> float:
        """Combined power of both sidebands in dBm (as plotted in Figure 8)."""
        lower, upper = self.spur_powers(carrier_frequency, offset, search_span)
        total_watt = 10 ** (lower / 10.0) * 1e-3 + 10 ** (upper / 10.0) * 1e-3
        return float(watt_to_dbm(total_watt))


def compute_spectrum(times: np.ndarray, waveform: np.ndarray,
                     impedance: float = 50.0,
                     window: str = "hann") -> Spectrum:
    """Compute the calibrated single-sided power spectrum of a real waveform.

    The window's coherent gain is divided out so that discrete tones read
    their true power regardless of the window choice.
    """
    times = np.asarray(times, dtype=float)
    waveform = np.asarray(waveform, dtype=float)
    if times.ndim != 1 or times.shape != waveform.shape:
        raise AnalysisError("times and waveform must be 1-D arrays of equal length")
    if len(times) < 16:
        raise AnalysisError("waveform too short for a meaningful spectrum")
    dt = float(times[1] - times[0])
    if dt <= 0:
        raise AnalysisError("time axis must be increasing")

    n = len(waveform)
    if window == "hann":
        win = np.hanning(n)
    elif window == "rect":
        win = np.ones(n)
    else:
        raise AnalysisError(f"unknown window {window!r}")
    coherent_gain = win.sum() / n

    spectrum = np.fft.rfft(waveform * win) / (n * coherent_gain)
    amplitude = np.abs(spectrum)
    amplitude[1:] *= 2.0          # single-sided
    power_watt = amplitude ** 2 / (2.0 * impedance)
    power_watt = np.maximum(power_watt, 1e-30)
    frequencies = np.fft.rfftfreq(n, dt)
    return Spectrum(frequencies=frequencies,
                    power_dbm=10.0 * np.log10(power_watt / 1e-3),
                    impedance=impedance,
                    resolution_bandwidth=float(frequencies[1]) if len(frequencies) > 1 else 0.0)
