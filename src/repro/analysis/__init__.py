"""Analysis helpers: noise waveforms, spectrum emulation, curve comparison."""

from .waveforms import DigitalSwitchingNoise, SinusoidalNoise
from .spectrum import Spectrum, compute_spectrum
from .compare import CurveComparison, classify_mechanism, compare_curves, slope_per_decade

__all__ = [
    "CurveComparison",
    "DigitalSwitchingNoise",
    "SinusoidalNoise",
    "Spectrum",
    "classify_mechanism",
    "compare_curves",
    "compute_spectrum",
    "slope_per_decade",
]
