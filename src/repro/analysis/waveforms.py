"""Substrate-noise waveform generation.

The paper injects a sinusoidal tone of known power into the substrate; a
follow-up use case (the generation methodology of reference [10] in the
paper) would inject the switching noise of a digital circuit.  Both are
provided:

* :class:`SinusoidalNoise` — the paper's -5 dBm tone,
* :class:`DigitalSwitchingNoise` — a synthetic supply-current-like waveform
  (sum of damped clock-edge pulses) useful for end-to-end demos of the flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..netlist.elements import SourceValue, vectorized_waveform
from ..units import dbm_to_vpeak


@dataclass(frozen=True)
class SinusoidalNoise:
    """A sinusoidal substrate-noise tone of given power into ``impedance``."""

    power_dbm: float
    frequency: float
    impedance: float = 50.0
    phase_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise AnalysisError("noise frequency must be positive")

    @property
    def amplitude(self) -> float:
        """Peak amplitude in volts of the tone."""
        return float(dbm_to_vpeak(self.power_dbm, self.impedance))

    def source_value(self) -> SourceValue:
        """Netlist source description (DC = 0, AC = amplitude, sine waveform)."""
        return SourceValue.sine(self.amplitude, self.frequency,
                                phase_deg=self.phase_deg)

    def samples(self, times: np.ndarray) -> np.ndarray:
        phase = math.radians(self.phase_deg)
        return self.amplitude * np.sin(2.0 * math.pi * self.frequency * times + phase)


@dataclass(frozen=True)
class DigitalSwitchingNoise:
    """Synthetic digital switching noise: damped current spikes at clock edges.

    Each clock edge injects a pulse ``A * exp(-t/tau) * sin(2*pi*f_ring*t)``
    into the substrate — the typical shape of supply-bounce-generated
    substrate noise from a synchronous digital block.
    """

    clock_frequency: float
    pulse_amplitude: float = 20e-3
    damping_time: float = 0.8e-9
    ring_frequency: float = 900e6
    edges_per_period: int = 2

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise AnalysisError("clock frequency must be positive")
        if self.damping_time <= 0:
            raise AnalysisError("damping time must be positive")

    def samples(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        period = 1.0 / self.clock_frequency
        edge_spacing = period / self.edges_per_period
        t_in_edge = np.mod(times, edge_spacing)
        envelope = np.exp(-t_in_edge / self.damping_time)
        ringing = np.sin(2.0 * math.pi * self.ring_frequency * t_in_edge)
        return self.pulse_amplitude * envelope * ringing

    def source_value(self) -> SourceValue:
        """Netlist source with the switching waveform for transient analysis."""
        @vectorized_waveform
        def waveform(t):
            # samples() is array-aware, so whole time grids are evaluated in
            # one vectorized call; scalars come back as plain floats.
            result = self.samples(t)
            return result if result.ndim else float(result)

        # The fundamental of the pulse train dominates the narrow-band impact;
        # expose it as the AC magnitude so AC-based analyses stay meaningful.
        fundamental = self.fundamental_amplitude()
        return SourceValue(dc=0.0, ac_magnitude=fundamental, waveform=waveform)

    def fundamental_amplitude(self) -> float:
        """Amplitude of the first harmonic of the pulse train (volts)."""
        period = 1.0 / self.clock_frequency
        times = np.linspace(0.0, period, 4096, endpoint=False)
        samples = self.samples(times)
        spectrum = np.fft.rfft(samples) / len(samples)
        if len(spectrum) < self.edges_per_period + 1:
            return float(np.abs(spectrum[-1]) * 2.0)
        return float(2.0 * np.abs(spectrum[self.edges_per_period]))
