"""Netlist model: circuits, linear elements, nonlinear devices, subcircuits."""

from .stamping import GROUND, Stamper
from .elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    SourceValue,
    TwoTerminal,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
    VoltageSource,
    vectorized_waveform,
)
from .devices import MosfetElement, NonlinearElement, VaractorElement
from .circuit import Circuit
from .subckt import Subcircuit

__all__ = [
    "Capacitor",
    "Circuit",
    "CurrentSource",
    "Element",
    "GROUND",
    "Inductor",
    "MosfetElement",
    "NonlinearElement",
    "Resistor",
    "SourceValue",
    "Stamper",
    "Subcircuit",
    "TwoTerminal",
    "VaractorElement",
    "VoltageControlledCurrentSource",
    "VoltageControlledVoltageSource",
    "VoltageSource",
    "vectorized_waveform",
]
