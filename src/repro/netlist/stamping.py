"""Stamping interface between netlist elements and the MNA assembler.

Netlist elements know *what* they contribute to the modified-nodal-analysis
system (conductances, capacitances, source branches); the simulator knows
*where* those contributions go (node ordering, matrix storage).  The
:class:`Stamper` abstract base class is the contract between the two: the
simulator implements it, elements call it.

All node arguments are node *names* (strings); the ground node is ``"0"``.
"""

from __future__ import annotations

import abc


GROUND = "0"


class Stamper(abc.ABC):
    """Receives element contributions during MNA assembly.

    Sign conventions follow standard MNA practice:

    * ``conductance(a, b, g)`` adds a conductance ``g`` between nodes ``a``
      and ``b`` (either may be ground).
    * ``capacitance(a, b, c)`` adds a capacitance similarly; in AC analysis it
      contributes ``j*omega*c``, in transient a companion conductance.
    * ``current(a, b, i)`` injects a current ``i`` flowing *from node a to
      node b* through the source (i.e. it is extracted from ``a`` and pushed
      into ``b``).
    * ``vccs(p, n, cp, cn, gm)`` adds a transconductance: a current
      ``gm * (v_cp - v_cn)`` flowing from node ``p`` to node ``n``.
    * ``branch_*`` methods register contributions that need an extra MNA
      unknown (branch current): ideal voltage sources, inductors, VCVS.
      ``branch`` is an element-unique string key; the simulator allocates the
      row/column.
    """

    @abc.abstractmethod
    def conductance(self, node_a: str, node_b: str, value: float) -> None:
        """Add a conductance ``value`` (siemens) between two nodes."""

    @abc.abstractmethod
    def capacitance(self, node_a: str, node_b: str, value: float) -> None:
        """Add a capacitance ``value`` (farad) between two nodes."""

    @abc.abstractmethod
    def current(self, node_from: str, node_to: str, value: float) -> None:
        """Add an independent current source from ``node_from`` to ``node_to``."""

    @abc.abstractmethod
    def vccs(self, node_p: str, node_n: str, ctrl_p: str, ctrl_n: str,
             gm: float) -> None:
        """Add a voltage-controlled current source (transconductance)."""

    @abc.abstractmethod
    def branch_voltage_source(self, branch: str, node_p: str, node_n: str,
                              value: float) -> None:
        """Add an ideal voltage source ``v(node_p) - v(node_n) = value``."""

    @abc.abstractmethod
    def branch_inductor(self, branch: str, node_p: str, node_n: str,
                        inductance: float) -> None:
        """Add an inductor as a branch element (current is an MNA unknown)."""

    @abc.abstractmethod
    def branch_vcvs(self, branch: str, node_p: str, node_n: str,
                    ctrl_p: str, ctrl_n: str, gain: float) -> None:
        """Add a voltage-controlled voltage source."""
