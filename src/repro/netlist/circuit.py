"""The circuit container: a named collection of netlist elements.

A :class:`Circuit` is a flat netlist.  Hierarchy is handled by
:mod:`repro.netlist.subckt`, which flattens subcircuit instances into a flat
circuit before simulation.  Node names are free-form strings; ``"0"`` is the
global ground reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from ..devices.mosfet import MosfetGeometry, MosfetModel
from ..devices.varactor import AccumulationModeVaractor
from ..errors import NetlistError
from ..technology.process import MosParameters
from .devices import MosfetElement, VaractorElement
from .elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    SourceValue,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
    VoltageSource,
)
from .stamping import GROUND


@dataclass
class Circuit:
    """A flat netlist of elements with convenience constructors."""

    name: str
    elements: dict[str, Element] = field(default_factory=dict)

    # -- element management ----------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add an element; element names must be unique within the circuit."""
        if element.name in self.elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self.elements[element.name] = element
        return element

    def remove(self, name: str) -> Element:
        try:
            return self.elements.pop(name)
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.elements

    def __getitem__(self, name: str) -> Element:
        try:
            return self.elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements.values())

    # -- convenience constructors ----------------------------------------------

    def add_resistor(self, name: str, node_p: str, node_n: str,
                     resistance: float) -> Resistor:
        return self.add(Resistor(name=name, node_p=node_p, node_n=node_n,
                                 resistance=resistance))

    def add_capacitor(self, name: str, node_p: str, node_n: str,
                      capacitance: float) -> Capacitor:
        return self.add(Capacitor(name=name, node_p=node_p, node_n=node_n,
                                  capacitance=capacitance))

    def add_inductor(self, name: str, node_p: str, node_n: str,
                     inductance: float) -> Inductor:
        return self.add(Inductor(name=name, node_p=node_p, node_n=node_n,
                                 inductance=inductance))

    def add_voltage_source(self, name: str, node_p: str, node_n: str,
                           value: SourceValue | float) -> VoltageSource:
        if isinstance(value, (int, float)):
            value = SourceValue(dc=float(value))
        return self.add(VoltageSource(name=name, node_p=node_p, node_n=node_n,
                                      value=value))

    def add_current_source(self, name: str, node_p: str, node_n: str,
                           value: SourceValue | float) -> CurrentSource:
        if isinstance(value, (int, float)):
            value = SourceValue(dc=float(value))
        return self.add(CurrentSource(name=name, node_p=node_p, node_n=node_n,
                                      value=value))

    def add_vccs(self, name: str, node_p: str, node_n: str, ctrl_p: str,
                 ctrl_n: str, gm: float) -> VoltageControlledCurrentSource:
        return self.add(VoltageControlledCurrentSource(
            name=name, node_p=node_p, node_n=node_n,
            ctrl_p=ctrl_p, ctrl_n=ctrl_n, gm=gm))

    def add_vcvs(self, name: str, node_p: str, node_n: str, ctrl_p: str,
                 ctrl_n: str, gain: float) -> VoltageControlledVoltageSource:
        return self.add(VoltageControlledVoltageSource(
            name=name, node_p=node_p, node_n=node_n,
            ctrl_p=ctrl_p, ctrl_n=ctrl_n, gain=gain))

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   bulk: str, parameters: MosParameters, width: float,
                   length: float, **geometry_kwargs: float) -> MosfetElement:
        model = MosfetModel(parameters,
                            MosfetGeometry(width=width, length=length,
                                           **geometry_kwargs))
        return self.add(MosfetElement(name=name, drain=drain, gate=gate,
                                      source=source, bulk=bulk, model=model))

    def add_varactor(self, name: str, gate: str, well: str,
                     model: AccumulationModeVaractor,
                     substrate: str | None = None) -> VaractorElement:
        return self.add(VaractorElement(name=name, gate=gate, well=well,
                                        substrate=substrate, model=model))

    # -- queries ----------------------------------------------------------------

    def nodes(self) -> list[str]:
        """All node names excluding ground, in deterministic order."""
        seen: dict[str, None] = {}
        for element in self.elements.values():
            for node in element.nodes():
                if node != GROUND:
                    seen.setdefault(node, None)
        return list(seen)

    def branches(self) -> list[str]:
        """All extra branch-current unknowns required by the elements."""
        names: list[str] = []
        for element in self.elements.values():
            names.extend(element.branches())
        return names

    def nonlinear_elements(self) -> list[Element]:
        return [e for e in self.elements.values() if e.is_nonlinear]

    def linear_elements(self) -> list[Element]:
        return [e for e in self.elements.values() if not e.is_nonlinear]

    def sources(self) -> list[Element]:
        return [e for e in self.elements.values()
                if isinstance(e, (VoltageSource, CurrentSource))]

    def elements_at_node(self, node: str) -> list[Element]:
        return [e for e in self.elements.values() if node in e.nodes()]

    def connectivity_graph(self) -> "nx.Graph":
        """Undirected graph of nodes connected by elements (for sanity checks)."""
        graph = nx.Graph()
        graph.add_node(GROUND)
        for element in self.elements.values():
            nodes = element.nodes()
            graph.add_nodes_from(nodes)
            for a, b in zip(nodes, nodes[1:]):
                graph.add_edge(a, b, element=element.name)
            if len(nodes) >= 2:
                graph.add_edge(nodes[0], nodes[-1], element=element.name)
        return graph

    def floating_nodes(self) -> list[str]:
        """Nodes with no resistive/inductive DC path to ground.

        These nodes make the DC operating point singular; the impact-flow
        assembly adds large bleed resistors for them and reports their names.
        """
        graph = nx.Graph()
        graph.add_node(GROUND)
        for element in self.elements.values():
            nodes = [n for n in element.nodes()]
            graph.add_nodes_from(nodes)
            if isinstance(element, (Resistor, Inductor, VoltageSource)):
                graph.add_edge(element.node_p, element.node_n)
            elif element.is_nonlinear and len(nodes) >= 3:
                # A MOSFET provides a DC path among its channel terminals.
                for node in nodes:
                    graph.add_edge(nodes[0], node)
        reachable = nx.node_connected_component(graph, GROUND)
        return [n for n in self.nodes() if n not in reachable]

    def validate(self) -> None:
        """Raise :class:`NetlistError` for empty circuits or missing ground."""
        if not self.elements:
            raise NetlistError(f"circuit {self.name!r} has no elements")
        nodes_with_ground = set()
        for element in self.elements.values():
            nodes_with_ground.update(element.nodes())
        if GROUND not in nodes_with_ground:
            raise NetlistError(
                f"circuit {self.name!r} has no connection to ground ('0')")

    def merge(self, other: "Circuit", prefix: str = "") -> None:
        """Merge another circuit's elements into this one.

        Element names from ``other`` are prefixed (``prefix:`` separator) when
        ``prefix`` is non-empty; node names are left untouched so nets with the
        same name connect — this is how the substrate, interconnect, package
        and circuit models are combined into the single impact netlist.
        """
        for element in other.elements.values():
            clone = element
            if prefix:
                import copy

                clone = copy.copy(element)
                clone.name = f"{prefix}:{element.name}"
            self.add(clone)

    def summary(self) -> dict[str, int]:
        """Counts per element class, useful for logging the assembled model."""
        counts: dict[str, int] = {}
        for element in self.elements.values():
            counts[type(element).__name__] = counts.get(type(element).__name__, 0) + 1
        return counts
