"""Nonlinear netlist elements wrapping the device models.

These elements connect the physics models in :mod:`repro.devices` to the
netlist/simulator infrastructure.  A nonlinear element does not stamp a fixed
linear contribution; instead the simulator asks it for

* a *companion model* at a trial voltage vector during DC Newton iterations
  (:meth:`NonlinearElement.stamp_companion`), and
* its *small-signal* linearisation around the solved operating point for AC
  analyses (:meth:`NonlinearElement.stamp_small_signal`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..devices.mosfet import MosfetModel, MosfetOperatingPoint
from ..devices.varactor import AccumulationModeVaractor
from ..errors import NetlistError
from .elements import Element
from .stamping import GROUND, Stamper


class NonlinearElement(Element):
    """Base class for elements that require Newton iteration."""

    @property
    def is_nonlinear(self) -> bool:
        return True

    def stamp(self, stamper: Stamper) -> None:
        """Nonlinear elements contribute nothing analysis-independent."""

    def stamp_companion(self, stamper: Stamper,
                        voltages: Mapping[str, float]) -> None:
        """Stamp the Newton companion model linearised at ``voltages``.

        The companion model consists of conductances plus an equivalent
        current source such that the stamped linear element carries the same
        current as the nonlinear device at the trial voltages and has the same
        first-order sensitivity.
        """
        raise NotImplementedError

    def stamp_small_signal(self, stamper: Stamper,
                           voltages: Mapping[str, float]) -> None:
        """Stamp the small-signal (AC) linearisation at the operating point."""
        raise NotImplementedError


def _voltage(voltages: Mapping[str, float], node: str) -> float:
    """Node voltage lookup treating ground and missing nodes as 0 V."""
    if node == GROUND:
        return 0.0
    return float(voltages.get(node, 0.0))


@dataclass
class MosfetElement(NonlinearElement):
    """A MOSFET instance: four terminals plus a model card and geometry."""

    drain: str = GROUND
    gate: str = GROUND
    source: str = GROUND
    bulk: str = GROUND
    model: MosfetModel | None = None

    def __post_init__(self) -> None:
        if self.model is None:
            raise NetlistError(f"MOSFET {self.name}: a model is required")

    def nodes(self) -> tuple[str, ...]:
        return (self.drain, self.gate, self.source, self.bulk)

    def operating_point(self, voltages: Mapping[str, float]) -> MosfetOperatingPoint:
        vd = _voltage(voltages, self.drain)
        vg = _voltage(voltages, self.gate)
        vs = _voltage(voltages, self.source)
        vb = _voltage(voltages, self.bulk)
        return self.model.evaluate(vg - vs, vd - vs, vb - vs)

    def stamp_companion(self, stamper: Stamper,
                        voltages: Mapping[str, float]) -> None:
        op = self.operating_point(voltages)
        vgs = op.vgs
        vds = op.vds
        vbs = op.vbs
        # Linearised drain current:
        #   id ≈ Ids + gm*(vgs - VGS) + gds*(vds - VDS) + gmb*(vbs - VBS)
        # Stamp the three transconductances plus an equivalent source that
        # carries the residual current at the linearisation point.
        stamper.vccs(self.drain, self.source, self.gate, self.source, op.gm)
        stamper.conductance(self.drain, self.source, op.gds)
        stamper.vccs(self.drain, self.source, self.bulk, self.source, op.gmb)
        i_eq = op.ids - op.gm * vgs - op.gds * vds - op.gmb * vbs
        stamper.current(self.drain, self.source, i_eq)

    def stamp_small_signal(self, stamper: Stamper,
                           voltages: Mapping[str, float]) -> None:
        op = self.operating_point(voltages)
        stamper.vccs(self.drain, self.source, self.gate, self.source, op.gm)
        stamper.conductance(self.drain, self.source, op.gds)
        stamper.vccs(self.drain, self.source, self.bulk, self.source, op.gmb)
        stamper.capacitance(self.gate, self.source, op.cgs)
        stamper.capacitance(self.gate, self.drain, op.cgd)
        stamper.capacitance(self.drain, self.bulk, op.cdb)
        stamper.capacitance(self.source, self.bulk, op.csb)


@dataclass
class VaractorElement(NonlinearElement):
    """Accumulation-mode varactor between ``gate`` and ``well`` terminals.

    The ``well`` terminal is the n-well body; its capacitance to the substrate
    node (``substrate``) models the capacitive coupling path through the well.
    """

    gate: str = GROUND
    well: str = GROUND
    substrate: str | None = None
    model: AccumulationModeVaractor | None = None

    def __post_init__(self) -> None:
        if self.model is None:
            raise NetlistError(f"varactor {self.name}: a model is required")

    def nodes(self) -> tuple[str, ...]:
        nodes = [self.gate, self.well]
        if self.substrate is not None:
            nodes.append(self.substrate)
        return tuple(nodes)

    def bias_voltage(self, voltages: Mapping[str, float]) -> float:
        return _voltage(voltages, self.gate) - _voltage(voltages, self.well)

    def stamp_companion(self, stamper: Stamper,
                        voltages: Mapping[str, float]) -> None:
        # A capacitor carries no DC current: only a tiny conductance is added
        # to keep floating nodes well-defined during the operating-point solve.
        stamper.conductance(self.gate, self.well, 1e-12)
        if self.substrate is not None:
            stamper.conductance(self.well, self.substrate, 1e-12)

    def stamp_small_signal(self, stamper: Stamper,
                           voltages: Mapping[str, float]) -> None:
        capacitance = self.model.capacitance(self.bias_voltage(voltages))
        stamper.capacitance(self.gate, self.well, capacitance)
        if self.substrate is not None:
            stamper.capacitance(self.well, self.substrate,
                                self.model.well_capacitance)
