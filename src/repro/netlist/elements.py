"""Linear netlist elements and independent sources.

Each element carries its connectivity (node names), its value and knows how to
stamp its *topology* into an MNA system through the
:class:`~repro.netlist.stamping.Stamper` interface.  Source *values* depend on
the analysis (DC level, AC phasor, transient waveform), so sources expose
``dc``, ``ac`` and ``value_at(t)`` accessors that the analyses query while the
topological stamp stays analysis-independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import NetlistError
from .stamping import GROUND, Stamper


@dataclass
class Element:
    """Base class for all netlist elements."""

    name: str

    def nodes(self) -> tuple[str, ...]:
        """Names of the nodes this element connects to."""
        raise NotImplementedError

    def branches(self) -> tuple[str, ...]:
        """Extra MNA branch unknowns required by this element."""
        return ()

    def stamp(self, stamper: Stamper) -> None:
        """Stamp the element's linear, analysis-independent contributions."""
        raise NotImplementedError

    @property
    def is_nonlinear(self) -> bool:
        return False


@dataclass
class TwoTerminal(Element):
    """An element with exactly two terminals."""

    node_p: str = GROUND
    node_n: str = GROUND

    def nodes(self) -> tuple[str, ...]:
        return (self.node_p, self.node_n)


@dataclass
class Resistor(TwoTerminal):
    """Linear resistor; ``resistance`` in ohms must be positive."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        if self.resistance <= 0 or not math.isfinite(self.resistance):
            raise NetlistError(f"resistor {self.name}: invalid value {self.resistance}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp(self, stamper: Stamper) -> None:
        stamper.conductance(self.node_p, self.node_n, self.conductance)


@dataclass
class Capacitor(TwoTerminal):
    """Linear capacitor; ``capacitance`` in farads must be non-negative."""

    capacitance: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance < 0 or not math.isfinite(self.capacitance):
            raise NetlistError(f"capacitor {self.name}: invalid value {self.capacitance}")

    def stamp(self, stamper: Stamper) -> None:
        if self.capacitance > 0:
            stamper.capacitance(self.node_p, self.node_n, self.capacitance)


@dataclass
class Inductor(TwoTerminal):
    """Linear inductor; adds one branch-current unknown to the MNA system."""

    inductance: float = 1e-9

    def __post_init__(self) -> None:
        if self.inductance <= 0 or not math.isfinite(self.inductance):
            raise NetlistError(f"inductor {self.name}: invalid value {self.inductance}")

    def branches(self) -> tuple[str, ...]:
        return (self.name,)

    def stamp(self, stamper: Stamper) -> None:
        stamper.branch_inductor(self.name, self.node_p, self.node_n, self.inductance)


@dataclass
class VoltageControlledCurrentSource(Element):
    """Transconductance ``gm``: current ``gm*(v_cp - v_cn)`` from node_p to node_n."""

    node_p: str = GROUND
    node_n: str = GROUND
    ctrl_p: str = GROUND
    ctrl_n: str = GROUND
    gm: float = 0.0

    def nodes(self) -> tuple[str, ...]:
        return (self.node_p, self.node_n, self.ctrl_p, self.ctrl_n)

    def stamp(self, stamper: Stamper) -> None:
        stamper.vccs(self.node_p, self.node_n, self.ctrl_p, self.ctrl_n, self.gm)


@dataclass
class VoltageControlledVoltageSource(Element):
    """Ideal voltage gain element ``v(node_p)-v(node_n) = gain*(v_cp - v_cn)``."""

    node_p: str = GROUND
    node_n: str = GROUND
    ctrl_p: str = GROUND
    ctrl_n: str = GROUND
    gain: float = 1.0

    def nodes(self) -> tuple[str, ...]:
        return (self.node_p, self.node_n, self.ctrl_p, self.ctrl_n)

    def branches(self) -> tuple[str, ...]:
        return (self.name,)

    def stamp(self, stamper: Stamper) -> None:
        stamper.branch_vcvs(self.name, self.node_p, self.node_n,
                            self.ctrl_p, self.ctrl_n, self.gain)


Waveform = Callable[[float], float]


def vectorized_waveform(waveform: Waveform) -> Waveform:
    """Mark ``waveform`` as safe to evaluate on a whole time grid at once.

    :meth:`SourceValue.sample` only calls a waveform with an array when it
    carries this marker; unmarked callables are always evaluated one time
    point at a time, preserving per-step semantics for stateful waveforms
    (noise generators, playback iterators) that a probing array call would
    corrupt.
    """
    waveform.supports_time_grid = True      # type: ignore[attr-defined]
    return waveform


@dataclass
class SourceValue:
    """Analysis-dependent value of an independent source.

    ``dc`` is used by the operating-point analysis, ``ac_magnitude`` /
    ``ac_phase_deg`` define the small-signal phasor, and ``waveform`` (a
    callable of time, seconds) drives transient analysis.  When no waveform is
    given the source holds its DC value during transient.
    """

    dc: float = 0.0
    ac_magnitude: float = 0.0
    ac_phase_deg: float = 0.0
    waveform: Waveform | None = None

    @property
    def ac_phasor(self) -> complex:
        phase = math.radians(self.ac_phase_deg)
        return self.ac_magnitude * complex(math.cos(phase), math.sin(phase))

    def value_at(self, time: float) -> float:
        if self.waveform is not None:
            return self.waveform(time)
        return self.dc

    def sample(self, times) -> np.ndarray:
        """Waveform samples over a whole time grid, shape ``times.shape``.

        Waveforms marked with :func:`vectorized_waveform` are evaluated in a
        single array call; every other callable is evaluated one time point
        at a time — never probed with an array — so stateful waveforms keep
        exact per-step semantics.  Either way the result is one dense array
        per source, which the transient analysis scatters into the RHS rows
        the source touches.
        """
        times = np.asarray(times, dtype=float)
        if self.waveform is None:
            return np.full(times.shape, self.dc)
        if getattr(self.waveform, "supports_time_grid", False):
            # The waveform gets a copy: one that mutates its argument in
            # place must not corrupt the caller's (shared) time grid.
            samples = np.asarray(self.waveform(times.copy()), dtype=float)
            if samples.shape != times.shape:
                raise NetlistError(
                    "vectorized waveform returned shape "
                    f"{samples.shape} for a {times.shape} time grid")
            return samples
        samples = np.array([float(self.waveform(float(t)))
                            for t in np.atleast_1d(times)])
        return samples.reshape(times.shape)

    @classmethod
    def sine(cls, amplitude: float, frequency: float, dc_offset: float = 0.0,
             phase_deg: float = 0.0) -> "SourceValue":
        """A sinusoidal source usable in DC (offset), AC (phasor) and transient."""
        phase = math.radians(phase_deg)

        @vectorized_waveform
        def waveform(t):
            # np.sin keeps this waveform valid for scalars and whole time
            # grids alike, so transient sampling stays vectorized.
            return dc_offset + amplitude * np.sin(2.0 * math.pi * frequency * t + phase)

        return cls(dc=dc_offset, ac_magnitude=amplitude, ac_phase_deg=phase_deg,
                   waveform=waveform)


@dataclass
class VoltageSource(TwoTerminal):
    """Independent voltage source (DC / AC / transient)."""

    value: SourceValue = field(default_factory=SourceValue)

    def branches(self) -> tuple[str, ...]:
        return (self.name,)

    def stamp(self, stamper: Stamper) -> None:
        # The topological stamp uses the DC value; analyses overwrite the RHS
        # entry for this branch with the value they need (AC phasor, v(t)).
        stamper.branch_voltage_source(self.name, self.node_p, self.node_n,
                                      self.value.dc)


@dataclass
class CurrentSource(TwoTerminal):
    """Independent current source; positive current flows node_p -> node_n."""

    value: SourceValue = field(default_factory=SourceValue)

    def stamp(self, stamper: Stamper) -> None:
        stamper.current(self.node_p, self.node_n, self.value.dc)
